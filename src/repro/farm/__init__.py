"""``repro.farm`` — parallel experiment orchestrator with result cache.

The experiment layer's job farm: every figure/table/chaos run is a
:class:`~repro.farm.spec.RunSpec` (a pure-data job with a stable
content key), executed by a cache-aware
:class:`~repro.farm.executor.Farm` (inline at ``jobs=1``, a spawn-
context process pool above that), with results stored in a
content-addressed :class:`~repro.farm.cache.ResultCache` and sweeps
checkpointed/resumed by :class:`~repro.farm.sweep.SweepDriver`.

Module map:

* :mod:`~repro.farm.spec` — the job model and content hashing;
* :mod:`~repro.farm.jobs` — job kinds (failure / chaos / echo);
* :mod:`~repro.farm.cache` — the on-disk result cache;
* :mod:`~repro.farm.executor` — inline + multiprocess execution;
* :mod:`~repro.farm.progress` — done/total + ETA + cache-hit reporting;
* :mod:`~repro.farm.sweep` — checkpointed resumable sweeps;
* :mod:`~repro.farm.bench` — ``repro farm bench`` (BENCH_farm.json).
"""

from repro.farm.cache import CacheStats, ResultCache
from repro.farm.executor import (
    Farm,
    FarmError,
    FarmJobError,
    FarmOptions,
    FarmStats,
    WORKER_START_METHOD,
    run_specs,
)
from repro.farm.jobs import (
    FailureResult,
    chaos_spec,
    execute_spec,
    failure_spec,
    outcome_digest,
)
from repro.farm.progress import ProgressReporter
from repro.farm.spec import FORMAT_VERSION, RunSpec
from repro.farm.sweep import SweepDriver, run_chaos_specs, run_failure_specs

__all__ = [
    "FORMAT_VERSION",
    "WORKER_START_METHOD",
    "RunSpec",
    "CacheStats",
    "ResultCache",
    "Farm",
    "FarmError",
    "FarmJobError",
    "FarmOptions",
    "FarmStats",
    "FailureResult",
    "ProgressReporter",
    "SweepDriver",
    "run_specs",
    "run_failure_specs",
    "run_chaos_specs",
    "failure_spec",
    "chaos_spec",
    "execute_spec",
    "outcome_digest",
]
