"""Job kinds: how a :class:`~repro.farm.spec.RunSpec` actually runs.

A *job kind* maps a spec to a JSON-able **result record**.  Kinds are
registered at import time of this module, which matters more than it
looks: worker processes are started with the ``spawn`` method (see
:mod:`repro.farm.executor`), so they re-import this module fresh and
must find every kind they are asked to run.  Test- or session-local
registrations therefore only work on the inline (``jobs=1``) path.

Every result record carries a ``digest`` — a short sha256 over the
record's canonical JSON — computed identically for a fresh execution,
a cache hit, and the pre-farm sequential code path.  Equal digests ⇒
bit-identical results; that is the equivalence the tests pin down.

Built-in kinds:

* ``failure`` — one iperf-under-failure run
  (:func:`repro.experiments.common.run_failure_experiment`);
* ``chaos`` — one seeded chaos run
  (:func:`repro.experiments.chaos_sweep.run_chaos_once`);
* ``verify`` — one differential-verification trial
  (:func:`repro.verify.harness.run_trial_record`);
* ``frontier`` — one resilience-frontier cell
  (:func:`repro.experiments.frontier.run_frontier_once`);
* ``service`` — one controller-service churn shard
  (:func:`repro.service.loadgen.run_churn`): seeded flow
  arrive/depart/reroute/port-flap traffic against a live service, with
  admission-invariant audits and offline route-ID re-derivation;
* ``bulkmesh`` — one destination block of an all-pairs provisioning
  mesh (:class:`repro.controller.bulk.BulkProvisioner`): destinations
  are independent, so a full mesh shards cleanly by destination and
  the per-block canonical route-ID digests gate shard boundaries
  against the sequential (and per-flow reference) computation;
* ``echo`` — the farm's self-test job (sleep / crash-once knobs for
  exercising timeouts and worker-crash retry without real workloads).

Experiment imports happen lazily inside the job functions: the chaos
module itself drives sweeps through the farm, so a top-level import
would be circular.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.farm.spec import RunSpec, canonical_json

__all__ = [
    "JOB_KINDS",
    "job_kind",
    "record_digest",
    "execute_spec",
    "execute_record",
    "failure_spec",
    "failure_outcome_record",
    "outcome_digest",
    "FailureResult",
    "chaos_spec",
    "chaos_run_from_record",
    "verify_spec",
    "frontier_spec",
    "frontier_cell_from_record",
    "service_spec",
    "bulkmesh_spec",
    "simvector_spec",
    "echo_spec",
]

JobFn = Callable[[RunSpec], Dict[str, Any]]

#: kind name -> job function (populated by :func:`job_kind` below).
JOB_KINDS: Dict[str, JobFn] = {}


def job_kind(name: str) -> Callable[[JobFn], JobFn]:
    """Register ``fn`` as the executor for job kind ``name``."""

    def register(fn: JobFn) -> JobFn:
        JOB_KINDS[name] = fn
        return fn

    return register


def record_digest(record: Mapping[str, Any]) -> str:
    """Short content digest of a result record (``digest`` excluded)."""
    payload = {k: v for k, v in record.items() if k != "digest"}
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()[:16]


def execute_spec(spec: RunSpec) -> Dict[str, Any]:
    """Run one spec in this process and return its digested record."""
    try:
        fn = JOB_KINDS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown job kind {spec.kind!r}; registered: "
            f"{sorted(JOB_KINDS)}"
        ) from None
    record = fn(spec)
    record["digest"] = record_digest(record)
    return record


def execute_record(spec_record: Mapping[str, Any]) -> Dict[str, Any]:
    """Worker-process entry point: spec record in, result record out."""
    return execute_spec(RunSpec.from_record(spec_record))


# ---------------------------------------------------------------------------
# "failure" — the iperf-under-failure experiment unit
# ---------------------------------------------------------------------------

def _timeline_record(timeline: Any) -> Dict[str, Any]:
    from dataclasses import asdict

    return asdict(timeline)


def _timeline_from(record: Mapping[str, Any]) -> Any:
    from repro.experiments.common import Timeline

    fields = dict(record)
    fields["baseline_window"] = tuple(fields["baseline_window"])
    fields["failure_window"] = tuple(fields["failure_window"])
    return Timeline(**fields)


def failure_spec(
    scenario: str,
    deflection: str,
    protection: str,
    failure: Optional[Tuple[str, str]],
    seed: int,
    timeline: Any,
    control_rtt_s: float = 0.005,
    backend: Optional[str] = "env",
) -> RunSpec:
    """Spec for one :func:`run_failure_experiment` call.

    ``backend`` is the encoding backend; the default sentinel ``"env"``
    resolves ``REPRO_BACKEND`` *here*, at spec-build time, so the
    resolved name lands in the content key — a figure swept under XSR
    can never collide with a cached default-datapath run.  ``None``
    (the default datapath) is omitted from the params entirely, keeping
    every pre-PR-10 content key — and therefore the whole existing
    farm cache — valid.
    """
    if backend == "env":
        backend = os.environ.get("REPRO_BACKEND") or None
    params = {
        "deflection": deflection,
        "protection": protection,
        "failure": list(failure) if failure is not None else None,
        "timeline": _timeline_record(timeline),
        "control_rtt_s": control_rtt_s,
    }
    if backend is not None:
        params["backend"] = backend
    return RunSpec.make("failure", scenario, seed, params)


def failure_outcome_record(outcome: Any) -> Dict[str, Any]:
    """Flatten a :class:`RunOutcome` into the cacheable record shape."""
    iperf = outcome.iperf
    return {
        "baseline_mbps": outcome.baseline_mbps,
        "failure_mbps": outcome.failure_mbps,
        "intervals": [[t, mbps] for t, mbps in iperf.intervals],
        "retransmits": iperf.retransmits,
        "fast_retransmits": iperf.fast_retransmits,
        "timeouts": iperf.timeouts,
    }


def outcome_digest(outcome: Any) -> str:
    """Digest of a directly-run outcome — the pre-farm comparison hook."""
    return record_digest(failure_outcome_record(outcome))


@dataclass(frozen=True)
class FailureResult:
    """What the figure modules need from one failure run."""

    baseline_mbps: float
    failure_mbps: float
    intervals: Tuple[Tuple[float, float], ...]
    retransmits: int
    fast_retransmits: int
    timeouts: int
    digest: str

    @property
    def ratio(self) -> float:
        """Failure-window throughput as a fraction of baseline."""
        if self.baseline_mbps <= 0:
            return 0.0
        return self.failure_mbps / self.baseline_mbps

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "FailureResult":
        return cls(
            baseline_mbps=record["baseline_mbps"],
            failure_mbps=record["failure_mbps"],
            intervals=tuple(
                (t, mbps) for t, mbps in record["intervals"]
            ),
            retransmits=record["retransmits"],
            fast_retransmits=record["fast_retransmits"],
            timeouts=record["timeouts"],
            digest=record["digest"],
        )


@job_kind("failure")
def _run_failure(spec: RunSpec) -> Dict[str, Any]:
    from repro.experiments.common import (
        run_failure_experiment,
        scenario_factory,
    )

    p = spec.params
    failure = tuple(p["failure"]) if p.get("failure") else None
    outcome = run_failure_experiment(
        scenario_factory(spec.scenario)(),
        p["deflection"],
        p["protection"],
        failure,
        spec.seed,
        timeline=_timeline_from(p["timeline"]),
        control_rtt_s=p.get("control_rtt_s", 0.005),
        backend=p.get("backend"),  # never "env": resolved at spec time
    )
    return failure_outcome_record(outcome)


# ---------------------------------------------------------------------------
# "chaos" — one seeded chaos run with invariant checking
# ---------------------------------------------------------------------------

def chaos_spec(
    scenario: str,
    technique: str,
    mode: str,
    seed: int,
    chaos_kwargs: Optional[Mapping[str, Any]] = None,
    ctrl_outage: bool = False,
    rate_pps: float = 300.0,
    traffic_s: float = 4.0,
    ttl: int = 128,
) -> RunSpec:
    """Spec for one :func:`run_chaos_once` call."""
    return RunSpec.make(
        "chaos",
        scenario,
        seed,
        {
            "technique": technique,
            "mode": mode,
            "chaos_kwargs": dict(chaos_kwargs or {}),
            "ctrl_outage": ctrl_outage,
            "rate_pps": rate_pps,
            "traffic_s": traffic_s,
            "ttl": ttl,
        },
    )


def chaos_run_from_record(record: Mapping[str, Any]) -> Any:
    """Rebuild a :class:`ChaosRun` from a (possibly JSON-loaded) record."""
    from repro.experiments.chaos_sweep import ChaosRun

    fields = dict(record["chaos"])
    fields["drop_reasons"] = tuple(
        (reason, count) for reason, count in fields["drop_reasons"]
    )
    fields["violations"] = tuple(
        (name, count) for name, count in fields["violations"]
    )
    return ChaosRun(**fields)


@job_kind("chaos")
def _run_chaos(spec: RunSpec) -> Dict[str, Any]:
    from dataclasses import asdict

    from repro.experiments.chaos_sweep import run_chaos_once

    p = spec.params
    run = run_chaos_once(
        scenario_name=spec.scenario,
        technique=p["technique"],
        mode=p["mode"],
        seed=spec.seed,
        chaos_kwargs=p.get("chaos_kwargs") or None,
        ctrl_outage=p.get("ctrl_outage", False),
        rate_pps=p.get("rate_pps", 300.0),
        traffic_s=p.get("traffic_s", 4.0),
        ttl=p.get("ttl", 128),
    )
    # Nested under "chaos": ChaosRun has its own `digest` field (the
    # injector event digest) which must not collide with the farm's
    # record digest.
    return {"chaos": asdict(run)}


# ---------------------------------------------------------------------------
# "verify" — one differential-verification trial
# ---------------------------------------------------------------------------

def verify_spec(
    trial_seed: int,
    oracles: Optional[Sequence[str]] = None,
) -> RunSpec:
    """Spec for one :func:`run_trial_record` call.

    ``oracles`` (None means all) is part of the content key: a trial
    over two oracles is a different result than one over four.
    """
    return RunSpec.make(
        "verify",
        "fuzz",
        trial_seed,
        {"oracles": sorted(oracles) if oracles else None},
    )


@job_kind("verify")
def _run_verify(spec: RunSpec) -> Dict[str, Any]:
    from repro.verify.harness import run_trial_record

    return run_trial_record(spec.seed, spec.params.get("oracles"))


# ---------------------------------------------------------------------------
# "frontier" — one resilience-frontier cell
# ---------------------------------------------------------------------------

def frontier_spec(
    topology: str,
    scheme: str,
    mode: str,
    failures: int,
    seed: int,
    schedule_seed: int = 0,
    adversary: Optional[Mapping[str, Any]] = None,
    rate_pps: float = 200.0,
    traffic_s: float = 1.5,
    ttl: int = 96,
) -> RunSpec:
    """Spec for one :func:`run_frontier_once` call."""
    return RunSpec.make(
        "frontier",
        topology,
        seed,
        {
            "scheme": scheme,
            "mode": mode,
            "failures": failures,
            "schedule_seed": schedule_seed,
            "adversary": dict(adversary or {}),
            "rate_pps": rate_pps,
            "traffic_s": traffic_s,
            "ttl": ttl,
        },
    )


def frontier_cell_from_record(record: Mapping[str, Any]) -> Any:
    """Rebuild a :class:`FrontierCell` from a (JSON-loaded) record."""
    from repro.experiments.frontier import FrontierCell

    fields = dict(record["frontier"])
    fields["drop_reasons"] = tuple(
        (reason, count) for reason, count in fields["drop_reasons"]
    )
    fields["violations"] = tuple(
        (name, count) for name, count in fields["violations"]
    )
    fields["failed_links"] = tuple(fields["failed_links"])
    # Absent on cached records predating the encoding-backend columns —
    # the dataclass default () keeps those records loadable.
    if "header_bits_by_backend" in fields:
        fields["header_bits_by_backend"] = tuple(
            (name, bits) for name, bits in fields["header_bits_by_backend"]
        )
    return FrontierCell(**fields)


@job_kind("frontier")
def _run_frontier(spec: RunSpec) -> Dict[str, Any]:
    from dataclasses import asdict

    from repro.experiments.frontier import run_frontier_once

    p = spec.params
    cell = run_frontier_once(
        topology=spec.scenario,
        scheme=p["scheme"],
        mode=p["mode"],
        failures=p["failures"],
        seed=spec.seed,
        schedule_seed=p.get("schedule_seed", 0),
        adversary=p.get("adversary") or None,
        rate_pps=p.get("rate_pps", 200.0),
        traffic_s=p.get("traffic_s", 1.5),
        ttl=p.get("ttl", 96),
    )
    # Nested under "frontier": FrontierCell carries its own `digest`
    # (the failure-set / chaos-event fingerprint) which must not
    # collide with the farm's record digest.
    return {"frontier": asdict(cell)}


# ---------------------------------------------------------------------------
# "service" — one controller-service churn shard
# ---------------------------------------------------------------------------

def service_spec(
    topology: str,
    seed: int,
    users: int = 2000,
    operations: int = 4000,
    qos_fraction: float = 0.3,
    transport: str = "direct",
) -> RunSpec:
    """Spec for one :func:`repro.service.loadgen.run_churn` shard.

    ``transport`` is part of the content key on purpose: an ``http``
    shard proves socket framing on top of the state machine, so it is
    a different (if digest-equal) experiment than a ``direct`` one.
    """
    return RunSpec.make(
        "service",
        topology,
        seed,
        {
            "users": users,
            "operations": operations,
            "qos_fraction": qos_fraction,
            "transport": transport,
        },
    )


@job_kind("service")
def _run_service(spec: RunSpec) -> Dict[str, Any]:
    from dataclasses import asdict

    from repro.service.loadgen import run_churn

    p = spec.params
    report = run_churn(
        topology=spec.scenario,
        seed=spec.seed,
        users=p.get("users", 2000),
        operations=p.get("operations", 4000),
        qos_fraction=p.get("qos_fraction", 0.3),
        transport=p.get("transport", "direct"),
    )
    # Nested under "service": ChurnReport carries its own `digest`
    # (the transport-independent op-log fingerprint) which must not
    # collide with the farm's record digest.
    return {"service": asdict(report)}


# ---------------------------------------------------------------------------
# "bulkmesh" — one destination block of an all-pairs provisioning mesh
# ---------------------------------------------------------------------------

def bulkmesh_spec(
    topology: str,
    destinations: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> RunSpec:
    """Spec for one destination block of a full provisioning mesh.

    ``topology`` names a cell in
    :data:`repro.bench.provisionbench.PROVISION_TOPOLOGIES` (the
    spawn-safe builder registry — workers re-import it).
    ``destinations`` is the block's destination-edge list (None =
    every edge, i.e. the whole mesh in one shard); it is part of the
    content key, so different shardings never collide in the cache.
    """
    return RunSpec.make(
        "bulkmesh",
        topology,
        seed,
        {
            "destinations": (
                sorted(destinations) if destinations is not None else None
            ),
        },
    )


@job_kind("bulkmesh")
def _run_bulkmesh(spec: RunSpec) -> Dict[str, Any]:
    from repro.bench.provisionbench import build_mesh_topology
    from repro.controller.bulk import BulkProvisioner, mesh_digest

    graph = build_mesh_topology(spec.scenario)
    bp = BulkProvisioner(graph)
    dests = spec.params.get("destinations")
    if dests is None:
        dests = bp.edge_names
    digest, routes = mesh_digest(bp.mesh_row(d) for d in dests)
    return {
        "mesh": {
            "topology": spec.scenario,
            "destinations": len(dests),
            "routes": routes,
            "mesh_digest": digest,
        }
    }


# ---------------------------------------------------------------------------
# "simvector" — one epoch-model engine run (reference/vector/sharded)
# ---------------------------------------------------------------------------

def simvector_spec(
    workload: Mapping[str, Any],
    mode: str = "vector",
    shards: int = 2,
    processes: bool = False,
) -> RunSpec:
    """Spec for one epoch-datapath run.

    ``workload`` is a plain workload spec for
    :func:`repro.sim.vector.build_workload` (the import-time
    ``WORKLOAD_BUILDERS`` registry rebuilds it in any worker).  ``mode``
    selects the engine: ``reference`` (untouched KarSwitch oracle),
    ``vector`` (numpy batches) or ``sharded`` (epoch-barrier handoffs;
    ``shards``/``processes`` apply).  All engines must produce the same
    record digest — which makes this job a farm-schedulable
    equivalence check as well as a workhorse.
    """
    if mode not in ("reference", "vector", "sharded"):
        raise ValueError(f"unknown simvector mode {mode!r}")
    return RunSpec.make(
        "simvector",
        str(workload.get("kind", "synthetic")),
        int(workload.get("seed", 0)),
        {
            "workload": dict(workload),
            "mode": mode,
            "shards": shards,
            "processes": bool(processes),
        },
    )


@job_kind("simvector")
def _run_simvector(spec: RunSpec) -> Dict[str, Any]:
    from repro.sim.vector import (
        build_workload,
        run_epoch_reference,
        run_epoch_vector,
    )

    workload = build_workload(spec.params["workload"])
    mode = spec.params["mode"]
    if mode == "reference":
        outcome = run_epoch_reference(workload)
    elif mode == "vector":
        outcome = run_epoch_vector(workload)
    else:
        from repro.sim.shard import run_epoch_sharded

        outcome = run_epoch_sharded(
            workload,
            shards=int(spec.params.get("shards", 2)),
            processes=bool(spec.params.get("processes", False)),
        )
    # Nested under "sim" so the engine's own digest survives intact
    # next to the job-level digest execute_spec adds.
    return {"sim": outcome.record, "mode": mode}


# ---------------------------------------------------------------------------
# "echo" — self-test job (no simulation)
# ---------------------------------------------------------------------------

def echo_spec(
    value: Any,
    seed: int = 0,
    sleep_s: float = 0.0,
    crash_marker: Optional[str] = None,
) -> RunSpec:
    """Spec for the self-test job.

    ``sleep_s`` busy-waits wall-clock time (for timeout tests);
    ``crash_marker`` names a path — if the file does *not* exist the
    job creates it and kills its own process, so the first attempt
    crashes and the retry succeeds (for worker-crash tests).
    """
    return RunSpec.make(
        "echo",
        "none",
        seed,
        {"value": value, "sleep_s": sleep_s, "crash_marker": crash_marker},
    )


@job_kind("echo")
def _run_echo(spec: RunSpec) -> Dict[str, Any]:
    p = spec.params
    marker = p.get("crash_marker")
    if marker and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as f:
            f.write(spec.content_key())
        os._exit(3)  # simulate a hard worker crash (no cleanup, no trace)
    if p.get("sleep_s"):
        time.sleep(p["sleep_s"])
    return {"value": p.get("value"), "seed": spec.seed}
