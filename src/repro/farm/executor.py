"""The farm executor: cache-aware, multiprocess, crash-tolerant.

``jobs=1`` (the default everywhere) executes inline in the calling
process, in submission order — byte-for-byte the pre-farm sequential
code path, plus caching.  ``jobs>1`` runs cache misses on a
``ProcessPoolExecutor``.

Determinism note: worker processes always use the **spawn** start
method (:data:`WORKER_START_METHOD`), never the platform default.
Linux defaults to ``fork`` (workers inherit the parent's entire
interpreter state) while macOS and Windows spawn fresh interpreters;
pinning ``spawn`` makes every platform run jobs in a pristine
interpreter, so a sweep's digests match across operating systems.
Runs are pure functions of their RunSpec, so this is belt and braces —
but it is cheap, and it also means a job kind must be registered at
module import time to be visible to workers.

Failure handling:

* a job raising an ordinary exception is **deterministic** — retrying
  cannot help, so the farm aborts with :class:`FarmJobError`;
* a worker *crashing* (segfault, ``os._exit``, OOM-kill) breaks the
  pool — the pool is rebuilt and unfinished jobs resubmitted, each
  charged one attempt, bounded by ``max_retries``;
* no completion for ``timeout_s`` seconds counts as a stall (the
  per-job timeout: some submitted job has hogged a worker for that
  long) — the pool is torn down, its processes killed, and unfinished
  jobs retried under the same attempt budget;
* Ctrl-C drains gracefully: every result completed so far is already
  in the cache, so a rerun with ``--resume`` picks up where the
  interrupted sweep stopped.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.farm.cache import CacheStats, ResultCache
from repro.farm.jobs import execute_record, execute_spec
from repro.farm.progress import ProgressReporter
from repro.farm.spec import RunSpec

__all__ = [
    "WORKER_START_METHOD",
    "FarmError",
    "FarmJobError",
    "FarmOptions",
    "FarmStats",
    "Farm",
    "run_specs",
]

#: Worker start method, pinned for cross-platform determinism.
WORKER_START_METHOD = "spawn"

#: Called after every finished job: (spec, result record, from_cache).
ResultCallback = Callable[[RunSpec, Dict[str, Any], bool], None]


class FarmError(RuntimeError):
    """A farm run could not complete."""


class FarmJobError(FarmError):
    """A job failed deterministically (its own exception, not a crash)."""

    def __init__(self, spec: RunSpec, cause: BaseException):
        super().__init__(f"job {spec.label()} failed: {cause!r}")
        self.spec = spec
        self.cause = cause


@dataclass
class FarmOptions:
    """Everything that shapes a farm run (CLI flags map 1:1 onto this).

    ``progress`` is tri-state: None auto-detects a TTY, True forces
    output (even into a pipe), False silences everything.
    """

    jobs: int = 1
    cache_dir: Optional[str] = None
    no_cache: bool = False
    refresh: bool = False
    resume: bool = False
    progress: Optional[bool] = None
    timeout_s: float = 600.0
    max_retries: int = 2
    label: str = "farm"


@dataclass
class FarmStats:
    """Outcome accounting for one :meth:`Farm.run` call."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    retries: int = 0
    elapsed_s: float = 0.0
    cache: Optional[CacheStats] = None

    def summary(self, label: str) -> str:
        parts = [
            f"{label}: {self.total} jobs — {self.executed} executed, "
            f"{self.cached} cached"
        ]
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.cache is not None and self.cache.invalidated:
            parts.append(f"{self.cache.invalidated} invalidated")
        parts.append(f"{self.elapsed_s:.1f}s")
        return ", ".join(parts)


class Farm:
    """Runs RunSpecs through the cache and (optionally) a worker pool."""

    def __init__(self, options: Optional[FarmOptions] = None):
        self.options = options or FarmOptions()
        self.cache: Optional[ResultCache] = None
        if self.options.cache_dir and not self.options.no_cache:
            self.cache = ResultCache(self.options.cache_dir)
        self.stats = FarmStats()

    def run(
        self,
        specs: Sequence[RunSpec],
        label: Optional[str] = None,
        on_result: Optional[ResultCallback] = None,
    ) -> List[Dict[str, Any]]:
        """Execute all specs; result records in spec order."""
        specs = list(specs)
        opts = self.options
        self.stats = FarmStats(
            total=len(specs),
            cache=self.cache.stats if self.cache is not None else None,
        )
        reporter = ProgressReporter(
            total=len(specs),
            label=label or opts.label,
            enabled=opts.progress,
        )
        results: Dict[int, Dict[str, Any]] = {}
        pending: List[int] = []
        started = time.monotonic()
        reporter.start()
        try:
            for i, spec in enumerate(specs):
                record = None
                if self.cache is not None and not opts.refresh:
                    record = self.cache.get(spec)
                if record is not None:
                    results[i] = record
                    self.stats.cached += 1
                    reporter.tick(cached=True)
                    if on_result is not None:
                        on_result(spec, record, True)
                else:
                    pending.append(i)
            if pending:
                if opts.jobs <= 1 or len(pending) == 1:
                    self._run_inline(
                        specs, pending, results, reporter, on_result
                    )
                else:
                    self._run_pool(
                        specs, pending, results, reporter, on_result
                    )
        finally:
            self.stats.elapsed_s = time.monotonic() - started
            reporter.finish(self.stats.summary(label or opts.label))
        return [results[i] for i in range(len(specs))]

    # -- shared completion path --------------------------------------

    def _complete(
        self,
        spec: RunSpec,
        record: Dict[str, Any],
        results: Dict[int, Dict[str, Any]],
        index: int,
        reporter: ProgressReporter,
        on_result: Optional[ResultCallback],
    ) -> None:
        results[index] = record
        if self.cache is not None:
            self.cache.put(spec, record)
        self.stats.executed += 1
        reporter.tick(cached=False)
        if on_result is not None:
            on_result(spec, record, False)

    # -- jobs=1: the sequential path ---------------------------------

    def _run_inline(self, specs, pending, results, reporter, on_result):
        for i in pending:
            try:
                record = execute_spec(specs[i])
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                raise FarmJobError(specs[i], exc) from exc
            self._complete(specs[i], record, results, i, reporter, on_result)

    # -- jobs>1: the worker pool -------------------------------------

    def _run_pool(self, specs, pending, results, reporter, on_result):
        opts = self.options
        ctx = multiprocessing.get_context(WORKER_START_METHOD)
        attempts = {i: 0 for i in pending}
        todo: List[int] = list(pending)
        while todo:
            workers = min(opts.jobs, len(todo))
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
            futures: Dict[Future, int] = {
                pool.submit(execute_record, specs[i].to_record()): i
                for i in todo
            }
            todo = []
            try:
                todo = self._collect(
                    pool, futures, specs, results, reporter, on_result
                )
            except KeyboardInterrupt:
                self._kill_pool(pool)
                raise
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            for i in todo:
                attempts[i] += 1
                self.stats.retries += 1
                if attempts[i] > opts.max_retries:
                    raise FarmError(
                        f"job {specs[i].label()} did not complete after "
                        f"{attempts[i]} attempts (worker crash or "
                        f"timeout > {opts.timeout_s:g}s)"
                    )

    def _collect(
        self, pool, futures, specs, results, reporter, on_result
    ) -> List[int]:
        """Drain one pool generation; returns job indexes to retry."""
        opts = self.options
        not_done = set(futures)
        last_completion = time.monotonic()
        while not_done:
            done, not_done = wait(
                not_done, timeout=1.0, return_when=FIRST_COMPLETED
            )
            if done:
                last_completion = time.monotonic()
            retry: List[int] = []
            for future in done:
                i = futures[future]
                try:
                    record = future.result()
                except BrokenProcessPool:
                    retry.append(i)
                except Exception as exc:
                    raise FarmJobError(specs[i], exc) from exc
                else:
                    self._complete(
                        specs[i], record, results, i, reporter, on_result
                    )
            if retry:
                # A worker died and took the pool with it; everything
                # unfinished must move to the next generation.
                return retry + [futures[f] for f in not_done]
            if (not done and not_done
                    and time.monotonic() - last_completion > opts.timeout_s):
                # Stall: some job has held a worker beyond the per-job
                # budget.  Kill the generation; unfinished jobs retry.
                self._kill_pool(pool)
                return [futures[f] for f in not_done]
        return []

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Hard-stop a pool whose workers may never return."""
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except OSError:  # already gone
                pass


def run_specs(
    specs: Sequence[RunSpec],
    options: Optional[FarmOptions] = None,
    label: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """One-shot convenience: build a Farm, run, return result records."""
    return Farm(options).run(specs, label=label)
