"""Content-addressed on-disk result cache.

Layout (two-level sharding keeps any one directory small)::

    <root>/
      ab/
        ab3f…e2.json     # full content key + ".json"
      sweeps/
        <name>.json      # sweep checkpoints (repro.farm.sweep)

Each record file holds the format version, the content key, the full
RunSpec (so a cache directory is self-describing and debuggable with
``jq``), and the result record.  Reads validate all three; anything
malformed — truncated JSON, a record whose embedded key disagrees with
its filename, a missing result digest — counts as an **invalidation**
and is treated as a miss, never as an error: the farm just re-runs the
job and overwrites the bad record.

Writes go through a temp file + ``os.replace`` so a killed process
never leaves a half-written record behind (the resume path depends on
this).  All writes happen in the farm's parent process, so there is no
cross-process write race to guard against.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from repro.farm.spec import FORMAT_VERSION, RunSpec

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (
            f"{self.hits} hits / {self.lookups} lookups "
            f"({100 * self.hit_ratio:.0f}%), {self.stores} stores, "
            f"{self.invalidated} invalidated"
        )


class ResultCache:
    """JSON result records keyed by :meth:`RunSpec.content_key`."""

    def __init__(self, root: "str | os.PathLike[str]"):
        self.root = Path(root)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> Optional[Dict[str, Any]]:
        """The cached result record for ``spec``, or None on a miss.

        Corrupt or mismatched records are deleted (best-effort),
        counted in ``stats.invalidated`` and reported as a miss.
        """
        key = spec.content_key()
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.stats.misses += 1
            return None
        try:
            record = json.loads(text)
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
            if record.get("format") != FORMAT_VERSION:
                raise ValueError("format version mismatch")
            if record.get("key") != key:
                raise ValueError("embedded key mismatch")
            result = record["result"]
            if not isinstance(result, dict) or "digest" not in result:
                raise ValueError("malformed result")
        except (ValueError, KeyError, TypeError):
            self.stats.invalidated += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return result

    def put(self, spec: RunSpec, result: Dict[str, Any]) -> None:
        """Store ``result`` for ``spec`` (atomic rename)."""
        key = spec.content_key()
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "format": FORMAT_VERSION,
            "key": key,
            "spec": spec.to_record(),
            "result": result,
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(record, sort_keys=True, indent=1), encoding="utf-8"
        )
        os.replace(tmp, path)
        self.stats.stores += 1
