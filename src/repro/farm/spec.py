"""The farm's job model: a run as pure data.

PR 1 made every experiment run a pure function of (scenario, config,
seed); a :class:`RunSpec` is exactly that tuple, written down.  Hashing
its canonical JSON form gives a stable **content key** — the address of
the run's result in the on-disk cache, and the identity the sweep
driver checkpoints against.  Two RunSpecs with the same key are the
same experiment, no matter which process, platform or session builds
them.

Keys are versioned: bump :data:`FORMAT_VERSION` whenever the meaning
of a spec or the shape of a result record changes, and every old cache
entry silently becomes a miss instead of a stale hit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

__all__ = ["FORMAT_VERSION", "RunSpec", "canonical_json"]

#: Version of the spec/record format baked into every content key.
FORMAT_VERSION = 1


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN.

    Floats serialize via ``repr`` (shortest round-trip form), so equal
    floats always produce equal text and the hash is exact, not
    approximate.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


@dataclass(frozen=True)
class RunSpec:
    """One executable experiment run, as pure data.

    Attributes:
        kind: registered job kind (see :mod:`repro.farm.jobs`).
        scenario: scenario factory name (``fifteen_node``, ...).
        seed: the run's RNG seed.
        params_json: canonical-JSON string of all other parameters.
            Stored as a string so the spec stays hashable and the
            canonical form is fixed at construction time.
    """

    kind: str
    scenario: str
    seed: int
    params_json: str = "{}"

    @classmethod
    def make(
        cls,
        kind: str,
        scenario: str,
        seed: int,
        params: Optional[Mapping[str, Any]] = None,
    ) -> "RunSpec":
        """Build a spec, canonicalizing ``params`` (any JSON-able map)."""
        return cls(
            kind=kind,
            scenario=scenario,
            seed=int(seed),
            params_json=canonical_json(dict(params or {})),
        )

    @property
    def params(self) -> Dict[str, Any]:
        """The parameter map (a fresh dict; mutating it is harmless)."""
        return json.loads(self.params_json)

    def content_key(self) -> str:
        """Stable sha256 hex key addressing this run's cached result."""
        payload = {
            "format": FORMAT_VERSION,
            "kind": self.kind,
            "scenario": self.scenario,
            "seed": self.seed,
            "params": json.loads(self.params_json),
        }
        digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
        return digest.hexdigest()

    def label(self) -> str:
        """Short human-readable identity for logs and errors."""
        return (
            f"{self.kind}:{self.scenario}:seed={self.seed}"
            f":{self.content_key()[:12]}"
        )

    def to_record(self) -> Dict[str, Any]:
        """JSON-able form (for cache records and worker hand-off)."""
        return {
            "kind": self.kind,
            "scenario": self.scenario,
            "seed": self.seed,
            "params": json.loads(self.params_json),
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_record` (key-preserving)."""
        return cls.make(
            kind=record["kind"],
            scenario=record["scenario"],
            seed=record["seed"],
            params=record.get("params") or {},
        )
