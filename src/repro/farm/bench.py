"""``repro farm bench`` — measure what the farm buys.

Three phases over the same multi-seed job set (a Fig. 5-shaped grid on
the 15-node scenario with a shortened timeline):

1. **sequential** — ``jobs=1``, cache disabled: the pre-farm baseline;
2. **parallel** — ``jobs=N`` into a cold cache; digests are checked
   against phase 1, so the speedup number is only reported for
   bit-identical results;
3. **warm cache** — same jobs again: every job must be a hit.

The result lands in ``BENCH_farm.json`` to seed the perf trajectory
across PRs.  ``cpu_count`` is recorded because the parallel speedup is
meaningless without it.  On a single-core box the "parallel" phase is
demoted to one worker (spawning a process pool there measures pool
overhead, not the farm) and the result is annotated with
``skipped_single_core: true`` so downstream dashboards never read the
~1× figure as a parallelism regression.  The cache speedup holds
anywhere.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.artifact import finish_artifact
from repro.experiments.common import Timeline
from repro.farm.executor import Farm, FarmOptions
from repro.farm.jobs import failure_spec
from repro.farm.spec import RunSpec
from repro.topology.topologies import PARTIAL

__all__ = ["BENCH_TIMELINE", "bench_specs", "run_bench"]

#: Shortened timeline: same shape as the figures' default, ~6x faster.
BENCH_TIMELINE = Timeline(
    flow_start=0.1,
    fail_at=1.2,
    repair_at=2.8,
    end=3.6,
    baseline_window=(0.6, 1.2),
    failure_window=(1.7, 2.8),
    sample_interval_s=0.2,
)

_TECHNIQUES = ("nip", "avp")
_FAILURE = ("SW7", "SW13")


def bench_specs(seeds: Sequence[int]) -> List[RunSpec]:
    """The benchmark job set: technique x seed on the 15-node net."""
    return [
        failure_spec(
            "fifteen_node", technique, PARTIAL, _FAILURE, seed,
            BENCH_TIMELINE,
        )
        for technique in _TECHNIQUES
        for seed in seeds
    ]


def _timed(farm: Farm, specs: Sequence[RunSpec], label: str):
    start = time.monotonic()
    records = farm.run(specs, label=label)
    return time.monotonic() - start, records


def run_bench(
    jobs: int = 4,
    seeds: Optional[Sequence[int]] = None,
    out: Optional[str] = "BENCH_farm.json",
    cache_dir: Optional[str] = None,
    progress: Optional[bool] = None,
) -> Dict[str, Any]:
    """Run the three phases and (optionally) write ``out``."""
    seeds = list(seeds) if seeds is not None else [1, 2, 3, 4]
    specs = bench_specs(seeds)
    cpu_count = os.cpu_count() or 1
    skipped_single_core = cpu_count == 1 and jobs > 1
    if skipped_single_core:
        # One core: a worker pool can only add overhead, and the
        # resulting "speedup" would be noise.  Run the phase with one
        # worker (the digest and cache checks still run) and say so.
        jobs = 1
    cleanup: Optional[tempfile.TemporaryDirectory] = None
    if cache_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-farm-bench-")
        cache_dir = cleanup.name
    try:
        sequential_s, seq_records = _timed(
            Farm(FarmOptions(jobs=1, progress=progress, label="bench-seq")),
            specs, "bench-seq",
        )
        parallel_farm = Farm(FarmOptions(
            jobs=jobs, cache_dir=cache_dir, progress=progress,
            label="bench-par",
        ))
        parallel_s, par_records = _timed(parallel_farm, specs, "bench-par")
        warm_farm = Farm(FarmOptions(
            jobs=jobs, cache_dir=cache_dir, progress=progress,
            label="bench-warm",
        ))
        warm_s, warm_records = _timed(warm_farm, specs, "bench-warm")
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    seq_digests = [r["digest"] for r in seq_records]
    result: Dict[str, Any] = {
        "bench": "repro.farm",
        "n_jobs": len(specs),
        "workers": jobs,
        "cpu_count": cpu_count,
        "skipped_single_core": skipped_single_core,
        "sequential_s": round(sequential_s, 3),
        "parallel_s": round(parallel_s, 3),
        "parallel_speedup": round(sequential_s / parallel_s, 3)
        if parallel_s > 0 else None,
        "warm_cache_s": round(warm_s, 3),
        "cache_speedup": round(sequential_s / warm_s, 3)
        if warm_s > 0 else None,
        "cache_hit_ratio": warm_farm.stats.cached / len(specs),
        "digests_match_sequential": (
            seq_digests == [r["digest"] for r in par_records]
            and seq_digests == [r["digest"] for r in warm_records]
        ),
    }
    return finish_artifact(result, out)


def render_bench(result: Dict[str, Any]) -> str:
    lines = [
        f"farm bench — {result['n_jobs']} jobs, {result['workers']} "
        f"workers on {result['cpu_count']} CPU(s)",
        f"  sequential (jobs=1, no cache): {result['sequential_s']:.1f}s",
        f"  parallel   (cold cache):       {result['parallel_s']:.1f}s  "
        f"({result['parallel_speedup']}x)"
        + ("  [single core: ran with 1 worker]"
           if result.get("skipped_single_core") else ""),
        f"  warm cache:                    {result['warm_cache_s']:.1f}s  "
        f"({result['cache_speedup']}x, "
        f"{100 * result['cache_hit_ratio']:.0f}% hits)",
        f"  digests identical across all phases: "
        f"{result['digests_match_sequential']}",
    ]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(render_bench(run_bench(progress=True)))
    sys.exit(0)
