"""Checkpointed, resumable sweeps.

The cache already makes any rerun incremental — finished jobs are
content-addressed hits.  The sweep driver adds the bookkeeping a
long-running sweep wants on top of that:

* a **sweep key** (hash over every member spec's content key) that
  identifies *this exact job set*, so a checkpoint from a different
  seed count or grid silently resets instead of lying;
* a checkpoint file under ``<cache>/sweeps/<name>.json`` updated after
  every completed job, recording which content keys are done;
* on ``resume=True``, a one-line note of how much of the sweep is
  already banked before work starts.

Resume therefore needs nothing beyond pointing the next invocation at
the same cache directory: kill a sweep at job 30/54, rerun with
``--resume``, and the 30 finished jobs come back as cache hits while
the checkpoint shows the sweep picking up from where it died.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.farm.executor import Farm, FarmOptions
from repro.farm.jobs import (
    FailureResult,
    chaos_run_from_record,
)
from repro.farm.spec import RunSpec

__all__ = [
    "SweepDriver",
    "run_failure_specs",
    "run_chaos_specs",
    "run_service_specs",
]

#: Library-default options: sequential, cacheless, silent — the exact
#: pre-farm behaviour for callers that never mention the farm.
_INLINE = FarmOptions(progress=False)


def sweep_key(specs: Sequence[RunSpec]) -> str:
    """Identity of a job set: order-sensitive hash of all content keys."""
    digest = hashlib.sha256()
    for spec in specs:
        digest.update(spec.content_key().encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()[:16]


class SweepDriver:
    """Drives one named job set through a Farm with checkpointing."""

    def __init__(
        self,
        name: str,
        specs: Sequence[RunSpec],
        options: Optional[FarmOptions] = None,
    ):
        self.name = name
        self.specs = list(specs)
        self.options = options or _INLINE
        self.farm = Farm(self.options)
        self.key = sweep_key(self.specs)
        self._done: Dict[str, bool] = {}

    @property
    def checkpoint_path(self) -> Optional[Path]:
        if self.farm.cache is None:
            return None
        safe = "".join(
            c if c.isalnum() or c in "-_." else "-" for c in self.name
        )
        return self.farm.cache.root / "sweeps" / f"{safe}.json"

    # -- checkpoint I/O ----------------------------------------------

    def _load_checkpoint(self) -> Dict[str, Any]:
        path = self.checkpoint_path
        if path is None:
            return {}
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(record, dict) or record.get("sweep_key") != self.key:
            return {}  # different job set (or corrupt): start fresh
        done = record.get("done")
        return done if isinstance(done, dict) else {}

    def _write_checkpoint(self, complete: bool) -> None:
        path = self.checkpoint_path
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "name": self.name,
            "sweep_key": self.key,
            "total": len(self.specs),
            "done": self._done,
            "complete": complete,
            "updated": time.time(),
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(record, indent=1), encoding="utf-8")
        os.replace(tmp, path)

    # -- the run -----------------------------------------------------

    def run(self) -> List[Dict[str, Any]]:
        """Run (or resume) the sweep; result records in spec order."""
        opts = self.options
        if opts.resume:
            self._done = self._load_checkpoint()
            if opts.progress is not False:
                banked = sum(
                    1 for s in self.specs
                    if self._done.get(s.content_key())
                )
                sys.stderr.write(
                    f"{self.name}: resuming — {banked}/{len(self.specs)} "
                    "jobs checkpointed from a previous run\n"
                )
        else:
            self._done = {}

        def checkpoint(spec: RunSpec, record: Dict[str, Any],
                       cached: bool) -> None:
            self._done[spec.content_key()] = True
            self._write_checkpoint(complete=False)

        on_result = checkpoint if self.checkpoint_path is not None else None
        records = self.farm.run(self.specs, label=self.name,
                                on_result=on_result)
        if self.checkpoint_path is not None:
            self._write_checkpoint(complete=True)
        return records


def run_failure_specs(
    specs: Sequence[RunSpec],
    options: Optional[FarmOptions] = None,
    label: str = "failure-sweep",
) -> List[FailureResult]:
    """Run failure-experiment specs; typed results in spec order."""
    driver = SweepDriver(label, specs, options)
    return [FailureResult.from_record(r) for r in driver.run()]


def run_chaos_specs(
    specs: Sequence[RunSpec],
    options: Optional[FarmOptions] = None,
    label: str = "chaos-sweep",
) -> List[Any]:
    """Run chaos specs; :class:`ChaosRun` objects in spec order."""
    driver = SweepDriver(label, specs, options)
    return [chaos_run_from_record(r) for r in driver.run()]


def run_service_specs(
    specs: Sequence[RunSpec],
    options: Optional[FarmOptions] = None,
    label: str = "service-churn",
) -> List[Any]:
    """Run service-churn specs; :class:`ChurnReport` objects in order."""
    from repro.service.loadgen import churn_report_from_record

    driver = SweepDriver(label, specs, options)
    return [churn_report_from_record(r) for r in driver.run()]
