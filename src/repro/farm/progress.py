"""Progress reporting for farm runs: done/total, cache hits, ETA.

Two output modes, both on stderr so exports and renders on stdout stay
machine-clean:

* **live** (TTY): a single ``\\r``-rewritten status line;
* **line** (non-TTY but explicitly enabled, e.g. ``--progress`` in
  CI): one plain line per job, greppable from a build log.

The ``enabled`` knob is tri-state: ``None`` auto-detects a TTY,
``True`` forces output even into a pipe, ``False`` silences everything
including the final summary (the library default, so importing code
and tests stay quiet).

ETA extrapolates from *executed* jobs only — cache hits are ~free and
would otherwise make the estimate wildly optimistic.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["ProgressReporter", "format_eta"]


def format_eta(seconds: float) -> str:
    """``73.4 -> '1:13'``; hours appear only when needed."""
    total = max(int(seconds + 0.5), 0)
    h, rest = divmod(total, 3600)
    m, s = divmod(rest, 60)
    if h:
        return f"{h}:{m:02d}:{s:02d}"
    return f"{m}:{s:02d}"


class ProgressReporter:
    """Tracks and renders one farm run's progress."""

    def __init__(
        self,
        total: int,
        label: str = "farm",
        enabled: Optional[bool] = None,
        stream: Optional[TextIO] = None,
        min_interval_s: float = 0.2,
    ):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self.live = is_tty if enabled is None else enabled
        #: Only an explicit ``False`` silences the final summary.
        self.summary_on = enabled is not False
        self._tty = is_tty
        self.min_interval_s = min_interval_s
        self.done = 0
        self.cached = 0
        self._started = time.monotonic()
        self._last_render = 0.0
        self._width = 0

    def start(self) -> None:
        self._started = time.monotonic()

    @property
    def executed(self) -> int:
        return self.done - self.cached

    def eta_s(self) -> Optional[float]:
        """Projected seconds to completion, or None if unknowable."""
        if self.executed <= 0 or self.done >= self.total:
            return None
        per_job = (time.monotonic() - self._started) / self.executed
        return per_job * (self.total - self.done)

    def tick(self, cached: bool = False) -> None:
        """Record one finished job (``cached`` = served from cache)."""
        self.done += 1
        if cached:
            self.cached += 1
        if not self.live:
            return
        now = time.monotonic()
        if (self.done < self.total
                and now - self._last_render < self.min_interval_s):
            return
        self._last_render = now
        line = self._render()
        if self._tty:
            self._width = max(self._width, len(line))
            self.stream.write("\r" + line.ljust(self._width))
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def _render(self) -> str:
        parts = [f"{self.label}: {self.done}/{self.total} jobs"]
        if self.cached:
            parts.append(f"{self.cached} cached")
        eta = self.eta_s()
        if eta is not None:
            parts.append(f"eta {format_eta(eta)}")
        return "  ".join(parts)

    def finish(self, summary: Optional[str] = None) -> None:
        """Clear the live line and (unless silenced) print a summary."""
        if self.live and self._tty and self._width:
            self.stream.write("\r" + " " * self._width + "\r")
            self.stream.flush()
        if summary and self.summary_on:
            self.stream.write(summary + "\n")
            self.stream.flush()
