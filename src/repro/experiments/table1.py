"""Table 1 — maximum route-ID bit length per protection mechanism.

Regenerates, from the 15-node scenario definition and Eq. 9, the exact
rows the paper prints::

    Unprotected         15 bits   4 switches
    Partial protection  28 bits   7 switches
    Full protection     43 bits  10 switches
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.rns.bitlength import bit_length_for_switches
from repro.topology.topologies import FULL, PARTIAL, UNPROTECTED, fifteen_node

__all__ = ["Table1Row", "compute_table1", "render_table1", "PAPER_TABLE1"]


@dataclass(frozen=True)
class Table1Row:
    mechanism: str
    bit_length: int
    switch_count: int


#: The paper's printed values, for comparison in tests and reports.
PAPER_TABLE1 = (
    Table1Row("Unprotected", 15, 4),
    Table1Row("Partial protection", 28, 7),
    Table1Row("Full protection", 43, 10),
)


def compute_table1() -> List[Table1Row]:
    """Compute Table 1 from the scenario definition (not hard-coded)."""
    scn = fifteen_node()
    rows: List[Table1Row] = []
    for label, level in (
        ("Unprotected", UNPROTECTED),
        ("Partial protection", PARTIAL),
        ("Full protection", FULL),
    ):
        ids = scn.route_switch_ids() + [
            scn.graph.switch_id(seg.at) for seg in scn.segments(level)
        ]
        rows.append(
            Table1Row(
                mechanism=label,
                bit_length=bit_length_for_switches(ids),
                switch_count=len(ids),
            )
        )
    return rows


def render_table1() -> str:
    lines = [
        f"{'Protection mechanism':22s} {'Bit length':>10s} "
        f"{'Switches in route ID':>21s}"
    ]
    for row in compute_table1():
        lines.append(
            f"{row.mechanism:22s} {row.bit_length:10d} {row.switch_count:21d}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_table1())
