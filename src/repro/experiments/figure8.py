"""Figure 8 — the redundant-path worst case.

KAR's intrinsic constraint (one residue per switch) means SW73 cannot
address both of its paths to SW113; when SW73–SW107 fails, delivery
relies on a coin flip between SW109 (success) and the protection loop
SW71→SW17→SW41→SW73 (retry).  The paper measures TCP throughput at
54.8 % of nominal.

This module reproduces both the *measured* number (simulation) and the
*model* (the geometric-retry expectation from
:mod:`repro.analysis.walk`), and reports them side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.stats import MeanCI, mean_ci
from repro.analysis.walk import GeometricRetryModel, geometric_retry
from repro.experiments.common import (
    DEFAULT_TIMELINE,
    Timeline,
    resolve_seeds,
)
from repro.farm.executor import FarmOptions
from repro.farm.jobs import failure_spec
from repro.farm.sweep import run_failure_specs
from repro.topology.topologies import PARTIAL

__all__ = ["Figure8Result", "run_figure8", "render_figure8", "PAPER_RATIO"]

#: The paper's measured throughput fraction for this scenario.
PAPER_RATIO = 0.548

FAILURE = ("SW73", "SW107")


@dataclass(frozen=True)
class Figure8Result:
    ratio: MeanCI
    throughput_mbps: MeanCI
    model: GeometricRetryModel

    @property
    def model_expected_hops(self) -> float:
        return self.model.expected_total_hops


def analytical_model() -> GeometricRetryModel:
    """The closed-form retry model for the Fig. 8 topology.

    At SW73 the NIP candidates are {SW109, SW71} (p = 1/2 each).  The
    success branch delivers in 2 hops (SW109, SW113); a failed attempt
    burns 4 hops (SW71, SW17, SW41, back to SW73).
    """
    return geometric_retry(p_success=0.5, direct_hops=2, loop_hops=4)


def run_figure8(
    seeds: Sequence[int] | None = None,
    timeline: Timeline = DEFAULT_TIMELINE,
    farm: FarmOptions | None = None,
) -> Figure8Result:
    seeds = resolve_seeds(seeds)
    specs = [
        failure_spec("redundant_path", "nip", PARTIAL, FAILURE, seed,
                     timeline)
        for seed in seeds
    ]
    results = run_failure_specs(specs, farm, label="fig8")
    return Figure8Result(
        ratio=mean_ci([r.ratio for r in results]),
        throughput_mbps=mean_ci([r.failure_mbps for r in results]),
        model=analytical_model(),
    )


def render_figure8(result: Figure8Result) -> str:
    m = result.model
    return "\n".join([
        "Fig. 8 — redundant-path worst case (SW73-SW107 failure, NIP, "
        "protection loop)",
        f"measured: {100 * result.ratio.mean:.1f}% ±"
        f"{100 * result.ratio.half_width:.1f} of nominal "
        f"(paper: {100 * PAPER_RATIO:.1f}%)",
        f"model: E[attempts] = {m.expected_attempts:.1f}, "
        f"E[extra hops] = {m.expected_extra_hops:.1f}, "
        f"E[total hops after SW73] = {m.expected_total_hops:.1f}",
    ])


if __name__ == "__main__":
    print(render_figure8(run_figure8()))
