"""Export experiment results as CSV/JSON, plus text sparklines.

The figure modules return structured results; these helpers turn them
into files a plotting pipeline (or spreadsheet) can consume — the
repository equivalent of the authors' gnuplot data files — and render
quick terminal sparklines so a figure's shape is visible without
leaving the shell.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, Iterable, List, Sequence

__all__ = [
    "figure4_rows",
    "figure5_rows",
    "figure7_rows",
    "chaos_rows",
    "rows_to_csv",
    "rows_to_json",
    "write_rows",
    "sparkline",
]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 0) -> str:
    """Render a numeric series as a unicode sparkline.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▅█'
    """
    vals = list(values)
    if not vals:
        return ""
    if width and len(vals) > width:
        # Downsample by bucketing (mean per bucket).
        bucket = len(vals) / width
        vals = [
            sum(vals[int(i * bucket):max(int((i + 1) * bucket),
                                         int(i * bucket) + 1)])
            / max(int((i + 1) * bucket) - int(i * bucket), 1)
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    if hi - lo < 1e-12:
        return _SPARK_CHARS[0] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


# ---------------------------------------------------------------------------
# row extractors (figure result objects -> flat dict rows)
# ---------------------------------------------------------------------------

def figure4_rows(series: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Fig. 4 time series -> one row per (technique, time)."""
    rows: List[Dict[str, Any]] = []
    for technique, s in series.items():
        for t, mbps in s.intervals:
            rows.append(
                {"technique": technique, "time_s": t, "mbps": mbps}
            )
    return rows


def figure5_rows(cells: Iterable[Any]) -> List[Dict[str, Any]]:
    """Fig. 5 grid cells -> one row per cell with CI columns."""
    rows = []
    for cell in cells:
        rows.append(
            {
                "technique": cell.technique,
                "protection": cell.protection,
                "failure": f"{cell.failure[0]}-{cell.failure[1]}",
                "mbps_mean": cell.throughput_mbps.mean,
                "mbps_ci95": cell.throughput_mbps.half_width,
                "ratio_mean": cell.ratio.mean,
                "ratio_ci95": cell.ratio.half_width,
                "n": cell.ratio.n,
            }
        )
    return rows


def figure7_rows(points: Iterable[Any]) -> List[Dict[str, Any]]:
    """Fig. 7 points -> one row per failure case."""
    rows = []
    for p in points:
        rows.append(
            {
                "failure": p.label,
                "mbps_mean": p.throughput_mbps.mean,
                "mbps_ci95": p.throughput_mbps.half_width,
                "ratio_mean": p.ratio.mean,
                "ratio_ci95": p.ratio.half_width,
            }
        )
    return rows


def chaos_rows(runs: Iterable[Any]) -> List[Dict[str, Any]]:
    """Chaos runs -> one row per (technique, failure level)."""
    rows = []
    for r in runs:
        rows.append(
            {
                "scenario": r.scenario,
                "technique": r.technique,
                "mode": r.mode,
                "seed": r.seed,
                "mtbf_s": r.mtbf_s,
                "sent": r.sent,
                "delivered": r.delivered,
                "delivery_ratio": r.delivery_ratio,
                "dropped": r.dropped,
                "chaos_events": r.chaos_events,
                "digest": r.digest,
                "peak_links_down": r.peak_links_down,
                "violations": r.violation_count,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# serializers
# ---------------------------------------------------------------------------

def rows_to_csv(rows: Sequence[Dict[str, Any]]) -> str:
    """Rows -> CSV text (header from the first row's keys)."""
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def rows_to_json(rows: Sequence[Dict[str, Any]]) -> str:
    """Rows -> pretty JSON array."""

    def default(obj: Any) -> Any:
        if is_dataclass(obj) and not isinstance(obj, type):
            return asdict(obj)
        raise TypeError(f"not JSON-serializable: {type(obj).__name__}")

    return json.dumps(list(rows), indent=2, default=default)


def write_rows(rows: Sequence[Dict[str, Any]], path: str) -> None:
    """Write rows as CSV or JSON depending on the file extension."""
    if path.endswith(".json"):
        text = rows_to_json(rows)
    elif path.endswith(".csv"):
        text = rows_to_csv(rows)
    else:
        raise ValueError(f"unsupported export extension: {path!r}")
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
