"""Figure 4 — TCP throughput time series across a failure, by technique.

The paper fails SW7–SW13 in the 15-node network with driven-deflection
protection installed and plots TCP throughput over time for NIP, AVP,
HP and no deflection.  Headline: traffic never stops under deflection;
NIP keeps the highest throughput (≈ 75 % of nominal); no-deflection
drops to zero for the failure's duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.experiments.common import DEFAULT_TIMELINE, Timeline
from repro.farm.executor import FarmOptions
from repro.farm.jobs import failure_spec
from repro.farm.sweep import run_failure_specs
from repro.topology.topologies import PARTIAL

__all__ = ["Figure4Series", "run_figure4", "render_figure4", "TECHNIQUES"]

#: Plotted techniques, paper order.
TECHNIQUES = ("nip", "avp", "hp", "none")

#: The failed link of Fig. 4.
FAILURE = ("SW7", "SW13")


@dataclass(frozen=True)
class Figure4Series:
    """One curve of Fig. 4."""

    technique: str
    intervals: Tuple[Tuple[float, float], ...]  # (time, Mbit/s)
    baseline_mbps: float
    failure_mbps: float

    @property
    def failure_ratio(self) -> float:
        return self.failure_mbps / self.baseline_mbps if self.baseline_mbps else 0.0


def run_figure4(
    seed: int = 1,
    timeline: Timeline = DEFAULT_TIMELINE,
    farm: Optional[FarmOptions] = None,
) -> Dict[str, Figure4Series]:
    """Run the four curves; returns technique -> series."""
    specs = [
        failure_spec("fifteen_node", technique, PARTIAL, FAILURE, seed,
                     timeline)
        for technique in TECHNIQUES
    ]
    results = run_failure_specs(specs, farm, label="fig4")
    out: Dict[str, Figure4Series] = {}
    for technique, result in zip(TECHNIQUES, results):
        out[technique] = Figure4Series(
            technique=technique,
            intervals=result.intervals,
            baseline_mbps=result.baseline_mbps,
            failure_mbps=result.failure_mbps,
        )
    return out


def render_figure4(series: Dict[str, Figure4Series]) -> str:
    """Text rendering: per-interval table, sparklines, summary rows."""
    from repro.experiments.export import sparkline

    techniques = [t for t in TECHNIQUES if t in series]
    times = [t for t, _ in series[techniques[0]].intervals]
    lines = ["Fig. 4 — TCP throughput (Mbit/s) vs time; link SW7-SW13 "
             f"fails at {DEFAULT_TIMELINE.fail_at:g}s, repairs at "
             f"{DEFAULT_TIMELINE.repair_at:g}s"]
    header = "  time " + "".join(f"{t:>8s}" for t in techniques)
    lines.append(header)
    for i, t in enumerate(times):
        row = f"{t:6.1f} " + "".join(
            f"{series[name].intervals[i][1]:8.2f}" for name in techniques
        )
        lines.append(row)
    lines.append("")
    for name in techniques:
        s = series[name]
        shape = sparkline([mbps for _, mbps in s.intervals], width=32)
        lines.append(
            f"{name:5s} {shape}  baseline {s.baseline_mbps:.2f}, during "
            f"failure {s.failure_mbps:.2f} "
            f"({100 * s.failure_ratio:.1f}% of baseline)"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_figure4(run_figure4()))
