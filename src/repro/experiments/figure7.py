"""Figure 7 — RNP backbone: throughput by failure location.

Boa Vista (SW7) → São Paulo (SW73) over the 28-PoP RNP reconstruction,
NIP deflection, partial protection {SW17→SW71, SW61→SW67, SW67→SW71,
SW71→SW73}.  Paper headlines:

* no failure: nominal throughput;
* SW7–SW13 failure: <5 % reduction (single deterministic alternative
  SW11→SW17, already covered — one extra hop, no disordering);
* SW13–SW41 failure: largest reduction (≈40 %) and largest variance
  (5-way deflection split, 3 of 5 candidates wander);
* SW41–SW73 failure: ≈30 % reduction (2-way split, both covered, but
  asymmetric branch lengths disorder packets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.stats import MeanCI, mean_ci
from repro.experiments.common import (
    DEFAULT_TIMELINE,
    Timeline,
    resolve_seeds,
)
from repro.farm.executor import FarmOptions
from repro.farm.jobs import failure_spec
from repro.farm.sweep import run_failure_specs
from repro.topology.topologies import PARTIAL

__all__ = ["Figure7Point", "run_figure7", "render_figure7", "CASES"]

#: Failure cases in paper order (None = the no-failure reference bar).
CASES: Tuple[Optional[Tuple[str, str]], ...] = (
    None, ("SW7", "SW13"), ("SW13", "SW41"), ("SW41", "SW73"),
)


@dataclass(frozen=True)
class Figure7Point:
    failure: Optional[Tuple[str, str]]
    throughput_mbps: MeanCI
    ratio: MeanCI

    @property
    def label(self) -> str:
        if self.failure is None:
            return "no failure"
        return f"{self.failure[0]}-{self.failure[1]}"


def run_figure7(
    seeds: Sequence[int] | None = None,
    timeline: Timeline = DEFAULT_TIMELINE,
    farm: FarmOptions | None = None,
) -> List[Figure7Point]:
    seeds = resolve_seeds(seeds)
    specs = [
        failure_spec("rnp28", "nip", PARTIAL, failure, seed, timeline)
        for failure in CASES
        for seed in seeds
    ]
    results = run_failure_specs(specs, farm, label="fig7")
    points: List[Figure7Point] = []
    for i, failure in enumerate(CASES):
        chunk = results[i * len(seeds):(i + 1) * len(seeds)]
        points.append(
            Figure7Point(
                failure=failure,
                throughput_mbps=mean_ci([r.failure_mbps for r in chunk]),
                ratio=mean_ci([r.ratio for r in chunk]),
            )
        )
    return points


def render_figure7(points: List[Figure7Point]) -> str:
    lines = [
        "Fig. 7 — RNP (Boa Vista -> São Paulo), NIP, partial protection",
        f"{'failure':12s} {'Mbit/s':>18s} {'% of baseline':>20s}",
    ]
    for p in points:
        lines.append(
            f"{p.label:12s} {p.throughput_mbps.mean:9.2f} "
            f"±{p.throughput_mbps.half_width:5.2f} "
            f"{100 * p.ratio.mean:12.1f}% ±{100 * p.ratio.half_width:5.1f}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_figure7(run_figure7()))
