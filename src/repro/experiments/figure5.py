"""Figure 5 — throughput vs (failure location × protection × technique).

The paper's trade-off study on the 15-node network: for failures at
SW10–SW7, SW7–SW13 and SW13–SW29, measure mean TCP throughput with 95 %
confidence intervals for AVP and NIP under unprotected, partial and
full protection.  Headlines:

* full protection achieves the highest throughput regardless of
  technique or failure location;
* partial ≈ full for SW7–SW13 and SW13–SW29 (the partial tree already
  encloses the alternatives);
* partial is far below full for SW10–SW7: only 1 of 3 deflection
  candidates is covered — "there is still 2/3 of packets that will be
  sent to switches SW17 or SW37".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.stats import MeanCI, mean_ci
from repro.experiments.common import (
    DEFAULT_TIMELINE,
    Timeline,
    resolve_seeds,
)
from repro.farm.executor import FarmOptions
from repro.farm.jobs import failure_spec
from repro.farm.sweep import run_failure_specs
from repro.topology.topologies import FULL, PARTIAL, UNPROTECTED

__all__ = ["Figure5Cell", "run_figure5", "render_figure5",
           "FAILURES", "PROTECTIONS", "TECHNIQUES"]

FAILURES: Tuple[Tuple[str, str], ...] = (
    ("SW10", "SW7"), ("SW7", "SW13"), ("SW13", "SW29"),
)
PROTECTIONS = (UNPROTECTED, PARTIAL, FULL)
TECHNIQUES = ("avp", "nip")


@dataclass(frozen=True)
class Figure5Cell:
    """One bar of Fig. 5: mean throughput ratio with a 95 % CI."""

    technique: str
    protection: str
    failure: Tuple[str, str]
    throughput_mbps: MeanCI
    ratio: MeanCI  # failure-window / baseline


def run_figure5(
    seeds: Sequence[int] | None = None,
    timeline: Timeline = DEFAULT_TIMELINE,
    farm: FarmOptions | None = None,
) -> List[Figure5Cell]:
    """Run the full grid; one cell per (technique, protection, failure)."""
    seeds = resolve_seeds(seeds)
    grid = [
        (technique, protection, failure)
        for technique in TECHNIQUES
        for protection in PROTECTIONS
        for failure in FAILURES
    ]
    specs = [
        failure_spec("fifteen_node", technique, protection, failure, seed,
                     timeline)
        for technique, protection, failure in grid
        for seed in seeds
    ]
    results = run_failure_specs(specs, farm, label="fig5")
    cells: List[Figure5Cell] = []
    for i, (technique, protection, failure) in enumerate(grid):
        chunk = results[i * len(seeds):(i + 1) * len(seeds)]
        cells.append(
            Figure5Cell(
                technique=technique,
                protection=protection,
                failure=failure,
                throughput_mbps=mean_ci([r.failure_mbps for r in chunk]),
                ratio=mean_ci([r.ratio for r in chunk]),
            )
        )
    return cells


def render_figure5(cells: List[Figure5Cell]) -> str:
    lines = [
        "Fig. 5 — mean TCP throughput during failure (ratio of no-failure "
        "baseline, 95% CI)",
        f"{'technique':9s} {'protection':12s} "
        + "".join(f"{a}-{b}".rjust(18) for a, b in FAILURES),
    ]
    index: Dict[Tuple[str, str], Dict[Tuple[str, str], Figure5Cell]] = {}
    for c in cells:
        index.setdefault((c.technique, c.protection), {})[c.failure] = c
    for technique in TECHNIQUES:
        for protection in PROTECTIONS:
            row = index.get((technique, protection), {})
            cols = []
            for failure in FAILURES:
                cell = row.get(failure)
                if cell is None:
                    cols.append(" " * 18)
                else:
                    cols.append(
                        f"{100 * cell.ratio.mean:6.1f}%"
                        f" ±{100 * cell.ratio.half_width:5.1f}".rjust(18)
                    )
            lines.append(f"{technique:9s} {protection:12s} " + "".join(cols))
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_figure5(run_figure5()))
