"""Figure 5 — throughput vs (failure location × protection × technique).

The paper's trade-off study on the 15-node network: for failures at
SW10–SW7, SW7–SW13 and SW13–SW29, measure mean TCP throughput with 95 %
confidence intervals for AVP and NIP under unprotected, partial and
full protection.  Headlines:

* full protection achieves the highest throughput regardless of
  technique or failure location;
* partial ≈ full for SW7–SW13 and SW13–SW29 (the partial tree already
  encloses the alternatives);
* partial is far below full for SW10–SW7: only 1 of 3 deflection
  candidates is covered — "there is still 2/3 of packets that will be
  sent to switches SW17 or SW37".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.stats import MeanCI, mean_ci
from repro.experiments.common import (
    DEFAULT_TIMELINE,
    Timeline,
    run_failure_experiment,
    scenario_factory,
    seeds_from_env,
)
from repro.topology.topologies import FULL, PARTIAL, UNPROTECTED

__all__ = ["Figure5Cell", "run_figure5", "render_figure5",
           "FAILURES", "PROTECTIONS", "TECHNIQUES"]

FAILURES: Tuple[Tuple[str, str], ...] = (
    ("SW10", "SW7"), ("SW7", "SW13"), ("SW13", "SW29"),
)
PROTECTIONS = (UNPROTECTED, PARTIAL, FULL)
TECHNIQUES = ("avp", "nip")


@dataclass(frozen=True)
class Figure5Cell:
    """One bar of Fig. 5: mean throughput ratio with a 95 % CI."""

    technique: str
    protection: str
    failure: Tuple[str, str]
    throughput_mbps: MeanCI
    ratio: MeanCI  # failure-window / baseline


def run_figure5(
    seeds: Sequence[int] | None = None,
    timeline: Timeline = DEFAULT_TIMELINE,
) -> List[Figure5Cell]:
    """Run the full grid; one cell per (technique, protection, failure)."""
    seeds = list(seeds) if seeds is not None else seeds_from_env()
    build = scenario_factory("fifteen_node")
    cells: List[Figure5Cell] = []
    for technique in TECHNIQUES:
        for protection in PROTECTIONS:
            for failure in FAILURES:
                outcomes = [
                    run_failure_experiment(
                        build(), technique, protection, failure, seed, timeline
                    )
                    for seed in seeds
                ]
                cells.append(
                    Figure5Cell(
                        technique=technique,
                        protection=protection,
                        failure=failure,
                        throughput_mbps=mean_ci(
                            [o.failure_mbps for o in outcomes]
                        ),
                        ratio=mean_ci([o.ratio for o in outcomes]),
                    )
                )
    return cells


def render_figure5(cells: List[Figure5Cell]) -> str:
    lines = [
        "Fig. 5 — mean TCP throughput during failure (ratio of no-failure "
        "baseline, 95% CI)",
        f"{'technique':9s} {'protection':12s} "
        + "".join(f"{a}-{b}".rjust(18) for a, b in FAILURES),
    ]
    index: Dict[Tuple[str, str], Dict[Tuple[str, str], Figure5Cell]] = {}
    for c in cells:
        index.setdefault((c.technique, c.protection), {})[c.failure] = c
    for technique in TECHNIQUES:
        for protection in PROTECTIONS:
            row = index.get((technique, protection), {})
            cols = []
            for failure in FAILURES:
                cell = row.get(failure)
                if cell is None:
                    cols.append(" " * 18)
                else:
                    cols.append(
                        f"{100 * cell.ratio.mean:6.1f}%"
                        f" ±{100 * cell.ratio.half_width:5.1f}".rjust(18)
                    )
            lines.append(f"{technique:9s} {protection:12s} " + "".join(cols))
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_figure5(run_figure5()))
