"""The resilience frontier: failures tolerated vs. stretch vs. header bits.

The paper's experiments measure KAR against scripted failures on its
own topologies; the frontier sweep measures *where resilience runs
out*, for KAR's deflection techniques and for the stateful failover
baselines, on three topology families:

* ``clique`` — a 6-switch full mesh (the best case for any failover:
  maximal edge connectivity);
* ``torus`` — a 3×3 wraparound grid (4-regular, the classic
  arborescence testbed);
* ``abilene`` — the Abilene/Internet2 backbone from the topology zoo
  (sparse and irregular, the realistic case).

Each **cell** runs one (topology, scheme, failure mode, failure count,
seed) combination with a *strict* invariant checker wired through the
whole packet path — a scheme that "survives" by ping-pong looping or
forwarding into a dead port aborts the cell instead of padding its
numbers.  Schemes:

* ``hp`` / ``avp`` / ``nip`` — KAR deflection (stateless core, header
  bits = the route-ID modulus);
* ``ff`` — OpenFlow-fast-failover backup ports
  (:mod:`repro.baselines.fastfailover`; per-switch state);
* ``arb`` — circular hopping over edge-disjoint arborescences
  (:mod:`repro.baselines.arborescence`; per-switch state, zero header
  bits).

Failure modes: ``static`` downs a seeded set of core links before
traffic (the classic k-failure model, chosen to keep the host pair
connected so "tolerated" is well defined); ``dynamic`` arms the
oblivious fail+recover adversary (:mod:`repro.sim.adversary`) with the
concurrent-down budget set to the cell's failure count.

Every cell is seeded and carries a digest (failed links or the chaos
event log), so a frontier report can be diffed bit-for-bit between two
invocations — the CI smoke job does exactly that.
"""

from __future__ import annotations

import copy
import hashlib
import random
from collections import Counter
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.baselines import BASELINE_SCHEMES, plan_baseline_strategies
from repro.baselines.arborescence import ArborescenceFailoverStrategy
from repro.baselines.fastfailover import FastFailoverStrategy
from repro.controller.idassign import reassign_switch_ids
from repro.rns.backends import BACKEND_NAMES, backend_by_name
from repro.rns.crt import CrtError
from repro.rns.encoder import Hop
from repro.runner import KarSimulation
from repro.sim.invariants import InvariantChecker
from repro.topology import (
    NodeKind,
    attach_host_pair,
    clique,
    shortest_path,
    torus,
)
from repro.topology.paths import is_reachable_without
from repro.topology.topologies import Scenario
from repro.topology.zoo import abilene

if TYPE_CHECKING:  # lazy at runtime: the farm imports this module back
    from repro.farm.executor import FarmOptions
    from repro.farm.spec import RunSpec

__all__ = [
    "FrontierCell",
    "FRONTIER_TOPOLOGIES",
    "FRONTIER_SCHEMES",
    "run_frontier_once",
    "run_frontier_cells",
    "run_frontier",
    "max_tolerated",
    "render_frontier",
    "frontier_rows",
]

#: Schemes the frontier compares: three KAR deflection techniques and
#: the two stateful baselines.
FRONTIER_SCHEMES: Tuple[str, ...] = ("hp", "avp", "nip") + BASELINE_SCHEMES

#: Simulated seconds of probe traffic per cell.
TRAFFIC_S = 1.5

#: Extra simulated seconds for in-flight packets to resolve before the
#: cell is scored (TTL walks + re-encode round trips).
DRAIN_S = 1.5


def _clique_scenario() -> Scenario:
    g = clique(6)
    attach_host_pair(g, "SW0", "SW5")
    return Scenario(
        name="clique6",
        graph=g,
        primary_route=tuple(shortest_path(g, "SW0", "SW5")),
        src_host="H-SRC",
        dst_host="H-DST",
        protection={"none": ()},
    )


def _torus_scenario() -> Scenario:
    g = torus(3, 3)
    attach_host_pair(g, "SW0-0", "SW1-1")
    return Scenario(
        name="torus3x3",
        graph=g,
        primary_route=tuple(shortest_path(g, "SW0-0", "SW1-1")),
        src_host="H-SRC",
        dst_host="H-DST",
        protection={"none": ()},
    )


def _abilene_scenario() -> Scenario:
    g = abilene()
    attach_host_pair(g, "Seattle", "NewYork")
    return Scenario(
        name="abilene",
        graph=g,
        primary_route=tuple(shortest_path(g, "Seattle", "NewYork")),
        src_host="H-SRC",
        dst_host="H-DST",
        protection={"none": ()},
    )


#: Topology name -> scenario builder (coast-to-coast host pair each).
FRONTIER_TOPOLOGIES: Dict[str, Callable[[], Scenario]] = {
    "clique": _clique_scenario,
    "torus": _torus_scenario,
    "abilene": _abilene_scenario,
}


@dataclass(frozen=True)
class FrontierCell:
    """One scored frontier cell."""

    topology: str
    scheme: str
    mode: str            # "static" | "dynamic"
    failures: int        # static: links downed; dynamic: down budget
    seed: int
    schedule_seed: int
    sent: int
    delivered: int
    drop_reasons: Tuple[Tuple[str, int], ...]
    violations: Tuple[Tuple[str, int], ...]
    header_bits: int
    state_entries: int
    mean_stretch: float
    max_stretch: float
    chaos_events: int
    digest: str
    failed_links: Tuple[str, ...]
    #: (backend name, primary-route header bits) per encoding backend —
    #: what the *same* route costs under each encoding (Eq. 9 for the
    #: integer CRT, polynomial degree for XSR on the re-IDed dual pool).
    #: Empty on records predating the encoding-backend study.
    header_bits_by_backend: Tuple[Tuple[str, int], ...] = ()

    @property
    def delivery_ratio(self) -> float:
        if self.sent == 0:
            return 0.0
        return self.delivered / self.sent

    @property
    def violation_count(self) -> int:
        return sum(count for _, count in self.violations)

    @property
    def tolerated(self) -> bool:
        """Full delivery with a clean invariant record."""
        return (
            self.sent > 0
            and self.delivered == self.sent
            and self.violation_count == 0
        )


def _pick_static_failures(
    scenario: Scenario, count: int, seed: int
) -> List[Tuple[str, str]]:
    """A seeded k-link failure set that keeps the host pair connected.

    The draw is independent of the scheme, so every scheme at a given
    (topology, seed, k) faces the identical failure set — a paired
    comparison.  Connectivity is required because "tolerated" is only
    meaningful when delivery is physically possible; a draw that cuts
    the pair is rejected and redrawn (bounded retries — the frontier
    topologies are well connected, so exhaustion means *count* exceeds
    what the topology can lose, and the last draw is returned so the
    cell honestly scores as not tolerated).
    """
    graph = scenario.graph
    links = sorted(
        tuple(sorted((link.a, link.b)))
        for link in graph.links()
        if graph.node(link.a).kind == NodeKind.CORE
        and graph.node(link.b).kind == NodeKind.CORE
    )
    rng = random.Random(f"frontier-{scenario.name}-s{seed}-k{count}")
    count = min(count, len(links))
    sample: List[Tuple[str, str]] = []
    for _ in range(64):
        sample = sorted(rng.sample(links, count))
        if is_reachable_without(
            graph, scenario.src_host, scenario.dst_host, sample
        ):
            return sample
    return sample


def _failures_digest(failed: Sequence[Tuple[str, str]]) -> str:
    h = hashlib.sha256()
    for a, b in failed:
        h.update(f"{a}|{b}\n".encode("utf-8"))
    return h.hexdigest()[:16]


def _backend_header_bits(
    graph, route_nodes: Sequence[str], scheme: str
) -> Tuple[Tuple[str, int], ...]:
    """The primary route's header cost under each encoding backend.

    ``arb`` recovers its tree from the in-port and carries no route ID,
    so every backend prices it at zero.  A backend whose ID-feasibility
    rules reject the graph's integer pool (XSR needs GF(2)-pairwise
    coprimality) prices the route on a re-IDed copy — exactly what the
    runner does when simulating under that backend.
    """
    if scheme == "arb":
        return tuple((name, 0) for name in BACKEND_NAMES)
    ids_sorted = sorted(graph.switch_ids().values())
    out = []
    for name in BACKEND_NAMES:
        backend = backend_by_name(name)
        g = graph
        try:
            backend.validate_switch_ids(ids_sorted)
        except (ValueError, CrtError):
            g = copy.deepcopy(graph)
            reassign_switch_ids(g, strategy=backend.id_strategy)
        route = backend.encode(
            [Hop(g.switch_id(n), 0) for n in route_nodes]
        )
        out.append((name, route.bit_length))
    return tuple(out)


def _scheme_costs(
    scheme: str,
    strategies: Optional[Mapping[str, object]],
    ks: KarSimulation,
) -> Tuple[int, int]:
    """(header_bits, state_entries) — the two resilience price tags.

    KAR pays in header bits (the route-ID modulus) and keeps the core
    stateless; ``ff`` pays both (it forwards on the KAR-computed port
    *and* stores backup/default entries); ``arb`` pays purely in state
    (the current tree is recovered from the in-port, so zero header
    bits).
    """
    modulus_bits = (
        ks.primary_forward.modulus.bit_length()
        if ks.primary_forward is not None
        else 0
    )
    if scheme == "arb":
        assert strategies is not None
        state = 0
        for strategy in strategies.values():
            assert isinstance(strategy, ArborescenceFailoverStrategy)
            state += sum(1 for p in strategy.tree_ports if p is not None)
            state += len(strategy.in_port_tree)
        return 0, state
    if scheme == "ff":
        assert strategies is not None
        state = 0
        for strategy in strategies.values():
            assert isinstance(strategy, FastFailoverStrategy)
            state += len(strategy.backups)
            state += 1 if strategy.default_port is not None else 0
        return modulus_bits, state
    return modulus_bits, 0


def run_frontier_once(
    topology: str = "torus",
    scheme: str = "nip",
    mode: str = "static",
    failures: int = 1,
    seed: int = 42,
    schedule_seed: int = 0,
    adversary: Optional[Dict] = None,
    rate_pps: float = 200.0,
    traffic_s: float = TRAFFIC_S,
    ttl: int = 96,
) -> FrontierCell:
    """One frontier cell, strict invariants throughout.

    ``static`` downs :func:`_pick_static_failures` links before
    traffic; ``dynamic`` arms the oblivious adversary
    (:class:`~repro.sim.adversary.DynamicLinkChaos`) with
    ``max_down=failures`` and the given *schedule_seed* (extra
    injector kwargs via *adversary*).  ``failures=0`` is the healthy
    baseline either way.
    """
    try:
        scenario = FRONTIER_TOPOLOGIES[topology]()
    except KeyError:
        raise ValueError(
            f"unknown frontier topology {topology!r}; choose from "
            f"{sorted(FRONTIER_TOPOLOGIES)}"
        ) from None
    if mode not in ("static", "dynamic"):
        raise ValueError(f"unknown failure mode {mode!r}")
    if failures < 0:
        raise ValueError(f"failure count must be >= 0, got {failures}")
    graph = scenario.graph
    strategies = (
        plan_baseline_strategies(
            scheme, graph, scenario.primary_route,
            graph.edge_of_host(scenario.dst_host),
        )
        if scheme in BASELINE_SCHEMES
        else None
    )
    checker = InvariantChecker(
        strict=True, forbid_return_to_sender=(scheme == "nip")
    )
    ks = KarSimulation(
        scenario,
        deflection=("none" if strategies is not None else scheme),
        protection="none",
        seed=seed,
        ttl=ttl,
        trace_paths=True,
        invariants=checker,
        strategy_factory=(
            strategies.__getitem__ if strategies is not None else None
        ),
    )

    failed: List[Tuple[str, str]] = []
    injector = None
    if mode == "static" and failures > 0:
        failed = _pick_static_failures(scenario, failures, seed)
        for a, b in failed:
            ks.network.link_between(a, b).set_up(False)
        digest = _failures_digest(failed)
    elif mode == "dynamic" and failures > 0:
        injector = ks.add_chaos(
            "dynamic", until=traffic_s, max_down=failures,
            schedule_seed=schedule_seed, **(adversary or {}),
        )
        digest = ""  # filled from the event log after the run
    else:
        digest = "-"

    src, sink = ks.add_udp_probe(rate_pps=rate_pps, duration_s=traffic_s)
    src.start(at=0.05)
    ks.run(until=traffic_s + DRAIN_S)
    if injector is not None:
        digest = injector.digest()

    tracer = ks.tracer
    base_hops = max(1, len(scenario.primary_route))
    stretches = [
        len(tracer._paths.get(uid, ())) / base_hops
        for uid in tracer.deliveries
    ]
    drop_reasons = Counter()
    for reason, cnt in tracer.drop_reasons.items():
        drop_reasons[reason] += cnt
    header_bits, state_entries = _scheme_costs(scheme, strategies, ks)
    return FrontierCell(
        topology=topology,
        scheme=scheme,
        mode=mode,
        failures=failures,
        seed=seed,
        schedule_seed=schedule_seed,
        sent=src.sent,
        delivered=sink.received,
        drop_reasons=tuple(sorted(drop_reasons.items())),
        violations=tuple(sorted(checker.violation_counts.items())),
        header_bits=header_bits,
        state_entries=state_entries,
        mean_stretch=(
            sum(stretches) / len(stretches) if stretches else 0.0
        ),
        max_stretch=max(stretches) if stretches else 0.0,
        chaos_events=len(injector.events) if injector is not None else 0,
        digest=digest,
        failed_links=tuple(f"{a}-{b}" for a, b in failed),
        header_bits_by_backend=_backend_header_bits(
            scenario.graph, scenario.primary_route, scheme
        ),
    )


def run_frontier_cells(
    specs: "Sequence[RunSpec]",
    options: "FarmOptions | None" = None,
    label: str = "frontier",
) -> List[FrontierCell]:
    """Run frontier specs on the farm; cells in spec order."""
    from repro.farm.jobs import frontier_cell_from_record
    from repro.farm.sweep import SweepDriver

    driver = SweepDriver(label, specs, options)
    return [frontier_cell_from_record(r) for r in driver.run()]


def run_frontier(
    topologies: Sequence[str] = ("clique", "torus", "abilene"),
    schemes: Sequence[str] = FRONTIER_SCHEMES,
    max_failures: int = 3,
    seeds: Sequence[int] = (42,),
    dynamic: bool = False,
    adversary: Optional[Dict] = None,
    farm: "FarmOptions | None" = None,
) -> List[FrontierCell]:
    """The full frontier grid, farm-orchestrated.

    Static cells cover failure counts 0..*max_failures* for every
    (topology, scheme, seed); ``dynamic=True`` adds one dynamic-
    adversary cell per static level (same budget, schedule seed 0).
    """
    from repro.farm.jobs import frontier_spec

    unknown = sorted(set(topologies) - set(FRONTIER_TOPOLOGIES))
    if unknown:
        raise ValueError(f"unknown frontier topologies: {unknown}")
    specs = []
    for topology in topologies:
        for scheme in schemes:
            for seed in seeds:
                for failures in range(max_failures + 1):
                    specs.append(frontier_spec(
                        topology, scheme, "static", failures, seed,
                    ))
                if dynamic:
                    for failures in range(1, max_failures + 1):
                        specs.append(frontier_spec(
                            topology, scheme, "dynamic", failures, seed,
                            adversary=dict(adversary or {}),
                        ))
    return run_frontier_cells(specs, farm, label="frontier")


def max_tolerated(
    cells: Sequence[FrontierCell], topology: str, scheme: str,
    mode: str = "static",
) -> int:
    """Largest k with full delivery at every level up to and including k.

    The frontier definition: a scheme tolerates k failures only if it
    also tolerates every smaller count (for all seeds run), so one
    lucky draw at k=3 cannot mask a loss at k=2.  Returns -1 when even
    the healthy baseline (k=0, static only) fails.
    """
    by_level: Dict[int, List[FrontierCell]] = {}
    for cell in cells:
        if (cell.topology, cell.scheme, cell.mode) == (
            topology, scheme, mode,
        ):
            by_level.setdefault(cell.failures, []).append(cell)
    best = -1
    for level in sorted(by_level):
        if level > best + 1:
            break  # gap in the grid: don't claim beyond it
        if all(cell.tolerated for cell in by_level[level]):
            best = level
        else:
            break
    return best


def render_frontier(cells: Sequence[FrontierCell]) -> str:
    """The frontier report: one table per topology."""
    lines: List[str] = []
    topologies = sorted({c.topology for c in cells})
    for topology in topologies:
        here = [c for c in cells if c.topology == topology]
        schemes = sorted(
            {c.scheme for c in here},
            key=lambda s: FRONTIER_SCHEMES.index(s)
            if s in FRONTIER_SCHEMES else 99,
        )
        has_dynamic = any(c.mode == "dynamic" for c in here)
        backend_cols = sorted(
            {name for c in here for name, _ in c.header_bits_by_backend},
            key=lambda n: BACKEND_NAMES.index(n)
            if n in BACKEND_NAMES else 99,
        )
        lines.append(f"frontier — {topology}")
        header = (
            f"  {'scheme':>8s} {'max-static-k':>12s} {'stretch':>8s} "
            f"{'hdr-bits':>8s} {'state':>6s}"
        )
        for name in backend_cols:
            header += f" {name + '-bits':>11s}"
        if has_dynamic:
            header += f" {'dyn-delivery':>12s}"
        lines.append(header)
        for scheme in schemes:
            mine = [c for c in here if c.scheme == scheme]
            tolerated_k = max_tolerated(cells, topology, scheme)
            at_frontier = [
                c for c in mine
                if c.mode == "static" and c.failures == max(0, tolerated_k)
            ]
            stretch = max(
                (c.max_stretch for c in at_frontier), default=0.0
            )
            sample = mine[0]
            row = (
                f"  {scheme:>8s} {tolerated_k:>12d} {stretch:>8.2f} "
                f"{sample.header_bits:>8d} {sample.state_entries:>6d}"
            )
            per_backend = dict(sample.header_bits_by_backend)
            for name in backend_cols:
                bits = per_backend.get(name)
                row += (
                    f" {bits:>11d}" if bits is not None else f" {'—':>11s}"
                )
            if has_dynamic:
                dyn = [c for c in mine if c.mode == "dynamic"]
                if dyn:
                    worst = min(c.delivery_ratio for c in dyn)
                    row += f" {100 * worst:>11.1f}%"
                else:
                    row += f" {'—':>12s}"
            lines.append(row)
    total_violations = sum(c.violation_count for c in cells)
    lines.append(
        f"cells: {len(cells)}, invariant violations: {total_violations}"
    )
    return "\n".join(lines)


def frontier_rows(cells: Sequence[FrontierCell]) -> List[Dict]:
    """Flat export rows (see :func:`repro.experiments.export.write_rows`)."""
    rows = []
    for c in cells:
        rows.append({
            "topology": c.topology,
            "scheme": c.scheme,
            "mode": c.mode,
            "failures": c.failures,
            "seed": c.seed,
            "schedule_seed": c.schedule_seed,
            "sent": c.sent,
            "delivered": c.delivered,
            "delivery_ratio": c.delivery_ratio,
            "violations": c.violation_count,
            "header_bits": c.header_bits,
            **{
                f"header_bits_{name}": bits
                for name, bits in c.header_bits_by_backend
            },
            "state_entries": c.state_entries,
            "mean_stretch": c.mean_stretch,
            "max_stretch": c.max_stretch,
            "chaos_events": c.chaos_events,
            "digest": c.digest,
            "failed_links": ";".join(c.failed_links),
        })
    return rows


if __name__ == "__main__":
    print(render_frontier(run_frontier()))
