"""Shared experiment plumbing.

Every table/figure reproduction runs the same shaped experiment the
paper does: bring up a scenario, start an iperf flow, fail one link in
the middle of the run, repair it, and compare throughput in the failure
window against the pre-failure baseline.

The paper's absolute scale (200 Mbit/s links, 30–90 s runs) is scaled
down so a pure-Python discrete-event run takes a couple of seconds; the
reported quantity is the **ratio of failure-window throughput to the
no-failure baseline**, which is what the paper's own headline numbers
are (150/200 Mbit/s = 75 %, etc.).

Timeline (seconds of simulated time)::

    0.2          4.0            8.0           12.0
    flow starts  link fails     link repairs  measurement ends
       |---baseline: (2.0, 4.0]---|
                    |---failure window: (4.5, 8.0]---|
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import MeanCI, mean_ci
from repro.runner import KarSimulation
from repro.topology.topologies import Scenario, fifteen_node, redundant_path, rnp28
from repro.transport.flow import IperfResult

__all__ = [
    "Timeline",
    "DEFAULT_TIMELINE",
    "RunOutcome",
    "run_failure_experiment",
    "ratio_ci",
    "seeds_from_env",
    "resolve_seeds",
    "scenario_factory",
    "SCENARIO_RATE_MBPS",
    "SCENARIO_DELAY_S",
]

#: Link rate used by all scaled-down experiments (Mbit/s).
SCENARIO_RATE_MBPS = 20.0

#: Per-scenario link delay keeping the delay-bandwidth regime of the
#: paper's Mininet emulation (sub-millisecond veth latencies).
SCENARIO_DELAY_S: Dict[str, float] = {
    "fifteen_node": 0.0002,
    "rnp28": 0.0005,
    "redundant_path": 0.0002,
    "six_node": 0.0002,
}


@dataclass(frozen=True)
class Timeline:
    """When things happen on the simulated clock."""

    flow_start: float = 0.2
    fail_at: float = 4.0
    repair_at: float = 8.0
    end: float = 12.0
    baseline_window: Tuple[float, float] = (2.0, 4.0)
    failure_window: Tuple[float, float] = (4.5, 8.0)
    sample_interval_s: float = 0.5


DEFAULT_TIMELINE = Timeline()


def scenario_factory(name: str) -> Callable[[], Scenario]:
    """Scenario builder with the standard experiment parameters."""
    builders = {
        "fifteen_node": fifteen_node,
        "rnp28": rnp28,
        "redundant_path": redundant_path,
    }
    try:
        builder = builders[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(builders)}"
        ) from None
    delay = SCENARIO_DELAY_S[name]

    def build() -> Scenario:
        return builder(rate_mbps=SCENARIO_RATE_MBPS, delay_s=delay)

    return build


def seeds_from_env(default: int = 3) -> List[int]:
    """Seed list for repeated runs; override count via REPRO_SEEDS.

    The paper averages 30 iperf runs per point; each of our runs is a
    full deterministic simulation, so a handful of seeds already gives
    tight intervals.  Set ``REPRO_SEEDS=30`` to match the paper's n.
    """
    count = int(os.environ.get("REPRO_SEEDS", default))
    if count < 1:
        raise ValueError(f"REPRO_SEEDS must be >= 1, got {count}")
    return list(range(1, count + 1))


def resolve_seeds(
    seeds: Optional[Sequence[int]] = None, default: int = 3
) -> List[int]:
    """The experiments' shared seed-list default.

    An explicit ``seeds`` argument wins (copied to a list); otherwise
    fall back to :func:`seeds_from_env`.  Every multi-seed figure
    module resolves its argument through here.
    """
    return list(seeds) if seeds is not None else seeds_from_env(default)


@dataclass(frozen=True)
class RunOutcome:
    """One experiment run, summarized."""

    baseline_mbps: float
    failure_mbps: float
    iperf: IperfResult

    @property
    def ratio(self) -> float:
        """Failure-window throughput as a fraction of baseline."""
        if self.baseline_mbps <= 0:
            return 0.0
        return self.failure_mbps / self.baseline_mbps


def run_failure_experiment(
    scenario: Scenario,
    deflection: str,
    protection: str,
    failure: Optional[Tuple[str, str]],
    seed: int,
    timeline: Timeline = DEFAULT_TIMELINE,
    control_rtt_s: float = 0.005,
    backend: Optional[str] = "env",
) -> RunOutcome:
    """Run one scaled iperf-under-failure experiment.

    *backend* selects the route-encoding backend
    (:data:`repro.rns.BACKEND_NAMES`); None is the default integer
    datapath.  The default sentinel ``"env"`` resolves the
    ``REPRO_BACKEND`` environment variable, so a whole figure pipeline
    (fig4/5/7/8) can be swept under e.g. XSR without touching its
    module — the farm resolves the variable at *spec-build* time
    (:func:`repro.farm.jobs.failure_spec`) so a backend sweep can never
    alias a default run in the content-addressed cache.
    """
    if backend == "env":
        backend = os.environ.get("REPRO_BACKEND") or None
    ks = KarSimulation(
        scenario,
        deflection=deflection,
        protection=protection,
        seed=seed,
        control_rtt_s=control_rtt_s,
        backend=backend,
    )
    if failure is not None:
        ks.schedule_failure(
            failure[0], failure[1],
            at=timeline.fail_at, repair_at=timeline.repair_at,
        )
    # max_rto is scaled with the experiment: the paper's 30 s failure
    # windows tolerate Linux's 60 s RTO ceiling; our seconds-scale
    # windows need a proportionally smaller ceiling or a no-deflection
    # flow would still be backed off long after the link is repaired.
    flow = ks.add_iperf(
        sample_interval_s=timeline.sample_interval_s, max_rto=1.0
    )
    flow.start(
        at=timeline.flow_start,
        duration_s=timeline.end - timeline.flow_start,
    )
    ks.run(until=timeline.end)
    result = flow.result()
    return RunOutcome(
        baseline_mbps=result.mean_mbps_between(*timeline.baseline_window),
        failure_mbps=result.mean_mbps_between(*timeline.failure_window),
        iperf=result,
    )


def ratio_ci(outcomes: Sequence[RunOutcome]) -> MeanCI:
    """95 % CI over the failure/baseline ratios of repeated runs."""
    return mean_ci([o.ratio for o in outcomes])
