"""Chaos sweep — delivery ratio vs. failure rate per technique.

The paper's figures replay two scripted failures; this experiment maps
the resilience *envelope*: for each deflection technique, a UDP probe
crosses the 15-node topology while a generative fault injector
(:mod:`repro.sim.chaos`) flips core links, and we report the delivered
fraction as the failure process intensifies.  The runtime invariant
checker (:mod:`repro.sim.invariants`) rides along on every run — a
technique that "survives" by forwarding into dead ports or ping-pong
looping fails the run outright, so the numbers are trustworthy by
construction.

Everything is seeded: a (scenario, technique, mode, seed) tuple fully
determines the run, and each cell carries its chaos-event digest so two
invocations can be diffed at a glance.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import scenario_factory

if TYPE_CHECKING:  # lazy at runtime: the farm imports this module back
    from repro.farm.executor import FarmOptions
from repro.runner import KarSimulation
from repro.sim.monitors import InvariantSampler
from repro.topology.topologies import PARTIAL

__all__ = [
    "ChaosRun",
    "run_chaos_once",
    "run_chaos_sweep",
    "render_chaos_run",
    "render_chaos_sweep",
    "SWEEP_TECHNIQUES",
    "SWEEP_MTBFS",
]

#: Techniques the sweep compares (paper order, deflection-capable ones).
SWEEP_TECHNIQUES: Tuple[str, ...] = ("hp", "avp", "nip")

#: Per-link MTBF levels (seconds), harshest last.  With ~16 core links
#: and MTTR 0.4 s, the harshest level keeps several links dark at once.
SWEEP_MTBFS: Tuple[float, ...] = (8.0, 4.0, 2.0, 1.0)

#: Simulated seconds of probe traffic per run.
TRAFFIC_S = 4.0

#: Extra simulated seconds for the network to drain before the
#: conservation check (bounds: TTL walks + re-encode retry worst case).
DRAIN_S = 3.0


@dataclass(frozen=True)
class ChaosRun:
    """One seeded chaos run, fully summarized."""

    scenario: str
    technique: str
    mode: str
    seed: int
    sent: int
    delivered: int
    drop_reasons: Tuple[Tuple[str, int], ...]
    violations: Tuple[Tuple[str, int], ...]
    chaos_events: int
    digest: str
    peak_links_down: int
    reencode_requests: int
    reencode_timeouts: int
    reencode_giveups: int
    mtbf_s: Optional[float] = None

    @property
    def delivery_ratio(self) -> float:
        if self.sent == 0:
            return 0.0
        return self.delivered / self.sent

    @property
    def dropped(self) -> int:
        return sum(count for _, count in self.drop_reasons)

    @property
    def violation_count(self) -> int:
        return sum(count for _, count in self.violations)


def run_chaos_once(
    scenario_name: str = "fifteen_node",
    technique: str = "nip",
    mode: str = "mtbf",
    seed: int = 42,
    chaos_kwargs: Optional[Dict] = None,
    ctrl_outage: bool = False,
    rate_pps: float = 300.0,
    traffic_s: float = TRAFFIC_S,
    ttl: int = 128,
) -> ChaosRun:
    """One seeded chaos run with the invariant checker enabled."""
    ks = KarSimulation(
        scenario_factory(scenario_name)(),
        deflection=technique,
        protection=PARTIAL,
        seed=seed,
        ttl=ttl,
        invariants=True,
    )
    until = traffic_s
    injector = ks.add_chaos(mode, until=until, **(chaos_kwargs or {}))
    injectors = [injector]
    if ctrl_outage:
        injectors.append(ks.add_controller_outage(until=until))
    sampler = InvariantSampler(ks.network, ks.invariants, interval_s=0.25)
    sampler.start()
    src, sink = ks.add_udp_probe(rate_pps=rate_pps, duration_s=traffic_s)
    src.start(at=0.1)
    ks.run(until=until + DRAIN_S)
    ks.check_conservation()

    inv = ks.invariants
    edges = [
        node for node in ks.network.nodes.values()
        if hasattr(node, "reencode_requests")
    ]
    drop_reasons = Counter()
    for reason, count in ks.tracer.drop_reasons.items():
        drop_reasons[reason] += count
    return ChaosRun(
        scenario=scenario_name,
        technique=technique,
        mode=mode,
        seed=seed,
        sent=src.sent,
        delivered=sink.received,
        drop_reasons=tuple(sorted(drop_reasons.items())),
        violations=tuple(sorted(inv.violation_counts.items())),
        chaos_events=sum(len(i.events) for i in injectors),
        digest="+".join(i.digest() for i in injectors),
        peak_links_down=sampler.peak_links_down(),
        reencode_requests=sum(e.reencode_requests for e in edges),
        reencode_timeouts=sum(e.reencode_timeouts for e in edges),
        reencode_giveups=sum(e.reencode_giveups for e in edges),
        mtbf_s=(chaos_kwargs or {}).get("mtbf_s"),
    )


def run_chaos_sweep(
    scenario_name: str = "fifteen_node",
    techniques: Sequence[str] = SWEEP_TECHNIQUES,
    mtbfs: Sequence[float] = SWEEP_MTBFS,
    mttr_s: float = 0.4,
    seed: int = 42,
    farm: "FarmOptions | None" = None,
) -> List[ChaosRun]:
    """Delivery ratio per technique as per-link MTBF shrinks.

    Each cell uses the same root seed: the chaos streams are named per
    link, so every technique faces the *identical* failure trajectory
    at a given MTBF level — a paired comparison, like the paper's
    matched-seed figures.

    Cells run on the farm (:mod:`repro.farm`): ``farm=None`` keeps the
    sequential cacheless default; pass :class:`FarmOptions` for worker
    parallelism, result caching and resumable sweeps.
    """
    from repro.farm.jobs import chaos_spec
    from repro.farm.sweep import run_chaos_specs

    specs = [
        chaos_spec(
            scenario_name,
            technique,
            "mtbf",
            seed,
            chaos_kwargs={"mtbf_s": mtbf_s, "mttr_s": mttr_s},
            traffic_s=TRAFFIC_S,
        )
        for mtbf_s in mtbfs
        for technique in techniques
    ]
    return run_chaos_specs(specs, farm, label="chaos-sweep")


def render_chaos_run(run: ChaosRun) -> str:
    lines = [
        f"chaos run — scenario={run.scenario} technique={run.technique} "
        f"mode={run.mode} seed={run.seed}",
        f"  chaos: {run.chaos_events} events, digest {run.digest}, "
        f"peak links down {run.peak_links_down}",
        f"  probe: sent={run.sent} delivered={run.delivered} "
        f"({100 * run.delivery_ratio:.1f}%)",
    ]
    drops = ", ".join(f"{r}={c}" for r, c in run.drop_reasons) or "none"
    lines.append(f"  drops: {drops}")
    if run.reencode_requests:
        lines.append(
            f"  control plane: {run.reencode_requests} re-encode requests, "
            f"{run.reencode_timeouts} timeouts, {run.reencode_giveups} "
            f"gave up"
        )
    tally = ", ".join(f"{k}={c}" for k, c in run.violations) or "none"
    lines.append(f"  invariant violations: {tally}")
    return "\n".join(lines)


def render_chaos_sweep(runs: Sequence[ChaosRun]) -> str:
    techniques = sorted({r.technique for r in runs},
                        key=lambda t: SWEEP_TECHNIQUES.index(t)
                        if t in SWEEP_TECHNIQUES else 99)
    mtbfs = sorted({r.mtbf_s for r in runs if r.mtbf_s is not None},
                   reverse=True)
    by_cell = {(r.technique, r.mtbf_s): r for r in runs}
    header = f"{'MTBF/link':>10s}" + "".join(
        f"{t:>12s}" for t in techniques
    )
    lines = [
        "Chaos sweep — delivery ratio vs. per-link failure rate "
        f"(seed {runs[0].seed}, {runs[0].scenario})",
        header,
    ]
    for mtbf in mtbfs:
        cells = []
        for t in techniques:
            run = by_cell.get((t, mtbf))
            if run is None:
                cells.append(f"{'—':>12s}")
                continue
            flag = "" if run.violation_count == 0 else "!"
            cells.append(f"{100 * run.delivery_ratio:>10.1f}%{flag or ' '}")
        lines.append(f"{mtbf:>9.1f}s" + "".join(cells))
    total_violations = sum(r.violation_count for r in runs)
    lines.append(
        f"invariant violations across all runs: {total_violations}"
        + ("" if total_violations == 0 else "  ('!' marks the cells)")
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_chaos_sweep(run_chaos_sweep()))
