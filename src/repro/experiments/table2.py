"""Table 2 — the related-work feature matrix (see repro.baselines)."""

from __future__ import annotations

from repro.baselines.feature_matrix import TABLE2_ROWS, render_table2

__all__ = ["TABLE2_ROWS", "render_table2"]


if __name__ == "__main__":
    print(render_table2())
