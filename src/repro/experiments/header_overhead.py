"""Header-overhead study (Section 2.3, extended).

The paper notes that the route-ID bit length "should be considered for
implementation purposes" and offers Table 1 as its only datapoint.
This module maps the whole trade-off:

* for each scenario topology, the wire bytes of unprotected vs
  protected route IDs and their share of a 1500-byte MTU;
* for each **real GML topology** of the committed Topology Zoo corpus
  (abilene, synthwan754), per-encoding-backend and per-ID-assigner
  route-ID bits over all-pairs shortest paths — the cross-backend ×
  cross-assigner counterpart to ``repro bench encoding``;
* capacity planning: with a fixed header budget (32/64/128-bit route-ID
  fields), the longest route each ID-assignment strategy supports.

The budget sweep reuses :func:`repro.analysis.bitgrowth.prefix_route_bits`
— prefix bit lengths cached once per pool, budgets answered by binary
search instead of per-budget re-multiplication.

Run as ``python -m repro.experiments.header_overhead``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from statistics import median
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.bitgrowth import (
    growth_pool,
    max_prefix_within_budget,
    prefix_route_bits,
)
from repro.controller.idassign import reassign_switch_ids, route_frequency_weights
from repro.rns.backends import EncodingBackend, backend_by_name
from repro.rns.bitlength import route_id_bit_length
from repro.rns.gf2 import gf2_degree
from repro.rns.wire import FIXED_HEADER_BYTES, header_wire_size
from repro.topology.graph import PortGraph
from repro.topology.topologies import (
    Scenario,
    fifteen_node,
    redundant_path,
    rnp28,
    six_node,
)
from repro.topology.zoo import load_zoo_graph

__all__ = [
    "OverheadRow",
    "ZooOverheadRow",
    "scenario_overhead",
    "zoo_overhead",
    "capacity_table",
    "render_overhead_report",
    "ZOO_TOPOLOGIES",
    "ZOO_CELLS",
]

MTU_BYTES = 1500

#: Real GML fixtures the zoo study runs over.
ZOO_TOPOLOGIES: Tuple[str, ...] = ("abilene", "synthwan754")

#: (backend, assigner) cells of the zoo study.  The integer backends
#: share the greedy pool, so the assigner is the free variable there;
#: the XSR backend requires the dual-coprime pool, where the ``xsr``
#: assigner is already weight-ordered.
ZOO_CELLS: Tuple[Tuple[str, str], ...] = (
    ("crt", "greedy"),
    ("crt", "weighted"),
    ("xsr", "xsr"),
)


@dataclass(frozen=True)
class OverheadRow:
    """Wire cost of one scenario's route ID at one protection level."""

    scenario: str
    level: str
    switches: int
    bits: int
    wire_bytes: int

    @property
    def mtu_fraction(self) -> float:
        return self.wire_bytes / MTU_BYTES


def scenario_overhead(scenario: Scenario) -> List[OverheadRow]:
    """Overhead rows for every protection level of a scenario."""
    rows: List[OverheadRow] = []
    for level in scenario.protection_levels():
        ids = scenario.route_switch_ids() + [
            scenario.graph.switch_id(s.at) for s in scenario.segments(level)
        ]
        modulus = math.prod(ids)
        rows.append(
            OverheadRow(
                scenario=scenario.name,
                level=level,
                switches=len(ids),
                bits=route_id_bit_length(modulus),
                wire_bytes=header_wire_size(modulus),
            )
        )
    return rows


@dataclass(frozen=True)
class ZooOverheadRow:
    """Route-ID cost of one (topology, backend, assigner) cell.

    Bits are measured over all-pairs shortest paths (per-destination
    BFS trees), the same routes bulk provisioning installs.
    """

    topology: str
    backend: str
    assigner: str
    nodes: int
    pairs: int
    median_bits: float
    max_bits: int

    @property
    def max_wire_bytes(self) -> int:
        return FIXED_HEADER_BYTES + (self.max_bits + 7) // 8

    @property
    def mtu_fraction(self) -> float:
        return self.max_wire_bytes / MTU_BYTES


def _all_pairs_route_bits(graph: PortGraph, backend: EncodingBackend) -> List[int]:
    """Header bits of every shortest path, one BFS tree per source.

    The bits accumulate *down the BFS tree* — one modulus extension per
    node, not one re-multiplication per (pair, hop) — the same cached-
    prefix idea as :func:`repro.analysis.bitgrowth.prefix_route_bits`.
    A route's modulus covers its forwarding switches (every node on the
    path except the terminus), matching ``controller.routing``'s hops.
    """
    ids = graph.switch_ids()
    names = sorted(ids)
    xsr = backend.name == "xsr"
    bits: List[int] = []
    for src in names:
        # acc[node]: modulus (integer rings) or degree sum (GF(2)) of
        # the forwarding switches on the path src -> node.
        acc: Dict[str, int] = {src: 0 if xsr else 1}
        seen = {src}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            if node != src:
                bits.append(
                    acc[node] if xsr else route_id_bit_length(acc[node])
                )
            extended = (
                acc[node] + gf2_degree(ids[node])
                if xsr
                else acc[node] * ids[node]
            )
            for nb in graph.neighbors(node):
                if nb not in seen:
                    seen.add(nb)
                    acc[nb] = extended
                    queue.append(nb)
    return bits


def zoo_overhead(
    topologies: Sequence[str] = ZOO_TOPOLOGIES,
    cells: Sequence[Tuple[str, str]] = ZOO_CELLS,
) -> List[ZooOverheadRow]:
    """The cross-backend x cross-assigner study over real GML topologies.

    Each cell loads the topology with the backend's native ID strategy,
    optionally re-assigns IDs with the traffic-weighted assigner (route
    frequencies from the same all-pairs BFS trees the bits are measured
    on), and reports median/max route-ID bits over all ordered pairs.
    """
    rows: List[ZooOverheadRow] = []
    for topology in topologies:
        for backend_name, assigner in cells:
            backend = backend_by_name(backend_name)
            graph = load_zoo_graph(topology, id_strategy=backend.id_strategy)
            if assigner != backend.id_strategy:
                reassign_switch_ids(
                    graph,
                    strategy=assigner,
                    weights=route_frequency_weights(graph),
                )
            bits = _all_pairs_route_bits(graph, backend)
            rows.append(
                ZooOverheadRow(
                    topology=topology,
                    backend=backend_name,
                    assigner=assigner,
                    nodes=len(graph.switch_ids()),
                    pairs=len(bits),
                    median_bits=median(bits),
                    max_bits=max(bits),
                )
            )
    return rows


def capacity_table(
    budgets_bits: Sequence[int] = (32, 64, 128),
    strategies: Sequence[str] = ("greedy", "prime"),
    min_value: int = 4,
    pool_size: int = 64,
    worst_case: bool = True,
) -> Dict[str, List[Tuple[int, int]]]:
    """Max hops per route-ID budget, per ID strategy.

    With ``worst_case=True`` routes run through the *largest* IDs of a
    *pool_size* network — the provisioning floor an operator must
    guarantee.  With ``worst_case=False`` they run through the smallest
    IDs — the best case, where the greedy pool's composite IDs (4, 9,
    25, ...) buy extra hops over a prime pool.  ``xsr`` is accepted too:
    its hops-per-budget use the GF(2) degree sum on the dual-coprime
    pool.  Prefix bit lengths are cached once per strategy; each budget
    is a binary search.
    """
    out: Dict[str, List[Tuple[int, int]]] = {}
    for strategy in strategies:
        pool = growth_pool(strategy, pool_size, min_value=min_value)
        ordered = sorted(pool, reverse=worst_case)
        if strategy == "xsr":
            prefix_bits: List[int] = []
            degree_sum = 0
            for sid in ordered:
                degree_sum += gf2_degree(sid)
                prefix_bits.append(degree_sum)
        else:
            prefix_bits = prefix_route_bits(ordered)
        out[strategy] = [
            (budget, max_prefix_within_budget(prefix_bits, budget))
            for budget in budgets_bits
        ]
    return out


def render_overhead_report(
    zoo_topologies: Optional[Sequence[str]] = ZOO_TOPOLOGIES,
) -> str:
    lines = [
        "Route-ID header overhead by scenario and protection level",
        f"{'scenario':16s} {'level':12s} {'switches':>8s} {'bits':>5s} "
        f"{'wire bytes':>10s} {'% of MTU':>9s}",
    ]
    for build in (six_node, fifteen_node, rnp28, redundant_path):
        for row in scenario_overhead(build()):
            lines.append(
                f"{row.scenario:16s} {row.level:12s} {row.switches:8d} "
                f"{row.bits:5d} {row.wire_bytes:10d} "
                f"{100 * row.mtu_fraction:8.2f}%"
            )
    if zoo_topologies:
        lines.append("")
        lines.append(
            "Zoo corpus: route-ID bits over all-pairs shortest paths "
            "(backend x assigner)"
        )
        lines.append(
            f"{'topology':14s} {'backend':8s} {'assigner':9s} {'nodes':>5s} "
            f"{'pairs':>7s} {'med bits':>8s} {'max bits':>8s} "
            f"{'max wire':>8s} {'% of MTU':>9s}"
        )
        for row in zoo_overhead(topologies=zoo_topologies):
            lines.append(
                f"{row.topology:14s} {row.backend:8s} {row.assigner:9s} "
                f"{row.nodes:5d} {row.pairs:7d} {row.median_bits:8.1f} "
                f"{row.max_bits:8d} {row.max_wire_bytes:8d} "
                f"{100 * row.mtu_fraction:8.2f}%"
            )
    for worst, label in ((True, "worst-case (largest IDs)"),
                         (False, "best-case (smallest IDs)")):
        lines.append("")
        lines.append("Capacity: max hops by route-ID field width "
                     f"(64-switch pool, {label})")
        table = capacity_table(
            strategies=("greedy", "prime", "xsr"), worst_case=worst
        )
        budgets = [b for b, _ in table["greedy"]]
        lines.append("strategy  " + "".join(f"{b:>8d}b" for b in budgets))
        for strategy, rows in table.items():
            lines.append(
                f"{strategy:9s} "
                + "".join(f"{hops:>8d} " for _, hops in rows)
            )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_overhead_report())
