"""Header-overhead study (Section 2.3, extended).

The paper notes that the route-ID bit length "should be considered for
implementation purposes" and offers Table 1 as its only datapoint.
This module maps the whole trade-off:

* for each scenario topology, the wire bytes of unprotected vs
  protected route IDs and their share of a 1500-byte MTU;
* capacity planning: with a fixed header budget (32/64/128-bit route-ID
  fields), the longest route each ID-assignment strategy supports.

Run as ``python -m repro.experiments.header_overhead``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.rns.bitlength import route_id_bit_length
from repro.rns.coprime import greedy_coprime_pool, prime_pool
from repro.rns.wire import header_wire_size
from repro.topology.topologies import (
    Scenario,
    fifteen_node,
    redundant_path,
    rnp28,
    six_node,
)

__all__ = [
    "OverheadRow",
    "scenario_overhead",
    "capacity_table",
    "render_overhead_report",
]

MTU_BYTES = 1500


@dataclass(frozen=True)
class OverheadRow:
    """Wire cost of one scenario's route ID at one protection level."""

    scenario: str
    level: str
    switches: int
    bits: int
    wire_bytes: int

    @property
    def mtu_fraction(self) -> float:
        return self.wire_bytes / MTU_BYTES


def scenario_overhead(scenario: Scenario) -> List[OverheadRow]:
    """Overhead rows for every protection level of a scenario."""
    rows: List[OverheadRow] = []
    for level in scenario.protection_levels():
        ids = scenario.route_switch_ids() + [
            scenario.graph.switch_id(s.at) for s in scenario.segments(level)
        ]
        modulus = math.prod(ids)
        rows.append(
            OverheadRow(
                scenario=scenario.name,
                level=level,
                switches=len(ids),
                bits=route_id_bit_length(modulus),
                wire_bytes=header_wire_size(modulus),
            )
        )
    return rows


def capacity_table(
    budgets_bits: Sequence[int] = (32, 64, 128),
    strategies: Sequence[str] = ("greedy", "prime"),
    min_value: int = 4,
    pool_size: int = 64,
    worst_case: bool = True,
) -> Dict[str, List[Tuple[int, int]]]:
    """Max hops per route-ID budget, per ID strategy.

    With ``worst_case=True`` routes run through the *largest* IDs of a
    *pool_size* network — the provisioning floor an operator must
    guarantee.  With ``worst_case=False`` they run through the smallest
    IDs — the best case, where the greedy pool's composite IDs (4, 9,
    25, ...) buy extra hops over a prime pool.
    """
    out: Dict[str, List[Tuple[int, int]]] = {}
    for strategy in strategies:
        if strategy == "greedy":
            pool = greedy_coprime_pool(pool_size, min_value=min_value)
        elif strategy == "prime":
            pool = prime_pool(pool_size, min_value=min_value)
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        ordered = sorted(pool, reverse=worst_case)
        rows: List[Tuple[int, int]] = []
        for budget in budgets_bits:
            product, hops = 1, 0
            for sid in ordered:
                if route_id_bit_length(product * sid) > budget:
                    break
                product *= sid
                hops += 1
            rows.append((budget, hops))
        out[strategy] = rows
    return out


def render_overhead_report() -> str:
    lines = [
        "Route-ID header overhead by scenario and protection level",
        f"{'scenario':16s} {'level':12s} {'switches':>8s} {'bits':>5s} "
        f"{'wire bytes':>10s} {'% of MTU':>9s}",
    ]
    for build in (six_node, fifteen_node, rnp28, redundant_path):
        for row in scenario_overhead(build()):
            lines.append(
                f"{row.scenario:16s} {row.level:12s} {row.switches:8d} "
                f"{row.bits:5d} {row.wire_bytes:10d} "
                f"{100 * row.mtu_fraction:8.2f}%"
            )
    for worst, label in ((True, "worst-case (largest IDs)"),
                         (False, "best-case (smallest IDs)")):
        lines.append("")
        lines.append("Capacity: max hops by route-ID field width "
                     f"(64-switch pool, {label})")
        table = capacity_table(worst_case=worst)
        budgets = [b for b, _ in table["greedy"]]
        lines.append("strategy  " + "".join(f"{b:>8d}b" for b in budgets))
        for strategy, rows in table.items():
            lines.append(
                f"{strategy:9s} "
                + "".join(f"{hops:>8d} " for _, hops in rows)
            )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render_overhead_report())
