"""Experiment reproductions: one module per table/figure of the paper.

* :mod:`~repro.experiments.table1` — route-ID bit lengths.
* :mod:`~repro.experiments.figure4` — throughput time series by technique.
* :mod:`~repro.experiments.figure5` — protection/technique/location grid.
* :mod:`~repro.experiments.figure7` — RNP backbone failures.
* :mod:`~repro.experiments.figure8` — redundant-path worst case.
* :mod:`~repro.experiments.table2` — related-work feature matrix.
* :mod:`~repro.experiments.report` — regenerates EXPERIMENTS.md.
"""

from repro.experiments.common import (
    DEFAULT_TIMELINE,
    RunOutcome,
    Timeline,
    resolve_seeds,
    run_failure_experiment,
    scenario_factory,
    seeds_from_env,
)

__all__ = [
    "Timeline",
    "DEFAULT_TIMELINE",
    "RunOutcome",
    "run_failure_experiment",
    "scenario_factory",
    "seeds_from_env",
    "resolve_seeds",
]
