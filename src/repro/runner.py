"""High-level facade: scenario → running KAR simulation.

:class:`KarSimulation` assembles the whole stack for one experiment —
event engine, KAR switches with a chosen deflection technique, edge
nodes, hosts, controller with route/protection encoding — from a
declarative :class:`~repro.topology.topologies.Scenario`.  It is the
API the examples and every benchmark use::

    from repro import KarSimulation, fifteen_node, PARTIAL

    ks = KarSimulation(fifteen_node(), deflection="nip",
                       protection=PARTIAL, seed=1)
    ks.schedule_failure("SW7", "SW13", at=3.0, repair_at=6.0)
    flow = ks.add_iperf()
    flow.start(at=0.5, duration_s=8.0)
    ks.run(until=9.0)
    print(flow.result().describe())
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import copy

from repro.controller.controller import KarController
from repro.controller.idassign import reassign_switch_ids
from repro.controller.retry import RetryPolicy
from repro.rns.backends import EncodingBackend, backend_by_name
from repro.rns.encoder import EncodedRoute
from repro.sim.chaos import CHAOS_MODES, ChaosInjector, ControllerOutageChaos
from repro.sim.engine import Simulator
from repro.sim.failures import FailureSchedule
from repro.sim.invariants import InvariantChecker
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.rng import RngRegistry
from repro.sim.trace import PacketTracer
from repro.switches.core import KarSwitch
from repro.switches.deflection import DeflectionStrategy, strategy_by_name
from repro.switches.edge import EdgeNode
from repro.topology.graph import NodeInfo, NodeKind
from repro.topology.topologies import UNPROTECTED, Scenario
from repro.transport.flow import IperfFlow
from repro.transport.host import Host
from repro.transport.udp import UdpSink, UdpSource

__all__ = ["KarSimulation"]


class KarSimulation:
    """A fully wired KAR network ready to run one scenario.

    Args:
        scenario: topology + routes + protection definitions.
        deflection: 'none' | 'hp' | 'avp' | 'nip' (or a strategy object).
        protection: protection-level name defined by the scenario
            (e.g. 'unprotected', 'partial', 'full').
        seed: root seed for all random streams (deflection choices).
        control_rtt_s: edge→controller→edge latency for re-encodes.
        ttl: initial KAR hop budget.
        trace_paths: keep full per-packet hop lists (slower; for tests).
        install_primary_flow: install forward/reverse routes for the
            scenario's (src_host, dst_host) pair at construction.
        edge_node_cls: the edge implementation (default
            :class:`~repro.switches.edge.EdgeNode`; pass
            :class:`~repro.multipath.MultipathEdgeNode` for per-packet
            multipath policies).
        invariants: True wires a collecting
            :class:`~repro.sim.invariants.InvariantChecker` through the
            whole packet path (NIP runs also enable the return-to-
            sender check); pass a checker instance for custom/strict
            configuration.
        retry_policy: edge→controller re-encode timeout/backoff policy
            (default :data:`~repro.controller.retry.DEFAULT_RETRY_POLICY`).
        strategy_factory: optional ``switch_name -> DeflectionStrategy``
            hook for *per-switch* strategies — the stateful baselines
            (:mod:`repro.baselines`) install precomputed per-switch
            tables this way.  When set it overrides *deflection* for
            core switches (pass ``deflection="none"`` for clarity);
            strategies returned here are not shared, so they may carry
            switch-local state.
        backend: encoding backend name (:data:`repro.rns.BACKEND_NAMES`)
            or instance, or None for the historical default (identical
            to ``"crt"`` but with the switch decode hook left unset, so
            the PR-3 fast path stays byte-for-byte).  The backend's
            encoder drives the controller (flows, protection hops,
            misdelivery re-encodes) and its ``port_at`` drives every
            core switch.  When the scenario's switch IDs violate the
            backend's coprimality ring (e.g. a paper scenario's integer
            pool under ``"xsr"``), the scenario is deep-copied and its
            cores re-IDed with the backend's ``idassign`` strategy —
            ID planning is the controller's job, so a backend change is
            a re-provisioning step, never a silent failure.
    """

    def __init__(
        self,
        scenario: Scenario,
        deflection: str | DeflectionStrategy = "nip",
        protection: str = UNPROTECTED,
        seed: int = 0,
        control_rtt_s: float = 0.005,
        ttl: int = 64,
        trace_paths: bool = False,
        install_primary_flow: bool = True,
        edge_node_cls: type = EdgeNode,
        misdelivery_policy: str = "reencode",
        invariants: bool | InvariantChecker = False,
        retry_policy: Optional[RetryPolicy] = None,
        strategy_factory: Optional[
            Callable[[str], DeflectionStrategy]
        ] = None,
        backend: str | EncodingBackend | None = None,
    ):
        if isinstance(backend, str):
            backend = backend_by_name(backend)
        self.backend = backend
        if backend is not None:
            core_ids = sorted(scenario.graph.switch_ids().values())
            try:
                backend.validate_switch_ids(core_ids)
            except ValueError:
                scenario = copy.deepcopy(scenario)
                reassign_switch_ids(
                    scenario.graph, strategy=backend.id_strategy
                )
            backend.prepare(scenario.graph.switch_ids().values())
        self.edge_node_cls = edge_node_cls
        self.misdelivery_policy = misdelivery_policy
        self.retry_policy = retry_policy
        self.scenario = scenario
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.tracer = PacketTracer(trace_paths=trace_paths)
        if isinstance(deflection, DeflectionStrategy):
            self.strategy = deflection
        else:
            self.strategy = strategy_by_name(deflection)
        self.strategy_factory = strategy_factory
        self.protection_level = protection
        self._flow_count = 0
        self.chaos: list[ChaosInjector] = []

        if isinstance(invariants, InvariantChecker):
            self.invariants: Optional[InvariantChecker] = invariants
        elif invariants:
            self.invariants = InvariantChecker(
                forbid_return_to_sender=(self.strategy.name == "nip")
            )
        else:
            self.invariants = None

        graph = scenario.graph
        factories = {
            NodeKind.CORE: self._make_switch,
            NodeKind.EDGE: self._make_edge,
            NodeKind.HOST: self._make_host,
        }
        self.network = Network(
            graph, self.sim, factories, tracer=self.tracer,
            invariants=self.invariants,
        )
        self.controller = KarController(
            graph, control_rtt_s=control_rtt_s, default_ttl=ttl,
            encoder=(
                self.backend.encoder() if self.backend is not None else None
            ),
        )
        self._wire_edges()

        self.primary_forward: Optional[EncodedRoute] = None
        self.primary_reverse: Optional[EncodedRoute] = None
        if install_primary_flow:
            self.primary_forward, self.primary_reverse = self.install_flow(
                scenario.src_host, scenario.dst_host
            )

    # ------------------------------------------------------------------
    # node factories
    # ------------------------------------------------------------------
    def _make_switch(self, info: NodeInfo, sim: Simulator) -> Node:
        assert info.switch_id is not None
        strategy = (
            self.strategy_factory(info.name)
            if self.strategy_factory is not None
            else self.strategy
        )
        return KarSwitch(
            name=info.name,
            sim=sim,
            num_ports=info.degree,
            switch_id=info.switch_id,
            strategy=strategy,
            rng=self.rng.stream(f"deflect:{info.name}"),
            tracer=self.tracer,
            invariants=self.invariants,
            decode=(
                self.backend.switch_decode()
                if self.backend is not None
                else None
            ),
        )

    def _make_edge(self, info: NodeInfo, sim: Simulator) -> Node:
        return self.edge_node_cls(
            info.name, sim, info.degree, tracer=self.tracer,
            misdelivery_policy=self.misdelivery_policy,
            retry_policy=self.retry_policy,
            rng=self.rng.stream(f"edge:{info.name}"),
            invariants=self.invariants,
        )

    def _make_host(self, info: NodeInfo, sim: Simulator) -> Node:
        return Host(info.name, sim, info.degree)

    def _wire_edges(self) -> None:
        graph = self.scenario.graph
        for info in graph.nodes(NodeKind.EDGE):
            edge = self.network.node(info.name)
            assert isinstance(edge, EdgeNode)
            edge.set_controller(self.controller)
            for host in graph.hosts_of_edge(info.name):
                edge.serve_host(host, graph.port_of(info.name, host))

    # ------------------------------------------------------------------
    # provisioning
    # ------------------------------------------------------------------
    def install_flow(
        self, src_host: str, dst_host: str
    ) -> Tuple[EncodedRoute, EncodedRoute]:
        """Install forward+reverse routes for a host pair.

        The primary (scenario) pair uses the scenario's pinned route and
        the selected protection level; other pairs get shortest paths,
        unprotected.
        """
        scenario_pair = (
            src_host == self.scenario.src_host
            and dst_host == self.scenario.dst_host
        )
        core_path = self.scenario.primary_route if scenario_pair else None
        protection = (
            self.scenario.segments(self.protection_level)
            if scenario_pair
            else ()
        )
        reverse_protection = (
            self.scenario.reverse_segments(self.protection_level)
            if scenario_pair
            else ()
        )
        return self.controller.install_flow(
            self.network,
            src_host,
            dst_host,
            core_path=core_path,
            protection=protection,
            reverse_protection=reverse_protection,
            reverse_core_path=(
                self.scenario.reverse_route if scenario_pair else None
            ),
        )

    def enable_notifications(
        self, reactive: bool = False, delay_s: float = 0.01
    ):
        """Wire dataplane failure notifications to the controller side.

        The paper's switches notify the controller but the experiments
        have it ignore them (``reactive=False``: log only).  With
        ``reactive=True`` the service implements the traditional
        notify-and-reroute baseline for the scenario's primary flow.

        Returns the :class:`~repro.controller.notifications.NotificationService`.
        """
        from repro.controller.notifications import NotificationService

        service = NotificationService(
            self.network,
            self.scenario.graph,
            notification_delay_s=delay_s,
            reactive=reactive,
            default_ttl=self.controller.default_ttl,
            encoder=self.controller.encoder,
        )
        service.wire()
        service.track_flow(self.scenario.src_host, self.scenario.dst_host)
        return service

    def schedule_failure(
        self, a: str, b: str, at: float, repair_at: Optional[float] = None
    ) -> None:
        """Fail link a-b at *at*; optionally repair at *repair_at*."""
        schedule = FailureSchedule()
        if repair_at is None:
            schedule.fail(at, a, b)
        else:
            schedule.fail_between(a, b, at, repair_at)
        schedule.install(self.network)

    def add_chaos(self, mode: str, until: float, **kwargs) -> ChaosInjector:
        """Arm a generative fault injector ('mtbf', 'flap', 'srlg',
        'regional' or 'adversarial') drawing from this run's seeded
        streams; no new fault starts after *until*.
        """
        try:
            cls = CHAOS_MODES[mode]
        except KeyError:
            raise ValueError(
                f"unknown chaos mode {mode!r}; "
                f"choose from {sorted(CHAOS_MODES)}"
            ) from None
        injector = cls(self.network, self.rng, until, **kwargs).install()
        self.chaos.append(injector)
        return injector

    def add_controller_outage(
        self, until: float, **kwargs
    ) -> ControllerOutageChaos:
        """Arm stochastic controller outages (re-encode unreachability)."""
        injector = ControllerOutageChaos(
            self.network, self.rng, until, controller=self.controller,
            **kwargs,
        ).install()
        self.chaos.append(injector)
        return injector

    def check_conservation(self, expect_in_flight: int = 0) -> None:
        """Run the invariant checker's drain-time conservation check."""
        if self.invariants is None:
            raise RuntimeError("simulation was built without invariants")
        self.invariants.check_conservation(self.sim.now, expect_in_flight)

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------
    def host(self, name: str) -> Host:
        node = self.network.node(name)
        if not isinstance(node, Host):
            raise TypeError(f"{name!r} is not a host")
        return node

    def add_iperf(
        self,
        src_host: Optional[str] = None,
        dst_host: Optional[str] = None,
        flow_id: Optional[str] = None,
        sample_interval_s: float = 0.5,
        **tcp_kwargs,
    ) -> IperfFlow:
        """Create a measured TCP flow (defaults: the scenario's pair)."""
        src = src_host or self.scenario.src_host
        dst = dst_host or self.scenario.dst_host
        self._flow_count += 1
        fid = flow_id or f"iperf-{self._flow_count}"
        if (src, dst) != (self.scenario.src_host, self.scenario.dst_host):
            self.install_flow(src, dst)
        return IperfFlow(
            self.sim,
            self.host(src),
            self.host(dst),
            flow_id=fid,
            sample_interval_s=sample_interval_s,
            **tcp_kwargs,
        )

    def add_udp_probe(
        self,
        rate_pps: float,
        duration_s: Optional[float] = None,
        src_host: Optional[str] = None,
        dst_host: Optional[str] = None,
        flow_id: Optional[str] = None,
        payload_bytes: int = 1400,
    ) -> Tuple[UdpSource, UdpSink]:
        """Create a constant-rate probe (defaults: the scenario's pair)."""
        src = src_host or self.scenario.src_host
        dst = dst_host or self.scenario.dst_host
        self._flow_count += 1
        fid = flow_id or f"udp-{self._flow_count}"
        if (src, dst) != (self.scenario.src_host, self.scenario.dst_host):
            self.install_flow(src, dst)
        source = UdpSource(
            self.sim, self.host(src), dst, fid,
            rate_pps=rate_pps, payload_bytes=payload_bytes,
            duration_s=duration_s,
        )
        sink = UdpSink(self.sim, self.host(dst), fid)
        return source, sink

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Advance the simulation to absolute time *until* (seconds)."""
        self.sim.run_until(until)
