"""Route-ID encoding and decoding (the KAR "Key-for-Any-Route").

The controller-side encoder turns a list of ``(switch ID, output port)``
hops — the primary path plus any *driven deflection forwarding path*
hops — into a single integer route ID via the CRT (Section 2.2 of the
paper).  The switch-side decode is a single modulo operation
(:meth:`EncodedRoute.port_at`).

Because CRT addends are independent and the summation is commutative
(the paper's key observation in Section 2.2), hop order is irrelevant
and hops may be added or removed *incrementally* without re-encoding the
whole route (:meth:`RouteEncoder.with_hop`,
:meth:`RouteEncoder.without_switch`).  Incremental updates are what make
partial protection cheap: the controller can fold one extra protection
switch into an existing route ID in O(1) CRT steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.rns.bitlength import route_id_bit_length
from repro.rns.crt import CrtError, crt, crt_extend

__all__ = ["Hop", "EncodedRoute", "RouteEncoder", "DuplicateSwitchError"]


class DuplicateSwitchError(CrtError):
    """A switch ID appears twice in one route.

    KAR's intrinsic constraint (Section 3.2 of the paper): a route ID
    stores exactly one residue per switch ID, so a switch can have only
    one output port per route — a path may not visit a switch twice with
    different exits, and a protection hop cannot override a primary hop.
    """

    def __init__(self, switch_id: int):
        self.switch_id = switch_id
        super().__init__(
            f"switch ID {switch_id} appears more than once; a KAR route ID "
            f"can encode only one output port per switch"
        )


@dataclass(frozen=True)
class Hop:
    """One forwarding decision: at switch *switch_id*, exit via *port*."""

    switch_id: int
    port: int

    def __post_init__(self) -> None:
        if self.switch_id <= 1:
            raise CrtError(f"switch ID must be > 1, got {self.switch_id}")
        if not 0 <= self.port < self.switch_id:
            raise CrtError(
                f"port {self.port} not addressable by switch ID "
                f"{self.switch_id} (valid ports: 0..{self.switch_id - 1})"
            )


@dataclass(frozen=True)
class EncodedRoute:
    """An encoded route: the integer key plus the hops it encodes.

    Attributes:
        route_id: the integer placed in the packet header (``R``).
        modulus: the product of all encoded switch IDs (``M``); the route
            ID is unique in ``[0, modulus)``.
        hops: the encoded ``(switch, port)`` pairs, in encoding order
            (order is cosmetic — the route ID is order-independent).
    """

    route_id: int
    modulus: int
    hops: Tuple[Hop, ...]
    # Memo for residue_map(); excluded from ==/hash/repr so routes still
    # compare by (route_id, modulus, hops) alone.
    _residues: Optional[Dict[int, int]] = field(
        default=None, compare=False, repr=False
    )

    def port_at(self, switch_id: int) -> int:
        """The forwarding decision a switch makes: ``route_id mod switch_id``.

        This works for *any* switch ID, including switches not encoded in
        the route — for those the result is effectively pseudo-random,
        which is exactly what a deflected packet experiences in the wild.
        """
        return self.route_id % switch_id

    @property
    def switch_ids(self) -> Tuple[int, ...]:
        return tuple(h.switch_id for h in self.hops)

    @property
    def bit_length(self) -> int:
        """Header bits required for this route (Eq. 9): ``ceil(log2(M-1))``."""
        return route_id_bit_length(self.modulus)

    def encodes(self, switch_id: int) -> bool:
        """True if *switch_id* has an intentional residue in this route."""
        return any(h.switch_id == switch_id for h in self.hops)

    def residue_map(self) -> Dict[int, int]:
        """Mapping ``switch_id -> encoded output port``.

        Precomputed at first use and memoized: for every encoded switch,
        ``residue_map()[s] == route_id % s`` by CRT construction, so the
        controller can hand this dict to the edge as a per-packet residue
        hint and switches skip the big-int modulo entirely.  Treat the
        returned dict as read-only — it is shared by every packet on the
        route.
        """
        residues = self._residues
        if residues is None:
            residues = {h.switch_id: h.port for h in self.hops}
            object.__setattr__(self, "_residues", residues)
        return residues

    def __contains__(self, switch_id: int) -> bool:
        return self.encodes(switch_id)


class RouteEncoder:
    """Controller-side encoder for KAR route IDs.

    Stateless; all methods are pure functions of their inputs.  Kept as a
    class so controllers can subclass it (e.g. to add header-budget
    enforcement or alternative encodings).
    """

    def encode(self, hops: Iterable[Hop]) -> EncodedRoute:
        """Encode hops into a route ID (Eq. 4).

        Raises:
            DuplicateSwitchError: if a switch ID repeats.
            NotCoprimeError: if the switch IDs are not pairwise coprime.
            CrtError: if a port is out of range for its switch ID.
        """
        hop_list = list(hops)
        residues: Dict[int, int] = {}
        for h in hop_list:
            if h.switch_id in residues:
                raise DuplicateSwitchError(h.switch_id)
            residues[h.switch_id] = h.port
        route_id, modulus = crt(
            [h.port for h in hop_list], [h.switch_id for h in hop_list]
        )
        return EncodedRoute(
            route_id=route_id, modulus=modulus, hops=tuple(hop_list),
            _residues=residues,
        )

    def encode_path(
        self, switch_ids: Sequence[int], ports: Sequence[int]
    ) -> EncodedRoute:
        """Convenience wrapper: parallel switch-ID / port sequences.

        >>> RouteEncoder().encode_path([4, 7, 11], [0, 2, 0]).route_id
        44
        >>> RouteEncoder().encode_path([4, 7, 11, 5], [0, 2, 0, 0]).route_id
        660
        """
        if len(switch_ids) != len(ports):
            raise CrtError(
                f"switch/port length mismatch: {len(switch_ids)} vs {len(ports)}"
            )
        return self.encode(Hop(s, p) for s, p in zip(switch_ids, ports))

    def decode(self, route_id: int, switch_ids: Sequence[int]) -> List[int]:
        """Recover the output ports a route ID dictates at each switch.

        This is what the data plane computes, exposed for analysis and
        testing (Eq. 3: ``p_i = R mod s_i``).
        """
        if route_id < 0:
            raise CrtError(f"route ID must be non-negative, got {route_id}")
        return [route_id % s for s in switch_ids]

    def with_hop(self, route: EncodedRoute, hop: Hop) -> EncodedRoute:
        """Fold one extra hop into an existing route ID, incrementally.

        Solves the two-congruence system ``x ≡ R (mod M)``,
        ``x ≡ port (mod switch_id)`` directly instead of re-running the
        full CRT — O(1) modular inversions.  This is the primitive behind
        incremental (partial) protection: the controller can extend a
        live route with one more driven-deflection hop.

        Raises:
            DuplicateSwitchError: if the switch is already encoded.
            NotCoprimeError: if the new ID shares a factor with M.
        """
        if route.encodes(hop.switch_id):
            raise DuplicateSwitchError(hop.switch_id)
        # crt_extend raises NotCoprimeError when gcd(M, s) != 1.
        new_id, new_modulus = crt_extend(
            route.route_id, route.modulus, hop.switch_id, hop.port
        )
        return EncodedRoute(
            route_id=new_id, modulus=new_modulus, hops=route.hops + (hop,),
            _residues={**route.residue_map(), hop.switch_id: hop.port},
        )

    def without_switch(self, route: EncodedRoute, switch_id: int) -> EncodedRoute:
        """Remove a switch's residue from a route ID.

        The reduced route ID is simply ``R mod (M / s)`` — the CRT
        projection onto the remaining moduli.  Used when protection hops
        must be dropped to fit a header-bit budget (loose protection,
        Section 2.3).
        """
        if not route.encodes(switch_id):
            raise CrtError(f"switch ID {switch_id} is not encoded in this route")
        new_modulus = route.modulus // switch_id
        new_hops = tuple(h for h in route.hops if h.switch_id != switch_id)
        if not new_hops:
            raise CrtError("cannot remove the last hop of a route")
        return EncodedRoute(
            route_id=route.route_id % new_modulus,
            modulus=new_modulus,
            hops=new_hops,
            _residues={h.switch_id: h.port for h in new_hops},
        )
