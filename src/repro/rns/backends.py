"""Pluggable route-encoding backends.

PR 10's tentpole: every place the repo turns ``(switch, port)`` hops
into a route ID — controller, verify oracles, analysis walks, benches —
now goes through an :class:`EncodingBackend` instead of hard-coding the
integer CRT.  Three backends ship:

* ``crt`` — the reference integer CRT
  (:class:`~repro.rns.encoder.RouteEncoder`), the oracle everything else
  is verified against;
* ``pooled`` — the amortized integer CRT
  (:class:`~repro.rns.pool.PooledEncoder`): same math, precomputed basis
  weights, bit-identical by the ``encoder`` verify oracle;
* ``xsr`` — XOR-based Source Routing (:mod:`repro.rns.gf2`): the CRT
  over GF(2)[X].  A genuinely different datapath — switch decode is a
  carry-less shift/XOR remainder, not an integer modulo — with exact
  ``deg(M)`` header cost instead of Eq. 9's ceiling.

The protocol is deliberately small.  A backend must pin down exactly the
three operations whose math differs between encodings:

1. **encode** hops → an :class:`~repro.rns.encoder.EncodedRoute` (XSR
   returns the :class:`XsrEncodedRoute` subclass so route objects stay
   interchangeable — same fields, same ``residue_map()`` fast-path
   contract);
2. **port_at** — the switch-side decode ``(route_id, switch_id) →
   port``, the one function the data plane executes per packet;
3. **header_bits** — what a modulus costs on the wire (Eq. 9 for
   integers, polynomial degree for XSR).

plus the ID-feasibility rules (:meth:`EncodingBackend.min_switch_id`,
:meth:`EncodingBackend.validate_switch_ids`) that the
``controller.idassign`` strategies and the property suite enforce.
``docs/encoding.md`` walks through adding a fourth backend.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.rns.bitlength import route_id_bit_length
from repro.rns.coprime import min_id_for_ports, validate_pool
from repro.rns.crt import CrtError
from repro.rns.encoder import (
    DuplicateSwitchError,
    EncodedRoute,
    Hop,
    RouteEncoder,
)
from repro.rns.gf2 import (
    gf2_crt,
    gf2_crt_extend,
    gf2_degree,
    gf2_divmod,
    gf2_first_noncoprime_pair,
    gf2_mod,
    min_gf2_id_for_ports,
)
from repro.rns.pool import PoolContext, PooledEncoder

__all__ = [
    "EncodingBackend",
    "CrtBackend",
    "PooledCrtBackend",
    "XsrBackend",
    "XsrEncodedRoute",
    "XsrEncoder",
    "BACKEND_NAMES",
    "backend_by_name",
]


class XsrEncodedRoute(EncodedRoute):
    """An XSR route: same fields, carry-less decode and exact bit cost.

    ``residue_map()`` (the edge-to-switch fast-path hint) is inherited
    unchanged — it is built from the hops, not from the arithmetic, so
    the PR-3 residue-hint datapath works identically under XSR.
    """

    def port_at(self, switch_id: int) -> int:
        """XSR switch decode: polynomial remainder, not integer modulo."""
        return gf2_mod(self.route_id, switch_id)

    @property
    def bit_length(self) -> int:
        """Header bits = deg(M): exact, no per-route ceiling loss."""
        return gf2_degree(self.modulus)


class XsrEncoder(RouteEncoder):
    """Controller-side XSR encoder — :class:`RouteEncoder`, carry-less.

    Same method surface (``encode`` / ``encode_path`` / ``decode`` /
    ``with_hop`` / ``without_switch``), same incremental-update
    guarantees, with every integer CRT primitive swapped for its
    GF(2)[X] twin from :mod:`repro.rns.gf2`.
    """

    def encode(self, hops: Iterable[Hop]) -> XsrEncodedRoute:
        hop_list = list(hops)
        residues: Dict[int, int] = {}
        for h in hop_list:
            if h.switch_id in residues:
                raise DuplicateSwitchError(h.switch_id)
            residues[h.switch_id] = h.port
        route_id, modulus = gf2_crt(
            [h.port for h in hop_list], [h.switch_id for h in hop_list]
        )
        return XsrEncodedRoute(
            route_id=route_id, modulus=modulus, hops=tuple(hop_list),
            _residues=residues,
        )

    def decode(self, route_id: int, switch_ids: Sequence[int]) -> List[int]:
        if route_id < 0:
            raise CrtError(f"route ID must be non-negative, got {route_id}")
        return [gf2_mod(route_id, s) for s in switch_ids]

    def with_hop(self, route: EncodedRoute, hop: Hop) -> XsrEncodedRoute:
        if route.encodes(hop.switch_id):
            raise DuplicateSwitchError(hop.switch_id)
        new_id, new_modulus = gf2_crt_extend(
            route.route_id, route.modulus, hop.switch_id, hop.port
        )
        return XsrEncodedRoute(
            route_id=new_id, modulus=new_modulus, hops=route.hops + (hop,),
            _residues={**route.residue_map(), hop.switch_id: hop.port},
        )

    def without_switch(
        self, route: EncodedRoute, switch_id: int
    ) -> XsrEncodedRoute:
        if not route.encodes(switch_id):
            raise CrtError(f"switch ID {switch_id} is not encoded in this route")
        new_modulus, rem = gf2_divmod(route.modulus, switch_id)
        if rem != 0:
            raise CrtError(
                f"modulus is not GF(2)-divisible by switch ID {switch_id}"
            )
        new_hops = tuple(h for h in route.hops if h.switch_id != switch_id)
        if not new_hops:
            raise CrtError("cannot remove the last hop of a route")
        return XsrEncodedRoute(
            route_id=gf2_mod(route.route_id, new_modulus),
            modulus=new_modulus,
            hops=new_hops,
            _residues={h.switch_id: h.port for h in new_hops},
        )


class EncodingBackend:
    """Base class / protocol for route-encoding backends.

    Subclasses set :attr:`name` and :attr:`id_strategy` and implement
    the four ``NotImplementedError`` methods; everything else
    (``decode``, ``encode_path``) is derived.

    Attributes:
        name: registry key (also the CLI / artifact spelling).
        id_strategy: the ``controller.idassign`` strategy producing IDs
            this backend can always consume (used by fuzzers and the
            bench when re-IDing a graph for a backend).
    """

    name: str = "abstract"
    id_strategy: str = "greedy"

    # -- the three operations whose math differs -----------------------

    def encoder(self) -> RouteEncoder:
        """A controller-side encoder instance for this backend."""
        raise NotImplementedError

    def encode(self, hops: Iterable[Hop]) -> EncodedRoute:
        """Encode hops into a route (convenience over :meth:`encoder`)."""
        raise NotImplementedError

    def port_at(self, route_id: int, switch_id: int) -> int:
        """The per-packet switch decode.  Must be cheap and pure."""
        raise NotImplementedError

    def header_bits(self, modulus: int) -> int:
        """Wire cost in bits of a route with product-of-IDs *modulus*."""
        raise NotImplementedError

    # -- ID feasibility -------------------------------------------------

    def min_switch_id(self, port_count: int) -> int:
        """Smallest ID this backend accepts for a *port_count*-port switch."""
        raise NotImplementedError

    def validate_switch_ids(self, ids: Sequence[int]) -> None:
        """Raise ``ValueError``/:class:`CrtError` if *ids* cannot co-exist
        in one route under this backend."""
        raise NotImplementedError

    def residue_space(self, switch_id: int) -> int:
        """Number of residues decodable at *switch_id* (ports must be
        below this).  ``R mod s`` spans ``[0, s)``; GF(2) remainders span
        only ``[0, 2^deg(s))`` — the fuzzers and property suite draw
        ports from here so every backend sees its full valid range."""
        return switch_id

    # -- derived --------------------------------------------------------

    def prepare(self, ids: Iterable[int]) -> None:
        """Announce the switch-ID universe before encoding starts.

        A no-op for stateless backends; the pooled backend builds its
        precomputed context here so :meth:`encoder` is warm from the
        first flow (the runner calls this with the graph's core IDs).
        """

    def switch_decode(self):
        """The decode callable to install in a :class:`KarSwitch`.

        ``None`` means "the switch's built-in integer ``R mod s``" —
        integer backends return None so the default datapath (and its
        digest contracts) stay byte-identical; non-integer backends
        return their :meth:`port_at`.
        """
        return self.port_at

    def encode_path(
        self, switch_ids: Sequence[int], ports: Sequence[int]
    ) -> EncodedRoute:
        return self.encoder().encode_path(switch_ids, ports)

    def decode(self, route_id: int, switch_ids: Sequence[int]) -> List[int]:
        return [self.port_at(route_id, s) for s in switch_ids]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class CrtBackend(EncodingBackend):
    """The reference integer CRT — the oracle backend."""

    name = "crt"
    id_strategy = "greedy"

    def encoder(self) -> RouteEncoder:
        return RouteEncoder()

    def encode(self, hops: Iterable[Hop]) -> EncodedRoute:
        return RouteEncoder().encode(hops)

    def port_at(self, route_id: int, switch_id: int) -> int:
        return route_id % switch_id

    def switch_decode(self):
        return None  # the switch's own integer modulo — same math

    def header_bits(self, modulus: int) -> int:
        return route_id_bit_length(modulus)

    def min_switch_id(self, port_count: int) -> int:
        return min_id_for_ports(port_count)

    def validate_switch_ids(self, ids: Sequence[int]) -> None:
        validate_pool(ids)


class PooledCrtBackend(CrtBackend):
    """Amortized integer CRT over a precomputed pool context.

    Same numbers as ``crt`` (enforced by the ``encoder`` verify oracle
    and re-checked per bench cell); only the encode cost differs.  The
    context is built lazily from the first hop set and regrown whenever
    a route uses IDs outside the current pool, so the backend works on
    arbitrary graphs while staying in the amortized regime once the ID
    universe stabilizes (the regime a controller lives in).
    """

    name = "pooled"

    def __init__(self, pool: Sequence[int] | None = None):
        self._ids: Tuple[int, ...] = tuple(sorted(pool)) if pool else ()
        self._encoder: PooledEncoder | None = (
            PooledEncoder(PoolContext(self._ids)) if self._ids else None
        )

    def prepare(self, ids: Iterable[int]) -> None:
        self._ensure(ids)

    def encoder(self) -> RouteEncoder:
        if self._encoder is None:
            raise CrtError(
                "pooled backend has an empty pool; prepare() or encode first"
            )
        return self._encoder

    def _ensure(self, ids: Iterable[int]) -> PooledEncoder:
        missing = set(ids) - set(self._ids)
        if missing or self._encoder is None:
            self._ids = tuple(sorted(set(self._ids) | missing))
            self._encoder = PooledEncoder(PoolContext(self._ids))
        return self._encoder

    def encode(self, hops: Iterable[Hop]) -> EncodedRoute:
        hop_list = list(hops)
        return self._ensure(h.switch_id for h in hop_list).encode(hop_list)


class XsrBackend(EncodingBackend):
    """XOR-based Source Routing — the CRT over GF(2)[X]."""

    name = "xsr"
    id_strategy = "xsr"

    def encoder(self) -> RouteEncoder:
        return XsrEncoder()

    def encode(self, hops: Iterable[Hop]) -> XsrEncodedRoute:
        return XsrEncoder().encode(hops)

    def port_at(self, route_id: int, switch_id: int) -> int:
        return gf2_mod(route_id, switch_id)

    def header_bits(self, modulus: int) -> int:
        return gf2_degree(modulus)

    def min_switch_id(self, port_count: int) -> int:
        # Dual constraint: PortGraph keeps the integer invariant
        # (ID >= port count) AND the polynomial remainder space must
        # cover every port index.
        return max(min_id_for_ports(port_count), min_gf2_id_for_ports(port_count))

    def residue_space(self, switch_id: int) -> int:
        return 1 << gf2_degree(switch_id)

    def validate_switch_ids(self, ids: Sequence[int]) -> None:
        validate_pool(ids)  # integer invariant still holds graph-wide
        bad = gf2_first_noncoprime_pair(ids)
        if bad is not None:
            raise ValueError(
                f"switch IDs {bad[0]} and {bad[1]} are not coprime as "
                f"binary polynomials; XSR needs GF(2)-pairwise-coprime IDs "
                f"(use the 'xsr' idassign strategy)"
            )


#: Registry, sorted — the CLI mirrors this tuple literally
#: (``cli._BACKEND_NAMES``) and a test asserts they stay in sync.
BACKEND_NAMES: Tuple[str, ...] = ("crt", "pooled", "xsr")

_FACTORIES = {
    "crt": CrtBackend,
    "pooled": PooledCrtBackend,
    "xsr": XsrBackend,
}


def backend_by_name(name: str, pool: Sequence[int] | None = None) -> EncodingBackend:
    """Instantiate a backend from its registry name.

    Args:
        name: one of :data:`BACKEND_NAMES`.
        pool: optional switch-ID pool, used by the ``pooled`` backend to
            precompute its context up front (others ignore it).

    >>> backend_by_name("xsr").name
    'xsr'
    >>> backend_by_name("nope")
    Traceback (most recent call last):
        ...
    ValueError: unknown encoding backend 'nope'; choose from ['crt', 'pooled', 'xsr']
    """
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown encoding backend {name!r}; choose from {sorted(_FACTORIES)}"
        )
    if name == "pooled":
        return PooledCrtBackend(pool)
    return _FACTORIES[name]()
