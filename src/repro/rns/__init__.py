"""Residue Number System route encoding — the core KAR contribution.

Public surface:

* :func:`repro.rns.crt.crt` and friends — CRT arithmetic (the reference
  solver every faster encoder is checked against).
* :class:`repro.rns.encoder.RouteEncoder` / :class:`~repro.rns.encoder.EncodedRoute`
  — (switch, port) hops ⇄ integer route IDs, with incremental updates.
* :mod:`repro.rns.pool` — amortized control-plane encoding:
  :class:`~repro.rns.pool.PoolContext` (per-pool precomputed CRT basis
  weights + memoized subset products), :class:`~repro.rns.pool.PooledEncoder`
  (bit-identical drop-in for :class:`~repro.rns.encoder.RouteEncoder`),
  and :class:`~repro.rns.pool.ReencodeDelta` (single-addend failure-time
  re-encodes).
* :mod:`repro.rns.coprime` — switch-ID pool generation/validation.
* :mod:`repro.rns.bitlength` — header-size analysis (Eq. 9, Table 1).
* :mod:`repro.rns.backends` — pluggable encoding backends
  (:class:`~repro.rns.backends.EncodingBackend`): reference CRT, pooled
  CRT, and the carry-less XSR datapath built on :mod:`repro.rns.gf2`.
"""

from repro.rns.backends import (
    BACKEND_NAMES,
    CrtBackend,
    EncodingBackend,
    PooledCrtBackend,
    XsrBackend,
    XsrEncodedRoute,
    XsrEncoder,
    backend_by_name,
)
from repro.rns.bitlength import (
    BitLengthReport,
    bit_length_for_switches,
    bit_length_growth,
    max_hops_within_budget,
    route_id_bit_length,
)
from repro.rns.coprime import (
    greedy_coprime_pool,
    is_prime,
    min_id_for_ports,
    prime_pool,
    validate_pool,
)
from repro.rns.crt import (
    CrtError,
    NotCoprimeError,
    crt,
    egcd,
    first_noncoprime_pair,
    modular_inverse,
    pairwise_coprime,
)
from repro.rns.encoder import DuplicateSwitchError, EncodedRoute, Hop, RouteEncoder
from repro.rns.gf2 import (
    Gf2NotCoprimeError,
    dual_coprime_pool,
    gf2_crt,
    gf2_crt_extend,
    gf2_degree,
    gf2_mod,
    gf2_mul,
    gf2_pairwise_coprime,
    min_gf2_id_for_ports,
)
from repro.rns.pool import PoolContext, PooledEncoder, ReencodeDelta, product_tree

__all__ = [
    "crt",
    "egcd",
    "modular_inverse",
    "pairwise_coprime",
    "first_noncoprime_pair",
    "CrtError",
    "NotCoprimeError",
    "Hop",
    "EncodedRoute",
    "RouteEncoder",
    "DuplicateSwitchError",
    "PoolContext",
    "PooledEncoder",
    "ReencodeDelta",
    "product_tree",
    "route_id_bit_length",
    "bit_length_for_switches",
    "bit_length_growth",
    "max_hops_within_budget",
    "BitLengthReport",
    "prime_pool",
    "greedy_coprime_pool",
    "validate_pool",
    "is_prime",
    "min_id_for_ports",
    "EncodingBackend",
    "CrtBackend",
    "PooledCrtBackend",
    "XsrBackend",
    "XsrEncodedRoute",
    "XsrEncoder",
    "BACKEND_NAMES",
    "backend_by_name",
    "gf2_crt",
    "gf2_crt_extend",
    "gf2_degree",
    "gf2_mod",
    "gf2_mul",
    "gf2_pairwise_coprime",
    "dual_coprime_pool",
    "min_gf2_id_for_ports",
    "Gf2NotCoprimeError",
]
