"""Number-theoretic primitives behind the KAR route encoding.

KAR (Key-for-Any-Route) represents a forwarding path as a single integer,
the *route ID*.  Each core switch ``s_i`` on the path must emit the packet
on output port ``p_i``, and the route ID ``R`` is chosen such that::

    R mod s_i == p_i        for every switch i on the path

This is exactly a system of simultaneous congruences, solvable by the
Chinese Remainder Theorem (CRT) whenever the moduli (the switch IDs) are
pairwise coprime.  This module provides the arithmetic core:

* :func:`egcd` — extended Euclidean algorithm,
* :func:`modular_inverse` — modular multiplicative inverse,
* :func:`crt` — CRT solver (Eq. 4 of the paper),
* :func:`pairwise_coprime` — the KAR switch-ID precondition.

All functions operate on plain Python integers, so route IDs of arbitrary
bit length (Section 2.3 of the paper) are supported without overflow.

:func:`crt` is the **reference** solver: it re-derives everything from
its arguments on every call and stays deliberately simple, because it is
the oracle every faster encoder is verified against.  The amortized
control-plane encoders — precomputed per-pool contexts, cached subset
products, and single-addend incremental re-encodes — live in
:mod:`repro.rns.pool`.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

__all__ = [
    "egcd",
    "modular_inverse",
    "crt",
    "crt_extend",
    "pairwise_coprime",
    "first_noncoprime_pair",
    "CrtError",
    "NotCoprimeError",
]


class CrtError(ValueError):
    """Raised when a CRT system is malformed (bad residues or moduli)."""


class NotCoprimeError(CrtError):
    """Raised when moduli that must be pairwise coprime are not.

    Attributes:
        pair: the offending ``(a, b)`` moduli pair.
        gcd: their greatest common divisor (> 1).
    """

    def __init__(self, pair: Tuple[int, int], gcd: int):
        self.pair = pair
        self.gcd = gcd
        super().__init__(
            f"moduli {pair[0]} and {pair[1]} are not coprime (gcd={gcd}); "
            f"KAR switch IDs must be pairwise coprime"
        )


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``.

    The implementation is iterative, so it is safe for very large route IDs
    (no recursion-depth limits).

    >>> egcd(44, 7)
    (1, -3, 19)
    >>> 44 * -3 + 7 * 19
    1
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def modular_inverse(a: int, modulus: int) -> int:
    """Return ``L`` such that ``(L * a) % modulus == 1`` (Eq. 7/8).

    This is the ``L_i = <M_i^{-1}>_{s_i}`` term of the paper's CRT
    reconstruction.  Raises :class:`NotCoprimeError` when the inverse does
    not exist (``gcd(a, modulus) != 1``).

    >>> modular_inverse(77, 4)
    1
    >>> modular_inverse(44, 7)
    4
    >>> modular_inverse(28, 11)
    2
    """
    if modulus <= 0:
        raise CrtError(f"modulus must be positive, got {modulus}")
    g, x, _ = egcd(a % modulus, modulus)
    if g != 1:
        raise NotCoprimeError((a, modulus), g)
    return x % modulus


def pairwise_coprime(values: Iterable[int]) -> bool:
    """Return True iff every pair of *values* has gcd 1.

    KAR requires the set of switch IDs in a network to be pairwise
    coprime; IDs need not be prime themselves (the paper uses 4, 9, 10...).

    >>> pairwise_coprime([4, 5, 7, 11])
    True
    >>> pairwise_coprime([4, 6, 7])
    False
    """
    return first_noncoprime_pair(values) is None


def first_noncoprime_pair(values: Iterable[int]) -> Tuple[int, int] | None:
    """Return the first pair with gcd > 1, or None if pairwise coprime.

    Useful for error messages: the caller learns *which* switch IDs clash.
    Runs in O(n²) gcd computations — acceptable as a one-time validation,
    but far too slow to repeat on every encode.  Hot callers therefore
    run it once at pool construction (:class:`repro.rns.pool.PoolContext`
    caches the validated-coprime verdict) and pass
    ``assume_coprime=True`` to :func:`crt` afterwards.
    """
    vals = list(values)
    for i, a in enumerate(vals):
        for b in vals[i + 1:]:
            if math.gcd(a, b) != 1:
                return (a, b)
    return None


def crt(
    residues: Sequence[int],
    moduli: Sequence[int],
    *,
    assume_coprime: bool = False,
) -> Tuple[int, int]:
    """Solve the CRT system ``x ≡ residues[i] (mod moduli[i])``.

    Implements Eq. 4 of the paper::

        R = < sum_i  p_i * M_i * L_i >_M

    with ``M = prod(moduli)``, ``M_i = M / s_i`` and ``L_i`` the modular
    inverse of ``M_i`` modulo ``s_i``.

    Args:
        residues: the desired remainders (output-port indexes in KAR).
        moduli: pairwise-coprime moduli (switch IDs in KAR).
        assume_coprime: skip the O(n²) pairwise-coprimality re-check.
            Only pass True for moduli drawn from a pool that was already
            validated (e.g. at :class:`repro.rns.pool.PoolContext`
            construction, or via :func:`repro.rns.coprime.validate_pool`).
            The result on genuinely non-coprime moduli is then undefined
            (an inverse may still fail with :class:`NotCoprimeError`,
            but silent wrong answers are possible for e.g. duplicates).

    Returns:
        ``(R, M)`` where ``R`` is the unique solution in ``[0, M)`` and
        ``M`` is the product of the moduli.

    Raises:
        CrtError: on length mismatch, empty system, or residues out of
            range ``[0, modulus)``.
        NotCoprimeError: when the moduli are not pairwise coprime.

    >>> crt([0, 2, 0], [4, 7, 11])
    (44, 308)
    >>> crt([0, 2, 0, 0], [4, 7, 11, 5])
    (660, 1540)
    >>> crt([0, 2, 0], [4, 7, 11], assume_coprime=True)
    (44, 308)
    """
    if len(residues) != len(moduli):
        raise CrtError(
            f"residue/modulus length mismatch: {len(residues)} vs {len(moduli)}"
        )
    if not moduli:
        raise CrtError("cannot solve an empty CRT system")
    for p, s in zip(residues, moduli):
        if s <= 1:
            raise CrtError(f"modulus must be > 1, got {s}")
        if not 0 <= p < s:
            raise CrtError(
                f"residue {p} out of range for modulus {s}: "
                f"a switch with ID {s} only has ports 0..{s - 1} addressable"
            )
    if not assume_coprime:
        bad = first_noncoprime_pair(moduli)
        if bad is not None:
            raise NotCoprimeError(bad, math.gcd(*bad))

    M = math.prod(moduli)
    total = 0
    for p, s in zip(residues, moduli):
        M_i = M // s
        L_i = modular_inverse(M_i, s)
        total += p * M_i * L_i
    return total % M, M


def crt_extend(
    route_id: int, modulus: int, switch_id: int, port: int
) -> Tuple[int, int]:
    """Extend a solved CRT system by one congruence, incrementally.

    Given the unique ``route_id`` in ``[0, modulus)`` of an existing
    system, fold in ``x ≡ port (mod switch_id)`` and return the unique
    solution of the extended system in ``[0, modulus * switch_id)`` —
    bit-identical to re-solving the whole system with :func:`crt`, in
    O(1) modular operations::

        x = R + M * t   with   t = <(port - R) * M^{-1}>_{switch_id}

    This is the primitive behind both incremental protection
    (:meth:`repro.rns.encoder.RouteEncoder.with_hop`) and the bulk
    provisioner's down-tree encoding (:mod:`repro.controller.bulk`):
    a child's route shares every residue of its parent's route plus one
    new hop, so the whole all-pairs mesh costs one ``crt_extend`` per
    (destination, switch) instead of one full solve per flow.

    Raises:
        CrtError: on a residue out of range.
        NotCoprimeError: when ``switch_id`` shares a factor with
            ``modulus``.

    >>> crt_extend(44, 308, 5, 0)
    (660, 1540)
    >>> crt_extend(*crt([0], [4]), 7, 2)[0] % 7
    2
    """
    if switch_id <= 1:
        raise CrtError(f"modulus must be > 1, got {switch_id}")
    if not 0 <= port < switch_id:
        raise CrtError(
            f"residue {port} out of range for modulus {switch_id}: "
            f"a switch with ID {switch_id} only has ports "
            f"0..{switch_id - 1} addressable"
        )
    inv = modular_inverse(modulus, switch_id)
    t = ((port - route_id) * inv) % switch_id
    return route_id + modulus * t, modulus * switch_id
