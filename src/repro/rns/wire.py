"""Wire format for the KAR shim header.

Section 2.3 of the paper discusses the route-ID field's bit length but
the prototype patches it into an OpenFlow metadata field; a deployable
KAR needs an actual header.  This module defines a compact, versioned
shim (think MPLS-label-like, between L2 and L3) and a byte-exact
codec:

::

    0               1               2               3
    +-------+-------+---------------+-------------------------------+
    | ver=1 | flags |  ttl (8 bit)  |   route-ID length (16 bit, L) |
    +-------+-------+---------------+-------------------------------+
    |                  route ID  (L bytes, big endian)              |
    +---------------------------------------------------------------+

Flags: bit 0 = deflected.  The route-ID field is sized per packet to
``ceil(bits/8)`` of the route's modulus, so short routes pay only a few
bytes — the property the paper's partial protection exists to preserve.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from repro.rns.bitlength import route_id_bit_length
from repro.sim.packet import KarHeader

__all__ = [
    "WIRE_VERSION",
    "FIXED_HEADER_BYTES",
    "WireError",
    "encode_header",
    "decode_header",
    "header_wire_size",
]

WIRE_VERSION = 1

#: Version/flags byte + TTL byte + 2-byte route-ID length.
FIXED_HEADER_BYTES = 4

_FLAG_DEFLECTED = 0x01

_FIXED = struct.Struct("!BBH")


class WireError(ValueError):
    """Raised on malformed header bytes or unencodable values."""


def header_wire_size(modulus: int) -> int:
    """Total shim bytes for a route with the given modulus.

    >>> header_wire_size(308)     # 9-bit route ID -> 2 bytes payload
    6
    >>> header_wire_size(1540)    # 11 bits -> 2 bytes
    6
    """
    if modulus < 2:
        raise WireError(f"modulus must be >= 2, got {modulus}")
    bits = route_id_bit_length(modulus)
    return FIXED_HEADER_BYTES + (bits + 7) // 8


def encode_header(header: KarHeader) -> bytes:
    """Serialize a :class:`~repro.sim.packet.KarHeader` to bytes.

    The route-ID field length comes from the header's modulus when
    known (controller-stamped headers), else from the route ID's own
    magnitude.
    """
    if header.route_id < 0:
        raise WireError(f"route ID must be non-negative: {header.route_id}")
    if not 0 <= header.ttl <= 255:
        raise WireError(f"ttl must fit one byte, got {header.ttl}")
    if header.modulus >= 2:
        bits = route_id_bit_length(header.modulus)
        if header.route_id >= header.modulus:
            raise WireError(
                f"route ID {header.route_id} out of range for modulus "
                f"{header.modulus}"
            )
    else:
        bits = max(1, header.route_id.bit_length())
    length = (bits + 7) // 8
    flags = _FLAG_DEFLECTED if header.deflected else 0
    first = (WIRE_VERSION << 4) | flags
    return _FIXED.pack(first, header.ttl, length) + header.route_id.to_bytes(
        length, "big"
    )


def decode_header(data: bytes) -> Tuple[KarHeader, int]:
    """Parse a shim header from the front of *data*.

    Returns:
        ``(header, consumed_bytes)``.  The decoded header's ``modulus``
        is 0 (the wire does not carry it; switches never need it).

    Raises:
        WireError: on truncation, bad version, or zero-length route ID.
    """
    if len(data) < FIXED_HEADER_BYTES:
        raise WireError(
            f"truncated header: {len(data)} < {FIXED_HEADER_BYTES} bytes"
        )
    first, ttl, length = _FIXED.unpack_from(data)
    version = first >> 4
    if version != WIRE_VERSION:
        raise WireError(f"unsupported KAR header version {version}")
    if length == 0:
        raise WireError("zero-length route-ID field")
    end = FIXED_HEADER_BYTES + length
    if len(data) < end:
        raise WireError(
            f"truncated route ID: need {end} bytes, have {len(data)}"
        )
    route_id = int.from_bytes(data[FIXED_HEADER_BYTES:end], "big")
    header = KarHeader(
        route_id=route_id,
        modulus=0,
        deflected=bool(first & _FLAG_DEFLECTED),
        ttl=ttl,
    )
    return header, end
