"""Wire format for the KAR shim header.

Section 2.3 of the paper discusses the route-ID field's bit length but
the prototype patches it into an OpenFlow metadata field; a deployable
KAR needs an actual header.  This module defines a compact, versioned
shim (think MPLS-label-like, between L2 and L3) and a byte-exact
codec:

::

    0               1               2               3
    +-------+-------+---------------+-------------------------------+
    | ver=1 | flags |  ttl (8 bit)  |   route-ID length (16 bit, L) |
    +-------+-------+---------------+-------------------------------+
    |                  route ID  (L bytes, big endian)              |
    +---------------------------------------------------------------+

Flags: bit 0 = deflected.  The route-ID field carries the route ID in
its **canonical** (minimal big-endian) byte form, so short routes pay
only a few bytes — the property the paper's partial protection exists
to preserve.  :func:`header_wire_size` gives the per-route worst case
(every route ID under the route's modulus fits), which is the figure
the header-overhead accounting uses.

The codec is a proven inverse pair: ``decode(encode(h))`` recovers
every wire-carried field of ``h`` exactly, and ``encode(decode(b)[0])
== b`` for every byte string ``decode`` accepts.  To make the second
direction hold, decode *rejects* non-canonical encodings — a length
field padding the route ID with leading zero bytes — instead of
silently accepting bytes the encoder can never produce.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from repro.rns.bitlength import route_id_bit_length
from repro.sim.packet import KarHeader

__all__ = [
    "WIRE_VERSION",
    "FIXED_HEADER_BYTES",
    "WireError",
    "encode_header",
    "decode_header",
    "header_wire_size",
]

WIRE_VERSION = 1

#: Version/flags byte + TTL byte + 2-byte route-ID length.
FIXED_HEADER_BYTES = 4

_FLAG_DEFLECTED = 0x01

_FIXED = struct.Struct("!BBH")


class WireError(ValueError):
    """Raised on malformed header bytes or unencodable values."""


#: Upper bound on the route-ID field (the length field is 16 bits).
MAX_ROUTE_ID_BYTES = 0xFFFF


def header_wire_size(modulus: int) -> int:
    """Worst-case total shim bytes for a route with the given modulus.

    Every route ID under *modulus* fits in this many bytes; the actual
    canonical encoding of a specific (small) route ID may be shorter.
    This is the per-route accounting figure (Eq. 9 rounded to bytes).

    >>> header_wire_size(308)     # 9-bit route ID -> 2 bytes payload
    6
    >>> header_wire_size(1540)    # 11 bits -> 2 bytes
    6
    """
    if modulus < 2:
        raise WireError(f"modulus must be >= 2, got {modulus}")
    bits = route_id_bit_length(modulus)
    return FIXED_HEADER_BYTES + (bits + 7) // 8


def encode_header(header: KarHeader) -> bytes:
    """Serialize a :class:`~repro.sim.packet.KarHeader` to bytes.

    The route-ID field uses the canonical (minimal big-endian) length
    for the route ID's magnitude, never zero-padded — the unique byte
    form :func:`decode_header` accepts, making the codec an inverse
    pair.  A header's modulus, when known, only *validates* the route
    ID; it never pads the field.
    """
    if header.route_id < 0:
        raise WireError(f"route ID must be non-negative: {header.route_id}")
    if not 0 <= header.ttl <= 255:
        raise WireError(f"ttl must fit one byte, got {header.ttl}")
    if header.modulus >= 2 and header.route_id >= header.modulus:
        raise WireError(
            f"route ID {header.route_id} out of range for modulus "
            f"{header.modulus}"
        )
    length = max(1, (header.route_id.bit_length() + 7) // 8)
    if length > MAX_ROUTE_ID_BYTES:
        raise WireError(
            f"route ID needs {length} bytes; the 16-bit length field "
            f"caps it at {MAX_ROUTE_ID_BYTES}"
        )
    flags = _FLAG_DEFLECTED if header.deflected else 0
    first = (WIRE_VERSION << 4) | flags
    return _FIXED.pack(first, header.ttl, length) + header.route_id.to_bytes(
        length, "big"
    )


def decode_header(data: bytes) -> Tuple[KarHeader, int]:
    """Parse a shim header from the front of *data*.

    Returns:
        ``(header, consumed_bytes)``.  The decoded header's ``modulus``
        is 0 (the wire does not carry it; switches never need it).

    Raises:
        WireError: on truncation, bad version, zero-length route ID, or
            a non-canonical (leading-zero-padded) route-ID field —
            bytes :func:`encode_header` can never produce.
    """
    if len(data) < FIXED_HEADER_BYTES:
        raise WireError(
            f"truncated header: {len(data)} < {FIXED_HEADER_BYTES} bytes"
        )
    first, ttl, length = _FIXED.unpack_from(data)
    version = first >> 4
    if version != WIRE_VERSION:
        raise WireError(f"unsupported KAR header version {version}")
    flags = first & 0x0F
    if flags & ~_FLAG_DEFLECTED:
        raise WireError(
            f"unknown flag bits 0x{flags & ~_FLAG_DEFLECTED:x} in a "
            f"version-{WIRE_VERSION} header"
        )
    if length == 0:
        raise WireError("zero-length route-ID field")
    end = FIXED_HEADER_BYTES + length
    if len(data) < end:
        raise WireError(
            f"truncated route ID: need {end} bytes, have {len(data)}"
        )
    if length > 1 and data[FIXED_HEADER_BYTES] == 0:
        raise WireError(
            "non-canonical route-ID field: leading zero byte in a "
            f"{length}-byte field"
        )
    route_id = int.from_bytes(data[FIXED_HEADER_BYTES:end], "big")
    header = KarHeader(
        route_id=route_id,
        modulus=0,
        deflected=bool(first & _FLAG_DEFLECTED),
        ttl=ttl,
    )
    return header, end
