"""Carry-less (GF(2)[X]) arithmetic for the XSR encoding backend.

XOR-based Source Routing (XSR, Lacan & Lochin) is the Chinese Remainder
Theorem transplanted from the integers to the ring of binary polynomials
GF(2)[X].  An integer ``n`` is read as the polynomial whose coefficients
are the bits of ``n`` (bit *i* is the coefficient of ``X^i``), addition
becomes XOR (carry-less, so it is its own inverse), and multiplication
becomes a carry-less shift-and-XOR product.  The route ID ``R`` is the
unique polynomial with ``deg R < deg M`` such that::

    R mod s_i == p_i        (polynomial remainder, per switch i)

Why bother with a second datapath?  Two properties the integer CRT does
not have:

* the switch-side decode is a shift/XOR loop — no carries, no integer
  division — which maps directly onto CLMUL-style hardware; and
* header cost is exactly ``deg(M) = sum_i deg(s_i)`` bits, with **zero**
  rounding loss per route (the integer encoding pays the fractional bit
  of every ``log2 s_i`` at ceil time, Eq. 9).

The trade is modulus density: only ~1/2 of integers of a given bit
length are odd-weight-coprime-friendly polynomials, so GF(2)-coprime ID
pools climb in value faster than integer-coprime pools.  The
``repro bench encoding`` study quantifies both sides.

Everything here mirrors :mod:`repro.rns.crt` name-for-name
(``gf2_crt`` ↔ ``crt``, ``gf2_crt_extend`` ↔ ``crt_extend``...) so the
two backends stay diff-able, and the same exception types
(:class:`~repro.rns.crt.CrtError`, subclassed by
:class:`Gf2NotCoprimeError`) flow through unchanged callers.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro.rns.crt import CrtError

__all__ = [
    "gf2_degree",
    "gf2_mul",
    "gf2_divmod",
    "gf2_mod",
    "gf2_gcd",
    "gf2_egcd",
    "gf2_inverse",
    "gf2_pairwise_coprime",
    "gf2_first_noncoprime_pair",
    "gf2_crt",
    "gf2_crt_extend",
    "gf2_product",
    "dual_coprime_pool",
    "min_gf2_id_for_ports",
    "Gf2NotCoprimeError",
]


class Gf2NotCoprimeError(CrtError):
    """Moduli that must be GF(2)-pairwise-coprime are not.

    Attributes:
        pair: the offending ``(a, b)`` moduli pair (as integers).
        gcd: their polynomial gcd (> 1 as an integer).
    """

    def __init__(self, pair: Tuple[int, int], gcd: int):
        self.pair = pair
        self.gcd = gcd
        super().__init__(
            f"polynomials {bin(pair[0])} and {bin(pair[1])} share the "
            f"GF(2) factor {bin(gcd)}; XSR switch IDs must be pairwise "
            f"coprime as binary polynomials"
        )


def gf2_degree(a: int) -> int:
    """Degree of the polynomial *a*; -1 for the zero polynomial.

    >>> gf2_degree(0b1011)
    3
    >>> gf2_degree(1), gf2_degree(0)
    (0, -1)
    """
    return a.bit_length() - 1


def gf2_mul(a: int, b: int) -> int:
    """Carry-less product of two binary polynomials.

    >>> gf2_mul(0b11, 0b11)   # (x+1)^2 = x^2+1 — no middle term, no carry
    5
    >>> gf2_mul(0b111, 0b10)  # shift by one
    14
    """
    if a < 0 or b < 0:
        raise CrtError("GF(2) polynomials are non-negative integers")
    out = 0
    while b:
        if b & 1:
            out ^= a
        a <<= 1
        b >>= 1
    return out


def gf2_divmod(a: int, b: int) -> Tuple[int, int]:
    """Polynomial long division: return ``(q, r)`` with ``a = q*b ^ r``.

    ``deg r < deg b`` on return.  This is the XSR switch datapath: the
    remainder loop is a pure shift/XOR pipeline (no carries).

    >>> gf2_divmod(0b1100, 0b101)  # x^3+x^2 = (x+1)(x^2+1) ^ (x+1)
    (3, 3)
    """
    if b <= 0:
        raise CrtError(f"GF(2) divisor must be a nonzero polynomial, got {b}")
    if a < 0:
        raise CrtError("GF(2) polynomials are non-negative integers")
    db = gf2_degree(b)
    q = 0
    while a.bit_length() - 1 >= db and a:
        shift = (a.bit_length() - 1) - db
        q ^= 1 << shift
        a ^= b << shift
    return q, a


def gf2_mod(a: int, b: int) -> int:
    """Polynomial remainder ``a mod b`` — the XSR per-switch decode.

    >>> gf2_mod(0b1101, 0b111)  # x^3+x^2+1 = x(x^2+x+1) ^ (x+1)
    3
    """
    if b <= 0:
        raise CrtError(f"GF(2) divisor must be a nonzero polynomial, got {b}")
    if a < 0:
        raise CrtError("GF(2) polynomials are non-negative integers")
    db = gf2_degree(b)
    while a.bit_length() - 1 >= db and a:
        a ^= b << ((a.bit_length() - 1) - db)
    return a


def gf2_gcd(a: int, b: int) -> int:
    """Polynomial gcd (monic by construction — GF(2) has one unit).

    >>> gf2_gcd(0b1100, 0b1010)  # x^3+x^2 and x^3+x share x(x+1)
    6
    >>> gf2_gcd(0b111, 0b11)
    1
    """
    while b:
        a, b = b, gf2_mod(a, b)
    return a


def gf2_egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclid in GF(2)[X]: ``(g, x, y)`` with ``a·x ^ b·y = g``.

    >>> g, x, y = gf2_egcd(0b111, 0b101)
    >>> g, gf2_mul(0b111, x) ^ gf2_mul(0b101, y)
    (1, 1)
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q, rem = gf2_divmod(old_r, r)
        old_r, r = r, rem
        old_x, x = x, old_x ^ gf2_mul(q, x)
        old_y, y = y, old_y ^ gf2_mul(q, y)
    return old_r, old_x, old_y


def gf2_inverse(a: int, modulus: int) -> int:
    """Return ``L`` with ``gf2_mod(gf2_mul(L, a), modulus) == 1``.

    Raises :class:`Gf2NotCoprimeError` when no inverse exists.

    >>> gf2_mod(gf2_mul(gf2_inverse(0b10, 0b111), 0b10), 0b111)
    1
    """
    if modulus <= 1:
        raise CrtError(
            f"GF(2) modulus must have degree >= 1, got {modulus}"
        )
    g, x, _ = gf2_egcd(gf2_mod(a, modulus), modulus)
    if g != 1:
        raise Gf2NotCoprimeError((a, modulus), g)
    return gf2_mod(x, modulus)


def gf2_first_noncoprime_pair(
    values: Iterable[int],
) -> Tuple[int, int] | None:
    """First pair with polynomial gcd != 1, or None.

    O(n²) polynomial gcds — a one-time pool validation, mirroring
    :func:`repro.rns.crt.first_noncoprime_pair`.
    """
    vals = list(values)
    for i, a in enumerate(vals):
        for b in vals[i + 1:]:
            if gf2_gcd(a, b) != 1:
                return (a, b)
    return None


def gf2_pairwise_coprime(values: Iterable[int]) -> bool:
    """True iff every pair of *values* is coprime as binary polynomials.

    >>> gf2_pairwise_coprime([2, 3, 7])
    True
    >>> gf2_pairwise_coprime([2, 4])   # x divides x^2
    False
    """
    return gf2_first_noncoprime_pair(values) is None


def gf2_product(values: Sequence[int]) -> int:
    """Carry-less product of all *values* (the XSR modulus M).

    ``deg(M)`` — not ``bit_length(M)`` — is the XSR header cost.
    """
    out = 1
    for v in values:
        out = gf2_mul(out, v)
    return out


def gf2_crt(
    residues: Sequence[int],
    moduli: Sequence[int],
    *,
    assume_coprime: bool = False,
) -> Tuple[int, int]:
    """Solve ``x ≡ residues[i] (mod moduli[i])`` in GF(2)[X].

    The Eq. 4 reconstruction, verbatim but carry-less::

        R = < XOR_i  p_i · M_i · L_i >_M

    with ``M = prod moduli``, ``M_i = M / s_i`` (exact polynomial
    division) and ``L_i`` the GF(2) inverse of ``M_i`` mod ``s_i``.

    Returns ``(R, M)`` with ``deg R < deg M``; residue validity requires
    ``deg(p_i) < deg(s_i)`` (i.e. ``p_i < 2**deg(s_i)``), strictly
    tighter than the integer backend's ``p_i < s_i``.

    >>> R, M = gf2_crt([0, 2, 0], [7, 11, 13])
    >>> [gf2_mod(R, s) for s in (7, 11, 13)]
    [0, 2, 0]
    """
    if len(residues) != len(moduli):
        raise CrtError(
            f"residue/modulus length mismatch: {len(residues)} vs {len(moduli)}"
        )
    if not moduli:
        raise CrtError("cannot solve an empty CRT system")
    for p, s in zip(residues, moduli):
        if s <= 1:
            raise CrtError(
                f"GF(2) modulus must have degree >= 1, got {s}"
            )
        if not 0 <= p < (1 << gf2_degree(s)):
            raise CrtError(
                f"residue {p} out of range for GF(2) modulus {s}: "
                f"degree-{gf2_degree(s)} remainders cover only "
                f"0..{(1 << gf2_degree(s)) - 1}"
            )
    if not assume_coprime:
        bad = gf2_first_noncoprime_pair(moduli)
        if bad is not None:
            raise Gf2NotCoprimeError(bad, gf2_gcd(*bad))

    M = gf2_product(moduli)
    total = 0
    for p, s in zip(residues, moduli):
        M_i, rem = gf2_divmod(M, s)
        assert rem == 0
        L_i = gf2_inverse(M_i, s)
        total ^= gf2_mul(p, gf2_mul(M_i, L_i))
    return gf2_mod(total, M), M


def gf2_crt_extend(
    route_id: int, modulus: int, switch_id: int, port: int
) -> Tuple[int, int]:
    """Fold one congruence into a solved GF(2) system, incrementally.

    The carry-less twin of :func:`repro.rns.crt.crt_extend`::

        x = R ^ M·t   with   t = <(port ^ R) · M^{-1}>_{switch_id}

    (subtraction *is* XOR in GF(2), which is why the delta form is even
    simpler than the integer one).  Bit-identical to re-solving the whole
    system with :func:`gf2_crt`.

    >>> R, M = gf2_crt([1, 2], [7, 11])
    >>> gf2_crt_extend(R, M, 13, 3) == gf2_crt([1, 2, 3], [7, 11, 13])
    True
    """
    if switch_id <= 1:
        raise CrtError(
            f"GF(2) modulus must have degree >= 1, got {switch_id}"
        )
    if not 0 <= port < (1 << gf2_degree(switch_id)):
        raise CrtError(
            f"residue {port} out of range for GF(2) modulus {switch_id}: "
            f"degree-{gf2_degree(switch_id)} remainders cover only "
            f"0..{(1 << gf2_degree(switch_id)) - 1}"
        )
    inv = gf2_inverse(modulus, switch_id)
    t = gf2_mod(gf2_mul(port ^ gf2_mod(route_id, switch_id), inv), switch_id)
    return route_id ^ gf2_mul(modulus, t), gf2_mul(modulus, switch_id)


def min_gf2_id_for_ports(port_count: int) -> int:
    """Smallest XSR-legal switch ID for *port_count* ports.

    A polynomial modulus of degree *d* yields remainders ``0..2^d - 1``,
    so addressing ``port_count`` ports needs
    ``d >= ceil(log2(port_count))`` — the ID must be at least
    ``2^ceil(log2(port_count))`` (and at least 2: degree-0 polynomials
    are units).

    >>> [min_gf2_id_for_ports(p) for p in (0, 1, 2, 3, 4, 5, 9)]
    [2, 2, 2, 4, 4, 8, 16]
    """
    if port_count <= 2:
        return 2
    return 1 << (port_count - 1).bit_length()


def dual_coprime_pool(count: int, min_value: int = 2) -> List[int]:
    """*count* integers pairwise coprime **both** in Z and in GF(2)[X].

    Greedy smallest-first, mirroring
    :func:`repro.rns.coprime.greedy_coprime_pool`.  A dual-coprime pool
    lets one :class:`~repro.topology.graph.PortGraph` serve the integer
    and XSR backends simultaneously: ``PortGraph.validate`` keeps its
    integer-coprimality invariant, and the XSR encoder gets
    polynomial-coprime moduli from the very same IDs.

    Density is the price of duality — even integers collide in Z, and
    e.g. 4 (= x²) collides with 2 (= x) in GF(2), so the pool climbs
    faster than either single-ring pool:

    >>> dual_coprime_pool(6)
    [2, 3, 7, 11, 13, 19]
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    out: List[int] = []
    n = max(2, min_value)
    while len(out) < count:
        if all(
            math.gcd(n, c) == 1 and gf2_gcd(n, c) == 1 for c in out
        ):
            out.append(n)
        n += 1
    return out
