"""Generation and validation of pairwise-coprime switch-ID pools.

Every KAR core switch carries a small integer ID, and the set of IDs used
inside one domain must be pairwise coprime so that any subset of switches
can appear together in a CRT system (route ID).  A switch with ID ``s``
can address output ports ``0 .. s-1``, so an ID must also be strictly
larger than the switch's port count.

Two assignment strategies are provided (and compared in the ablation
benchmarks):

* :func:`prime_pool` — consecutive primes starting at a minimum value.
  Simple and always valid, but IDs (and therefore route-ID bit lengths,
  Eq. 9) grow faster than necessary.
* :func:`greedy_coprime_pool` — smallest integers that are pairwise
  coprime with everything chosen so far (yields composites such as 4, 9,
  25, 49 alongside primes), minimising the product M for a given pool
  size.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence

from repro.rns.crt import first_noncoprime_pair

__all__ = [
    "is_prime",
    "primes",
    "prime_pool",
    "greedy_coprime_pool",
    "validate_pool",
    "min_id_for_ports",
]


def is_prime(n: int) -> bool:
    """Deterministic primality test by trial division.

    Adequate for switch-ID magnitudes (small integers); not intended for
    cryptographic sizes.

    >>> [x for x in range(2, 20) if is_prime(x)]
    [2, 3, 5, 7, 11, 13, 17, 19]
    """
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def primes(start: int = 2) -> Iterator[int]:
    """Yield primes >= *start*, in increasing order, forever."""
    n = max(2, start)
    while True:
        if is_prime(n):
            yield n
        n += 1


def min_id_for_ports(port_count: int) -> int:
    """Smallest legal switch ID for a switch with *port_count* ports.

    The modulo operation produces values in ``[0, id)``; to address every
    port the ID must exceed the largest port index, i.e. be at least
    ``port_count`` — and at least 2, since 0 and 1 are useless moduli.
    """
    return max(2, port_count)


def prime_pool(count: int, min_value: int = 2) -> List[int]:
    """Return the first *count* primes that are >= *min_value*.

    >>> prime_pool(4, min_value=5)
    [5, 7, 11, 13]
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    out: List[int] = []
    for p in primes(min_value):
        if len(out) == count:
            break
        out.append(p)
    return out


def greedy_coprime_pool(count: int, min_value: int = 2) -> List[int]:
    """Return *count* pairwise-coprime integers, smallest-first.

    Greedily picks the smallest integer >= *min_value* that is coprime
    with every integer already picked.  This admits prime powers (4, 9,
    25, 27...) and products of otherwise-unused primes, keeping the
    product M — hence the route-ID bit length — lower than a pure prime
    pool of the same size.

    >>> greedy_coprime_pool(6)
    [2, 3, 5, 7, 11, 13]
    >>> greedy_coprime_pool(4, min_value=4)
    [4, 5, 7, 9]
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    out: List[int] = []
    n = max(2, min_value)
    while len(out) < count:
        if all(math.gcd(n, chosen) == 1 for chosen in out):
            out.append(n)
        n += 1
    return out


def validate_pool(pool: Sequence[int], port_counts: Sequence[int] | None = None) -> None:
    """Validate a switch-ID pool, raising ValueError with a precise reason.

    Checks:
      * no duplicates,
      * every ID > 1,
      * pairwise coprimality,
      * (optionally) each ID can address its switch's ports.

    Args:
        pool: the candidate switch IDs.
        port_counts: optional per-switch port counts aligned with *pool*.
    """
    if len(set(pool)) != len(pool):
        dupes = sorted({v for v in pool if list(pool).count(v) > 1})
        raise ValueError(f"duplicate switch IDs: {dupes}")
    for v in pool:
        if v <= 1:
            raise ValueError(f"switch ID must be > 1, got {v}")
    bad = first_noncoprime_pair(pool)
    if bad is not None:
        raise ValueError(
            f"switch IDs {bad[0]} and {bad[1]} share a factor "
            f"{math.gcd(*bad)}; the pool must be pairwise coprime"
        )
    if port_counts is not None:
        if len(port_counts) != len(pool):
            raise ValueError(
                f"port_counts length {len(port_counts)} != pool length {len(pool)}"
            )
        for sid, ports in zip(pool, port_counts):
            if sid < min_id_for_ports(ports):
                raise ValueError(
                    f"switch ID {sid} cannot address {ports} ports; "
                    f"needs ID >= {min_id_for_ports(ports)}"
                )
