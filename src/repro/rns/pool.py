"""Pooled CRT contexts: amortized control-plane route encoding.

The reference solver (:func:`repro.rns.crt.crt`) re-derives everything on
every call: the O(n²) pairwise-coprime check, the product ``M``, and one
extended-Euclid inverse per modulus.  That is the right shape for an
oracle, and the wrong shape for a controller provisioning millions of
flows over one fixed switch-ID pool — in a KAR domain the pool changes
on the timescale of hardware, while encodes happen on the timescale of
flow arrivals and link failures.

This module splits the work along those timescales:

* :class:`PoolContext` — built **once per coprime pool**.  Validates
  pairwise coprimality once, computes the pool product ``M`` with a
  balanced product tree, and precomputes every switch's CRT basis weight
  ``w_i = <M_i · L_i>_M`` (the ``M_i L_i`` addend factor of Eq. 4).
  After that, encoding over any subset of the pool is a dot product
  ``R = <Σ p_i · w_i>_{M_S}``.
* subset contexts — built **once per distinct switch set** (a
  destination tree branch, a primary route, a protection set) and
  memoized: the subset product ``M_S`` and the reduced weights
  ``w_i mod M_S``.  Every further flow over the same switches reuses
  them — encode cost no longer depends on pool size at all.
* :class:`ReencodeDelta` — applied **once per changed hop**.  When one
  switch's output port changes from ``p_i`` to ``p'_i`` (a link failure
  re-route that keeps the same switches), the fresh route ID is a single
  addend away::

      R' = <R + (p'_i − p_i) · M_i · L_i>_M

  so a failure-time re-encode is O(1) big-int operations instead of a
  full re-solve.
* :class:`PooledEncoder` — a drop-in :class:`~repro.rns.encoder
  .RouteEncoder` that routes every encode over pool switches through the
  context and transparently falls back to the reference path for
  off-pool switch IDs.

Everything here is **bit-identical to the reference** by construction
(the subset solution is unique in ``[0, M_S)``) and by test: the
``encoder`` verify oracle (:mod:`repro.verify.oracles`) and the
Hypothesis properties in ``tests/rns/test_pool.py`` compare every pooled
and incremental result against a fresh :func:`~repro.rns.crt.crt` solve.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.rns.crt import (
    CrtError,
    NotCoprimeError,
    first_noncoprime_pair,
    modular_inverse,
)
from repro.rns.encoder import (
    DuplicateSwitchError,
    EncodedRoute,
    Hop,
    RouteEncoder,
)

__all__ = [
    "product_tree",
    "PoolContext",
    "PooledEncoder",
    "ReencodeDelta",
]

#: Default bound on memoized subset contexts per pool.  A destination
#: tree contributes one subset per branch, so real deployments sit far
#: below this; the bound only guards pathological workloads (e.g. fuzzed
#: random subsets) from unbounded memory.
DEFAULT_SUBSET_CACHE = 4096


def product_tree(values: Iterable[int]) -> int:
    """Product of *values* by balanced pairwise folding.

    Multiplying big integers balanced (pairs of similar bit length)
    instead of left-to-right keeps the total bit-work
    O(B log n · mul(B/n)) rather than quadratic in the accumulated
    length — noticeable once pools reach hundreds of IDs.

    >>> product_tree([4, 7, 11, 5])
    1540
    >>> product_tree([])
    1
    """
    layer: List[int] = [int(v) for v in values]
    if not layer:
        return 1
    while len(layer) > 1:
        nxt = [
            layer[i] * layer[i + 1] for i in range(0, len(layer) - 1, 2)
        ]
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    return layer[0]


class _SubsetContext:
    """Cached per-switch-set encode state: ``M_S`` + reduced weights."""

    __slots__ = ("key", "modulus", "weights")

    def __init__(self, key: Tuple[int, ...], modulus: int,
                 weights: Dict[int, int]):
        self.key = key
        self.modulus = modulus
        self.weights = weights


class PoolContext:
    """Precomputed CRT state for one pairwise-coprime switch-ID pool.

    Construction does all the per-pool work exactly once:

    * validates the pool (duplicates, ``> 1``, pairwise coprimality) —
      the ``validated`` flag records the verdict so no encode ever
      re-runs the O(n²) check;
    * computes the pool product ``M`` via :func:`product_tree`;
    * computes every switch's basis weight
      ``w_i = <(M/s_i) · L_i>_M`` with one extended-Euclid inverse per
      switch (Eq. 7/8, hoisted out of the encode path).

    Args:
        pool: the switch IDs (order preserved for reporting; encoding is
            order-independent).
        validated: pass True when the pool is already known pairwise
            coprime (e.g. it came from
            :func:`repro.rns.coprime.validate_pool` or a validated
            topology) to skip the one-time O(n²) check.
        max_subsets: bound on memoized subset contexts (cache is cleared
            wholesale when full, mirroring the datapath residue cache).
    """

    __slots__ = ("pool", "modulus", "validated", "_weights", "_subsets",
                 "_subsets_by_modulus", "_max_subsets", "subsets_built",
                 "subset_hits")

    def __init__(
        self,
        pool: Sequence[int],
        *,
        validated: bool = False,
        max_subsets: int = DEFAULT_SUBSET_CACHE,
    ):
        ids = tuple(int(s) for s in pool)
        if not ids:
            raise CrtError("cannot build a PoolContext over an empty pool")
        if max_subsets < 1:
            raise CrtError(
                f"max_subsets must be >= 1, got {max_subsets}"
            )
        for s in ids:
            if s <= 1:
                raise CrtError(f"switch ID must be > 1, got {s}")
        seen = set()
        for s in ids:
            if s in seen:
                raise NotCoprimeError((s, s), s)
            seen.add(s)
        if not validated:
            bad = first_noncoprime_pair(ids)
            if bad is not None:
                raise NotCoprimeError(bad, math.gcd(*bad))
        self.pool = ids
        self.validated = True
        self.modulus = product_tree(ids)
        weights: Dict[int, int] = {}
        for s in ids:
            M_i = self.modulus // s
            weights[s] = (M_i * modular_inverse(M_i, s)) % self.modulus
        self._weights = weights
        self._subsets: Dict[Tuple[int, ...], _SubsetContext] = {}
        # Secondary index for the O(1) incremental path: within one
        # pairwise-coprime pool, a subset's product determines the
        # subset (s divides M_S iff s is a member), so the modulus a
        # route carries is a valid cache key.
        self._subsets_by_modulus: Dict[int, _SubsetContext] = {}
        self._max_subsets = max_subsets
        self.subsets_built = 0
        self.subset_hits = 0

    @classmethod
    def from_graph(cls, graph, **kwargs) -> "PoolContext":
        """Build a context over every core-switch ID of a topology.

        The topology builder already enforces pairwise coprimality, but
        the one-time check is re-run here by default (pass
        ``validated=True`` to skip it) — a context is long-lived, so a
        wrong assumption at construction would poison every encode.
        """
        return cls(sorted(graph.switch_ids().values()), **kwargs)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __contains__(self, switch_id: int) -> bool:
        return switch_id in self._weights

    def __len__(self) -> int:
        return len(self.pool)

    def covers(self, switch_ids: Iterable[int]) -> bool:
        """True iff every given switch ID is a member of the pool."""
        if isinstance(switch_ids, dict):
            # Residue maps land here from the failure-time hot path;
            # the keys-view subset test runs entirely in C.
            return switch_ids.keys() <= self._weights.keys()
        return all(s in self._weights for s in switch_ids)

    def weight(self, switch_id: int) -> int:
        """The CRT basis weight ``w_i = <M_i · L_i>_M`` of a member."""
        try:
            return self._weights[switch_id]
        except KeyError:
            raise CrtError(
                f"switch ID {switch_id} is not in this pool"
            ) from None

    # ------------------------------------------------------------------
    # subset contexts (cached partial products)
    # ------------------------------------------------------------------
    def subset(self, switch_ids: Sequence[int]) -> _SubsetContext:
        """The memoized encode context for one set of pool members.

        The cache key is order-independent (a route is a *set* of
        residues — Section 2.2's commutativity observation), so a
        path and its reverse share one context.
        """
        key = tuple(sorted(switch_ids))
        ctx = self._subsets.get(key)
        if ctx is not None:
            self.subset_hits += 1
            return ctx
        if not key:
            raise CrtError("cannot solve an empty CRT system")
        seen = set()
        for s in key:
            if s not in self._weights:
                raise CrtError(f"switch ID {s} is not in this pool")
            if s in seen:
                raise NotCoprimeError((s, s), s)
            seen.add(s)
        modulus = product_tree(key)
        weights = {s: self._weights[s] % modulus for s in key}
        ctx = _SubsetContext(key, modulus, weights)
        if len(self._subsets) >= self._max_subsets:
            self._subsets.clear()
            self._subsets_by_modulus.clear()
        self._subsets[key] = ctx
        self._subsets_by_modulus[modulus] = ctx
        self.subsets_built += 1
        return ctx

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(
        self, residues: Sequence[int], moduli: Sequence[int]
    ) -> Tuple[int, int]:
        """Drop-in for :func:`repro.rns.crt.crt` over pool members.

        Returns the identical ``(R, M_S)`` pair the reference solver
        returns — the subset solution is unique in ``[0, M_S)``, and the
        dot product over reduced basis weights lands on exactly it.

        Raises:
            CrtError: on length mismatch, empty system, residue out of
                range, or a modulus outside the pool.
            NotCoprimeError: on a duplicated modulus (the only way a
                subset of a validated pool can fail coprimality).
        """
        if len(residues) != len(moduli):
            raise CrtError(
                f"residue/modulus length mismatch: "
                f"{len(residues)} vs {len(moduli)}"
            )
        ctx = self.subset(moduli)
        weights = ctx.weights
        total = 0
        for p, s in zip(residues, moduli):
            if not 0 <= p < s:
                raise CrtError(
                    f"residue {p} out of range for modulus {s}: "
                    f"a switch with ID {s} only has ports 0..{s - 1} "
                    f"addressable"
                )
            total += p * weights[s]
        return total % ctx.modulus, ctx.modulus

    def encode_hops(self, hops: Sequence[Hop]) -> EncodedRoute:
        """Encode hops over the pool into an :class:`EncodedRoute`.

        Field-for-field identical to what
        :meth:`repro.rns.encoder.RouteEncoder.encode` produces for the
        same hops (``Hop`` already validates port ranges, so only the
        subset lookup can fail here).
        """
        route_id, modulus = self.encode(
            [h.port for h in hops], [h.switch_id for h in hops]
        )
        return EncodedRoute(
            route_id=route_id, modulus=modulus, hops=tuple(hops),
            _residues={h.switch_id: h.port for h in hops},
        )

    # ------------------------------------------------------------------
    # incremental re-encode
    # ------------------------------------------------------------------
    def reencode_id(
        self, route: EncodedRoute, switch_id: int, new_port: int
    ) -> int:
        """The route ID after one hop's port change — the hot primitive.

        Computes ``R' = <R + (p' − p) · w_i>_{M_S}`` — the single
        changed addend of Eq. 4 — instead of re-solving the system.
        This is the failure-time fast path: a handful of dict lookups
        and one big-int multiply, independent of route length and pool
        size.  The subset context is found by the route's modulus
        (within one coprime pool, a subset's product determines the
        subset); a context miss falls back to the keyed lookup and, for
        any valid route over pool members, primes the modulus index for
        the next call.

        Raises:
            CrtError: when *route* does not encode *switch_id*, the new
                port is out of range, the route's switches are not all
                pool members, or the route's modulus is inconsistent
                with its hop set.
        """
        old_port = route.residue_map().get(switch_id)
        if old_port is None:
            raise CrtError(
                f"switch ID {switch_id} is not encoded in this route"
            )
        if not 0 <= new_port < switch_id:
            raise CrtError(
                f"residue {new_port} out of range for modulus {switch_id}: "
                f"a switch with ID {switch_id} only has ports "
                f"0..{switch_id - 1} addressable"
            )
        if new_port == old_port:
            return route.route_id
        ctx = self._subsets_by_modulus.get(route.modulus)
        if ctx is None or switch_id not in ctx.weights:
            ctx = self.subset(route.switch_ids)
            if ctx.modulus != route.modulus:
                raise CrtError(
                    f"route modulus {route.modulus} does not match the "
                    f"product of its hop switch IDs ({ctx.modulus}); "
                    f"refusing an incremental update on inconsistent state"
                )
        return (
            route.route_id + (new_port - old_port) * ctx.weights[switch_id]
        ) % ctx.modulus

    def reencode(
        self, route: EncodedRoute, switch_id: int, new_port: int
    ) -> EncodedRoute:
        """Re-encode *route* with one hop's port changed, incrementally.

        The route-object wrapper over :meth:`reencode_id`: same single-
        addend update, plus the rebuilt hop tuple and residue hint.
        Identity changes (``new_port`` equal to the encoded port) return
        *route* itself.

        Raises:
            CrtError: see :meth:`reencode_id`.
        """
        new_id = self.reencode_id(route, switch_id, new_port)
        if new_id == route.route_id and route.residue_map()[switch_id] == new_port:
            return route
        new_hops = tuple(
            Hop(h.switch_id, new_port) if h.switch_id == switch_id else h
            for h in route.hops
        )
        return EncodedRoute(
            route_id=new_id, modulus=route.modulus, hops=new_hops,
            _residues={**route.residue_map(), switch_id: new_port},
        )


class PooledEncoder(RouteEncoder):
    """A :class:`RouteEncoder` that amortizes per-pool CRT work.

    Encodes whose switch IDs are all pool members go through the
    :class:`PoolContext` (dot product over cached subset weights);
    anything else — chained domains, fuzzed IDs, pools under
    reconstruction — falls back to the reference path, so the public
    contract is exactly :class:`RouteEncoder`'s, bit for bit.

    The incremental primitives (:meth:`with_hop`,
    :meth:`without_switch`) are inherited unchanged: they are already
    O(1) in the route length.
    """

    def __init__(self, pool: PoolContext):
        self.pool = pool
        self.pooled_encodes = 0
        self.fallback_encodes = 0

    def encode(self, hops: Iterable[Hop]) -> EncodedRoute:
        hop_list = list(hops)
        if not self.pool.covers(h.switch_id for h in hop_list):
            self.fallback_encodes += 1
            return super().encode(hop_list)
        # Same duplicate check, same exception as the reference encoder
        # — raised before any CRT work, exactly like the base class.
        residues: Dict[int, int] = {}
        for h in hop_list:
            if h.switch_id in residues:
                raise DuplicateSwitchError(h.switch_id)
            residues[h.switch_id] = h.port
        route_id, modulus = self.pool.encode(
            [h.port for h in hop_list], [h.switch_id for h in hop_list]
        )
        self.pooled_encodes += 1
        return EncodedRoute(
            route_id=route_id, modulus=modulus, hops=tuple(hop_list),
            _residues=residues,
        )


class ReencodeDelta:
    """Failure-time incremental re-encoder with full-solve fallback.

    The controller-facing wrapper around :meth:`PoolContext.reencode`:
    apply one (or a chain of) single-hop port changes to a live route,
    falling back to a fresh reference solve when the route is not
    pool-covered.  Counters make the amortization observable — the
    chaos/bench harnesses assert that under link churn the delta path,
    not the full solver, is doing the work.
    """

    def __init__(self, pool: PoolContext):
        self.pool = pool
        self._fallback = RouteEncoder()
        self.deltas_applied = 0
        self.identity_skips = 0
        self.full_solves = 0

    def apply(
        self, route: EncodedRoute, switch_id: int, new_port: int
    ) -> EncodedRoute:
        """Route with *switch_id*'s port changed to *new_port*.

        Bit-identical to re-encoding the mutated hop list from scratch
        (the Hypothesis property in ``tests/rns/test_pool.py`` pins this
        down, including chains and identity mutations).
        """
        if route.residue_map().get(switch_id) == new_port:
            self.identity_skips += 1
            return route
        try:
            updated = self.pool.reencode(route, switch_id, new_port)
        except CrtError:
            updated = self._full_solve(route, switch_id, new_port)
            self.full_solves += 1
            return updated
        self.deltas_applied += 1
        return updated

    def apply_id(
        self, route: EncodedRoute, switch_id: int, new_port: int
    ) -> int:
        """The updated route ID alone — the failure-time hot path.

        What an in-place header rewrite or ingress-entry patch actually
        needs; the route-object bookkeeping of :meth:`apply` is skipped.
        Bit-identical to a fresh :func:`~repro.rns.crt.crt` solve of the
        mutated residue system.
        """
        if route.residue_map().get(switch_id) == new_port:
            self.identity_skips += 1
            return route.route_id
        try:
            new_id = self.pool.reencode_id(route, switch_id, new_port)
        except CrtError:
            updated = self._full_solve(route, switch_id, new_port)
            self.full_solves += 1
            return updated.route_id
        self.deltas_applied += 1
        return new_id

    def apply_many(
        self,
        route: EncodedRoute,
        changes: Iterable[Tuple[int, int]],
    ) -> EncodedRoute:
        """Fold a chain of ``(switch_id, new_port)`` changes, in order."""
        for switch_id, new_port in changes:
            route = self.apply(route, switch_id, new_port)
        return route

    def _full_solve(
        self, route: EncodedRoute, switch_id: int, new_port: int
    ) -> EncodedRoute:
        if not route.encodes(switch_id):
            raise CrtError(
                f"switch ID {switch_id} is not encoded in this route"
            )
        hops = [
            Hop(h.switch_id, new_port) if h.switch_id == switch_id else h
            for h in route.hops
        ]
        return self._fallback.encode(hops)
