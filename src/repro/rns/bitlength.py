"""Route-ID size analysis (Section 2.3 of the paper).

The route ID lives in ``[0, M)`` with ``M`` the product of the encoded
switch IDs, so its header cost is ``ceil(log2(M - 1))`` bits (Eq. 9).
This module computes that bound, its growth as protection hops are
added, and the converse capacity question: given a header budget, how
many hops fit?

These functions regenerate Table 1 of the paper (see
``repro.experiments.table1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "route_id_bit_length",
    "bit_length_for_switches",
    "bit_length_growth",
    "max_hops_within_budget",
    "BitLengthReport",
]


def route_id_bit_length(modulus: int) -> int:
    """Bits needed for any route ID under *modulus* (Eq. 9).

    ``bit_length(R) = ceil(log2(M - 1))`` — computed exactly with integer
    arithmetic (no floating-point log), so it is correct for arbitrarily
    large M.

    >>> route_id_bit_length(308)     # 6-node example, unprotected
    9
    >>> route_id_bit_length(1540)    # 6-node example, with SW5 protection
    11
    """
    if modulus < 2:
        raise ValueError(f"modulus must be >= 2, got {modulus}")
    # ceil(log2(n)) == (n-1).bit_length() for n >= 1; here n = M - 1, so
    # ceil(log2(M - 1)) == (M - 2).bit_length() except for the degenerate
    # M == 2 case (single residue 0/1 -> 1 bit).
    if modulus == 2:
        return 1
    return (modulus - 2).bit_length()


def bit_length_for_switches(switch_ids: Iterable[int]) -> int:
    """Bits needed to encode a route over the given switch IDs.

    >>> bit_length_for_switches([10, 7, 13, 29])     # Table 1, unprotected
    15
    """
    modulus = 1
    count = 0
    for s in switch_ids:
        if s <= 1:
            raise ValueError(f"switch ID must be > 1, got {s}")
        modulus *= s
        count += 1
    if count == 0:
        raise ValueError("need at least one switch ID")
    return route_id_bit_length(modulus)


@dataclass(frozen=True)
class BitLengthReport:
    """One row of a Table-1-style report."""

    label: str
    switch_ids: Tuple[int, ...]
    bit_length: int

    @property
    def switch_count(self) -> int:
        return len(self.switch_ids)


def bit_length_growth(switch_ids: Sequence[int]) -> List[int]:
    """Bit length after each successive switch is folded into the route.

    Useful for plotting header-cost growth as protection hops are added.

    >>> bit_length_growth([10, 7, 13, 29])
    [4, 7, 10, 15]
    """
    out: List[int] = []
    modulus = 1
    for s in switch_ids:
        if s <= 1:
            raise ValueError(f"switch ID must be > 1, got {s}")
        modulus *= s
        out.append(route_id_bit_length(modulus))
    return out


def max_hops_within_budget(switch_ids: Sequence[int], budget_bits: int) -> int:
    """How many of *switch_ids* (in order) fit in a *budget_bits* header.

    Models the paper's "loose protection" fallback: when the full
    protection set does not fit the route-ID field, the controller keeps
    only a prefix of the protection hops.

    >>> max_hops_within_budget([10, 7, 13, 29, 11, 23, 31], budget_bits=15)
    4
    """
    if budget_bits < 1:
        raise ValueError(f"budget must be >= 1 bit, got {budget_bits}")
    modulus = 1
    fitted = 0
    for s in switch_ids:
        if s <= 1:
            raise ValueError(f"switch ID must be > 1, got {s}")
        modulus *= s
        if route_id_bit_length(modulus) > budget_bits:
            break
        fitted += 1
    return fitted
