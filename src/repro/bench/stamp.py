"""Benchmark artifact timestamps.

Every ``BENCH_*.json`` carries both forms of its creation time: the raw
``time.time()`` float (machine-sortable, backward compatible with older
artifacts) and an ISO-8601 UTC string (human-diffable — a reviewer
comparing two artifacts should not have to decode epoch seconds).
"""

from __future__ import annotations

import time
from datetime import datetime, timezone
from typing import Dict, Optional, Union

__all__ = ["utc_stamp", "timestamp_fields"]


def utc_stamp(ts: Optional[float] = None) -> str:
    """ISO-8601 UTC rendering of an epoch timestamp (now by default).

    Microseconds are kept — two artifacts generated back-to-back should
    still stamp differently — and the offset is always ``+00:00``.

    >>> utc_stamp(0.0)
    '1970-01-01T00:00:00+00:00'
    >>> utc_stamp(1704067200.25)
    '2024-01-01T00:00:00.250000+00:00'
    """
    if ts is None:
        ts = time.time()
    return datetime.fromtimestamp(ts, tz=timezone.utc).isoformat()


def timestamp_fields(
    ts: Optional[float] = None,
) -> Dict[str, Union[float, str]]:
    """The timestamp pair every bench artifact embeds.

    Returns ``{"timestamp": <float>, "timestamp_iso": <str>}`` rendered
    from the *same* instant, so the two fields never disagree.
    """
    if ts is None:
        ts = time.time()
    return {"timestamp": ts, "timestamp_iso": utc_stamp(ts)}
