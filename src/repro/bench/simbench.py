"""``repro bench sim`` — reference vs fast datapath, same process.

For each (topology size, deflection strategy) cell the benchmark runs
the *same* seeded simulation twice — once with the datapath built in
reference mode (:func:`repro.sim.fastpath.use_fastpath`), once fast —
and compares full outcome digests (per-switch counters, drop reasons,
event count, final RNG fingerprints) before reporting any speedup: a
speedup over a run that computed something different is meaningless.

The workload is deliberately hop-heavy: a random connected core with a
UDP probe flow and a mid-run failure on the primary path, so every
strategy exercises its deflection fallback (where the reference path
rebuilds ``healthy_ports()`` per decision) as well as the steady state
(where the reference path pays the per-hop big-int modulo and a
``Decision`` allocation).

A separate microbenchmark times raw CRT encodes of the primary route
(``crt_encodes_per_sec``) — the controller-side cost that incremental
re-encoding (PR 1) and the farm (PR 2) care about.

Since PR 9 the benchmark covers two datapath families (``--modes``):

* ``des`` — the discrete-event engine, fast path vs in-process
  reference (the original matrix);
* ``epoch`` — the million-packet datapath: the epoch-quantized model's
  vectorized engine (:mod:`repro.sim.vector`) and 2-shard engine
  (:mod:`repro.sim.shard`) against the untouched-KarSwitch scalar
  reference.  **Every cell is digest-verified against the reference
  engine before a single timing repeat runs** — same discipline, one
  order of magnitude more packets.

Results land in ``BENCH_sim.json``; CI runs ``--quick`` and asserts
only ``digests_match_reference`` and run-to-run digest identity (never
wall-clock — shared runners make absolute thresholds flaky).
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.artifact import finish_artifact
from repro.controller.protection import ProtectionPlanner
from repro.farm.jobs import record_digest
from repro.rns.encoder import Hop, RouteEncoder
from repro.runner import KarSimulation
from repro.sim.fastpath import use_fastpath
from repro.switches.core import KarSwitch
from repro.switches.deflection import STRATEGY_NAMES
from repro.topology import (
    NodeKind,
    Scenario,
    attach_host_pair,
    random_connected,
    shortest_path,
)

__all__ = ["SIZES", "MODES", "EPOCH_WORKLOADS", "run_sim_bench",
           "render_sim_bench"]

#: Datapath families the benchmark can exercise.
MODES: Tuple[str, ...] = ("des", "epoch")

#: Epoch-model workload scale per topology size.  Sized so the large
#: cell pushes well past the ROADMAP's 10M forwarded packets/min on a
#: single core while the scalar oracle pass stays affordable.
EPOCH_WORKLOADS: Dict[str, Dict[str, int]] = {
    "small": dict(flows=8, inject_per_epoch=6, inject_epochs=12, ttl=32),
    "medium": dict(flows=24, inject_per_epoch=12, inject_epochs=20, ttl=40),
    "large": dict(flows=48, inject_per_epoch=24, inject_epochs=28, ttl=48),
}

#: The 10M+ forwarded-packets/min target for the vectorized engine on
#: the large topology (tracked in the artifact, asserted by eye — CI
#: never gates on wall-clock).
EPOCH_TARGET_PER_MIN = 10_000_000

#: Topology size presets.  ``min_switch_id`` scales with size so larger
#: nets also mean larger route IDs (more big-int work on the reference
#: path, like a real deployment's wider coprime pool).
SIZES: Dict[str, Dict[str, Any]] = {
    "small": dict(num_switches=8, extra_links=3, min_switch_id=29,
                  rate_pps=500, traffic_s=1.2),
    "medium": dict(num_switches=32, extra_links=8, min_switch_id=211,
                   rate_pps=500, traffic_s=1.6),
    "large": dict(num_switches=64, extra_links=16, min_switch_id=557,
                  rate_pps=500, traffic_s=1.6),
}

#: Simulated drain time after the probe stops (lets deflected packets
#: finish wandering so conservation-style digests are stable).
_DRAIN_S = 1.0


def _far_apart(graph) -> Tuple[str, str]:
    """Approximate diameter endpoints (double-BFS heuristic).

    Hop-heavy routes keep the benchmark honest: the per-hop datapath
    cost must dominate the fixed per-packet edge/host cost, or the
    numbers measure transport plumbing instead.
    """
    names = sorted(graph.node_names())

    def farthest(origin: str) -> str:
        best, best_len = origin, -1
        for name in names:
            if name == origin:
                continue
            length = len(shortest_path(graph, origin, name))
            if length > best_len:
                best, best_len = name, length
        return best

    u = farthest(names[0])
    return u, farthest(u)


def _bench_scenario(size: str, seed: int) -> Scenario:
    cfg = SIZES[size]
    graph = random_connected(
        cfg["num_switches"],
        extra_links=cfg["extra_links"],
        seed=seed,
        min_switch_id=cfg["min_switch_id"],
        rate_mbps=100.0,
        delay_s=0.0002,
    )
    src_sw, dst_sw = _far_apart(graph)
    src_host, dst_host = attach_host_pair(
        graph, src_sw, dst_sw, rate_mbps=100.0, delay_s=0.0002
    )
    route = shortest_path(graph, src_sw, dst_sw)
    plan = ProtectionPlanner(graph).full(route)
    return Scenario(
        name=f"bench-{size}-{seed}",
        graph=graph,
        primary_route=tuple(route),
        src_host=src_host,
        dst_host=dst_host,
        protection={"full": tuple(plan.segments), "none": ()},
    )


def _outcome_record(ks: KarSimulation, src, sink) -> Dict[str, Any]:
    """Canonical, digestable outcome of one run.

    Includes the engine's event count and a fingerprint of every
    switch's final RNG state, so two runs digest equal only if they
    processed the same events in the same order and made the same
    random draws — the bit-identical contract, not just equal totals.
    """
    switches: Dict[str, List[int]] = {}
    rng_fp = hashlib.sha256()
    for info in sorted(ks.scenario.graph.nodes(NodeKind.CORE),
                       key=lambda i: i.name):
        sw = ks.network.node(info.name)
        assert isinstance(sw, KarSwitch)
        switches[info.name] = [sw.forwarded, sw.deflections, sw.drops]
        rng_fp.update(repr(sw._rng.getstate()).encode("utf-8"))
    record: Dict[str, Any] = {
        "sent": src.sent,
        "received": sink.received,
        "events": ks.sim.events_processed,
        "drop_reasons": dict(sorted(ks.tracer.drop_reasons.items())),
        "switches": switches,
        "rng_fingerprint": rng_fp.hexdigest()[:16],
    }
    record["digest"] = record_digest(record)
    return record


def _run_once(
    scenario: Scenario, strategy: str, seed: int, size: str
) -> Tuple[float, Dict[str, Any]]:
    """One seeded run; returns (wall seconds, outcome record)."""
    cfg = SIZES[size]
    traffic_s = cfg["traffic_s"]
    route = scenario.primary_route
    fail_a, fail_b = route[len(route) // 2 - 1], route[len(route) // 2]
    ks = KarSimulation(
        scenario, deflection=strategy, protection="none",
        seed=seed, ttl=96,
    )
    src, sink = ks.add_udp_probe(
        rate_pps=cfg["rate_pps"], duration_s=traffic_s
    )
    src.start(at=0.05)
    ks.schedule_failure(
        fail_a, fail_b, at=traffic_s / 3, repair_at=2 * traffic_s / 3
    )
    # Time only the event loop: this is a datapath benchmark, and
    # topology/route construction is identical in both modes.
    start = time.perf_counter()
    ks.run(until=traffic_s + _DRAIN_S)
    elapsed = time.perf_counter() - start
    return elapsed, _outcome_record(ks, src, sink)


def _crt_bench(scenario: Scenario, repeats: int) -> Dict[str, Any]:
    """Encodes/sec for the primary route's CRT (controller-side cost)."""
    graph = scenario.graph
    hops = [Hop(graph.switch_id(n), 1) for n in scenario.primary_route]
    encoder = RouteEncoder()
    start = time.perf_counter()
    for _ in range(repeats):
        route = encoder.encode(hops)
    elapsed = time.perf_counter() - start
    return {
        "encodes": repeats,
        "route_hops": len(hops),
        "route_bits": route.bit_length,
        "wall_s": round(elapsed, 4),
        "encodes_per_sec": round(repeats / elapsed) if elapsed > 0 else None,
    }


def _epoch_spec(size: str, strategy: str, seed: int) -> Dict[str, Any]:
    """Epoch-model workload spec for one benchmark cell."""
    from repro.sim.vector import synthetic_spec

    cfg = SIZES[size]
    scale = EPOCH_WORKLOADS[size]
    return synthetic_spec(
        num_switches=cfg["num_switches"],
        extra_links=cfg["extra_links"],
        min_switch_id=cfg["min_switch_id"],
        seed=seed,
        strategy=strategy,
        flows=scale["flows"],
        ttl=scale["ttl"],
        inject_per_epoch=scale["inject_per_epoch"],
        inject_epochs=scale["inject_epochs"],
        link_failures=2,
        fail_epoch=max(1, scale["inject_epochs"] // 3),
        repair_epoch=max(2, 2 * scale["inject_epochs"] // 3),
    )


def _per_min(count: int, wall_s: float) -> Optional[int]:
    return round(count / wall_s * 60) if wall_s > 0 else None


def _run_epoch_cells(
    sizes: Sequence[str],
    strategies: Sequence[str],
    seed: int,
    repeats: int,
    shard_processes: bool,
) -> List[Dict[str, Any]]:
    """The epoch-datapath matrix: verify every engine's digest against
    the scalar reference **before** any timing repeat runs."""
    from repro.sim.shard import run_epoch_sharded
    from repro.sim.vector import (
        build_workload,
        run_epoch_reference,
        run_epoch_vector,
    )

    cells: List[Dict[str, Any]] = []
    for size in sizes:
        for strategy in strategies:
            spec = _epoch_spec(size, strategy, seed)
            workload = build_workload(spec)

            # --- verify pass: digests first, timing only if they hold.
            ref_start = time.perf_counter()
            ref = run_epoch_reference(workload)
            ref_wall = time.perf_counter() - ref_start
            vec = run_epoch_vector(workload)
            sh = run_epoch_sharded(
                workload, shards=2, processes=shard_processes
            )
            for engine, outcome in (("vector", vec), ("shard2", sh)):
                if outcome.digest != ref.digest:
                    raise RuntimeError(
                        f"epoch {engine} engine diverged from reference: "
                        f"{size}/{strategy} ({outcome.digest} vs "
                        f"{ref.digest})"
                    )

            # --- timing pass (interleaved, min wall per engine).
            vec_times: List[float] = []
            shard_times: List[float] = []
            for _ in range(repeats):
                start = time.perf_counter()
                timed = run_epoch_vector(workload)
                vec_times.append(time.perf_counter() - start)
                if timed.digest != ref.digest:
                    raise RuntimeError(
                        f"non-deterministic vector run: {size}/{strategy}"
                    )
                start = time.perf_counter()
                timed = run_epoch_sharded(
                    workload, shards=2, processes=shard_processes
                )
                shard_times.append(time.perf_counter() - start)
                if timed.digest != ref.digest:
                    raise RuntimeError(
                        f"non-deterministic shard run: {size}/{strategy}"
                    )
            vec_s, shard_s = min(vec_times), min(shard_times)
            forwarded = ref.record["hops"]
            cells.append({
                "size": size,
                "strategy": strategy,
                "packets": ref.record["injected"],
                "forwarded": forwarded,
                "epochs": ref.record["epochs"],
                "delivered": ref.record["delivered"],
                "reference_epoch": {
                    "wall_s": round(ref_wall, 4),
                    "forwarded_per_min": _per_min(forwarded, ref_wall),
                },
                "vector": {
                    "wall_s": round(vec_s, 4),
                    "forwarded_per_sec": (
                        round(forwarded / vec_s) if vec_s > 0 else None
                    ),
                    "forwarded_per_min": _per_min(forwarded, vec_s),
                },
                "shard2": {
                    "wall_s": round(shard_s, 4),
                    "processes": shard_processes,
                    "handoff_checks": sh.meta["handoff_checks"],
                    "forwarded_per_min": _per_min(forwarded, shard_s),
                },
                "speedup_vs_reference": (
                    round(ref_wall / vec_s, 3) if vec_s > 0 else None
                ),
                "digest": ref.digest,
                "digests_match": True,  # enforced above, before timing
            })
    return cells


def run_sim_bench(
    sizes: Optional[Sequence[str]] = None,
    strategies: Optional[Sequence[str]] = None,
    seed: int = 1,
    quick: bool = False,
    repeats: Optional[int] = None,
    out: Optional[str] = "BENCH_sim.json",
    modes: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Run the datapath benchmark matrix; optionally write *out*.

    ``modes`` selects the datapath families (default: both): ``des``
    (event loop, fast vs reference) and ``epoch`` (vectorized + 2-shard
    batch engines vs the scalar reference engine).  ``quick`` trims the
    matrix for CI smoke runs (small+medium, the digest checks still
    cover every cell).

    Each timed cell runs ``repeats`` times per engine (interleaved, so
    OS scheduling drift hits all engines alike) and reports the
    **minimum** wall time — the standard estimator for wall-clock
    microbenchmarks, since noise on a quiet deterministic workload is
    strictly additive.  Every repeat must produce the same digest (the
    simulation is seeded), which doubles as a determinism check; epoch
    cells additionally verify vector and sharded digests against the
    reference engine *before* the first timing repeat.
    """
    if sizes is None:
        sizes = ("small", "medium") if quick else ("small", "medium", "large")
    if strategies is None:
        strategies = STRATEGY_NAMES
    if modes is None:
        modes = MODES
    for size in sizes:
        if size not in SIZES:
            raise ValueError(f"unknown size {size!r}; choose from {sorted(SIZES)}")
    for mode in modes:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {list(MODES)}")
    if repeats is None:
        repeats = 2 if quick else 3
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    crt_repeats = 300 if quick else 2000

    runs: List[Dict[str, Any]] = []
    crt: Dict[str, Any] = {}
    for size in sizes if "des" in modes else ():
        scenario = _bench_scenario(size, seed)
        crt[size] = _crt_bench(scenario, crt_repeats)
        for strategy in strategies:
            ref_times: List[float] = []
            fast_times: List[float] = []
            ref_record: Optional[Dict[str, Any]] = None
            fast_record: Optional[Dict[str, Any]] = None
            for _ in range(repeats):
                with use_fastpath(False):
                    wall, record = _run_once(scenario, strategy, seed, size)
                ref_times.append(wall)
                if ref_record is not None and record["digest"] != ref_record["digest"]:
                    raise RuntimeError(
                        f"non-deterministic reference run: {size}/{strategy}"
                    )
                ref_record = record
                with use_fastpath(True):
                    wall, record = _run_once(scenario, strategy, seed, size)
                fast_times.append(wall)
                if fast_record is not None and record["digest"] != fast_record["digest"]:
                    raise RuntimeError(
                        f"non-deterministic fast run: {size}/{strategy}"
                    )
                fast_record = record
            ref_s, fast_s = min(ref_times), min(fast_times)
            packets = ref_record["sent"]
            forwarded = sum(v[0] for v in ref_record["switches"].values())
            runs.append({
                "size": size,
                "strategy": strategy,
                "packets": packets,
                "events": ref_record["events"],
                "forwarded": forwarded,
                "reference": {
                    "wall_s": round(ref_s, 4),
                    "packets_per_sec": round(packets / ref_s),
                    "events_per_sec": round(ref_record["events"] / ref_s),
                    "forwarded_per_min": _per_min(forwarded, ref_s),
                },
                "fast": {
                    "wall_s": round(fast_s, 4),
                    "packets_per_sec": round(packets / fast_s),
                    "events_per_sec": round(fast_record["events"] / fast_s),
                    "forwarded_per_min": _per_min(forwarded, fast_s),
                },
                "speedup": round(ref_s / fast_s, 3) if fast_s > 0 else None,
                "digest_reference": ref_record["digest"],
                "digest_fast": fast_record["digest"],
                "digests_match": ref_record["digest"] == fast_record["digest"],
            })

    epoch_runs: List[Dict[str, Any]] = []
    if "epoch" in modes:
        epoch_runs = _run_epoch_cells(
            sizes, strategies, seed, repeats,
            shard_processes=not quick,
        )

    def _aggregate(size: str) -> Optional[float]:
        cells = [r for r in runs if r["size"] == size]
        if not cells:
            return None
        ref = sum(c["reference"]["wall_s"] for c in cells)
        fast = sum(c["fast"]["wall_s"] for c in cells)
        return round(ref / fast, 3) if fast > 0 else None

    def _epoch_vs_des(size: str) -> Optional[Dict[str, Any]]:
        """Vectorized epoch datapath vs the PR-3 DES fast path, as
        aggregate forwarded-packets/min over the size's cells."""
        des_cells = [r for r in runs if r["size"] == size]
        ep_cells = [r for r in epoch_runs if r["size"] == size]
        if not des_cells or not ep_cells:
            return None
        des_fwd = sum(c["forwarded"] for c in des_cells)
        des_wall = sum(c["fast"]["wall_s"] for c in des_cells)
        ep_fwd = sum(c["forwarded"] for c in ep_cells)
        ep_wall = sum(c["vector"]["wall_s"] for c in ep_cells)
        des_per_min = _per_min(des_fwd, des_wall)
        ep_per_min = _per_min(ep_fwd, ep_wall)
        return {
            "des_fast_forwarded_per_min": des_per_min,
            "vector_forwarded_per_min": ep_per_min,
            "ratio": (
                round(ep_per_min / des_per_min, 2)
                if des_per_min else None
            ),
        }

    best_vector_per_min = max(
        (c["vector"]["forwarded_per_min"] or 0 for c in epoch_runs),
        default=0,
    )
    result: Dict[str, Any] = {
        "bench": "repro.sim",
        "quick": quick,
        "repeats": repeats,
        "seed": seed,
        "modes": list(modes),
        "sizes": {s: SIZES[s] for s in sizes},
        "runs": runs,
        "crt": crt,
        "speedup_by_size": {s: _aggregate(s) for s in sizes},
        "epoch": {
            "workloads": {s: EPOCH_WORKLOADS[s] for s in sizes},
            "runs": epoch_runs,
            "vs_des_fast": {s: _epoch_vs_des(s) for s in sizes},
            "target_forwarded_per_min": EPOCH_TARGET_PER_MIN,
            "best_vector_forwarded_per_min": best_vector_per_min,
            "target_met": best_vector_per_min >= EPOCH_TARGET_PER_MIN,
        } if "epoch" in modes else None,
        "digests_match_reference": (
            all(r["digests_match"] for r in runs)
            and all(r["digests_match"] for r in epoch_runs)
        ),
    }
    return finish_artifact(result, out)


def render_sim_bench(result: Dict[str, Any]) -> str:
    lines = [
        f"sim bench — datapath modes {result.get('modes', ['des'])} "
        f"(seed {result['seed']}, {result['cpu_count']} CPU(s))",
    ]
    if result["runs"]:
        lines.append(
            f"  {'size':<8} {'strategy':<9} {'pkts/s ref':>11} "
            f"{'pkts/s fast':>12} {'speedup':>8}  digests"
        )
        for r in result["runs"]:
            lines.append(
                f"  {r['size']:<8} {r['strategy']:<9} "
                f"{r['reference']['packets_per_sec']:>11} "
                f"{r['fast']['packets_per_sec']:>12} "
                f"{r['speedup']:>7}x  "
                f"{'match' if r['digests_match'] else 'MISMATCH'}"
            )
        for size, agg in result["speedup_by_size"].items():
            crt = result["crt"].get(size)
            if crt is None:
                continue
            lines.append(
                f"  {size}: aggregate speedup {agg}x, CRT "
                f"{crt['encodes_per_sec']} encodes/s "
                f"({crt['route_hops']} hops, {crt['route_bits']} bits)"
            )
    epoch = result.get("epoch")
    if epoch:
        lines.append(
            f"  epoch datapath (vectorized / 2-shard vs scalar reference):"
        )
        lines.append(
            f"  {'size':<8} {'strategy':<9} {'forwarded':>10} "
            f"{'fwd/min vec':>12} {'fwd/min sh2':>12} {'vs ref':>8}  digests"
        )
        for r in epoch["runs"]:
            lines.append(
                f"  {r['size']:<8} {r['strategy']:<9} "
                f"{r['forwarded']:>10} "
                f"{r['vector']['forwarded_per_min']:>12} "
                f"{r['shard2']['forwarded_per_min']:>12} "
                f"{r['speedup_vs_reference']:>7}x  "
                f"{'match' if r['digests_match'] else 'MISMATCH'}"
            )
        for size, cmp in epoch["vs_des_fast"].items():
            if cmp is None:
                continue
            lines.append(
                f"  {size}: vector {cmp['vector_forwarded_per_min']} "
                f"fwd/min vs DES fast {cmp['des_fast_forwarded_per_min']} "
                f"fwd/min = {cmp['ratio']}x"
            )
        lines.append(
            f"  epoch target: {epoch['best_vector_forwarded_per_min']} "
            f"fwd/min best vs {epoch['target_forwarded_per_min']} target "
            f"-> {'met' if epoch['target_met'] else 'NOT met'}"
        )
    lines.append(
        "  digests match reference: "
        f"{result['digests_match_reference']}"
    )
    return "\n".join(lines)
