"""Shared ``BENCH_*.json`` artifact plumbing.

Every benchmark writer used to copy the same three steps — environment
fields (``cpu_count``/``platform``/``python``), the dual timestamp from
:mod:`repro.bench.stamp`, and the canonical JSON dump (sorted keys,
2-space indent, trailing newline).  This module is that copy-paste,
once: all four writers (``BENCH_sim.json``, ``BENCH_crt.json``,
``BENCH_farm.json``, ``BENCH_service.json``) stamp and serialize
identically, so artifacts stay diffable against each other across PRs.
"""

from __future__ import annotations

import json
import os
import platform
from typing import Any, Dict, Optional

from repro.bench.stamp import timestamp_fields

__all__ = ["environment_fields", "write_artifact", "finish_artifact"]


def environment_fields() -> Dict[str, Any]:
    """The machine context every bench artifact records."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def write_artifact(result: Dict[str, Any], out: str) -> None:
    """Write one artifact in the canonical shape (stable across PRs:
    sorted keys, 2-space indent, trailing newline)."""
    with open(out, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")


def finish_artifact(
    result: Dict[str, Any], out: Optional[str]
) -> Dict[str, Any]:
    """Stamp *result* with environment + timestamps; write it if *out*.

    Explicit fields in *result* win over the defaults (``farm bench``
    records a measured ``cpu_count`` it also reasons about — that value
    must not be silently replaced).  Returns *result* for chaining.
    """
    for key, value in environment_fields().items():
        result.setdefault(key, value)
    for key, value in timestamp_fields().items():
        result.setdefault(key, value)
    if out:
        write_artifact(result, out)
    return result
