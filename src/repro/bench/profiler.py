"""cProfile wrapper behind the CLI's ``--profile N`` flag.

``python -m repro --profile 25 fig4`` runs the command unchanged and
then dumps the top 25 functions by cumulative time to stderr — stdout
stays clean, so exports and JSON output are unaffected.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
from typing import Any, Callable, Optional, TextIO

__all__ = ["profile_call"]


def profile_call(
    fn: Callable[[], Any],
    top: int = 25,
    stream: Optional[TextIO] = None,
) -> Any:
    """Run ``fn()`` under cProfile; print the top-*top* cumulative report.

    Returns whatever ``fn`` returns (the profile goes to *stream*,
    default stderr).
    """
    if top <= 0:
        raise ValueError(f"top must be positive, got {top}")
    out = stream if stream is not None else sys.stderr
    profile = cProfile.Profile()
    try:
        result = profile.runcall(fn)
    finally:
        stats = pstats.Stats(profile, stream=out)
        stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return result
