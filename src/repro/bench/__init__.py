"""Performance benchmarks for the simulator and control plane.

* :mod:`repro.bench.simbench` — ``repro bench sim``: reference vs fast
  datapath, measured in the same process, digest-checked before any
  speedup is reported (writes ``BENCH_sim.json``).
* :mod:`repro.bench.crtbench` — ``repro bench crt``: naive vs pooled vs
  incremental route encoding, every cell verified bit-identical to the
  reference :func:`~repro.rns.crt.crt` solver (writes
  ``BENCH_crt.json``).
* :mod:`repro.bench.encodingbench` — ``repro bench encoding``: the
  backend x assigner matrix over the zoo corpus — bits per route and
  encode/decode throughput per backend, every backend run through the
  verify oracles before any timing (writes ``BENCH_encoding.json``).
* :mod:`repro.bench.stamp` — dual float/ISO-8601-UTC timestamps for
  bench artifacts.
* :mod:`repro.bench.profiler` — the ``--profile N`` CLI wrapper:
  cProfile around any experiment command, top-N cumulative dump.

The farm-level benchmark (parallelism across runs, result cache) lives
separately in :mod:`repro.farm.bench`; this package measures the inside
of a single run.
"""

from repro.bench.crtbench import render_crt_bench, run_crt_bench
from repro.bench.encodingbench import render_encoding_bench, run_encoding_bench
from repro.bench.profiler import profile_call
from repro.bench.simbench import render_sim_bench, run_sim_bench
from repro.bench.stamp import timestamp_fields, utc_stamp

__all__ = [
    "run_sim_bench",
    "render_sim_bench",
    "run_crt_bench",
    "render_crt_bench",
    "run_encoding_bench",
    "render_encoding_bench",
    "profile_call",
    "utc_stamp",
    "timestamp_fields",
]
