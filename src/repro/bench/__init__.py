"""Performance benchmarks for the simulator datapath.

* :mod:`repro.bench.simbench` — ``repro bench sim``: reference vs fast
  datapath, measured in the same process, digest-checked before any
  speedup is reported (writes ``BENCH_sim.json``).
* :mod:`repro.bench.profiler` — the ``--profile N`` CLI wrapper:
  cProfile around any experiment command, top-N cumulative dump.

The farm-level benchmark (parallelism across runs, result cache) lives
separately in :mod:`repro.farm.bench`; this package measures the inside
of a single run.
"""

from repro.bench.profiler import profile_call
from repro.bench.simbench import render_sim_bench, run_sim_bench

__all__ = ["run_sim_bench", "render_sim_bench", "profile_call"]
