"""``repro bench service`` — controller-service throughput, four cells.

The service stack under test is :func:`repro.service.server.dispatch`
over one :class:`~repro.service.state.ControllerState` — the exact code
both transports run — so every number here is a *service request* rate,
not a bare engine call rate:

* **provision_tree** — best-effort provision/release churn through
  ``POST /flows`` + ``DELETE /flows/{id}``: the destination-tree path
  with a pooled CRT encode per flow;
* **reroute_incremental** — ``POST /flows/{id}/reroute`` alternating
  one switch between two live neighbors: the steady-state churn path,
  one :meth:`~repro.rns.pool.ReencodeDelta.apply` addend per request.
  This is the cell with a stated target — **>= 100k requests/sec on
  one core** (the whole stack is single-threaded Python, so one core
  by construction); the artifact carries ``incremental_target_met``;
* **admission_cspf** — QoS provisions (bandwidth + latency budgets)
  driven to saturation: CSPF over residual capacity, ledger
  reservations, and honest accept/reject counts per reason;
* **http_roundtrip** — the same provision/release churn through the
  real asyncio HTTP server and the keep-alive client, with per-request
  p50/p99 latency (the only cell where transport framing is the point).

Honesty rules match the other benches: **bit-identity before any
timing** — a pre-pass provisions every edge pair (best-effort and QoS)
and checks each served route against a fresh :func:`~repro.rns.crt.crt`
solve over an independent copy of the topology — the minimum wall time
over interleaved repeats is reported, per-request latency is collected
in a separate instrumented pass (so percentile bookkeeping never taxes
the throughput numbers), and the admission cell must produce identical
accept/reject counts on every repeat (fresh state + same request list
= determinism check).  After every cell the service audit must be
empty; CI asserts only ``bit_identical_reference`` and
``zero_admission_violations``, never wall-clock.

Results land in ``BENCH_service.json``.
"""

from __future__ import annotations

import gc
import random
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.artifact import finish_artifact
from repro.controller.routing import hops_for_path
from repro.rns.crt import crt
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread, dispatch
from repro.service.state import ControllerState
from repro.service.topology import edge_names, service_topology
from repro.topology import NodeKind

__all__ = [
    "INCREMENTAL_TARGET_REQ_PER_SEC",
    "run_service_bench",
    "render_service_bench",
]

#: The tentpole number: sustained reroute requests/sec through the full
#: service dispatch on the incremental re-encode path, one core.
INCREMENTAL_TARGET_REQ_PER_SEC = 100_000


def _percentile(sorted_vals: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_vals:
        return 0.0
    rank = max(1, -(-len(sorted_vals) * pct // 100))  # ceil
    return sorted_vals[int(rank) - 1]


def _expect(status: int, payload: Dict[str, Any], want: int) -> None:
    if status != want:
        raise RuntimeError(
            f"service returned {status} (wanted {want}): {payload}"
        )


def _check_flow_body(
    body: Dict[str, Any], ref_graph, strict_path: bool = True
) -> List[str]:
    """Bit-identity checks of one served flow against the reference.

    Residues must forward (``route_id mod switch_id == port``), the
    reference :func:`crt` over the served residues must reproduce the
    ``(route ID, modulus)`` pair, and — when *strict_path* — so must a
    fresh solve over the hop list an *independent* copy of the topology
    derives for the served ``node_path``.
    """
    problems: List[str] = []
    route_id, modulus = body["route_id"], body["modulus"]
    residues = {int(s): p for s, p in body["residues"].items()}
    for sid, port in residues.items():
        if route_id % sid != port:
            problems.append(
                f"{body['flow_id']}: route_id mod {sid} != {port}"
            )
    ports = [p for _, p in sorted(residues.items())]
    sids = [s for s, _ in sorted(residues.items())]
    if crt(ports, sids) != (route_id, modulus):
        problems.append(f"{body['flow_id']}: crt(residues) mismatch")
    if strict_path:
        path = body["node_path"]
        hops = hops_for_path(ref_graph, path)
        ref = crt([h.port for h in hops], [h.switch_id for h in hops])
        if ref != (route_id, modulus):
            problems.append(
                f"{body['flow_id']}: route != reference encode of path"
            )
        if body["out_port"] != ref_graph.port_of(path[0], path[1]):
            problems.append(f"{body['flow_id']}: out_port mismatch")
    return problems


def _verify_bit_identity(
    topology: str, pairs: Sequence[Tuple[str, str]]
) -> List[str]:
    """Pre-timing pass: every pair, both flow classes, one reroute."""
    state = ControllerState(service_topology(topology), validated_pool=True)
    ref_graph = service_topology(topology)  # independent copy
    problems: List[str] = []
    flow_ids: List[str] = []
    for src, dst in pairs:
        for body in (
            {"tenant": "verify", "src": src, "dst": dst},
            {"tenant": "verify", "src": src, "dst": dst,
             "bandwidth_mbps": 0.5, "max_latency_s": 1.0},
        ):
            status, payload = dispatch(state, "POST", "/flows", {}, body)
            _expect(status, payload, 201)
            problems.extend(_check_flow_body(payload["flow"], ref_graph))
            flow_ids.append(payload["flow"]["flow_id"])
    # One detour: the incremental path must stay residue-consistent.
    reroute = _reroute_plan(state, pairs)
    if reroute is not None:
        flow_id, switch, alt, orig = reroute
        for nxt in (alt, orig):
            status, payload = dispatch(
                state, "POST", f"/flows/{flow_id}/reroute", {},
                {"switch": switch, "next": nxt},
            )
            _expect(status, payload, 200)
            # A detour leaves node_path describing the pre-detour path,
            # so the independent-path solve only applies once the flow
            # is pointed back at its original next hop.
            problems.extend(
                _check_flow_body(payload["flow"], ref_graph,
                                 strict_path=(nxt == orig))
            )
        flow_ids.append(flow_id)
    for flow_id in dict.fromkeys(flow_ids):
        status, payload = dispatch(
            state, "DELETE", f"/flows/{flow_id}", {}, None
        )
        _expect(status, payload, 200)
    status, payload = dispatch(state, "GET", "/audit", {}, None)
    problems.extend(payload["violations"])
    return problems


def _reroute_plan(
    state: ControllerState, pairs: Sequence[Tuple[str, str]]
) -> Optional[Tuple[str, str, str, str]]:
    """Provision one flow a detour can alternate on.

    Returns ``(flow_id, switch, alternate_next, original_next)`` where
    *switch* is the first core hop, *original_next* its on-path
    successor, and *alternate_next* a different live core neighbor —
    or ``None`` if no pair offers one (degenerate topologies).
    """
    core = set(state.graph.node_names(NodeKind.CORE))
    for src, dst in pairs:
        status, payload = dispatch(
            state, "POST", "/flows", {},
            {"tenant": "bench", "src": src, "dst": dst},
        )
        _expect(status, payload, 201)
        flow = payload["flow"]
        path = flow["node_path"]
        if len(path) >= 4:  # src, c1, c2(+), dst — detour at c1
            switch, orig = path[1], path[2]
            for alt in sorted(state.graph.neighbors(switch)):
                if alt in core and alt != orig:
                    return flow["flow_id"], switch, alt, orig
        status, payload = dispatch(
            state, "DELETE", f"/flows/{flow['flow_id']}", {}, None
        )
        _expect(status, payload, 200)
    return None


def _admission_requests(
    graph, pairs: Sequence[Tuple[str, str]], count: int, seed: int
) -> List[Dict[str, Any]]:
    """A deterministic QoS request list that drives links to saturation.

    Bandwidths are sized off the smallest link so acceptance flips to
    ``insufficient-bandwidth`` partway through; a slice of requests
    carries a sub-propagation latency budget so ``latency-exceeded``
    is exercised too (when the topology has nonzero delays).
    """
    cap = min(link.rate_mbps for link in graph.links())
    min_delay = min(link.delay_s for link in graph.links())
    rng = random.Random(f"service-bench-admission:{seed}")
    requests: List[Dict[str, Any]] = []
    for i in range(count):
        src, dst = pairs[i % len(pairs)]
        body: Dict[str, Any] = {
            "tenant": f"t{i % 7}",
            "src": src,
            "dst": dst,
            "bandwidth_mbps": round(cap * rng.uniform(0.05, 0.25), 3),
        }
        if i % 5 == 4:
            # Tighter than two hops can propagate (when delays > 0).
            body["max_latency_s"] = min_delay * 1.5
        elif i % 3 == 2:
            body["max_latency_s"] = 1.0
        requests.append(body)
    return requests


def _audit_violations(state: ControllerState) -> List[str]:
    status, payload = dispatch(state, "GET", "/audit", {}, None)
    _expect(status, payload, 200)
    return list(payload["violations"])


def _run_provision_cell(
    state: ControllerState,
    pairs: Sequence[Tuple[str, str]],
    flows: int,
    repeats: int,
    violations: List[str],
) -> Dict[str, Any]:
    """Best-effort provision+release churn through dispatch."""
    def one_pass() -> None:
        ids = []
        for i in range(flows):
            src, dst = pairs[i % len(pairs)]
            status, payload = dispatch(
                state, "POST", "/flows", {},
                {"tenant": f"t{i % 7}", "src": src, "dst": dst},
            )
            _expect(status, payload, 201)
            ids.append(payload["flow"]["flow_id"])
        for flow_id in ids:
            status, payload = dispatch(
                state, "DELETE", f"/flows/{flow_id}", {}, None
            )
            _expect(status, payload, 200)

    one_pass()  # warm the pool's subset contexts and the engine's trees
    times = []
    for _ in range(repeats):
        # Drain prior cells' garbage so a mid-window gen2 sweep of the
        # whole heap doesn't land on this pass's clock (min-of-repeats
        # absorbs the rest of the collector's periodic work).
        gc.collect()
        start = time.perf_counter()
        one_pass()
        times.append(time.perf_counter() - start)
    violations.extend(_audit_violations(state))
    wall = min(times)
    requests = 2 * flows
    return {
        "flows": flows,
        "requests": requests,
        "wall_s": round(wall, 6),
        "requests_per_sec": round(requests / wall),
        "provisions_per_sec": round(flows / wall),
    }


def _run_reroute_cell(
    state: ControllerState,
    pairs: Sequence[Tuple[str, str]],
    reroutes: int,
    repeats: int,
    violations: List[str],
) -> Dict[str, Any]:
    """Alternating detours: one ReencodeDelta addend per request."""
    plan = _reroute_plan(state, pairs)
    if plan is None:
        return {"skipped": "no multi-core path to detour"}
    flow_id, switch, alt, orig = plan
    path = f"/flows/{flow_id}/reroute"
    bodies = (
        {"switch": switch, "next": alt},
        {"switch": switch, "next": orig},
    )
    for body in bodies:  # warm-up: both directions through the delta
        _expect(*dispatch(state, "POST", path, {}, body), 200)

    def one_pass() -> None:
        for i in range(reroutes):
            status, payload = dispatch(state, "POST", path, {}, bodies[i % 2])
            _expect(status, payload, 200)

    before = state.engine.stats()
    times = []
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        one_pass()
        times.append(time.perf_counter() - start)
    after = state.engine.stats()
    _expect(*dispatch(state, "DELETE", f"/flows/{flow_id}", {}, None), 200)
    violations.extend(_audit_violations(state))
    deltas = after["delta"]["applied"] - before["delta"]["applied"]
    full_solves = after["delta"]["full_solves"] - before["delta"]["full_solves"]
    if deltas != repeats * reroutes or full_solves != 0:
        violations.append(
            f"reroute cell left the incremental path: "
            f"{deltas} deltas / {full_solves} full solves "
            f"for {repeats * reroutes} requests"
        )
    wall = min(times)
    rate = round(reroutes / wall)
    return {
        "flow": {"switch": switch, "alternate": alt, "original": orig},
        "requests": reroutes,
        "wall_s": round(wall, 6),
        "requests_per_sec": rate,
        "deltas_applied": deltas,
        "full_solves": full_solves,
        "target_requests_per_sec": INCREMENTAL_TARGET_REQ_PER_SEC,
        "incremental_target_met": rate >= INCREMENTAL_TARGET_REQ_PER_SEC,
    }


def _run_admission_cell(
    topology: str,
    pairs: Sequence[Tuple[str, str]],
    count: int,
    repeats: int,
    seed: int,
    violations: List[str],
) -> Dict[str, Any]:
    """QoS churn to saturation; counts must repeat exactly."""
    graph = service_topology(topology)
    requests = _admission_requests(graph, pairs, count, seed)

    def one_pass() -> Tuple[float, int, Dict[str, int], ControllerState]:
        state = ControllerState(
            service_topology(topology), validated_pool=True
        )
        accepted: List[str] = []
        live: List[str] = []
        rejected: Dict[str, int] = {}
        gc.collect()
        start = time.perf_counter()
        for i, body in enumerate(requests):
            status, payload = dispatch(state, "POST", "/flows", {}, body)
            if status == 201:
                accepted.append(payload["flow"]["flow_id"])
                live.append(payload["flow"]["flow_id"])
            elif status == 409:
                reason = payload["error"]
                rejected[reason] = rejected.get(reason, 0) + 1
            else:
                raise RuntimeError(
                    f"admission request failed oddly: {status} {payload}"
                )
            if i % 3 == 1 and live:
                # Churn: tear one flow down so admission keeps deciding
                # against a moving residual, not a saturated wall.
                _expect(
                    *dispatch(state, "DELETE", f"/flows/{live.pop(0)}", {},
                              None),
                    200,
                )
        wall = time.perf_counter() - start
        for flow_id in live:
            _expect(*dispatch(state, "DELETE", f"/flows/{flow_id}", {}, None),
                    200)
        return wall, len(accepted), rejected, state

    results = [one_pass() for _ in range(repeats)]
    wall = min(r[0] for r in results)
    accepted, rejected = results[0][1], results[0][2]
    for other_wall, other_accepted, other_rejected, _ in results[1:]:
        if (other_accepted, other_rejected) != (accepted, rejected):
            violations.append(
                "admission counts varied across identical request lists: "
                f"{(accepted, rejected)} vs {(other_accepted, other_rejected)}"
            )
    for _, _, _, state in results:
        violations.extend(_audit_violations(state))
    return {
        "requests": count,
        "wall_s": round(wall, 6),
        "requests_per_sec": round(count / wall),
        "accepted": accepted,
        "rejected": dict(sorted(rejected.items())),
        "reject_reasons_seen": sorted(rejected),
    }


def _run_latency_pass(
    state: ControllerState,
    pairs: Sequence[Tuple[str, str]],
    ops: int,
) -> Dict[str, Any]:
    """Per-request direct-dispatch latency (separate instrumented pass)."""
    samples: List[float] = []
    ids: List[str] = []
    for i in range(ops):
        src, dst = pairs[i % len(pairs)]
        body = {"tenant": "lat", "src": src, "dst": dst}
        start = time.perf_counter()
        status, payload = dispatch(state, "POST", "/flows", {}, body)
        samples.append(time.perf_counter() - start)
        _expect(status, payload, 201)
        ids.append(payload["flow"]["flow_id"])
    for flow_id in ids:
        start = time.perf_counter()
        status, payload = dispatch(
            state, "DELETE", f"/flows/{flow_id}", {}, None
        )
        samples.append(time.perf_counter() - start)
        _expect(status, payload, 200)
    samples.sort()
    return {
        "ops": len(samples),
        "p50_us": round(_percentile(samples, 50) * 1e6, 1),
        "p99_us": round(_percentile(samples, 99) * 1e6, 1),
    }


def _run_http_cell(
    topology: str,
    pairs: Sequence[Tuple[str, str]],
    flows: int,
    violations: List[str],
) -> Dict[str, Any]:
    """Provision/release through the real server + keep-alive client."""
    graph = service_topology(topology)
    samples: List[float] = []
    with ServiceThread(graph, validated_pool=True) as service:
        client = ServiceClient("127.0.0.1", service.port)
        try:
            client.get("/healthz")  # connection + pool warm-up
            start_all = time.perf_counter()
            ids: List[str] = []
            for i in range(flows):
                src, dst = pairs[i % len(pairs)]
                start = time.perf_counter()
                status, payload = client.post(
                    "/flows", {"tenant": "http", "src": src, "dst": dst}
                )
                samples.append(time.perf_counter() - start)
                _expect(status, payload, 201)
                ids.append(payload["flow"]["flow_id"])
            for flow_id in ids:
                start = time.perf_counter()
                status, payload = client.delete(f"/flows/{flow_id}")
                samples.append(time.perf_counter() - start)
                _expect(status, payload, 200)
            wall = time.perf_counter() - start_all
            status, payload = client.get("/audit")
            _expect(status, payload, 200)
            violations.extend(payload["violations"])
        finally:
            client.close()
    samples.sort()
    return {
        "flows": flows,
        "requests": len(samples),
        "wall_s": round(wall, 6),
        "requests_per_sec": round(len(samples) / wall),
        "p50_us": round(_percentile(samples, 50) * 1e6, 1),
        "p99_us": round(_percentile(samples, 99) * 1e6, 1),
    }


def run_service_bench(
    topology: str = "torus33",
    seed: int = 1,
    quick: bool = False,
    repeats: Optional[int] = None,
    out: Optional[str] = "BENCH_service.json",
) -> Dict[str, Any]:
    """Run the four-cell service matrix; optionally write *out*.

    ``quick`` trims request counts for CI smoke runs; the bit-identity
    pre-pass still covers every edge pair at full strength.
    """
    if repeats is None:
        repeats = 2 if quick else 3
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    graph = service_topology(topology)
    edges = edge_names(graph)
    rng = random.Random(f"service-bench:{topology}:{seed}")
    pairs = [(a, b) for a in edges for b in edges if a != b]
    rng.shuffle(pairs)

    provision_flows = 400 if quick else 4000
    reroute_requests = 800 if quick else 8000
    admission_requests = 300 if quick else 2000
    latency_ops = 200 if quick else 1000  # x2 ops (provision + release)
    http_flows = 100 if quick else 1000

    # Bit-identity first: a throughput number over wrong route IDs is
    # not a throughput number.
    identity_problems = _verify_bit_identity(topology, pairs)

    violations: List[str] = []
    state = ControllerState(service_topology(topology), validated_pool=True)
    cells: Dict[str, Any] = {}
    cells["provision_tree"] = _run_provision_cell(
        state, pairs, provision_flows, repeats, violations
    )
    cells["reroute_incremental"] = _run_reroute_cell(
        state, pairs, reroute_requests, repeats, violations
    )
    cells["admission_cspf"] = _run_admission_cell(
        topology, pairs, admission_requests, repeats, seed, violations
    )
    latency_direct = _run_latency_pass(state, pairs, latency_ops)
    violations.extend(_audit_violations(state))
    cells["http_roundtrip"] = _run_http_cell(
        topology, pairs, http_flows, violations
    )

    result: Dict[str, Any] = {
        "bench": "repro.service",
        "topology": topology,
        "edges": len(edges),
        "seed": seed,
        "quick": quick,
        "repeats": repeats,
        "cells": cells,
        "latency_direct": latency_direct,
        "identity_checks": {
            "pairs": len(pairs),
            "problems": identity_problems,
        },
        "admission_violations": violations,
        "incremental_target_met": bool(
            cells["reroute_incremental"].get("incremental_target_met")
        ),
        "bit_identical_reference": not identity_problems,
        "zero_admission_violations": not violations,
    }
    return finish_artifact(result, out)


def render_service_bench(result: Dict[str, Any]) -> str:
    cells = result["cells"]
    prov, reroute = cells["provision_tree"], cells["reroute_incremental"]
    adm, http = cells["admission_cspf"], cells["http_roundtrip"]
    lat = result["latency_direct"]
    lines = [
        f"service bench — {result['topology']} "
        f"({result['edges']} edges, seed {result['seed']}, "
        f"{result['cpu_count']} CPU(s), single-threaded)",
        f"  provision (tree):   {prov['requests_per_sec']:>9} req/s  "
        f"({prov['provisions_per_sec']} flows/s over {prov['flows']} flows)",
    ]
    if "skipped" in reroute:
        lines.append(f"  reroute: skipped — {reroute['skipped']}")
    else:
        lines.append(
            f"  reroute (delta):    {reroute['requests_per_sec']:>9} req/s  "
            f"(target {reroute['target_requests_per_sec']}: "
            f"{'MET' if reroute['incremental_target_met'] else 'MISSED'}, "
            f"{reroute['full_solves']} full solves)"
        )
    lines += [
        f"  admission (CSPF):   {adm['requests_per_sec']:>9} req/s  "
        f"({adm['accepted']} accepted, "
        f"{sum(adm['rejected'].values())} rejected: "
        f"{adm['rejected'] or '{}'})",
        f"  http roundtrip:     {http['requests_per_sec']:>9} req/s  "
        f"(p50 {http['p50_us']}us, p99 {http['p99_us']}us)",
        f"  direct latency:     p50 {lat['p50_us']}us, "
        f"p99 {lat['p99_us']}us over {lat['ops']} ops",
        f"  bit-identical to reference crt(): "
        f"{result['bit_identical_reference']}",
        f"  zero admission violations: "
        f"{result['zero_admission_violations']}",
    ]
    return "\n".join(lines)
