"""``repro bench crt`` — control-plane encoding cost, three ways.

For each pool size the benchmark times the same batch of routes through
three encoders:

* **naive** — the reference :func:`~repro.rns.crt.crt` solver exactly as
  the per-flow controller calls it: every encode re-runs the O(n²)
  coprime check and re-derives every modular inverse via egcd;
* **pooled** — :meth:`PoolContext.encode
  <repro.rns.pool.PoolContext.encode>`: basis weights precomputed once
  per pool, subset products memoized, so an encode is a dot product.
  Timed in the amortized regime (contexts warm), which is the regime a
  batch-provisioning controller lives in;
* **incremental** — :meth:`ReencodeDelta.apply_id
  <repro.rns.pool.ReencodeDelta.apply_id>` applying a single-hop port
  change, against the honest alternative of re-solving the mutated
  residue system from scratch with :func:`~repro.rns.crt.crt`.

Every timed operation produces the same deliverable on both sides — the
``(route ID, modulus)`` pair of Eq. 4 (the incremental cell's full
re-solve produces the same pair for the mutated system) — so the
speedup compares encoders, not object-construction plumbing.

Honesty rules match ``repro bench sim``: naive/pooled (and
full/incremental) repeats are interleaved so scheduling drift hits both
alike, the minimum wall time per mode is reported, and **every cell is
verified bit-identical to the reference solver before any speedup is
reported** — each pooled route, each delta ID, and the full
:class:`~repro.rns.pool.PooledEncoder` route objects are compared
against fresh :func:`~repro.rns.crt.crt` solves of the same hop lists.
CI runs ``--quick`` and asserts only the bit-identity flags, never
wall-clock.

Results land in ``BENCH_crt.json``.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.artifact import finish_artifact
from repro.rns.coprime import greedy_coprime_pool
from repro.rns.crt import crt
from repro.rns.encoder import EncodedRoute, Hop, RouteEncoder
from repro.rns.pool import PoolContext, PooledEncoder, ReencodeDelta

__all__ = ["POOLS", "run_crt_bench", "render_crt_bench"]

#: Pool presets.  ``min_id`` scales with pool size (a larger deployment
#: needs larger coprime IDs), so bigger pools also mean wider route IDs
#: — more big-int work per encode, like the sim bench's size ladder.
POOLS: Dict[str, Dict[str, Any]] = {
    "small": dict(pool_size=16, min_id=29, path_hops=5),
    "medium": dict(pool_size=64, min_id=211, path_hops=8),
    "large": dict(pool_size=256, min_id=557, path_hops=10),
}

#: Distinct routes per batch.  Small enough that subset contexts stay
#: cache-resident, large enough that a timed pass is not dominated by
#: loop overhead.
_BATCH = 64


def _make_batch(
    pool: Sequence[int], path_hops: int, rng: random.Random
) -> List[List[Hop]]:
    """A batch of random paths over the pool (distinct switch sets)."""
    batch: List[List[Hop]] = []
    for _ in range(_BATCH):
        ids = rng.sample(list(pool), path_hops)
        batch.append([Hop(s, rng.randrange(s)) for s in ids])
    return batch


def _make_mutations(
    batch: Sequence[Sequence[Hop]], rng: random.Random
) -> List[Tuple[int, int, int]]:
    """One non-identity (batch index, switch_id, new_port) per route."""
    muts: List[Tuple[int, int, int]] = []
    for i, hops in enumerate(batch):
        h = rng.choice(list(hops))
        new_port = rng.randrange(h.switch_id - 1)
        if new_port >= h.port:
            new_port += 1  # skip the identity mutation: it times nothing
        muts.append((i, h.switch_id, new_port))
    return muts


def _verify_cell(
    pool_ctx: PoolContext,
    batch: Sequence[Sequence[Hop]],
    mutations: Sequence[Tuple[int, int, int]],
) -> bool:
    """Every pooled encode and every delta must equal a fresh crt()."""
    encoder = RouteEncoder()
    pooled = PooledEncoder(pool_ctx)
    delta = ReencodeDelta(pool_ctx)
    for hops in batch:
        ref = crt([h.port for h in hops], [h.switch_id for h in hops])
        route = pooled.encode(hops)
        if (route.route_id, route.modulus) != ref:
            return False
        if route != encoder.encode(hops):
            return False
    for i, sid, new_port in mutations:
        base = pooled.encode(batch[i])
        updated = delta.apply(base, sid, new_port)
        mutated = [
            Hop(h.switch_id, new_port if h.switch_id == sid else h.port)
            for h in batch[i]
        ]
        ref = crt([h.port for h in mutated], [h.switch_id for h in mutated])
        if (updated.route_id, updated.modulus) != ref:
            return False
        if delta.apply_id(base, sid, new_port) != ref[0]:
            return False
        # The identity mutation must be a no-op on the same object.
        if delta.apply(base, sid, base.residue_map()[sid]) is not base:
            return False
    return pooled.fallback_encodes == 0 and delta.full_solves == 0


def _residue_batch(
    batch: Sequence[Sequence[Hop]],
) -> List[Tuple[List[int], List[int]]]:
    """(ports, switch_ids) pairs — the raw Eq. 4 inputs per route."""
    return [
        ([h.port for h in hops], [h.switch_id for h in hops])
        for hops in batch
    ]


def _time_naive_encodes(
    systems: Sequence[Tuple[List[int], List[int]]], iters: int
) -> float:
    start = time.perf_counter()
    for _ in range(iters):
        for ports, ids in systems:
            crt(ports, ids)
    return time.perf_counter() - start


def _time_pooled_encodes(
    ctx: PoolContext,
    systems: Sequence[Tuple[List[int], List[int]]],
    iters: int,
) -> float:
    encode = ctx.encode
    start = time.perf_counter()
    for _ in range(iters):
        for ports, ids in systems:
            encode(ports, ids)
    return time.perf_counter() - start


def _time_reencodes_delta(
    delta: ReencodeDelta,
    routes: Sequence[EncodedRoute],
    mutations: Sequence[Tuple[int, int, int]],
    iters: int,
) -> float:
    apply_id = delta.apply_id
    start = time.perf_counter()
    for _ in range(iters):
        for i, sid, new_port in mutations:
            apply_id(routes[i], sid, new_port)
    return time.perf_counter() - start


def run_crt_bench(
    pools: Optional[Sequence[str]] = None,
    seed: int = 1,
    quick: bool = False,
    repeats: Optional[int] = None,
    iters: Optional[int] = None,
    out: Optional[str] = "BENCH_crt.json",
) -> Dict[str, Any]:
    """Run the naive/pooled/incremental matrix; optionally write *out*.

    ``quick`` trims iterations for CI smoke runs; the bit-identity
    verification still covers every cell at full strength (it is not
    iteration-scaled).
    """
    if pools is None:
        pools = tuple(POOLS)
    for name in pools:
        if name not in POOLS:
            raise ValueError(f"unknown pool {name!r}; choose from {sorted(POOLS)}")
    if repeats is None:
        repeats = 2 if quick else 3
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if iters is None:
        iters = 2 if quick else 20
    if iters < 1:
        raise ValueError(f"iters must be >= 1, got {iters}")

    cells: List[Dict[str, Any]] = []
    for name in pools:
        cfg = POOLS[name]
        rng = random.Random(seed * 7919 + cfg["pool_size"])
        pool = greedy_coprime_pool(cfg["pool_size"], cfg["min_id"])
        batch = _make_batch(pool, cfg["path_hops"], rng)
        mutations = _make_mutations(batch, rng)

        pool_ctx = PoolContext(pool, validated=True)
        pooled = PooledEncoder(pool_ctx)
        delta = ReencodeDelta(pool_ctx)

        # Bit-identity first: a speedup over wrong answers is not a
        # speedup.  Verified on a fresh context so the timed warm-up
        # below cannot mask a cold-path bug.
        bit_identical = _verify_cell(
            PoolContext(pool, validated=True), batch, mutations
        )

        # Warm the subset contexts and materialize the routes the delta
        # timings mutate — the amortized regime under measurement.
        routes = [pooled.encode(hops) for hops in batch]
        systems = _residue_batch(batch)
        mutated_systems = _residue_batch([
            [
                Hop(h.switch_id, new_port if h.switch_id == sid else h.port)
                for h in batch[i]
            ]
            for i, sid, new_port in mutations
        ])

        naive_times: List[float] = []
        pooled_times: List[float] = []
        full_times: List[float] = []
        delta_times: List[float] = []
        for _ in range(repeats):
            naive_times.append(_time_naive_encodes(systems, iters))
            pooled_times.append(
                _time_pooled_encodes(pool_ctx, systems, iters)
            )
            full_times.append(
                _time_naive_encodes(mutated_systems, iters)
            )
            delta_times.append(
                _time_reencodes_delta(delta, routes, mutations, iters)
            )
        naive_s, pooled_s = min(naive_times), min(pooled_times)
        full_s, delta_s = min(full_times), min(delta_times)
        ops = _BATCH * iters
        cells.append({
            "pool": name,
            "pool_size": cfg["pool_size"],
            "path_hops": cfg["path_hops"],
            "batch": _BATCH,
            "iters": iters,
            "route_bits": routes[0].bit_length,
            "naive": {
                "wall_s": round(naive_s, 6),
                "encodes_per_sec": round(ops / naive_s),
            },
            "pooled": {
                "wall_s": round(pooled_s, 6),
                "encodes_per_sec": round(ops / pooled_s),
            },
            "encode_speedup": round(naive_s / pooled_s, 2),
            "full_resolve": {
                "wall_s": round(full_s, 6),
                "reencodes_per_sec": round(ops / full_s),
            },
            "incremental": {
                "wall_s": round(delta_s, 6),
                "reencodes_per_sec": round(ops / delta_s),
            },
            "reencode_speedup": round(full_s / delta_s, 2),
            "bit_identical": bit_identical,
        })

    result: Dict[str, Any] = {
        "bench": "repro.crt",
        "quick": quick,
        "repeats": repeats,
        "iters": iters,
        "seed": seed,
        "pools": {name: POOLS[name] for name in pools},
        "cells": cells,
        "bit_identical_reference": all(c["bit_identical"] for c in cells),
    }
    return finish_artifact(result, out)


def render_crt_bench(result: Dict[str, Any]) -> str:
    lines = [
        f"crt bench — naive vs pooled vs incremental "
        f"(seed {result['seed']}, {result['cpu_count']} CPU(s))",
        f"  {'pool':<8} {'hops':>4} {'naive enc/s':>12} "
        f"{'pooled enc/s':>13} {'speedup':>8} {'resolve re/s':>13} "
        f"{'delta re/s':>12} {'speedup':>8}  identical",
    ]
    for c in result["cells"]:
        lines.append(
            f"  {c['pool']:<8} {c['path_hops']:>4} "
            f"{c['naive']['encodes_per_sec']:>12} "
            f"{c['pooled']['encodes_per_sec']:>13} "
            f"{c['encode_speedup']:>7}x "
            f"{c['full_resolve']['reencodes_per_sec']:>13} "
            f"{c['incremental']['reencodes_per_sec']:>12} "
            f"{c['reencode_speedup']:>7}x  "
            f"{'yes' if c['bit_identical'] else 'NO'}"
        )
    lines.append(
        f"  bit-identical to reference crt(): "
        f"{result['bit_identical_reference']}"
    )
    return "\n".join(lines)
