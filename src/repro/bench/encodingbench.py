"""``repro bench encoding`` — the cross-backend x cross-assigner study.

For each Topology Zoo cell the benchmark measures, per encoding backend
(:data:`repro.rns.backends.BACKEND_NAMES`):

* **bits/route** — median and max route-ID bits over all-pairs shortest
  paths (the routes bulk provisioning installs), for the backend's
  native ID assignment *and* the header-bit-optimal ``weighted``
  assigner, with the headline **% reduction vs greedy**;
* **encode ops/sec** — controller-side encodes of a fixed path batch
  through the backend's encoder (pooled timed warm, the amortized
  regime a controller lives in);
* **decode ops/sec** — the per-packet switch decode (``R mod s`` vs the
  carry-less GF(2) remainder), per hop.

Honesty rules match the other benches — and go one further, as the
issue demands: **before any timing**, every backend is driven through
the real differential machinery — the ``backend`` verify oracle
(encoder contract fuzzing, bit-identical integer datapath digests,
XSR's full-sim walk-model equivalence) and the ``walk`` oracle — on
freshly generated fuzz cases, and every timed route in every cell is
decoded back to its ports hop by hop (integer backends additionally
bit-compared against the reference :class:`~repro.rns.encoder.
RouteEncoder`).  A speedup or a bit saving over wrong answers is
neither.  Timing repeats are interleaved across backends so scheduling
drift hits all alike; the minimum wall time per backend is reported.
CI runs ``--quick`` and asserts only the verification flags, never
wall-clock.

Results land in ``BENCH_encoding.json``.
"""

from __future__ import annotations

import random
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.artifact import finish_artifact
from repro.experiments.header_overhead import ZOO_CELLS, zoo_overhead
from repro.rns.backends import BACKEND_NAMES, backend_by_name
from repro.rns.encoder import Hop, RouteEncoder
from repro.topology.graph import PortGraph
from repro.topology.zoo import load_zoo_graph

__all__ = ["CELLS", "run_encoding_bench", "render_encoding_bench"]

#: Topology cells: committed Topology Zoo fixtures.  ``path_hops`` caps
#: sampled path length so the batch is comparable across topologies.
CELLS: Dict[str, Dict[str, Any]] = {
    "abilene": dict(topology="abilene"),
    "synthwan754": dict(topology="synthwan754"),
}

#: Distinct sampled shortest paths per timed batch (crtbench's batch
#: discipline: small enough to stay cache-resident, large enough that a
#: pass is not loop overhead).
_BATCH = 64

#: Fuzz cases driven through the verify oracles before any timing.
_ORACLE_CASES = 2


def _shortest_path(
    graph: PortGraph, src: str, dst: str
) -> Optional[List[str]]:
    """BFS node path src -> dst over the core graph."""
    parent: Dict[str, Optional[str]] = {src: None}
    queue = deque([src])
    while queue:
        node = queue.popleft()
        if node == dst:
            path = [node]
            while parent[path[-1]] is not None:
                path.append(parent[path[-1]])
            return path[::-1]
        for nb in graph.neighbors(node):
            if nb not in parent:
                parent[nb] = node
                queue.append(nb)
    return None


def _sample_hop_batch(
    graph: PortGraph, rng: random.Random
) -> List[List[Hop]]:
    """A batch of real shortest-path hop lists over the topology."""
    names = sorted(graph.switch_ids())
    ids = graph.switch_ids()
    batch: List[List[Hop]] = []
    attempts = 0
    while len(batch) < _BATCH and attempts < _BATCH * 40:
        attempts += 1
        src, dst = rng.sample(names, 2)
        path = _shortest_path(graph, src, dst)
        if path is None or len(path) < 3:
            continue
        batch.append([
            Hop(ids[node], graph.port_of(node, nxt))
            for node, nxt in zip(path[:-1], path[1:])
        ])
    if not batch:
        raise ValueError("topology yielded no multi-hop shortest paths")
    return batch


def _run_verify_oracles(quick: bool) -> Dict[str, Any]:
    """Drive the real verify machinery before timing anything.

    The ``backend`` oracle proves the encoder contract, the integer
    backends' bit-identical datapath digests, and XSR's walk-model
    equivalence; the ``walk`` oracle pins the integer datapath the
    backends are diffed against.
    """
    from repro.verify.cases import case_is_buildable, generate_case
    from repro.verify.oracles import run_oracle

    wanted = 1 if quick else _ORACLE_CASES
    out: Dict[str, Any] = {}
    for oracle in ("backend", "walk"):
        checks = 0
        divergences: List[str] = []
        done = 0
        trial = 0
        while done < wanted and trial < wanted * 50:
            case = generate_case(trial)
            trial += 1
            if not case_is_buildable(case):
                continue
            result = run_oracle(oracle, case)
            checks += result.checks
            divergences.extend(d.detail for d in result.divergences[:3])
            done += 1
        out[oracle] = {
            "cases": done,
            "checks": checks,
            "ok": done == wanted and not divergences,
            "divergences": divergences,
        }
    return out


def _verify_cell_batches(
    batches: Dict[str, List[List[Hop]]],
) -> bool:
    """Every timed route must decode back to its ports, hop by hop.

    Integer backends are additionally bit-compared against the
    reference :class:`RouteEncoder` on the same hop lists.
    """
    reference = RouteEncoder()
    for name, batch in batches.items():
        backend = backend_by_name(name)
        backend.prepare({h.switch_id for hops in batch for h in hops})
        for hops in batch:
            route = backend.encode(hops)
            ids = [h.switch_id for h in hops]
            if backend.decode(route.route_id, ids) != [h.port for h in hops]:
                return False
            if backend.header_bits(route.modulus) != route.bit_length:
                return False
            if name != "xsr":
                ref = reference.encode(hops)
                if route != ref or route.residue_map() != ref.residue_map():
                    return False
    return True


def _time_encodes(encoder, batch: Sequence[Sequence[Hop]], iters: int) -> float:
    encode = encoder.encode
    start = time.perf_counter()
    for _ in range(iters):
        for hops in batch:
            encode(hops)
    return time.perf_counter() - start


def _time_decodes(
    port_at, systems: Sequence[Tuple[int, List[int]]], iters: int
) -> float:
    start = time.perf_counter()
    for _ in range(iters):
        for rid, ids in systems:
            for s in ids:
                port_at(rid, s)
    return time.perf_counter() - start


def run_encoding_bench(
    cells: Optional[Sequence[str]] = None,
    seed: int = 1,
    quick: bool = False,
    repeats: Optional[int] = None,
    iters: Optional[int] = None,
    out: Optional[str] = "BENCH_encoding.json",
) -> Dict[str, Any]:
    """Run the backend x assigner matrix; optionally write *out*.

    ``quick`` trims iterations and oracle cases for CI smoke runs; the
    per-route decode-back verification still covers every timed route
    at full strength (it is not iteration-scaled).
    """
    if cells is None:
        cells = tuple(CELLS)
    for name in cells:
        if name not in CELLS:
            raise ValueError(f"unknown cell {name!r}; choose from {sorted(CELLS)}")
    if repeats is None:
        repeats = 2 if quick else 3
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if iters is None:
        iters = 2 if quick else 10
    if iters < 1:
        raise ValueError(f"iters must be >= 1, got {iters}")

    oracles = _run_verify_oracles(quick)
    oracles_ok = all(o["ok"] for o in oracles.values())

    cell_records: List[Dict[str, Any]] = []
    for name in cells:
        topology = CELLS[name]["topology"]
        rng = random.Random(seed * 6007 + len(topology))

        # The header-bit study: all-pairs bits per (backend, assigner),
        # the % reduction the optimal assigner buys.
        bit_rows = {
            (r.backend, r.assigner): r
            for r in zoo_overhead(topologies=(topology,), cells=ZOO_CELLS)
        }
        greedy = bit_rows[("crt", "greedy")]
        weighted = bit_rows[("crt", "weighted")]
        reduction_pct = (
            100.0 * (greedy.median_bits - weighted.median_bits)
            / greedy.median_bits
        )

        # Timed batches: real shortest paths under each backend's own
        # ID assignment (the graph a controller would actually run).
        graphs = {
            b: load_zoo_graph(
                topology, id_strategy=backend_by_name(b).id_strategy
            )
            for b in BACKEND_NAMES
        }
        batches = {
            b: _sample_hop_batch(graphs[b], random.Random(rng.getrandbits(32)))
            for b in BACKEND_NAMES
        }
        bit_identical = _verify_cell_batches(batches)

        encoders = {}
        systems = {}
        for b in BACKEND_NAMES:
            backend = backend_by_name(b)
            backend.prepare(graphs[b].switch_ids().values())
            encoders[b] = backend.encoder()
            systems[b] = [
                (r.route_id, [h.switch_id for h in hops])
                for hops, r in (
                    (hops, backend.encode(hops)) for hops in batches[b]
                )
            ]

        encode_times: Dict[str, List[float]] = {b: [] for b in BACKEND_NAMES}
        decode_times: Dict[str, List[float]] = {b: [] for b in BACKEND_NAMES}
        for _ in range(repeats):
            # Interleaved: one pass per backend per repeat, so drift
            # hits every backend alike.
            for b in BACKEND_NAMES:
                encode_times[b].append(
                    _time_encodes(encoders[b], batches[b], iters)
                )
            for b in BACKEND_NAMES:
                decode_times[b].append(
                    _time_decodes(
                        backend_by_name(b).port_at, systems[b], iters
                    )
                )

        backends_out: Dict[str, Any] = {}
        for b in BACKEND_NAMES:
            enc_s = min(encode_times[b])
            dec_s = min(decode_times[b])
            encode_ops = len(batches[b]) * iters
            decode_ops = sum(len(ids) for _, ids in systems[b]) * iters
            strat = backend_by_name(b).id_strategy
            # pooled shares crt's modulus, so it shares crt's bit rows.
            row = bit_rows.get((b, strat)) or bit_rows.get(("crt", strat))
            backends_out[b] = {
                "encode_per_sec": round(encode_ops / enc_s),
                "decode_per_sec": round(decode_ops / dec_s),
                "encode_wall_s": round(enc_s, 6),
                "decode_wall_s": round(dec_s, 6),
                "median_bits": row.median_bits if row else None,
                "max_bits": row.max_bits if row else None,
            }

        cell_records.append({
            "cell": name,
            "topology": topology,
            "nodes": greedy.nodes,
            "pairs": greedy.pairs,
            "batch": len(batches["crt"]),
            "iters": iters,
            "backends": backends_out,
            "assigners": {
                f"{b}/{a}": {
                    "median_bits": r.median_bits,
                    "max_bits": r.max_bits,
                }
                for (b, a), r in sorted(bit_rows.items())
            },
            "weighted_reduction_pct": round(reduction_pct, 1),
            "bit_identical": bit_identical,
        })

    result: Dict[str, Any] = {
        "bench": "repro.encoding",
        "quick": quick,
        "repeats": repeats,
        "iters": iters,
        "seed": seed,
        "cells": cell_records,
        "oracles": oracles,
        "verified_before_timing": oracles_ok
        and all(c["bit_identical"] for c in cell_records),
    }
    return finish_artifact(result, out)


def render_encoding_bench(result: Dict[str, Any]) -> str:
    lines = [
        f"encoding bench — backend x assigner over the zoo corpus "
        f"(seed {result['seed']}, {result['cpu_count']} CPU(s))",
        f"  {'cell':<13} {'backend':<8} {'med bits':>8} {'max':>5} "
        f"{'enc/s':>9} {'dec/s':>9}  verified",
    ]
    for c in result["cells"]:
        for b, row in c["backends"].items():
            med = row["median_bits"]
            lines.append(
                f"  {c['cell']:<13} {b:<8} "
                f"{med if med is not None else '-':>8} "
                f"{row['max_bits'] if row['max_bits'] is not None else '-':>5} "
                f"{row['encode_per_sec']:>9} {row['decode_per_sec']:>9}  "
                f"{'yes' if c['bit_identical'] else 'NO'}"
            )
        lines.append(
            f"  {c['cell']:<13} weighted assigner cuts median route-ID "
            f"bits {c['weighted_reduction_pct']}% vs greedy"
        )
    ver = result["verified_before_timing"]
    ora = ", ".join(
        f"{k}: {v['checks']} checks over {v['cases']} case(s)"
        for k, v in result["oracles"].items()
    )
    lines.append(f"  verified before timing: {ver} ({ora})")
    return "\n".join(lines)
