"""``repro bench provision`` — all-pairs provisioning, naive vs vectorized.

For each topology cell the benchmark provisions the **full ingress ×
egress mesh** two ways:

* **naive** — the per-flow :meth:`ProvisioningEngine.provision
  <repro.controller.provision.ProvisioningEngine.provision>` loop, one
  Python BFS tree per destination (memoized), one pooled CRT encode per
  flow — the pre-bulk sequential path, exactly as a controller would
  have run it;
* **vectorized** — :class:`~repro.controller.bulk.BulkProvisioner`
  cold-start: CSR conversion, frontier-batched numpy BFS per
  destination, one :func:`~repro.rns.crt.crt_extend` per tree node.
  The timed pass includes provisioner construction (CSR build) — the
  cold-start number is what a controller restart pays.

Honesty rules match the other benches, plus one this bench exists for:

* **identity pre-pass before any timing** — every mesh pair's
  vectorized route is compared against the per-flow engine field by
  field (node path, hop tuple, route ID, modulus, out-port).  A cell
  only reports a speedup after every one of its routes matched.
* naive/vectorized repeats are interleaved; min wall time per mode.
* On the planet-scale cell the naive mesh is too slow to repeat in
  full, so naive timing samples whole destination blocks and
  extrapolates — the artifact records ``pairs_timed`` and
  ``estimated`` honestly.  The identity pre-pass is never sampled.
* CI (``--quick``) asserts the identity flags only, never wall-clock.

Results land in ``BENCH_provision.json``.  Destination blocks are
independent, so the mesh also shards across farm workers
(``bulkmesh`` job kind); the shard gate re-derives each block's
canonical digest sequentially and requires equality.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.artifact import finish_artifact
from repro.controller.provision import ProvisioningEngine
from repro.topology.generators import attach_edges
from repro.topology.graph import NodeKind, PortGraph
from repro.topology.zoo import abilene, fat_tree, load_zoo_graph

__all__ = [
    "CELLS",
    "DEFAULT_CELLS",
    "QUICK_CELLS",
    "build_mesh_topology",
    "run_provision_bench",
    "render_provision_bench",
    "shard_gate",
]

#: Topology cells.  ``naive_sample_destinations`` bounds the naive
#: timing (None = time the full mesh); the identity pre-pass always
#: covers every pair regardless.  ``target_s`` is the ISSUE's cold-start
#: budget for the planet-scale cell.
CELLS: Dict[str, Dict[str, Any]] = {
    "abilene": dict(naive_sample_destinations=None, target_s=None),
    "fat_tree4": dict(naive_sample_destinations=None, target_s=None),
    "fat_tree8": dict(naive_sample_destinations=None, target_s=None),
    "synthwan754": dict(naive_sample_destinations=4, target_s=5.0),
}

#: The committed-artifact matrix: one real WAN, one data-center fabric,
#: one planet-scale graph.
DEFAULT_CELLS: Tuple[str, ...] = ("abilene", "fat_tree8", "synthwan754")

#: CI smoke matrix — the planet-scale cell is excluded (its identity
#: pre-pass alone is minutes of per-flow provisioning).
QUICK_CELLS: Tuple[str, ...] = ("abilene", "fat_tree4")


def build_mesh_topology(name: str) -> PortGraph:
    """A provisioning domain for one cell: core graph + edge per PoP.

    Spawn-safe by name (farm workers re-import this module and call it
    from the ``bulkmesh`` job), deterministic by construction: fat
    trees attach edges to their edge-layer switches, WANs to every PoP.
    """
    if name == "abilene":
        g = abilene()
    elif name.startswith("fat_tree"):
        k = int(name[len("fat_tree"):])
        g = fat_tree(k)
        attach_edges(
            g,
            sorted(
                n.name for n in g.nodes(NodeKind.CORE)
                if n.name.startswith("edgesw-")
            ),
        )
        return g
    elif name == "synthwan754":
        g = load_zoo_graph("synthwan754")
    else:
        raise ValueError(
            f"unknown provisioning cell {name!r}; choose from {sorted(CELLS)}"
        )
    attach_edges(g)
    return g


def _verify_identity(graph: PortGraph) -> Tuple[bool, int]:
    """Compare EVERY vectorized mesh route against the per-flow engine.

    Field-by-field: node path, hop tuple, route ID, modulus, out-port.
    Returns ``(all_identical, pairs_checked)``.
    """
    from repro.controller.bulk import BulkProvisioner

    engine = ProvisioningEngine(graph, validated_pool=True)
    bp = BulkProvisioner(graph)
    checked = 0
    for row in bp.iter_full_mesh():
        blk = row.block
        for src, entry, port, rid, mod in zip(
            row.src_edges,
            row.entries.tolist(),
            row.out_ports.tolist(),
            row.route_ids,
            row.moduli,
        ):
            ref = engine.provision(src, row.dst_edge)
            if (
                ref.route.route_id != rid
                or ref.route.modulus != mod
                or ref.out_port != int(port)
                or ref.node_path != (src,) + blk.branch_names(entry)
                or ref.route.hops != blk.hops(entry)
            ):
                return False, checked
            checked += 1
    return True, checked


def _time_vectorized(graph: PortGraph) -> Tuple[float, str, int]:
    """Cold-start full mesh: construction + trees + encode + digest."""
    from repro.controller.bulk import BulkProvisioner, mesh_digest

    start = time.perf_counter()
    bp = BulkProvisioner(graph)
    digest, routes = mesh_digest(bp.iter_full_mesh())
    return time.perf_counter() - start, digest, routes


def _time_naive(
    graph: PortGraph, pairs: Sequence[Tuple[str, str]]
) -> float:
    """Per-flow mesh over *pairs*: cold trees, warm CRT pool.

    Engine (pool) construction is excluded — that favors the naive
    side, which keeps the reported speedup conservative.
    """
    engine = ProvisioningEngine(graph, validated_pool=True)
    provision = engine.provision
    start = time.perf_counter()
    for src, dst in pairs:
        provision(src, dst)
    return time.perf_counter() - start


def _naive_pairs(
    graph: PortGraph, sample_destinations: Optional[int], seed: int
) -> Tuple[List[Tuple[str, str]], bool]:
    """The naive timing workload: full mesh, or whole sampled blocks."""
    from repro.controller.bulk import full_mesh_pairs

    pairs = full_mesh_pairs(graph)
    if sample_destinations is None:
        return pairs, False
    dests = sorted({d for _, d in pairs})
    if sample_destinations >= len(dests):
        return pairs, False
    rng = random.Random(seed * 6151 + len(dests))
    picked = set(rng.sample(dests, sample_destinations))
    return [(s, d) for s, d in pairs if d in picked], True


def run_provision_bench(
    cells: Optional[Sequence[str]] = None,
    seed: int = 1,
    quick: bool = False,
    repeats: Optional[int] = None,
    out: Optional[str] = "BENCH_provision.json",
    shards: Optional[bool] = None,
) -> Dict[str, Any]:
    """Run the naive/vectorized mesh matrix; optionally write *out*.

    ``quick`` swaps in the smoke matrix (:data:`QUICK_CELLS`) and trims
    repeats; the identity pre-pass still covers every pair of every
    cell that runs.  ``shards`` controls the farm shard gate (default:
    on; it spawns worker processes, so callers embedding the bench can
    disable it).
    """
    if cells is None:
        cells = QUICK_CELLS if quick else DEFAULT_CELLS
    for name in cells:
        if name not in CELLS:
            raise ValueError(
                f"unknown cell {name!r}; choose from {sorted(CELLS)}"
            )
    if repeats is None:
        repeats = 2 if quick else 3
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if shards is None:
        shards = True

    from repro.controller.bulk import full_mesh_pairs

    records: List[Dict[str, Any]] = []
    for name in cells:
        cfg = CELLS[name]
        graph = build_mesh_topology(name)
        n_core = len(list(graph.nodes(NodeKind.CORE)))
        n_edge = len(list(graph.nodes(NodeKind.EDGE)))
        total_pairs = len(full_mesh_pairs(graph))

        # Bit-identity first — a speedup over wrong route IDs is not a
        # speedup.  Every pair, never sampled.
        bit_identical, verified = _verify_identity(graph)

        naive_pairs, estimated = _naive_pairs(
            graph, cfg["naive_sample_destinations"], seed
        )
        naive_times: List[float] = []
        vec_times: List[float] = []
        digest = ""
        routes = 0
        for _ in range(repeats):
            naive_times.append(_time_naive(graph, naive_pairs))
            wall, digest, routes = _time_vectorized(graph)
            vec_times.append(wall)
        naive_s = min(naive_times)
        vec_s = min(vec_times)
        naive_full_s = naive_s * (total_pairs / len(naive_pairs))
        target_s = cfg["target_s"]
        records.append({
            "cell": name,
            "core_nodes": n_core,
            "edge_nodes": n_edge,
            "pairs": total_pairs,
            "identity": {
                "bit_identical": bit_identical,
                "verified_pairs": verified,
            },
            "naive": {
                "wall_s": round(naive_s, 6),
                "pairs_timed": len(naive_pairs),
                "estimated": estimated,
                "estimated_full_wall_s": round(naive_full_s, 6),
                "routes_per_sec": round(len(naive_pairs) / naive_s),
            },
            "vectorized": {
                "wall_s": round(vec_s, 6),
                "cold_start": True,
                "routes_per_sec": round(routes / vec_s),
            },
            "speedup": round(naive_full_s / vec_s, 2),
            "mesh_digest": digest,
            "target_s": target_s,
            "target_met": (vec_s < target_s) if target_s else None,
        })

    gate = shard_gate(jobs=2) if shards else None
    result: Dict[str, Any] = {
        "bench": "repro.provision",
        "quick": quick,
        "repeats": repeats,
        "seed": seed,
        "cells": records,
        "bit_identical_reference": all(
            c["identity"]["bit_identical"] for c in records
        ),
        "targets_met": all(
            c["target_met"] is not False for c in records
        ),
        "shard_gate": gate,
    }
    return finish_artifact(result, out)


def shard_gate(
    topology: str = "abilene", blocks: int = 2, jobs: int = 2
) -> Dict[str, Any]:
    """Shard one mesh across farm workers and gate the block digests.

    Destinations split into *blocks* contiguous chunks; each chunk runs
    as one ``bulkmesh`` job in a worker process.  The gate re-derives
    every block's canonical digest sequentially in this process and
    requires byte equality — a shard that drifted (stale import, wrong
    fixture, nondeterminism) cannot slip a block into the mesh.
    """
    from repro.controller.bulk import BulkProvisioner, mesh_digest
    from repro.farm.executor import FarmOptions, run_specs
    from repro.farm.jobs import bulkmesh_spec

    graph = build_mesh_topology(topology)
    bp = BulkProvisioner(graph)
    dests = bp.edge_names
    if not 1 <= blocks <= len(dests):
        raise ValueError(
            f"blocks must be in 1..{len(dests)}, got {blocks}"
        )
    size = (len(dests) + blocks - 1) // blocks
    chunks = [dests[i:i + size] for i in range(0, len(dests), size)]
    specs = [bulkmesh_spec(topology, chunk) for chunk in chunks]
    options = FarmOptions(
        jobs=jobs, no_cache=True, progress=False, label="bulkmesh"
    )
    results = run_specs(specs, options, label="bulkmesh")
    gates: List[Dict[str, Any]] = []
    all_match = True
    for chunk, record in zip(chunks, results):
        seq_digest, seq_routes = mesh_digest(
            bp.mesh_row(d) for d in chunk
        )
        mesh = record["mesh"]
        match = (
            mesh["mesh_digest"] == seq_digest
            and mesh["routes"] == seq_routes
        )
        all_match = all_match and match
        gates.append({
            "destinations": len(chunk),
            "routes": mesh["routes"],
            "shard_digest": mesh["mesh_digest"],
            "sequential_digest": seq_digest,
            "match": match,
        })
    return {
        "topology": topology,
        "blocks": blocks,
        "jobs": jobs,
        "gates": gates,
        "digests_match": all_match,
    }


def render_provision_bench(result: Dict[str, Any]) -> str:
    lines = [
        f"provision bench — naive per-flow vs vectorized bulk "
        f"(seed {result['seed']}, {result['cpu_count']} CPU(s))",
        f"  {'cell':<12} {'cores':>6} {'pairs':>8} {'naive rt/s':>11} "
        f"{'bulk rt/s':>10} {'speedup':>8} {'cold wall':>10}  "
        f"identical  target",
    ]
    for c in result["cells"]:
        target = "-"
        if c["target_s"]:
            target = (
                f"<{c['target_s']:g}s "
                f"{'met' if c['target_met'] else 'MISSED'}"
            )
        naive_note = "~" if c["naive"]["estimated"] else ""
        lines.append(
            f"  {c['cell']:<12} {c['core_nodes']:>6} {c['pairs']:>8} "
            f"{naive_note}{c['naive']['routes_per_sec']:>10} "
            f"{c['vectorized']['routes_per_sec']:>10} "
            f"{c['speedup']:>7}x "
            f"{c['vectorized']['wall_s']:>9.3f}s  "
            f"{'yes' if c['identity']['bit_identical'] else 'NO':<9}  "
            f"{target}"
        )
    lines.append(
        f"  bit-identical to per-flow reference: "
        f"{result['bit_identical_reference']}"
    )
    gate = result.get("shard_gate")
    if gate:
        lines.append(
            f"  farm shard gate ({gate['topology']}, "
            f"{gate['blocks']} blocks x {gate['jobs']} jobs): "
            f"digests match = {gate['digests_match']}"
        )
    return "\n".join(lines)
