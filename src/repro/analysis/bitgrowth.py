"""Route-ID bit-length growth studies (Section 2.3 extensions).

Beyond Table 1's three rows, these sweeps quantify how the header cost
scales with route length and with the switch-ID assignment strategy —
the design trade-off the paper flags ("this restriction should be
considered for implementation purposes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.rns.bitlength import route_id_bit_length
from repro.rns.coprime import greedy_coprime_pool, prime_pool

__all__ = ["GrowthPoint", "bit_growth_by_strategy", "protection_budget_table"]


@dataclass(frozen=True)
class GrowthPoint:
    """Bit length needed for a route of *hops* switches."""

    hops: int
    bits: int

    @property
    def bits_per_hop(self) -> float:
        return self.bits / self.hops if self.hops else 0.0


def bit_growth_by_strategy(
    max_hops: int,
    strategies: Sequence[str] = ("greedy", "prime"),
    min_value: int = 4,
) -> Dict[str, List[GrowthPoint]]:
    """Worst-case bit growth per strategy.

    For each strategy the route uses the *largest* IDs of a pool sized
    ``max_hops`` — the worst case, since any network must provision for
    its longest route through its biggest IDs.
    """
    if max_hops < 1:
        raise ValueError(f"max_hops must be >= 1, got {max_hops}")
    out: Dict[str, List[GrowthPoint]] = {}
    for strategy in strategies:
        if strategy == "greedy":
            pool = greedy_coprime_pool(max_hops, min_value=min_value)
        elif strategy == "prime":
            pool = prime_pool(max_hops, min_value=min_value)
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        worst_first = sorted(pool, reverse=True)
        points: List[GrowthPoint] = []
        product = 1
        for i, sid in enumerate(worst_first, start=1):
            product *= sid
            points.append(GrowthPoint(hops=i, bits=route_id_bit_length(product)))
        out[strategy] = points
    return out


def protection_budget_table(
    route_ids: Sequence[int],
    protection_ids: Sequence[int],
    budgets: Sequence[int],
) -> List[Tuple[int, int]]:
    """(budget_bits, protection_hops_that_fit) rows.

    Mirrors the paper's loose/partial protection discussion: given a
    header budget, how many protection switches can the controller fold
    into the route ID after the primary route is paid for?
    """
    base = 1
    for sid in route_ids:
        base *= sid
    rows: List[Tuple[int, int]] = []
    for budget in budgets:
        product = base
        fitted = 0
        for sid in protection_ids:
            if route_id_bit_length(product * sid) > budget:
                break
            product *= sid
            fitted += 1
        rows.append((budget, fitted))
    return rows
