"""Route-ID bit-length growth studies (Section 2.3 extensions).

Beyond Table 1's three rows, these sweeps quantify how the header cost
scales with route length and with the switch-ID assignment strategy —
the design trade-off the paper flags ("this restriction should be
considered for implementation purposes").

The budget sweeps share one primitive, :func:`prefix_route_bits`: the
bit length of every prefix product is accumulated **once** per ID
sequence (one big-int multiply per step, the base product built with
the balanced :func:`~repro.rns.pool.product_tree`), and each budget
query is then a binary search over the cached non-decreasing bit
lengths.  The pre-PR-10 code re-multiplied the whole prefix and re-took
``route_id_bit_length`` for every (budget, hop) pair — identical
results, ``O(budgets × hops)`` big-int work instead of ``O(hops)``,
which is real money on zoo-scale pools.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.rns.bitlength import route_id_bit_length
from repro.rns.coprime import greedy_coprime_pool, prime_pool
from repro.rns.gf2 import dual_coprime_pool, gf2_degree
from repro.rns.pool import product_tree

__all__ = [
    "GrowthPoint",
    "bit_growth_by_strategy",
    "protection_budget_table",
    "prefix_route_bits",
    "max_prefix_within_budget",
    "growth_pool",
]


@dataclass(frozen=True)
class GrowthPoint:
    """Bit length needed for a route of *hops* switches."""

    hops: int
    bits: int

    @property
    def bits_per_hop(self) -> float:
        return self.bits / self.hops if self.hops else 0.0


def growth_pool(strategy: str, size: int, min_value: int = 4) -> List[int]:
    """The ID pool a growth sweep draws from, by assigner strategy.

    ``weighted`` shares the greedy pool (the optimal assigner changes
    which switch *gets* which ID, not the pool itself); ``xsr`` is the
    dual-coprime pool both the integer and GF(2) rings accept.
    """
    if strategy in ("greedy", "weighted"):
        return greedy_coprime_pool(size, min_value=min_value)
    if strategy == "prime":
        return prime_pool(size, min_value=min_value)
    if strategy == "xsr":
        return dual_coprime_pool(size, min_value=min_value)
    raise ValueError(f"unknown strategy {strategy!r}")


def prefix_route_bits(
    ids: Sequence[int], base_ids: Sequence[int] = ()
) -> List[int]:
    """``bits[i]`` = header bits of the route using ``base_ids + ids[:i+1]``.

    The cached-prefix primitive behind every budget sweep: the base
    product is built once with the balanced
    :func:`~repro.rns.pool.product_tree`, each prefix extends it by one
    multiply, and the resulting bit lengths are **non-decreasing** (every
    ID is >= 2), so budget queries reduce to
    :func:`max_prefix_within_budget`'s binary search.
    """
    bits: List[int] = []
    product = product_tree(base_ids) if base_ids else 1
    for sid in ids:
        product *= sid
        bits.append(route_id_bit_length(product))
    return bits


def max_prefix_within_budget(prefix_bits: Sequence[int], budget: int) -> int:
    """How many prefix IDs fit a *budget*-bit header.

    *prefix_bits* must be non-decreasing (which
    :func:`prefix_route_bits` guarantees); the answer is a bisection,
    not a re-multiplication.
    """
    return bisect_right(prefix_bits, budget)


def bit_growth_by_strategy(
    max_hops: int,
    strategies: Sequence[str] = ("greedy", "prime"),
    min_value: int = 4,
) -> Dict[str, List[GrowthPoint]]:
    """Worst-case bit growth per strategy.

    For each strategy the route uses the *largest* IDs of a pool sized
    ``max_hops`` — the worst case, since any network must provision for
    its longest route through its biggest IDs.  The ``xsr`` strategy
    reports the XSR backend's cost on its dual-coprime pool: polynomial
    degrees simply add, so the accumulation is a running degree sum —
    no big-int products at all.
    """
    if max_hops < 1:
        raise ValueError(f"max_hops must be >= 1, got {max_hops}")
    out: Dict[str, List[GrowthPoint]] = {}
    for strategy in strategies:
        pool = growth_pool(strategy, max_hops, min_value=min_value)
        worst_first = sorted(pool, reverse=True)
        points: List[GrowthPoint] = []
        if strategy == "xsr":
            degree_sum = 0
            for i, sid in enumerate(worst_first, start=1):
                degree_sum += gf2_degree(sid)
                points.append(GrowthPoint(hops=i, bits=degree_sum))
        else:
            for i, bits in enumerate(prefix_route_bits(worst_first), start=1):
                points.append(GrowthPoint(hops=i, bits=bits))
        out[strategy] = points
    return out


def protection_budget_table(
    route_ids: Sequence[int],
    protection_ids: Sequence[int],
    budgets: Sequence[int],
) -> List[Tuple[int, int]]:
    """(budget_bits, protection_hops_that_fit) rows.

    Mirrors the paper's loose/partial protection discussion: given a
    header budget, how many protection switches can the controller fold
    into the route ID after the primary route is paid for?  The prefix
    bit lengths are accumulated once and every budget row is a binary
    search — same rows as the per-budget re-multiplication loop this
    replaced.
    """
    prefix_bits = prefix_route_bits(protection_ids, base_ids=route_ids)
    return [
        (budget, max_prefix_within_budget(prefix_bits, budget))
        for budget in budgets
    ]
