"""Static protection-coverage analysis.

Given a topology, a primary route, a protection set and a failure link,
this module answers — *without running a packet simulation* — the
question the paper's Section 3 narratives answer by hand: where can a
NIP-deflected packet land, and what happens to it there?

Each first-hop deflection candidate is classified:

* ``DRIVEN`` — every subsequent hop is determined by an encoded residue
  (route or protection) until the destination: the paper's driven
  deflection, zero randomness after the first hop.
* ``FORCED`` — the walk is deterministic even through *unencoded*
  switches because NIP leaves exactly one legal port (degree-2 rejoins).
* ``WANDERING`` — the walk reaches a switch where the next hop is
  genuinely random (invalid residue with ≥ 2 candidate ports).

The paper's "2/3 of packets will be sent to switches SW17 or SW37" is
exactly the WANDERING fraction at SW10; tests assert these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.controller.protection import segments_to_hops
from repro.topology.graph import NodeKind, PortGraph, TopologyError
from repro.topology.topologies import ProtectionSegment

__all__ = ["Fate", "CandidateOutcome", "CoverageReport", "analyze_failure"]


class Fate:
    """Classification constants for a deflection candidate."""

    DRIVEN = "driven"
    FORCED = "forced"
    WANDERING = "wandering"
    DEAD_END = "dead-end"


@dataclass(frozen=True)
class CandidateOutcome:
    """What happens to packets deflected to one candidate switch."""

    candidate: str
    fate: str
    path: Tuple[str, ...]  # deterministic prefix of the walk
    probability: float     # uniform over candidates (NIP)


@dataclass(frozen=True)
class CoverageReport:
    """Coverage of one failure case by one protection set."""

    failure: Tuple[str, str]
    deflection_switch: str
    outcomes: Tuple[CandidateOutcome, ...]

    @property
    def delivered_fraction(self) -> float:
        """Probability mass that is deterministically delivered."""
        return sum(
            o.probability
            for o in self.outcomes
            if o.fate in (Fate.DRIVEN, Fate.FORCED)
        )

    @property
    def wandering_fraction(self) -> float:
        return sum(
            o.probability for o in self.outcomes if o.fate == Fate.WANDERING
        )

    def describe(self) -> str:
        parts = [
            f"{o.candidate}: {o.fate} (p={o.probability:.3f})"
            for o in self.outcomes
        ]
        return (
            f"failure {self.failure[0]}-{self.failure[1]} at "
            f"{self.deflection_switch}: " + "; ".join(parts)
        )


def _residue_ports(
    graph: PortGraph,
    route: Sequence[str],
    dst_edge: str,
    segments: Iterable[ProtectionSegment],
) -> Dict[str, int]:
    """switch name -> encoded output port (route hops + protection)."""
    ports: Dict[str, int] = {}
    path = list(route) + [dst_edge]
    for current, nxt in zip(path, path[1:]):
        ports[current] = graph.port_of(current, nxt)
    for hop, seg in zip(segments_to_hops(graph, list(segments)), segments):
        ports[seg.at] = hop.port
    return ports


def analyze_failure(
    graph: PortGraph,
    route: Sequence[str],
    dst_edge: str,
    segments: Iterable[ProtectionSegment],
    failure: Tuple[str, str],
    max_walk: int = 64,
) -> CoverageReport:
    """Classify every NIP deflection candidate for one failure.

    Args:
        graph: the topology.
        route: primary core route (the failure must be one of its links).
        dst_edge: the egress edge node (walk target).
        segments: the protection segments encoded in the route ID.
        failure: (upstream, downstream) link on the route that fails.
        max_walk: deterministic-walk step bound (loop guard).
    """
    up, down = failure
    if up not in route:
        raise TopologyError(f"failure upstream {up!r} is not on the route")
    segments = tuple(segments)
    encoded = _residue_ports(graph, route, dst_edge, segments)

    idx = list(route).index(up)
    in_node = route[idx - 1] if idx > 0 else None  # None -> came from edge
    banned = {down}
    if in_node is not None:
        banned.add(in_node)

    candidates = [
        nb for nb in graph.core_subgraph_neighbors(up) if nb not in banned
    ]
    if not candidates:
        return CoverageReport(failure=failure, deflection_switch=up, outcomes=())
    p_each = 1.0 / len(candidates)

    outcomes = []
    for cand in candidates:
        fate, path = _walk(graph, encoded, route, dst_edge, up, cand,
                           failure, max_walk)
        outcomes.append(
            CandidateOutcome(candidate=cand, fate=fate, path=tuple(path),
                             probability=p_each)
        )
    return CoverageReport(
        failure=failure, deflection_switch=up, outcomes=tuple(outcomes)
    )


def _walk(
    graph: PortGraph,
    encoded: Dict[str, int],
    route: Sequence[str],
    dst_edge: str,
    prev: str,
    start: str,
    failure: Tuple[str, str],
    max_walk: int,
) -> Tuple[str, List[str]]:
    """Follow the deterministic portion of a NIP walk from *start*.

    At an *encoded* switch the residue dictates the hop (driven).  At an
    unencoded switch the modulo result is an arbitrary residue — treated
    as random, matching the paper's own narrative analysis — unless NIP
    leaves exactly one legal port (forced).
    """
    failed = frozenset(failure)
    path = [start]
    steps_taken = set()  # (from, to) pairs: revisiting one = fixed loop
    current, came_from = start, prev
    forced = False
    dst_switch = route[-1]
    for _ in range(max_walk):
        if current == dst_switch:
            return (Fate.FORCED if forced else Fate.DRIVEN), path
        if graph.node(current).kind != NodeKind.CORE:
            return (Fate.FORCED if forced else Fate.DRIVEN), path
        nxt, was_driven = _next_hop(graph, encoded, current, came_from, failed)
        if nxt is None:
            return Fate.WANDERING, path
        if nxt == "":
            return Fate.DEAD_END, path
        if not was_driven:
            forced = True
        if (current, nxt) in steps_taken:
            return Fate.DEAD_END, path  # deterministic loop
        steps_taken.add((current, nxt))
        came_from, current = current, nxt
        path.append(current)
    return Fate.DEAD_END, path


def _next_hop(
    graph: PortGraph,
    encoded: Dict[str, int],
    node: str,
    came_from: str,
    failed: frozenset,
) -> Tuple[Optional[str], bool]:
    """Deterministic NIP next hop.

    Returns ``(target, was_driven)``; target is None when the hop would
    be genuinely random, and "" for a dead end (no legal port at all).
    """

    def link_ok(a: str, b: str) -> bool:
        return not ({a, b} <= failed)

    in_port = graph.port_of(node, came_from)
    if node in encoded:
        port = encoded[node]
        target = graph.neighbor_on_port(node, port)
        if port != in_port and link_ok(node, target):
            return target, True
    # Unencoded (or unusable residue): NIP picks randomly among healthy
    # non-input ports — deterministic only when exactly one exists.
    options = [
        graph.neighbor_on_port(node, p)
        for p in range(graph.degree(node))
        if p != in_port and link_ok(node, graph.neighbor_on_port(node, p))
    ]
    if not options:
        return "", False
    if len(options) == 1:
        return options[0], False
    return None, False
