"""Analytical models: coverage, random walks, stats, header growth."""

from repro.analysis.bitgrowth import (
    GrowthPoint,
    bit_growth_by_strategy,
    protection_budget_table,
)
from repro.analysis.delay import DelayReport, analyze_delays, rfc3550_jitter
from repro.analysis.coverage import (
    CandidateOutcome,
    CoverageReport,
    Fate,
    analyze_failure,
)
from repro.analysis.residues import (
    ResidueProfile,
    expected_random_hops_fraction,
    network_residue_profiles,
    residue_profile,
)
from repro.analysis.stats import MeanCI, mean_ci
from repro.analysis.walk import (
    GeometricRetryModel,
    absorption_probability,
    geometric_retry,
    hot_potato_hitting_time,
)

__all__ = [
    "analyze_failure",
    "CoverageReport",
    "CandidateOutcome",
    "Fate",
    "hot_potato_hitting_time",
    "absorption_probability",
    "geometric_retry",
    "GeometricRetryModel",
    "mean_ci",
    "DelayReport",
    "analyze_delays",
    "rfc3550_jitter",
    "ResidueProfile",
    "residue_profile",
    "network_residue_profiles",
    "expected_random_hops_fraction",
    "MeanCI",
    "bit_growth_by_strategy",
    "GrowthPoint",
    "protection_budget_table",
]
