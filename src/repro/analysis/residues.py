"""Residue statistics at unencoded switches.

When a deflected packet reaches a switch that is *not* encoded in its
route ID, the modulo result is an arbitrary residue in ``[0, s)``.
Three things can happen, and their probabilities shape every wandering
walk in the evaluation:

* the residue hits a **valid port** (``< degree``): AVP/NIP forward
  there *deterministically* — the packet may be captured by a fixed
  (per-route) pseudo-path;
* the residue hits the **input port** (NIP only): re-randomize;
* the residue is **invalid**: uniform random next hop.

For a route ID uniformly distributed in ``[0, M)`` (CRT output over
coprime moduli is equidistributed mod any other coprime ``s``), the
accidental-validity probability at a switch with degree ``d`` and ID
``s`` is ``d / s`` — which is why the paper's small IDs on high-degree
switches (e.g. SW13 with ID 13, degree 7 in the RNP) wander so much
less randomly than large-ID leaf switches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.topology.graph import NodeKind, PortGraph

__all__ = [
    "ResidueProfile",
    "residue_profile",
    "network_residue_profiles",
    "expected_random_hops_fraction",
]


@dataclass(frozen=True)
class ResidueProfile:
    """Accidental-forwarding statistics for one unencoded switch."""

    switch: str
    switch_id: int
    degree: int

    @property
    def p_valid(self) -> float:
        """P(residue addresses an existing port)."""
        return min(self.degree / self.switch_id, 1.0)

    @property
    def p_invalid(self) -> float:
        """P(residue is out of range -> random deflection)."""
        return 1.0 - self.p_valid

    def p_deterministic_nip(self, in_degree_known: bool = True) -> float:
        """P(NIP forwards deterministically on the residue).

        NIP rejects the residue when it equals the input port, so one of
        the ``degree`` ports is excluded: ``(degree - 1) / switch_id``.
        """
        if self.degree <= 1:
            return 0.0
        return (self.degree - 1) / self.switch_id


def residue_profile(graph: PortGraph, switch: str) -> ResidueProfile:
    """Profile one core switch."""
    info = graph.node(switch)
    if info.kind != NodeKind.CORE or info.switch_id is None:
        raise ValueError(f"{switch!r} is not a core switch")
    return ResidueProfile(
        switch=switch, switch_id=info.switch_id, degree=info.degree
    )


def network_residue_profiles(graph: PortGraph) -> List[ResidueProfile]:
    """Profiles for every core switch, sorted by accidental validity."""
    profiles = [
        residue_profile(graph, n.name) for n in graph.nodes(NodeKind.CORE)
    ]
    profiles.sort(key=lambda p: p.p_valid, reverse=True)
    return profiles


def expected_random_hops_fraction(
    graph: PortGraph, visited: Sequence[str]
) -> float:
    """Mean P(random re-pick) along a walk through *visited* switches.

    The fraction of hops on a wandering walk where NIP must fall back to
    a uniform random choice (residue invalid or equal to the input
    port) rather than following the pseudo-deterministic residue.  Low
    values mean route IDs effectively *capture* wanderers onto fixed
    pseudo-paths; high values mean true random walks.
    """
    if not visited:
        raise ValueError("no switches given")
    total = 0.0
    for name in visited:
        profile = residue_profile(graph, name)
        total += 1.0 - profile.p_deterministic_nip()
    return total / len(visited)
