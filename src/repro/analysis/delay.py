"""Delay and jitter metrics.

The paper frames its evaluation as measuring "the impact of the packet
disordering and jitter due to a link failure and the deflection
routing".  Reordering metrics live in
:mod:`repro.transport.reordering`; this module covers the delay side:

* one-way delay summary (mean / percentiles / max),
* RFC 3550 interarrival jitter (the RTP estimator),
* delay spread between deflection branches (max - min percentile
  band), which is the direct cause of the reordering depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["DelayReport", "analyze_delays", "rfc3550_jitter"]


@dataclass(frozen=True)
class DelayReport:
    """Summary of one-way delays (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float
    jitter: float  # RFC 3550 estimator, final value

    def describe(self) -> str:
        return (
            f"n={self.count} mean={1e3 * self.mean:.2f}ms "
            f"p50={1e3 * self.p50:.2f}ms p95={1e3 * self.p95:.2f}ms "
            f"p99={1e3 * self.p99:.2f}ms max={1e3 * self.max:.2f}ms "
            f"jitter={1e3 * self.jitter:.3f}ms"
        )


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile on pre-sorted data."""
    if not sorted_values:
        raise ValueError("no data")
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def rfc3550_jitter(delays: Sequence[float]) -> float:
    """RFC 3550 §6.4.1 interarrival jitter over a delay series.

    ``J += (|D(i-1, i)| - J) / 16`` where D is the delay difference of
    consecutive packets.  Returns the final estimator value.
    """
    jitter = 0.0
    for prev, cur in zip(delays, delays[1:]):
        jitter += (abs(cur - prev) - jitter) / 16.0
    return jitter


def analyze_delays(delays: Sequence[float]) -> DelayReport:
    """Summarize a one-way delay series (e.g. ``UdpSink`` arrivals).

    >>> analyze_delays([0.001, 0.001, 0.002]).count
    3
    """
    if not delays:
        raise ValueError("cannot analyze an empty delay series")
    ordered = sorted(delays)
    return DelayReport(
        count=len(delays),
        mean=sum(delays) / len(delays),
        p50=_percentile(ordered, 0.50),
        p95=_percentile(ordered, 0.95),
        p99=_percentile(ordered, 0.99),
        max=ordered[-1],
        jitter=rfc3550_jitter(list(delays)),
    )
