"""Random-walk analysis of deflected packets.

Three exact (non-simulated) models:

* :func:`hot_potato_hitting_time` — a Hot-Potato packet performs a
  uniform random walk on the core graph; the expected number of hops
  until it first reaches a target set (destination or any encoded
  switch) is the classic absorbing-Markov-chain hitting time, solved
  with one dense linear system (numpy).
* :func:`geometric_retry` — the Fig. 8 redundant-path loop: each visit
  to the decision switch succeeds with probability *p*; failures cost a
  fixed loop detour.  Expected extra hops follow the geometric series
  the paper describes qualitatively ("this protection loop will
  continue until SW109 is probabilistically chosen").
* :func:`deterministic_route_walk` — the no-deflection dataplane as a
  pure graph walk: hop by hop ``R mod s``, TTL bookkeeping, drops, and
  edge misdelivery re-encodes, with no event engine, queues, or clocks
  involved.  The differential verifier (:mod:`repro.verify`) diffs its
  verdicts against the real simulator's packet traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Collection,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.topology.graph import NodeKind, PortGraph, TopologyError

if TYPE_CHECKING:
    from repro.switches.deflection import DeflectionStrategy

__all__ = [
    "hot_potato_hitting_time",
    "absorption_probability",
    "geometric_retry",
    "GeometricRetryModel",
    "WalkHop",
    "WalkVerdict",
    "deterministic_route_walk",
    "deterministic_strategy_walk",
]


def _core_adjacency(graph: PortGraph) -> Dict[str, List[str]]:
    return {
        n.name: graph.core_subgraph_neighbors(n.name)
        for n in graph.nodes(NodeKind.CORE)
    }


def hot_potato_hitting_time(
    graph: PortGraph,
    start: str,
    targets: Iterable[str],
) -> float:
    """Expected hops for a uniform random walk from *start* to *targets*.

    Models a Hot-Potato-deflected packet: at every core switch it exits
    via a uniformly random port (edges and the input port included in
    the real dataplane; here the walk is over the core subgraph, which
    upper-bounds the core wandering).

    Returns ``inf`` when some probability mass never reaches a target
    (disconnected component).
    """
    adj = _core_adjacency(graph)
    target_set = set(targets)
    for t in target_set:
        if t not in adj:
            raise TopologyError(f"target {t!r} is not a core switch")
    if start in target_set:
        return 0.0
    if start not in adj:
        raise TopologyError(f"start {start!r} is not a core switch")

    transient = [n for n in adj if n not in target_set]
    index = {n: i for i, n in enumerate(transient)}
    n = len(transient)
    # (I - Q) t = 1, where Q is the transient-to-transient transition
    # matrix; t[i] is the expected steps to absorption from state i.
    A = np.eye(n)
    reaches = np.zeros(n, dtype=bool)
    for name in transient:
        i = index[name]
        neighbors = adj[name]
        if not neighbors:
            continue
        p = 1.0 / len(neighbors)
        for nb in neighbors:
            if nb in target_set:
                reaches[i] = True
            else:
                A[i, index[nb]] -= p
    try:
        t = np.linalg.solve(A, np.ones(n))
    except np.linalg.LinAlgError:
        return float("inf")
    value = float(t[index[start]])
    if not np.isfinite(value) or value < 0:
        return float("inf")
    return value


def absorption_probability(
    graph: PortGraph,
    start: str,
    good: Iterable[str],
    bad: Iterable[str],
) -> float:
    """P(walk from *start* hits *good* before *bad*).

    Useful for questions like "what fraction of HP packets reach the
    destination before straying back to the ingress edge?".
    """
    adj = _core_adjacency(graph)
    good_set, bad_set = set(good), set(bad)
    if start in good_set:
        return 1.0
    if start in bad_set:
        return 0.0
    transient = [n for n in adj if n not in good_set | bad_set]
    index = {n: i for i, n in enumerate(transient)}
    n = len(transient)
    A = np.eye(n)
    b = np.zeros(n)
    for name in transient:
        i = index[name]
        neighbors = adj[name]
        if not neighbors:
            continue
        p = 1.0 / len(neighbors)
        for nb in neighbors:
            if nb in good_set:
                b[i] += p
            elif nb in bad_set:
                continue
            else:
                A[i, index[nb]] -= p
    x = np.linalg.solve(A, b)
    return float(x[index[start]])


@dataclass(frozen=True)
class GeometricRetryModel:
    """Closed-form Fig. 8 model.

    Attributes:
        p_success: probability the decision switch picks the delivering
            branch (1/2 at SW73: SW109 vs SW71).
        direct_hops: hops from the decision switch to delivery on the
            success branch.
        loop_hops: hops consumed by one failed attempt (the protection
            loop back to the decision switch).
    """

    p_success: float
    direct_hops: int
    loop_hops: int

    @property
    def expected_attempts(self) -> float:
        return 1.0 / self.p_success

    @property
    def expected_extra_hops(self) -> float:
        """Mean hops added by the retry loop (excludes the direct tail)."""
        return (1.0 - self.p_success) / self.p_success * self.loop_hops

    @property
    def expected_total_hops(self) -> float:
        return self.direct_hops + self.expected_extra_hops

    def attempt_distribution(self, k_max: int) -> List[float]:
        """P(delivered on attempt k) for k = 1..k_max (geometric)."""
        return [
            (1.0 - self.p_success) ** (k - 1) * self.p_success
            for k in range(1, k_max + 1)
        ]


def geometric_retry(
    p_success: float, direct_hops: int, loop_hops: int
) -> GeometricRetryModel:
    """Build the Fig. 8 geometric-retry model (validated inputs)."""
    if not 0.0 < p_success <= 1.0:
        raise ValueError(f"p_success must be in (0, 1], got {p_success}")
    if direct_hops < 0 or loop_hops < 0:
        raise ValueError("hop counts must be non-negative")
    return GeometricRetryModel(
        p_success=p_success, direct_hops=direct_hops, loop_hops=loop_hops
    )


# ---------------------------------------------------------------------------
# Deterministic dataplane walk (the verifier's graph-only oracle)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WalkHop:
    """One core-switch forwarding step of the modeled packet.

    ``deflected`` mirrors the dataplane's flag: the strategy departed
    from its happy path on this hop.  The no-deflection walk never sets
    it; the strategy walk does.
    """

    node: str
    in_port: int
    out_port: int
    deflected: bool = False


@dataclass(frozen=True)
class WalkVerdict:
    """The predicted fate of a packet under no-deflection forwarding.

    Attributes:
        outcome: ``"delivered"`` or ``"dropped"``.
        node: the delivering host (delivered) or the dropping node.
        reason: the drop reason (matches the dataplane's strings), or
            ``""`` when delivered.
        hops: every core-switch forwarding step, in order.
    """

    outcome: str
    node: str
    reason: str
    hops: Tuple[WalkHop, ...]

    @property
    def delivered(self) -> bool:
        return self.outcome == "delivered"


#: re-encode hook: ``(edge_name, dst_host) -> (route_id, out_port)`` or
#: None when the controller knows no route from that edge.
ReencodeFn = Callable[[str, str], Optional[Tuple[int, int]]]

#: switch decode hook: ``(route_id, switch_id) -> port``.  ``None``
#: means the classic integer ``R mod s``; the XSR backend passes the
#: carry-less polynomial remainder instead.
PortAtFn = Callable[[int, int], int]


def deterministic_route_walk(
    graph: PortGraph,
    route_id: int,
    ttl: int,
    ingress_edge: str,
    out_port: int,
    dst_host: str,
    down_links: Collection[Tuple[str, str]] = (),
    reencode: Optional[ReencodeFn] = None,
    port_at: Optional[PortAtFn] = None,
) -> WalkVerdict:
    """Predict one packet's path and fate without running the simulator.

    Replays the dataplane's per-hop rules as pure graph arithmetic: a
    core switch drops a packet arriving with TTL <= 0, else decrements
    the TTL and forwards on ``route_id mod switch_id`` when that port
    exists and its link is not in *down_links* (no-deflection
    semantics: otherwise the packet is dropped).  An edge serving the
    destination delivers; any other edge re-encodes via *reencode*
    (keeping the packet's remaining TTL) or drops.  TTL strictly
    decreases across core hops, so the walk always terminates — a
    wandering (fuzzed) route ID ends in a ``ttl-expired`` verdict,
    which is exactly the loop verdict the verifier diffs.

    *port_at* swaps the per-hop decode for an encoding backend's (the
    XSR polynomial remainder); by default the integer ``R mod s`` runs,
    unchanged.  The drop-reason strings deliberately match the
    dataplane's so verdicts are directly comparable.
    """
    hops: List[WalkHop] = []

    def dropped(node: str, reason: str) -> WalkVerdict:
        return WalkVerdict("dropped", node, reason, tuple(hops))

    down = {tuple(sorted(key)) for key in down_links}
    rid = route_id
    current = graph.neighbor_on_port(ingress_edge, out_port)
    in_port = graph.port_of(current, ingress_edge)
    while True:
        kind = graph.node(current).kind
        if kind == NodeKind.CORE:
            if ttl <= 0:
                return dropped(current, "ttl-expired")
            ttl -= 1
            if port_at is None:
                computed = rid % graph.switch_id(current)
            else:
                computed = port_at(rid, graph.switch_id(current))
            if computed >= graph.degree(current):
                return dropped(current, "no-usable-port(none)")
            neighbor = graph.neighbor_on_port(current, computed)
            if tuple(sorted((current, neighbor))) in down:
                return dropped(current, "no-usable-port(none)")
            hops.append(WalkHop(current, in_port, computed))
            in_port = graph.port_of(neighbor, current)
            current = neighbor
            continue
        if kind == NodeKind.EDGE:
            if dst_host in graph.hosts_of_edge(current):
                return WalkVerdict(
                    "delivered", dst_host, "", tuple(hops)
                )
            # Misdelivered: the edge asks for a fresh route ID.  The
            # dataplane checks reachability/route first and TTL only at
            # re-injection time, so the order here matters.
            if reencode is None:
                return dropped(current, "misdelivered-no-controller")
            entry = reencode(current, dst_host)
            if entry is None:
                return dropped(current, "misdelivered-no-route")
            if ttl <= 0:
                return dropped(current, "ttl-expired")
            rid, port = entry
            neighbor = graph.neighbor_on_port(current, port)
            in_port = graph.port_of(neighbor, current)
            current = neighbor
            continue
        raise TopologyError(
            f"walk reached {current!r} of kind {kind!r}; core routes "
            f"never point at hosts"
        )


class _StaticPortView:
    """The strategy-facing slice of a switch, backed by the graph.

    Implements the ``PortView`` protocol from
    :mod:`repro.switches.deflection` (``num_ports`` / ``port_up`` /
    ``healthy_ports``) against a static down-link set, so real strategy
    objects run unmodified inside the graph walk.
    """

    __slots__ = ("_graph", "_node", "num_ports", "_down")

    def __init__(self, graph: PortGraph, node: str, down) -> None:
        self._graph = graph
        self._node = node
        self.num_ports = graph.degree(node)
        self._down = down

    def port_up(self, port: int) -> bool:
        neighbor = self._graph.neighbor_on_port(self._node, port)
        return tuple(sorted((self._node, neighbor))) not in self._down

    def healthy_ports(self) -> List[int]:
        return [p for p in range(self.num_ports) if self.port_up(p)]


class _NoRandomness:
    """RNG stand-in that fails loudly if a strategy draws from it.

    The strategy walk only models deterministic strategies (the
    planned baselines); a randomized strategy slipping in must be an
    error, not silent divergence from the simulator.
    """

    def __getattr__(self, name: str):
        raise RuntimeError(
            "deterministic_strategy_walk only models RNG-free strategies; "
            f"the strategy asked for rng.{name}"
        )


def deterministic_strategy_walk(
    graph: PortGraph,
    strategies: "Mapping[str, DeflectionStrategy]",
    route_id: int,
    ttl: int,
    ingress_edge: str,
    out_port: int,
    dst_host: str,
    down_links: Collection[Tuple[str, str]] = (),
    reencode: Optional[ReencodeFn] = None,
    port_at: Optional[PortAtFn] = None,
) -> WalkVerdict:
    """Predict a packet's fate under per-switch *deterministic* strategies.

    The strategy-aware sibling of :func:`deterministic_route_walk`: each
    core hop still computes ``route_id mod switch_id`` and keeps the
    TTL bookkeeping, but the out-port comes from
    ``strategies[switch].select_port`` over a static port view of
    *down_links* — exactly the call the real switch makes, minus the
    event engine.  This is the oracle for the stateful failover
    baselines (:mod:`repro.baselines`): pass the same per-switch
    strategy instances the simulation runs with and diff the verdicts.

    Strategies must be RNG-free (the baselines are); a strategy that
    draws randomness raises.  Each hop records the strategy's deflected
    flag, so expected traces can be compared bit-for-bit against
    :class:`~repro.sim.trace.PacketTracer` paths.
    """
    hops: List[WalkHop] = []

    def dropped(node: str, reason: str) -> WalkVerdict:
        return WalkVerdict("dropped", node, reason, tuple(hops))

    down = {tuple(sorted(key)) for key in down_links}
    rng = _NoRandomness()
    rid = route_id
    current = graph.neighbor_on_port(ingress_edge, out_port)
    in_port = graph.port_of(current, ingress_edge)
    while True:
        kind = graph.node(current).kind
        if kind == NodeKind.CORE:
            if ttl <= 0:
                return dropped(current, "ttl-expired")
            ttl -= 1
            strategy = strategies[current]
            if port_at is None:
                computed = rid % graph.switch_id(current)
            else:
                computed = port_at(rid, graph.switch_id(current))
            view = _StaticPortView(graph, current, down)
            decision = strategy.select_port(view, None, in_port, computed, rng)
            if decision.port is None:
                return dropped(current, f"no-usable-port({strategy.name})")
            neighbor = graph.neighbor_on_port(current, decision.port)
            hops.append(
                WalkHop(current, in_port, decision.port, decision.deflected)
            )
            in_port = graph.port_of(neighbor, current)
            current = neighbor
            continue
        if kind == NodeKind.EDGE:
            if dst_host in graph.hosts_of_edge(current):
                return WalkVerdict("delivered", dst_host, "", tuple(hops))
            # Same misdelivery contract as deterministic_route_walk:
            # route/reachability first, TTL at re-injection time.
            if reencode is None:
                return dropped(current, "misdelivered-no-controller")
            entry = reencode(current, dst_host)
            if entry is None:
                return dropped(current, "misdelivered-no-route")
            if ttl <= 0:
                return dropped(current, "ttl-expired")
            rid, port = entry
            neighbor = graph.neighbor_on_port(current, port)
            in_port = graph.port_of(neighbor, current)
            current = neighbor
            continue
        raise TopologyError(
            f"walk reached {current!r} of kind {kind!r}; core routes "
            f"never point at hosts"
        )
