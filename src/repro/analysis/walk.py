"""Random-walk analysis of deflected packets.

Two exact (non-simulated) models:

* :func:`hot_potato_hitting_time` — a Hot-Potato packet performs a
  uniform random walk on the core graph; the expected number of hops
  until it first reaches a target set (destination or any encoded
  switch) is the classic absorbing-Markov-chain hitting time, solved
  with one dense linear system (numpy).
* :func:`geometric_retry` — the Fig. 8 redundant-path loop: each visit
  to the decision switch succeeds with probability *p*; failures cost a
  fixed loop detour.  Expected extra hops follow the geometric series
  the paper describes qualitatively ("this protection loop will
  continue until SW109 is probabilistically chosen").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.topology.graph import NodeKind, PortGraph, TopologyError

__all__ = [
    "hot_potato_hitting_time",
    "absorption_probability",
    "geometric_retry",
    "GeometricRetryModel",
]


def _core_adjacency(graph: PortGraph) -> Dict[str, List[str]]:
    return {
        n.name: graph.core_subgraph_neighbors(n.name)
        for n in graph.nodes(NodeKind.CORE)
    }


def hot_potato_hitting_time(
    graph: PortGraph,
    start: str,
    targets: Iterable[str],
) -> float:
    """Expected hops for a uniform random walk from *start* to *targets*.

    Models a Hot-Potato-deflected packet: at every core switch it exits
    via a uniformly random port (edges and the input port included in
    the real dataplane; here the walk is over the core subgraph, which
    upper-bounds the core wandering).

    Returns ``inf`` when some probability mass never reaches a target
    (disconnected component).
    """
    adj = _core_adjacency(graph)
    target_set = set(targets)
    for t in target_set:
        if t not in adj:
            raise TopologyError(f"target {t!r} is not a core switch")
    if start in target_set:
        return 0.0
    if start not in adj:
        raise TopologyError(f"start {start!r} is not a core switch")

    transient = [n for n in adj if n not in target_set]
    index = {n: i for i, n in enumerate(transient)}
    n = len(transient)
    # (I - Q) t = 1, where Q is the transient-to-transient transition
    # matrix; t[i] is the expected steps to absorption from state i.
    A = np.eye(n)
    reaches = np.zeros(n, dtype=bool)
    for name in transient:
        i = index[name]
        neighbors = adj[name]
        if not neighbors:
            continue
        p = 1.0 / len(neighbors)
        for nb in neighbors:
            if nb in target_set:
                reaches[i] = True
            else:
                A[i, index[nb]] -= p
    try:
        t = np.linalg.solve(A, np.ones(n))
    except np.linalg.LinAlgError:
        return float("inf")
    value = float(t[index[start]])
    if not np.isfinite(value) or value < 0:
        return float("inf")
    return value


def absorption_probability(
    graph: PortGraph,
    start: str,
    good: Iterable[str],
    bad: Iterable[str],
) -> float:
    """P(walk from *start* hits *good* before *bad*).

    Useful for questions like "what fraction of HP packets reach the
    destination before straying back to the ingress edge?".
    """
    adj = _core_adjacency(graph)
    good_set, bad_set = set(good), set(bad)
    if start in good_set:
        return 1.0
    if start in bad_set:
        return 0.0
    transient = [n for n in adj if n not in good_set | bad_set]
    index = {n: i for i, n in enumerate(transient)}
    n = len(transient)
    A = np.eye(n)
    b = np.zeros(n)
    for name in transient:
        i = index[name]
        neighbors = adj[name]
        if not neighbors:
            continue
        p = 1.0 / len(neighbors)
        for nb in neighbors:
            if nb in good_set:
                b[i] += p
            elif nb in bad_set:
                continue
            else:
                A[i, index[nb]] -= p
    x = np.linalg.solve(A, b)
    return float(x[index[start]])


@dataclass(frozen=True)
class GeometricRetryModel:
    """Closed-form Fig. 8 model.

    Attributes:
        p_success: probability the decision switch picks the delivering
            branch (1/2 at SW73: SW109 vs SW71).
        direct_hops: hops from the decision switch to delivery on the
            success branch.
        loop_hops: hops consumed by one failed attempt (the protection
            loop back to the decision switch).
    """

    p_success: float
    direct_hops: int
    loop_hops: int

    @property
    def expected_attempts(self) -> float:
        return 1.0 / self.p_success

    @property
    def expected_extra_hops(self) -> float:
        """Mean hops added by the retry loop (excludes the direct tail)."""
        return (1.0 - self.p_success) / self.p_success * self.loop_hops

    @property
    def expected_total_hops(self) -> float:
        return self.direct_hops + self.expected_extra_hops

    def attempt_distribution(self, k_max: int) -> List[float]:
        """P(delivered on attempt k) for k = 1..k_max (geometric)."""
        return [
            (1.0 - self.p_success) ** (k - 1) * self.p_success
            for k in range(1, k_max + 1)
        ]


def geometric_retry(
    p_success: float, direct_hops: int, loop_hops: int
) -> GeometricRetryModel:
    """Build the Fig. 8 geometric-retry model (validated inputs)."""
    if not 0.0 < p_success <= 1.0:
        raise ValueError(f"p_success must be in (0, 1], got {p_success}")
    if direct_hops < 0 or loop_hops < 0:
        raise ValueError("hop counts must be non-negative")
    return GeometricRetryModel(
        p_success=p_success, direct_hops=direct_hops, loop_hops=loop_hops
    )
