"""Statistics helpers for experiment reporting.

The paper reports TCP throughput means with 95 % confidence intervals
over 30 iperf runs (Fig. 5); these helpers compute the same Student-t
intervals for our (typically smaller, seeded) run sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as _scipy_stats

__all__ = ["MeanCI", "mean_ci"]


@dataclass(frozen=True)
class MeanCI:
    """A sample mean with its confidence half-width."""

    mean: float
    half_width: float
    n: int
    confidence: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def describe(self) -> str:
        return (
            f"{self.mean:.2f} ± {self.half_width:.2f} "
            f"({int(self.confidence * 100)}% CI, n={self.n})"
        )


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> MeanCI:
    """Student-t confidence interval for the mean of *values*.

    A single sample yields a zero-width interval (no variance estimate);
    an empty sample is an error.
    """
    if not values:
        raise ValueError("cannot compute a confidence interval of no data")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return MeanCI(mean=mean, half_width=0.0, n=1, confidence=confidence)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    sem = math.sqrt(variance / n)
    t_crit = float(_scipy_stats.t.ppf((1.0 + confidence) / 2.0, df=n - 1))
    return MeanCI(
        mean=mean, half_width=t_crit * sem, n=n, confidence=confidence
    )
