"""Arborescence-based fast failover (Chiesa et al.'s static baseline).

"Exploring the Limits of Static Failover Routing" builds failover
schemes from k edge-disjoint spanning arborescences rooted at the
destination: a packet rides tree 0 until it meets a dead link, then
*circularly hops* to tree 1, 2, ... — the current tree is recoverable
from the packet's in-port (each physical link belongs to at most one
tree), so the scheme needs no header bits and no per-packet state,
only per-switch tables.  Up to k-1 link failures are survived on
k-edge-connected graphs.

This module provides the decomposition
(:func:`arborescence_decomposition`, round-robin greedy BFS over the
core subgraph), the per-destination planning
(:func:`plan_arborescences`) and the dataplane pieces
(:class:`ArborescenceFailoverStrategy` /
:class:`ArborescenceFailoverSwitch`) that plug into the existing
switch stack exactly like :mod:`repro.baselines.fastfailover` — the
per-switch statefulness is the point of the comparison: KAR gets its
resilience from stateless deflection, this baseline from precomputed
trees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.trace import PacketTracer
from repro.switches.core import KarSwitch
from repro.switches.deflection import Decision, DeflectionStrategy
from repro.topology.graph import NodeKind, PortGraph, TopologyError

__all__ = [
    "ArborescencePlan",
    "ArborescenceFailoverStrategy",
    "ArborescenceFailoverSwitch",
    "arborescence_decomposition",
    "plan_arborescences",
]


def arborescence_decomposition(
    graph: PortGraph,
    root: str,
    k: Optional[int] = None,
) -> List[Dict[str, str]]:
    """Up to *k* edge-disjoint spanning arborescences rooted at *root*.

    Round-robin greedy construction over the core subgraph: all trees
    grow together, one link per tree per round, each tree claiming the
    unclaimed link closest to its root (BFS order, names as
    deterministic tie-break).  Growing in lockstep keeps the trees
    balanced and leaves later trees enough residual links to span —
    the standard greedy from the static-failover literature, not the
    optimal Edmonds/Tarjan construction, but deterministic and good
    enough that on k-edge-connected graphs all k trees usually span.

    Returns a list of next-hop maps (``node -> parent`` toward the
    root); trees that could not claim a single link are dropped, and a
    tree may be partial (missing nodes simply have no next hop in it).

    *k* defaults to the root's core degree — the hard upper bound,
    since every tree must enter the root over a distinct link.
    """
    if graph.node(root).kind != NodeKind.CORE:
        raise TopologyError(f"arborescence root {root!r} is not a core switch")
    adj = {
        n.name: sorted(graph.core_subgraph_neighbors(n.name))
        for n in graph.nodes(NodeKind.CORE)
    }
    if k is None:
        k = max(1, len(adj[root]))
    if k < 1:
        raise ValueError(f"need at least 1 arborescence, got {k}")

    used: set = set()
    trees: List[Dict[str, str]] = [{} for _ in range(k)]
    reached: List[Dict[str, int]] = [{root: 0} for _ in range(k)]  # node->depth
    grew = True
    while grew:
        grew = False
        for t in range(k):
            best: Optional[Tuple[str, str]] = None
            for u in sorted(reached[t], key=lambda n: (reached[t][n], n)):
                for v in adj[u]:
                    if v in reached[t]:
                        continue
                    if ((u, v) if u <= v else (v, u)) in used:
                        continue
                    best = (u, v)
                    break
                if best is not None:
                    break
            if best is None:
                continue
            u, v = best
            used.add((u, v) if u <= v else (v, u))
            trees[t][v] = u
            reached[t][v] = reached[t][u] + 1
            grew = True
    return [tree for tree in trees if tree]


@dataclass(frozen=True)
class ArborescencePlan:
    """One switch's share of the decomposition.

    Attributes:
        tree_ports: out-port toward the parent per tree index (None
            when this switch is not covered by that tree).
        in_port_tree: in-port -> tree index.  Well defined because the
            trees are edge-disjoint: the link a packet arrives on
            belongs to exactly one tree, which is the tree the packet
            is currently riding.
    """

    tree_ports: Tuple[Optional[int], ...] = ()
    in_port_tree: Mapping[int, int] = field(default_factory=dict)


def plan_arborescences(
    graph: PortGraph,
    dst_edge: str,
    k: Optional[int] = None,
) -> Dict[str, ArborescencePlan]:
    """Per-switch circular-hopping tables for one destination edge.

    The trees are rooted at the egress core switch (the one *dst_edge*
    hangs off): the final egress-switch -> edge hop is deliberately
    shared by all trees, exactly as every tree in the literature shares
    the destination node.  Every core switch gets a plan; switches no
    tree reaches get an empty one (their strategy drops, as a
    disconnected switch must).
    """
    cores = sorted(
        nb for nb in graph.neighbors(dst_edge)
        if graph.node(nb).kind == NodeKind.CORE
    )
    if not cores:
        raise TopologyError(f"{dst_edge!r} has no core neighbor to root at")
    root = cores[0]
    trees = arborescence_decomposition(graph, root, k)
    count = len(trees)
    edge_port = graph.port_of(root, dst_edge)

    names = [n.name for n in graph.nodes(NodeKind.CORE)]
    tree_ports: Dict[str, List[Optional[int]]] = {
        n: [None] * count for n in names
    }
    in_port_tree: Dict[str, Dict[int, int]] = {n: {} for n in names}
    for t, tree in enumerate(trees):
        tree_ports[root][t] = edge_port
        for child, parent in tree.items():
            tree_ports[child][t] = graph.port_of(child, parent)
            in_port_tree[parent][graph.port_of(parent, child)] = t
    return {
        n: ArborescencePlan(tuple(tree_ports[n]), in_port_tree[n])
        for n in names
    }


class ArborescenceFailoverStrategy(DeflectionStrategy):
    """Circular hopping between precomputed arborescences.

    Deterministic and RNG-free: the packet's current tree is derived
    from its in-port (ingress traffic starts on tree 0), and the first
    tree — scanning circularly from the current one — whose out-port is
    up wins.  Leaving the current tree sets the deflected flag, like
    every other failure reaction in the stack.  The KAR-computed port
    is ignored entirely: this baseline routes on per-switch state, not
    on the header.
    """

    name = "arb"

    def __init__(self, plan: Optional[ArborescencePlan] = None):
        plan = plan if plan is not None else ArborescencePlan()
        self.tree_ports = tuple(plan.tree_ports)
        self.in_port_tree = dict(plan.in_port_tree)

    def select_port(self, switch, packet, in_port, computed_port, rng):
        count = len(self.tree_ports)
        start = self.in_port_tree.get(in_port, 0)
        for offset in range(count):
            port = self.tree_ports[(start + offset) % count]
            if port is not None and switch.port_up(port):
                return Decision(port=port, deflected=offset > 0)
        return Decision.drop()

    def fast_port(self, switch, packet, in_port, computed_port):
        if not self.tree_ports:
            return None
        port = self.tree_ports[self.in_port_tree.get(in_port, 0)]
        if port is not None and switch.port_up(port):
            return port
        return None


class ArborescenceFailoverSwitch(KarSwitch):
    """A KAR switch forwarding on arborescence tables instead of residues."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        num_ports: int,
        switch_id: int,
        rng: random.Random,
        plan: Optional[ArborescencePlan] = None,
        tracer: Optional[PacketTracer] = None,
    ):
        super().__init__(
            name, sim, num_ports, switch_id,
            ArborescenceFailoverStrategy(plan), rng, tracer=tracer,
        )

    def install_plan(self, plan: ArborescencePlan) -> None:
        assert isinstance(self.strategy, ArborescenceFailoverStrategy)
        self.strategy.tree_ports = tuple(plan.tree_ports)
        self.strategy.in_port_tree = dict(plan.in_port_tree)
