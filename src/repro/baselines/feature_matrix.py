"""Table 2 — qualitative comparison of failure-reaction systems.

The paper's Table 2 positions KAR against prior art along three axes:
support for multiple link failures, source routing, and whether the
core keeps state.  The rows are reproduced here as data (with the
paper's own citations) plus a renderer that regenerates the table.

Beyond the paper, the matrix carries two extensions of ours (clearly
separated from the verbatim columns/rows):

* an ``Arborescence Failover`` row — Chiesa et al.'s circular hopping
  over edge-disjoint spanning arborescences, executable in this
  repository as :mod:`repro.baselines.arborescence`;
* a ``Dynamic failures`` column — whether the scheme's failure
  reaction still functions when links fail *and recover* on the
  forwarding timescale (Dai & Foerster's adversary, measurable here
  via :mod:`repro.sim.adversary` and the frontier sweep).  Schemes
  that react by re-selecting per packet (deflection, splicing) keep
  working; schemes whose guarantees are proven against a *static*
  failure set (precomputed failover tables) do not.

Three of the rows also have executable counterparts in this repository:

* ``OpenFlow Fast Failover`` — :mod:`repro.baselines.fastfailover`
  (stateful precomputed backup ports),
* ``Arborescence Failover`` — :mod:`repro.baselines.arborescence`, and
* the "traditional approach" of controller-driven repair —
  :mod:`repro.baselines.repair`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["FeatureRow", "TABLE2_ROWS", "render_table2"]


@dataclass(frozen=True)
class FeatureRow:
    """One row of Table 2 (plus the dynamic-failures extension).

    The first three feature columns are the paper's; ``dynamic_failures``
    is our addition and does not appear in the original table.
    """

    system: str
    reference: str
    multiple_link_failures: bool
    source_routing: bool
    stateless_core: bool
    dynamic_failures: bool = False

    def cells(self) -> Tuple[str, str, str, str, str]:
        return (
            self.system,
            "Yes" if self.multiple_link_failures else "No",
            "Yes" if self.source_routing else "No",
            "Stateless" if self.stateless_core else "Statefull",
            "Yes" if self.dynamic_failures else "No",
        )


#: The paper's Table 2 rows verbatim (including its "Statefull"
#: spelling and its classification choices), plus the Arborescence
#: Failover row and the dynamic-failures column described in the
#: module docstring.  KAR stays last, as in the paper.
TABLE2_ROWS: List[FeatureRow] = [
    FeatureRow("MPLS Fast Reroute", "[12]", True, True, True, False),
    FeatureRow("SafeGuard", "[13]", True, False, False, False),
    FeatureRow("OpenFlow Fast Failover", "[14]", True, False, False, False),
    FeatureRow("Routing Deflections", "[3]", True, True, False, True),
    FeatureRow("Path Splicing", "[4]", True, False, False, True),
    FeatureRow("Slick Packets", "[6]", False, True, True, False),
    FeatureRow("KeyFlow and SlickFlow", "[2], [5]", False, True, True, False),
    FeatureRow("Arborescence Failover", "(Chiesa et al.)",
               True, False, False, False),
    FeatureRow("KAR", "(this work)", True, True, True, True),
]


def render_table2() -> str:
    """Render Table 2 as aligned text (the benchmark prints this)."""
    header = (
        "Work", "Support multiple link failures", "Source routing",
        "State core network", "Dynamic failures",
    )
    rows = [header] + [r.cells() for r in TABLE2_ROWS]
    widths = [max(len(row[i]) for row in rows) for i in range(5)]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
