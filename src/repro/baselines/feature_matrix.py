"""Table 2 — qualitative comparison of failure-reaction systems.

The paper's Table 2 positions KAR against prior art along three axes:
support for multiple link failures, source routing, and whether the
core keeps state.  The rows are reproduced here as data (with the
paper's own citations) plus a renderer that regenerates the table.

Two of the rows also have executable counterparts in this repository:

* ``OpenFlow Fast Failover`` — :mod:`repro.baselines.fastfailover`
  (stateful precomputed backup ports), and
* the "traditional approach" of controller-driven repair —
  :mod:`repro.baselines.repair`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["FeatureRow", "TABLE2_ROWS", "render_table2"]


@dataclass(frozen=True)
class FeatureRow:
    """One row of Table 2."""

    system: str
    reference: str
    multiple_link_failures: bool
    source_routing: bool
    stateless_core: bool

    def cells(self) -> Tuple[str, str, str, str]:
        return (
            self.system,
            "Yes" if self.multiple_link_failures else "No",
            "Yes" if self.source_routing else "No",
            "Stateless" if self.stateless_core else "Statefull",
        )


#: The paper's Table 2, verbatim (including its "Statefull" spelling and
#: its classification choices).
TABLE2_ROWS: List[FeatureRow] = [
    FeatureRow("MPLS Fast Reroute", "[12]", True, True, True),
    FeatureRow("SafeGuard", "[13]", True, False, False),
    FeatureRow("OpenFlow Fast Failover", "[14]", True, False, False),
    FeatureRow("Routing Deflections", "[3]", True, True, False),
    FeatureRow("Path Splicing", "[4]", True, False, False),
    FeatureRow("Slick Packets", "[6]", False, True, True),
    FeatureRow("KeyFlow and SlickFlow", "[2], [5]", False, True, True),
    FeatureRow("KAR", "(this work)", True, True, True),
]


def render_table2() -> str:
    """Render Table 2 as aligned text (the benchmark prints this)."""
    header = (
        "Work", "Support multiple link failures", "Source routing",
        "State core network",
    )
    rows = [header] + [r.cells() for r in TABLE2_ROWS]
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
