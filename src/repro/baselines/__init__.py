"""Baselines: Table 2 feature matrix and executable comparison systems.

Two executable failover baselines share the switch stack with KAR and
are registered here for the verify oracles and the resilience-frontier
sweep (:data:`BASELINE_SCHEMES`):

* ``ff`` — OpenFlow-Fast-Failover-style backup ports
  (:mod:`repro.baselines.fastfailover`);
* ``arb`` — circular hopping over k edge-disjoint spanning
  arborescences (:mod:`repro.baselines.arborescence`).

Both are *stateful*: :func:`plan_baseline_strategies` turns a
(topology, destination) pair into per-switch strategy instances, which
plug into :class:`~repro.runner.KarSimulation` via its
``strategy_factory`` hook.
"""

from typing import Dict

from repro.baselines.arborescence import (
    ArborescenceFailoverStrategy,
    ArborescenceFailoverSwitch,
    ArborescencePlan,
    arborescence_decomposition,
    plan_arborescences,
)
from repro.baselines.fastfailover import (
    FastFailoverStrategy,
    FastFailoverSwitch,
    plan_backup_ports,
    plan_destination_tree,
)
from repro.baselines.feature_matrix import TABLE2_ROWS, FeatureRow, render_table2
from repro.baselines.repair import ControllerRepair
from repro.switches.deflection import DeflectionStrategy
from repro.topology.graph import NodeKind, PortGraph

__all__ = [
    "FeatureRow",
    "TABLE2_ROWS",
    "render_table2",
    "ControllerRepair",
    "FastFailoverStrategy",
    "FastFailoverSwitch",
    "plan_backup_ports",
    "plan_destination_tree",
    "ArborescencePlan",
    "ArborescenceFailoverStrategy",
    "ArborescenceFailoverSwitch",
    "arborescence_decomposition",
    "plan_arborescences",
    "BASELINE_SCHEMES",
    "plan_baseline_strategies",
]

#: Stateful failover baselines with per-switch strategy planning.
BASELINE_SCHEMES = ("ff", "arb")


def plan_baseline_strategies(
    scheme: str,
    graph: PortGraph,
    route,
    dst_edge: str,
) -> Dict[str, DeflectionStrategy]:
    """Per-core-switch strategy instances for a baseline *scheme*.

    ``ff`` combines the primary-route backup ports with the
    destination-tree default; ``arb`` installs each switch's share of
    the arborescence decomposition.  The returned mapping covers every
    core switch and feeds both :class:`~repro.runner.KarSimulation`'s
    ``strategy_factory`` and the graph-walk oracle, so the simulated
    and modeled dataplanes share one set of tables.
    """
    if scheme == "ff":
        backups = plan_backup_ports(graph, route, dst_edge)
        tree = plan_destination_tree(graph, dst_edge)
        return {
            info.name: FastFailoverStrategy(
                backups.get(info.name), tree.get(info.name)
            )
            for info in graph.nodes(NodeKind.CORE)
        }
    if scheme == "arb":
        return {
            name: ArborescenceFailoverStrategy(plan)
            for name, plan in plan_arborescences(graph, dst_edge).items()
        }
    raise ValueError(
        f"unknown baseline scheme {scheme!r}; choose from {BASELINE_SCHEMES}"
    )
