"""Baselines: Table 2 feature matrix and executable comparison systems."""

from repro.baselines.fastfailover import (
    FastFailoverStrategy,
    FastFailoverSwitch,
    plan_backup_ports,
    plan_destination_tree,
)
from repro.baselines.feature_matrix import TABLE2_ROWS, FeatureRow, render_table2
from repro.baselines.repair import ControllerRepair

__all__ = [
    "FeatureRow",
    "TABLE2_ROWS",
    "render_table2",
    "ControllerRepair",
    "FastFailoverStrategy",
    "FastFailoverSwitch",
    "plan_backup_ports",
    "plan_destination_tree",
]
