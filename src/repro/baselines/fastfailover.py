"""OpenFlow-Fast-Failover-style baseline (Table 2 row [14]).

OF-FF precomputes, *per switch*, a backup action for each output port;
on port failure the switch locally flips to the backup without any
randomness — but it needs per-switch state (the fast-failover group
table), which is exactly the property KAR's stateless core removes.

:class:`FastFailoverSwitch` extends the KAR switch with such a backup
table; :func:`plan_backup_ports` computes backups for a primary route
(the alternative shortest path around each primary link).  Ablation
benchmarks compare KAR deflection against this stateful baseline.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.trace import PacketTracer
from repro.switches.core import KarSwitch
from repro.switches.deflection import DeflectionStrategy, Decision, NoDeflection
from repro.topology.graph import PortGraph, TopologyError
from repro.topology.paths import NoPathError, shortest_path

__all__ = [
    "FastFailoverStrategy",
    "FastFailoverSwitch",
    "plan_backup_ports",
    "plan_destination_tree",
]


class FastFailoverStrategy(DeflectionStrategy):
    """Deterministic backup-port fallback (stateful, per-switch).

    Two layers of state, both precomputed and stored in the switch (the
    "Statefull" property of Table 2's OF-FF row):

    * ``backups`` — per primary port, the fast-failover group's backup
      port (used when the KAR-computed port is down);
    * ``default_port`` — the destination-tree next hop (used when the
      computed port is invalid, i.e. on off-route switches a rerouted
      packet traverses — equivalent to a conventional routing table
      entry).

    Args:
        backups: primary port -> backup port for this switch.
        default_port: fallback next hop toward the destination.
    """

    name = "ff"

    def __init__(
        self,
        backups: Optional[Dict[int, int]] = None,
        default_port: Optional[int] = None,
    ):
        self.backups = dict(backups or {})
        self.default_port = default_port

    def select_port(self, switch, packet, in_port, computed_port, rng):
        if self._computed_usable(switch, computed_port):
            return Decision(port=computed_port)
        backup = self.backups.get(computed_port)
        if backup is not None and switch.port_up(backup):
            return Decision(port=backup, deflected=True)
        if self.default_port is not None and switch.port_up(self.default_port):
            return Decision(port=self.default_port, deflected=True)
        return Decision.drop()


class FastFailoverSwitch(KarSwitch):
    """A KAR switch with an OF-FF group table bolted on."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        num_ports: int,
        switch_id: int,
        rng: random.Random,
        backups: Optional[Dict[int, int]] = None,
        tracer: Optional[PacketTracer] = None,
    ):
        super().__init__(
            name, sim, num_ports, switch_id,
            FastFailoverStrategy(backups), rng, tracer=tracer,
        )

    def install_backup(self, primary_port: int, backup_port: int) -> None:
        assert isinstance(self.strategy, FastFailoverStrategy)
        self.strategy.backups[primary_port] = backup_port


def plan_backup_ports(
    graph: PortGraph,
    route: Sequence[str],
    dst_edge: str,
) -> Dict[str, Dict[int, int]]:
    """Backup table per route switch: around each primary link.

    For each switch S with primary next hop N, the backup port points
    toward S's first hop on a shortest path to the destination that
    avoids the S-N link.  Switches with no alternative (bridges) get no
    backup — OF-FF cannot help there either.

    Returns:
        switch name -> {primary_port: backup_port}.
    """
    plans: Dict[str, Dict[int, int]] = {}
    path = list(route) + [dst_edge]
    for current, nxt in zip(path, path[1:]):
        if current == dst_edge:
            continue
        primary_port = graph.port_of(current, nxt)
        try:
            alt = shortest_path(
                graph,
                current,
                dst_edge,
                forbidden_links=[
                    (current, nxt) if current <= nxt else (nxt, current)
                ],
                forbidden_nodes=[
                    n.name for n in graph.nodes()
                    if n.kind == "host"
                ],
            )
        except NoPathError:
            continue
        if len(alt) < 2:
            continue
        backup_port = graph.port_of(current, alt[1])
        plans.setdefault(current, {})[primary_port] = backup_port
    return plans


def plan_destination_tree(graph: PortGraph, dst_edge: str) -> Dict[str, int]:
    """Destination-rooted next-hop table: switch name -> port.

    The conventional per-switch routing state a rerouted packet needs at
    off-route switches (where the KAR residue is meaningless).  This is
    exactly the state KAR's route IDs eliminate — quantified by the
    ablation benchmark as |switches| table entries per destination.
    """
    table: Dict[str, int] = {}
    for node in graph.nodes():
        if node.kind != "core":
            continue
        try:
            path = shortest_path(
                graph, node.name, dst_edge,
                forbidden_nodes=[
                    n.name for n in graph.nodes() if n.kind == "host"
                ],
            )
        except NoPathError:
            continue
        if len(path) >= 2:
            table[node.name] = graph.port_of(node.name, path[1])
    return table
