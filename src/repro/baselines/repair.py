"""The "traditional approach": controller-driven route repair.

Section 2 of the paper describes the baseline KAR is designed to beat:
on a link failure, notify the controller, which "recalculates the route
ID excluding the faulty link" and reinstalls it at the ingress — and
"all packets sent by the source before the route ID modification will
be lost".

:class:`ControllerRepair` implements exactly that: after a failure
notification plus a configurable reaction delay, the ingress entry is
replaced by a route avoiding the failed link; on repair the original
route is restored.  Combine with ``deflection="none"`` to measure the
paper's loss window, or with deflection enabled to measure the hybrid.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.controller.routing import core_path_between_edges, encode_node_path
from repro.runner import KarSimulation
from repro.switches.edge import EdgeNode, IngressEntry
from repro.topology.paths import NoPathError

__all__ = ["ControllerRepair"]


class ControllerRepair:
    """Schedules reactive route repair for the scenario's primary flow.

    Args:
        ks: the wired simulation.
        reaction_delay_s: failure detection + notification + computation
            + installation latency (the paper's motivation: this window
            is where packets die).
    """

    def __init__(self, ks: KarSimulation, reaction_delay_s: float = 0.1):
        if reaction_delay_s < 0:
            raise ValueError("reaction delay must be non-negative")
        self.ks = ks
        self.reaction_delay_s = reaction_delay_s
        self.repairs_installed = 0
        self.restores_installed = 0

    # ------------------------------------------------------------------
    def arm(self, a: str, b: str, fail_at: float,
            repair_at: Optional[float] = None) -> None:
        """Arm repair for a scheduled failure of link a-b.

        Call *instead of* ``ks.schedule_failure`` — this schedules both
        the failure itself and the controller's delayed reaction.
        """
        self.ks.schedule_failure(a, b, at=fail_at, repair_at=repair_at)
        self.ks.sim.schedule_at(
            fail_at + self.reaction_delay_s, self._reroute_primary, (a, b)
        )
        if repair_at is not None:
            self.ks.sim.schedule_at(
                repair_at + self.reaction_delay_s, self._restore_primary
            )

    # ------------------------------------------------------------------
    def _edges(self) -> Tuple[str, str, EdgeNode]:
        scn = self.ks.scenario
        src_edge = scn.graph.edge_of_host(scn.src_host)
        dst_edge = scn.graph.edge_of_host(scn.dst_host)
        ingress = self.ks.network.node(src_edge)
        assert isinstance(ingress, EdgeNode)
        return src_edge, dst_edge, ingress

    def _reroute_primary(self, failed: Tuple[str, str]) -> None:
        scn = self.ks.scenario
        src_edge, dst_edge, ingress = self._edges()
        try:
            node_path = core_path_between_edges(
                scn.graph, src_edge, dst_edge,
                forbidden_links=[tuple(sorted(failed))],
            )
        except NoPathError:
            return  # nothing the controller can do
        route = encode_node_path(scn.graph, node_path)
        ingress.install_ingress(
            scn.dst_host,
            IngressEntry(
                route_id=route.route_id,
                modulus=route.modulus,
                out_port=scn.graph.port_of(src_edge, node_path[1]),
                ttl=self.ks.controller.default_ttl,
                residues=route.residue_map(),
            ),
        )
        self.repairs_installed += 1

    def _restore_primary(self) -> None:
        scn = self.ks.scenario
        forward, _ = self.ks.install_flow(scn.src_host, scn.dst_host)
        self.restores_installed += 1
