"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's artifacts plus a free-form
runner:

* ``table1`` / ``table2`` — print the tables.
* ``fig4`` / ``fig5`` / ``fig7`` / ``fig8`` — run and print a figure.
* ``report [PATH]`` — regenerate EXPERIMENTS.md.
* ``topo SCENARIO [--dot]`` — describe (or DOT-dump) a topology.
* ``run`` — one custom iperf-under-failure run with full knobs.
* ``chaos`` — seeded generative fault injection with runtime invariant
  checking; ``--sweep`` maps delivery ratio vs. failure rate.
* ``frontier`` — the resilience frontier: max tolerated failures vs.
  stretch vs. header bits, KAR deflection vs. the stateful failover
  baselines, static failure sets and the dynamic link adversary.
* ``verify`` — differential cross-oracle fuzzing: datapaths,
  strategies vs paper pseudocode, wire codec, and the graph walk
  model; ``--shrink`` minimizes divergent cases, ``--replay`` reruns
  a saved divergence artifact.
* ``farm bench`` — measure the farm's parallel/cache speedups.
* ``bench sim`` — fast-datapath vs reference benchmark (packets/sec,
  events/sec, CRT encodes/sec), with bit-identical digest checking.
* ``bench crt`` — control-plane encoder benchmark: naive vs pooled vs
  incremental re-encode, every cell verified bit-identical to the
  reference ``crt()`` solver.
* ``bench provision`` — all-pairs provisioning benchmark over real ISP
  topologies: per-flow naive vs vectorized CSR bulk path, every route
  ID verified bit-identical to the per-flow reference before timing,
  with a farm shard gate on destination-block digests.
* ``bench service`` — controller-service benchmark: provision req/sec,
  reroute req/sec, p50/p99 latency and admission accept/reject counts,
  with route-ID bit-identity to the offline engine asserted first.
* ``bench encoding`` — encoding-backend benchmark over the Topology
  Zoo corpus: bits/route, encode+decode ops/sec per backend (integer
  CRT, pooled CRT, XSR), and the weighted assigner's % header-bit
  reduction vs greedy — every backend driven through the verify
  oracles before any timing.
* ``serve`` — run the controller service: the HTTP/JSON multi-tenant
  provisioning API with QoS admission control and topology events.
* ``loadgen`` — farm-driven churn against a live service
  (arrive/depart/reroute/port-flap), auditing admission invariants and
  re-deriving every served route ID offline.

The global ``--profile N`` flag (before the subcommand: ``repro
--profile 25 fig4``) wraps any command in :mod:`cProfile` and dumps the
top N functions by cumulative time to stderr.

The experiment commands (``fig4``/``fig5``/``fig7``/``fig8``/
``report``/``chaos``) all run on the job farm (:mod:`repro.farm`) and
share its flags: ``--jobs N`` for worker processes, ``--cache-dir``
(on by default at ``.repro-cache``; results are content-addressed, so
a rerun is free), ``--no-cache``/``--refresh`` escape hatches,
``--resume`` to pick up a killed sweep, and ``--progress`` /
``--no-progress`` to force the live reporter on or off.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.switches.deflection import STRATEGY_NAMES

__all__ = ["main", "build_parser"]

_SCENARIOS = ("six_node", "fifteen_node", "rnp28", "redundant_path")

#: Kept in sync with repro.sim.chaos.CHAOS_MODES (asserted by tests);
#: listed literally so the parser builds without importing the sim.
_CHAOS_MODES = ("adversarial", "dynamic", "flap", "mtbf", "regional",
                "srlg")

#: Kept in sync with repro.experiments.frontier (asserted by tests);
#: listed literally so the parser builds without importing the sim.
_FRONTIER_TOPOLOGIES = ("abilene", "clique", "torus")
_FRONTIER_SCHEMES = ("hp", "avp", "nip", "ff", "arb")

#: Default on-disk result cache for the experiment commands.
_DEFAULT_CACHE_DIR = ".repro-cache"

#: Kept in sync with repro.bench.simbench.SIZES (asserted by tests);
#: listed literally so the parser builds without importing the bench.
_BENCH_SIZES = ("small", "medium", "large")

#: Kept in sync with repro.verify.oracles.ORACLE_NAMES (asserted by
#: tests); listed literally so the parser builds without importing the
#: verifier (which pulls in the whole sim stack).
_ORACLE_NAMES = ("backend", "datapath", "encoder", "strategy", "vector",
                 "walk", "wire")

#: Kept in sync with repro.bench.simbench.MODES (asserted by tests);
#: listed literally so the parser builds without importing the bench
#: (whose epoch mode imports numpy).
_BENCH_SIM_MODES = ("des", "epoch")

#: Kept in sync with repro.bench.crtbench.POOLS (asserted by tests);
#: listed literally so the parser builds without importing the bench.
_BENCH_POOLS = ("small", "medium", "large")

#: Kept in sync with repro.bench.provisionbench.CELLS (asserted by
#: tests); listed literally so the parser builds without importing the
#: bench (which imports numpy).
_BENCH_PROVISION_CELLS = (
    "abilene", "fat_tree4", "fat_tree8", "synthwan754",
)

#: Kept in sync with repro.bench.encodingbench.CELLS (asserted by
#: tests); listed literally so the parser builds without importing the
#: bench (which pulls in the verify stack).
_BENCH_ENCODING_CELLS = ("abilene", "synthwan754")

#: Kept in sync with repro.rns.backends.BACKEND_NAMES (asserted by
#: tests); listed literally so the parser builds without importing the
#: rns stack.
_BACKEND_NAMES = ("crt", "pooled", "xsr")

#: Kept in sync with repro.service.topology.SERVICE_TOPOLOGIES
#: (asserted by tests); listed literally so the parser builds without
#: importing the service stack.
_SERVICE_TOPOLOGIES = ("abilene", "clique6", "fifteen_node", "six_node",
                       "torus33")


def _add_farm_args(
    parser: argparse.ArgumentParser,
    cache_default: Optional[str] = _DEFAULT_CACHE_DIR,
) -> None:
    """The shared farm flags (--jobs/--cache-dir/--resume/...).

    ``cache_default=None`` disables the result cache unless the user
    opts in — the verify command uses this, since a cache key covers
    the spec but not the code under test, and a stale "no divergence"
    would defeat the whole point.
    """
    group = parser.add_argument_group("farm")
    group.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default: %(default)s; >1 "
                            "uses a spawn-context process pool)")
    group.add_argument("--cache-dir", default=cache_default,
                       metavar="DIR",
                       help="content-addressed result cache "
                            "(default: %(default)s)")
    group.add_argument("--no-cache", action="store_true",
                       help="neither read nor write the result cache")
    group.add_argument("--refresh", action="store_true",
                       help="re-run every job and overwrite cached results")
    group.add_argument("--resume", action="store_true",
                       help="resume a partially completed sweep from the "
                            "cache checkpoint")
    group.add_argument("--progress", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="live progress on stderr (default: auto when "
                            "stderr is a terminal)")


def _farm_options(args: argparse.Namespace, label: str):
    from repro.farm.executor import FarmOptions

    return FarmOptions(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        refresh=args.refresh,
        resume=args.resume,
        progress=args.progress,
        label=label,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="KAR (Key-for-Any-Route) reproduction toolkit",
    )
    parser.add_argument(
        "--profile", type=int, default=None, metavar="N",
        help="run the command under cProfile and print the top N "
             "functions by cumulative time to stderr; goes before the "
             "subcommand: repro --profile 25 fig4",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="route-ID bit lengths (Table 1)")
    sub.add_parser("table2", help="related-work feature matrix (Table 2)")
    fig4 = sub.add_parser("fig4", help="throughput time series by technique")
    fig4.add_argument("--seed", type=int, default=1)
    fig4.add_argument("--export", metavar="PATH.csv|PATH.json",
                      help="also write the raw series")
    _add_farm_args(fig4)
    fig5 = sub.add_parser("fig5", help="protection/technique/location grid")
    fig5.add_argument("--export", metavar="PATH.csv|PATH.json")
    _add_farm_args(fig5)
    fig7 = sub.add_parser("fig7", help="RNP backbone failures")
    fig7.add_argument("--export", metavar="PATH.csv|PATH.json")
    _add_farm_args(fig7)
    fig8 = sub.add_parser("fig8", help="redundant-path worst case")
    _add_farm_args(fig8)

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("path", nargs="?", default="EXPERIMENTS.md")
    _add_farm_args(report)

    topo = sub.add_parser("topo", help="describe a scenario topology")
    topo.add_argument("scenario", choices=_SCENARIOS)
    topo.add_argument("--dot", action="store_true",
                      help="emit Graphviz DOT instead of a summary")

    run = sub.add_parser("run", help="one custom iperf-under-failure run")
    run.add_argument("--scenario", choices=_SCENARIOS[1:],
                     default="fifteen_node")
    run.add_argument("--deflection", choices=STRATEGY_NAMES, default="nip")
    run.add_argument("--protection", default="partial")
    run.add_argument("--failure", metavar="A-B", default=None,
                     help="link to fail, e.g. SW7-SW13 (default: the "
                          "scenario's first failure case)")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--duration", type=float, default=12.0,
                     help="total simulated seconds")

    chaos = sub.add_parser(
        "chaos",
        help="generative fault injection with invariant checking",
    )
    chaos.add_argument("--scenario", choices=_SCENARIOS[1:],
                       default="fifteen_node")
    chaos.add_argument("--deflection", choices=STRATEGY_NAMES, default="nip")
    chaos.add_argument("--mode", choices=sorted(_CHAOS_MODES),
                       default="mtbf",
                       help="failure process (default: %(default)s)")
    chaos.add_argument("--seed", type=int, default=42)
    chaos.add_argument("--duration", type=float, default=4.0,
                       help="simulated seconds of probe traffic")
    chaos.add_argument("--mtbf", type=float, default=2.0,
                       help="per-link mean time between failures (mtbf mode)")
    chaos.add_argument("--mttr", type=float, default=0.5,
                       help="mean time to repair (mtbf/srlg/regional modes)")
    chaos.add_argument("--ctrl-outage", action="store_true",
                       help="also inject controller outages (exercises the "
                            "re-encode retry/backoff path)")
    chaos.add_argument("--sweep", action="store_true",
                       help="run the full delivery-ratio vs. failure-rate "
                            "sweep (HP/AVP/NIP) instead of a single run")
    chaos.add_argument("--export", metavar="PATH.csv|PATH.json",
                       help="also write the sweep/run rows")
    _add_farm_args(chaos)

    frontier = sub.add_parser(
        "frontier",
        help="resilience frontier: tolerated failures vs. stretch vs. "
             "header bits, KAR vs. stateful failover baselines",
    )
    frontier.add_argument("--topologies", nargs="+",
                          choices=_FRONTIER_TOPOLOGIES,
                          default=list(_FRONTIER_TOPOLOGIES),
                          help="topology families (default: all)")
    frontier.add_argument("--schemes", nargs="+",
                          choices=_FRONTIER_SCHEMES,
                          default=list(_FRONTIER_SCHEMES),
                          help="forwarding schemes (default: all)")
    frontier.add_argument("--max-failures", type=int, default=3,
                          metavar="K",
                          help="largest failure count per cell "
                               "(default: %(default)s)")
    frontier.add_argument("--seeds", nargs="+", type=int, default=[42],
                          help="root seeds (default: %(default)s)")
    frontier.add_argument("--dynamic", action="store_true",
                          help="also run the dynamic link-failure "
                               "adversary at every budget level")
    frontier.add_argument("--export", metavar="PATH.csv|PATH.json",
                          help="also write the per-cell rows")
    _add_farm_args(frontier)

    verify = sub.add_parser(
        "verify",
        help="differential cross-oracle fuzzing (datapaths, strategies, "
             "wire codec, walk model)",
    )
    verify.add_argument("--trials", type=int, default=50, metavar="N",
                        help="fuzz cases to run (default: %(default)s)")
    verify.add_argument("--seed", type=int, default=0,
                        help="root seed; trial i uses a seed derived "
                             "from (seed, i) (default: %(default)s)")
    verify.add_argument("--oracles", nargs="+", choices=_ORACLE_NAMES,
                        default=None, metavar="ORACLE",
                        help="oracle subset to run "
                             f"(choices: {', '.join(_ORACLE_NAMES)}; "
                             "default: all)")
    verify.add_argument("--shrink", action="store_true",
                        help="shrink each divergent case to a minimal "
                             "repro before writing its artifact")
    verify.add_argument("--artifact-dir", default="verify-artifacts",
                        metavar="DIR",
                        help="where divergence repros are written "
                             "(default: %(default)s; only created on "
                             "divergence)")
    verify.add_argument("--replay", metavar="PATH", default=None,
                        help="re-run one saved divergence artifact "
                             "instead of fuzzing")
    _add_farm_args(verify, cache_default=None)

    farm = sub.add_parser(
        "farm",
        help="the experiment job farm (parallel runs + result cache)",
    )
    farm_sub = farm.add_subparsers(dest="farm_command", required=True)
    bench = farm_sub.add_parser(
        "bench",
        help="measure sequential vs parallel vs warm-cache wall clock",
    )
    bench.add_argument("--jobs", type=int, default=4, metavar="N",
                       help="worker processes for the parallel phase "
                            "(default: %(default)s)")
    bench.add_argument("--seeds", type=int, default=4, metavar="K",
                       help="seeds per technique (default: %(default)s; "
                            "2 techniques => 2*K jobs)")
    bench.add_argument("--out", default="BENCH_farm.json",
                       help="result file (default: %(default)s)")
    bench.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache for the parallel/warm phases "
                            "(default: a fresh temp dir)")
    bench.add_argument("--progress", action=argparse.BooleanOptionalAction,
                       default=None)

    perf = sub.add_parser(
        "bench",
        help="performance benchmarks (datapath fast path vs reference)",
    )
    perf_sub = perf.add_subparsers(dest="bench_command", required=True)
    sim = perf_sub.add_parser(
        "sim",
        help="packets/sec + events/sec + CRT encodes/sec, fast vs "
             "reference datapath, with bit-identical digest checks",
    )
    sim.add_argument("--quick", action="store_true",
                     help="CI smoke matrix (small+medium, fewer repeats)")
    sim.add_argument("--sizes", nargs="+", choices=_BENCH_SIZES,
                     default=None, metavar="SIZE",
                     help="topology sizes to run "
                          f"(choices: {', '.join(_BENCH_SIZES)})")
    sim.add_argument("--strategies", nargs="+", choices=STRATEGY_NAMES,
                     default=None, metavar="STRAT",
                     help="deflection strategies "
                          f"(choices: {', '.join(STRATEGY_NAMES)})")
    sim.add_argument("--modes", nargs="+", choices=_BENCH_SIM_MODES,
                     default=None, metavar="MODE",
                     help="datapath families to benchmark: des (event "
                          "loop, fast vs reference) and/or epoch "
                          "(vectorized + sharded batch engines) "
                          f"(choices: {', '.join(_BENCH_SIM_MODES)}; "
                          "default: both)")
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--repeats", type=int, default=None, metavar="K",
                     help="timing repeats per mode, min is reported "
                          "(default: 2 quick, 3 full)")
    sim.add_argument("--out", default="BENCH_sim.json",
                     help="result file (default: %(default)s)")
    crt = perf_sub.add_parser(
        "crt",
        help="control-plane encodes/sec + re-encodes/sec: naive vs "
             "pooled vs incremental, bit-identical to reference crt()",
    )
    crt.add_argument("--quick", action="store_true",
                     help="CI smoke run (fewer iterations; bit-identity "
                          "checks run at full strength)")
    crt.add_argument("--pools", nargs="+", choices=_BENCH_POOLS,
                     default=None, metavar="POOL",
                     help="pool sizes to run "
                          f"(choices: {', '.join(_BENCH_POOLS)})")
    crt.add_argument("--seed", type=int, default=1)
    crt.add_argument("--repeats", type=int, default=None, metavar="K",
                     help="timing repeats per mode, min is reported "
                          "(default: 2 quick, 3 full)")
    crt.add_argument("--iters", type=int, default=None, metavar="N",
                     help="batch passes per timing repeat "
                          "(default: 2 quick, 20 full)")
    crt.add_argument("--out", default="BENCH_crt.json",
                     help="result file (default: %(default)s)")
    provision = perf_sub.add_parser(
        "provision",
        help="all-pairs provisioning benchmark: per-flow naive vs "
             "vectorized CSR bulk path, every route ID verified "
             "bit-identical before timing",
    )
    provision.add_argument("--quick", action="store_true",
                           help="CI smoke matrix (small cells only; "
                                "identity checks still cover every "
                                "pair that runs)")
    provision.add_argument("--cells", nargs="+",
                           choices=_BENCH_PROVISION_CELLS,
                           default=None, metavar="CELL",
                           help="topology cells to run (choices: "
                                f"{', '.join(_BENCH_PROVISION_CELLS)})")
    provision.add_argument("--seed", type=int, default=1)
    provision.add_argument("--repeats", type=int, default=None,
                           metavar="K",
                           help="timing repeats per mode, min is "
                                "reported (default: 2 quick, 3 full)")
    provision.add_argument("--shards",
                           action=argparse.BooleanOptionalAction,
                           default=True,
                           help="run the farm shard gate (worker "
                                "processes + block digest equality)")
    provision.add_argument("--out", default="BENCH_provision.json",
                           help="result file (default: %(default)s)")
    service = perf_sub.add_parser(
        "service",
        help="controller-service benchmark: provision req/sec, p50/p99 "
             "latency, admission accept/reject — bit-identity to the "
             "offline engine asserted before any timing",
    )
    service.add_argument("--quick", action="store_true",
                         help="CI smoke run (fewer iterations; identity "
                              "checks run at full strength)")
    service.add_argument("--seed", type=int, default=1)
    service.add_argument("--repeats", type=int, default=None, metavar="K",
                         help="timing repeats per cell, min is reported "
                              "(default: 2 quick, 3 full)")
    service.add_argument("--out", default="BENCH_service.json",
                         help="result file (default: %(default)s)")
    encoding = perf_sub.add_parser(
        "encoding",
        help="encoding-backend benchmark over the zoo corpus: bits/route "
             "and encode+decode ops/sec per backend, weighted-assigner "
             "% reduction vs greedy — backends driven through the "
             "verify oracles before any timing",
    )
    encoding.add_argument("--quick", action="store_true",
                          help="CI smoke run (fewer iterations and oracle "
                               "cases; per-route decode-back checks still "
                               "cover every timed route)")
    encoding.add_argument("--cells", nargs="+",
                          choices=_BENCH_ENCODING_CELLS,
                          default=None, metavar="CELL",
                          help="topology cells to run (choices: "
                               f"{', '.join(_BENCH_ENCODING_CELLS)})")
    encoding.add_argument("--seed", type=int, default=1)
    encoding.add_argument("--repeats", type=int, default=None, metavar="K",
                          help="timing repeats per cell, min is reported "
                               "(default: 2 quick, 3 full)")
    encoding.add_argument("--iters", type=int, default=None, metavar="N",
                          help="batch passes per timing repeat "
                               "(default: 2 quick, 10 full)")
    encoding.add_argument("--out", default="BENCH_encoding.json",
                          help="result file (default: %(default)s)")

    serve = sub.add_parser(
        "serve",
        help="run the controller service (HTTP/JSON provisioning API)",
    )
    serve.add_argument("--topology", choices=_SERVICE_TOPOLOGIES,
                       default="torus33",
                       help="domain to serve (default: %(default)s)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8423,
                       help="listen port; 0 picks an ephemeral one "
                            "(default: %(default)s)")

    loadgen = sub.add_parser(
        "loadgen",
        help="farm-driven churn against a live controller service: "
             "arrive/depart/reroute/port-flap with admission audits and "
             "offline route-ID re-derivation",
    )
    loadgen.add_argument("--topology", choices=_SERVICE_TOPOLOGIES,
                         default="torus33",
                         help="domain to churn (default: %(default)s)")
    loadgen.add_argument("--seeds", nargs="+", type=int, default=[0, 1],
                         help="one churn shard per seed "
                              "(default: %(default)s)")
    loadgen.add_argument("--users", type=int, default=2000, metavar="N",
                         help="concurrent-flow population bound "
                              "(default: %(default)s)")
    loadgen.add_argument("--ops", type=int, default=4000, metavar="N",
                         help="API operations per shard "
                              "(default: %(default)s)")
    loadgen.add_argument("--qos", type=float, default=0.3, metavar="FRAC",
                         help="fraction of arrivals carrying QoS "
                              "constraints (default: %(default)s)")
    loadgen.add_argument("--transport", choices=("direct", "http"),
                         default="http",
                         help="drive dispatch() in-process or a live "
                              "asyncio HTTP server (default: %(default)s)")
    loadgen.add_argument("--export", metavar="PATH.csv|PATH.json",
                         help="also write per-shard rows")
    _add_farm_args(loadgen)
    return parser


def _cmd_table1() -> int:
    from repro.experiments.table1 import render_table1

    print(render_table1())
    return 0


def _cmd_table2() -> int:
    from repro.experiments.table2 import render_table2

    print(render_table2())
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments.export import figure4_rows, write_rows
    from repro.experiments.figure4 import render_figure4, run_figure4

    series = run_figure4(seed=args.seed, farm=_farm_options(args, "fig4"))
    print(render_figure4(series))
    if args.export:
        write_rows(figure4_rows(series), args.export)
        print(f"wrote {args.export}")
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments.export import figure5_rows, write_rows
    from repro.experiments.figure5 import render_figure5, run_figure5

    cells = run_figure5(farm=_farm_options(args, "fig5"))
    print(render_figure5(cells))
    if args.export:
        write_rows(figure5_rows(cells), args.export)
        print(f"wrote {args.export}")
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    from repro.experiments.export import figure7_rows, write_rows
    from repro.experiments.figure7 import render_figure7, run_figure7

    points = run_figure7(farm=_farm_options(args, "fig7"))
    print(render_figure7(points))
    if args.export:
        write_rows(figure7_rows(points), args.export)
        print(f"wrote {args.export}")
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    from repro.experiments.figure8 import render_figure8, run_figure8

    print(render_figure8(run_figure8(farm=_farm_options(args, "fig8"))))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_report

    report = build_report(farm=_farm_options(args, "report"))
    with open(args.path, "w", encoding="utf-8") as f:
        f.write(report)
    print(f"wrote {args.path}")
    return 0


def _cmd_topo(name: str, dot: bool) -> int:
    from repro.experiments.common import scenario_factory
    from repro.topology.topologies import six_node

    scenario = six_node() if name == "six_node" else scenario_factory(name)()
    if dot:
        print(scenario.graph.to_dot())
        return 0
    g = scenario.graph
    cores = g.nodes("core")
    print(f"scenario {scenario.name}: {len(cores)} core switches, "
          f"{len(g.links())} links")
    print(f"primary route: {' -> '.join(scenario.primary_route)}")
    for level in scenario.protection_levels():
        segs = scenario.segments(level)
        rendered = ", ".join(f"{s.at}->{s.to}" for s in segs) or "(none)"
        print(f"protection[{level}]: {rendered}")
    print(f"failure cases: " + ", ".join(
        f"{a}-{b}" for a, b in scenario.failure_links))
    if scenario.notes:
        print(f"notes: {scenario.notes}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.common import (
        Timeline,
        run_failure_experiment,
        scenario_factory,
    )

    scenario = scenario_factory(args.scenario)()
    if args.failure:
        a, _, b = args.failure.partition("-")
        failure: Optional[tuple] = (a, b)
    else:
        failure = scenario.failure_links[0] if scenario.failure_links else None
    end = args.duration
    timeline = Timeline(
        flow_start=0.2,
        fail_at=end / 3,
        repair_at=2 * end / 3,
        end=end,
        baseline_window=(end / 6, end / 3),
        failure_window=(end / 3 + 0.5, 2 * end / 3),
        sample_interval_s=max(end / 24, 0.25),
    )
    outcome = run_failure_experiment(
        scenario, args.deflection, args.protection, failure,
        args.seed, timeline,
    )
    fail_label = f"{failure[0]}-{failure[1]}" if failure else "none"
    print(f"scenario={args.scenario} deflection={args.deflection} "
          f"protection={args.protection} failure={fail_label} "
          f"seed={args.seed}")
    print(outcome.iperf.describe())
    print(f"baseline {outcome.baseline_mbps:.2f} Mbit/s, during failure "
          f"{outcome.failure_mbps:.2f} Mbit/s "
          f"({100 * outcome.ratio:.1f}% of baseline)")
    return 0


def _chaos_kwargs(args: argparse.Namespace) -> dict:
    if args.mode == "mtbf":
        return {"mtbf_s": args.mtbf, "mttr_s": args.mttr}
    if args.mode in ("srlg", "regional"):
        return {"mttr_s": args.mttr}
    return {}


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos_sweep import (
        render_chaos_run,
        render_chaos_sweep,
        run_chaos_sweep,
    )
    from repro.farm.jobs import chaos_spec
    from repro.farm.sweep import run_chaos_specs

    if args.sweep:
        runs = run_chaos_sweep(
            scenario_name=args.scenario,
            seed=args.seed,
            farm=_farm_options(args, "chaos-sweep"),
        )
        print(render_chaos_sweep(runs))
    else:
        spec = chaos_spec(
            args.scenario,
            args.deflection,
            args.mode,
            args.seed,
            chaos_kwargs=_chaos_kwargs(args),
            ctrl_outage=args.ctrl_outage,
            traffic_s=args.duration,
        )
        runs = run_chaos_specs(
            [spec], _farm_options(args, "chaos"), label="chaos"
        )
        print(render_chaos_run(runs[0]))
    if args.export:
        from repro.experiments.export import chaos_rows, write_rows

        write_rows(chaos_rows(runs), args.export)
        print(f"wrote {args.export}")
    return 0


def _cmd_frontier(args: argparse.Namespace) -> int:
    from repro.experiments.frontier import (
        frontier_rows,
        render_frontier,
        run_frontier,
    )

    cells = run_frontier(
        topologies=args.topologies,
        schemes=args.schemes,
        max_failures=args.max_failures,
        seeds=args.seeds,
        dynamic=args.dynamic,
        farm=_farm_options(args, "frontier"),
    )
    print(render_frontier(cells))
    if args.export:
        from repro.experiments.export import write_rows

        write_rows(frontier_rows(cells), args.export)
        print(f"wrote {args.export}")
    violations = sum(c.violation_count for c in cells)
    return 0 if violations == 0 else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.artifact import load_artifact, replay_artifact
    from repro.verify.harness import render_verify, run_verify

    if args.replay:
        record = load_artifact(args.replay)
        result = replay_artifact(record)
        print(f"replayed [{record['oracle']}] on case seed "
              f"{record['case']['seed']}: {result.checks} checks, "
              f"{len(result.divergences)} divergences")
        for d in result.divergences[:5]:
            print(f"  {d.detail}")
        if result.ok:
            print("divergence no longer reproduces (fixed?)")
            return 0
        return 1
    outcome = run_verify(
        trials=args.trials,
        seed=args.seed,
        oracles=args.oracles,
        shrink=args.shrink,
        artifact_dir=args.artifact_dir,
        farm=_farm_options(args, "verify"),
    )
    print(render_verify(outcome))
    return 0 if outcome.ok else 1


def _cmd_farm(args: argparse.Namespace) -> int:
    from repro.farm.bench import render_bench, run_bench

    if args.farm_command == "bench":
        result = run_bench(
            jobs=args.jobs,
            seeds=list(range(1, args.seeds + 1)),
            out=args.out,
            cache_dir=args.cache_dir,
            progress=args.progress,
        )
        print(render_bench(result))
        print(f"wrote {args.out}")
        return 0
    raise AssertionError(f"unhandled farm command {args.farm_command!r}")


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.bench_command == "sim":
        from repro.bench.simbench import render_sim_bench, run_sim_bench

        result = run_sim_bench(
            sizes=args.sizes,
            strategies=args.strategies,
            seed=args.seed,
            quick=args.quick,
            repeats=args.repeats,
            out=args.out,
            modes=args.modes,
        )
        print(render_sim_bench(result))
        if args.out:
            print(f"wrote {args.out}")
        return 0 if result["digests_match_reference"] else 1
    if args.bench_command == "crt":
        from repro.bench.crtbench import render_crt_bench, run_crt_bench

        result = run_crt_bench(
            pools=args.pools,
            seed=args.seed,
            quick=args.quick,
            repeats=args.repeats,
            iters=args.iters,
            out=args.out,
        )
        print(render_crt_bench(result))
        if args.out:
            print(f"wrote {args.out}")
        return 0 if result["bit_identical_reference"] else 1
    if args.bench_command == "provision":
        from repro.bench.provisionbench import (
            render_provision_bench,
            run_provision_bench,
        )

        result = run_provision_bench(
            cells=args.cells,
            seed=args.seed,
            quick=args.quick,
            repeats=args.repeats,
            out=args.out,
            shards=args.shards,
        )
        print(render_provision_bench(result))
        if args.out:
            print(f"wrote {args.out}")
        gate = result.get("shard_gate")
        ok = (
            result["bit_identical_reference"]
            and result["targets_met"]
            and (gate is None or gate["digests_match"])
        )
        return 0 if ok else 1
    if args.bench_command == "service":
        from repro.bench.servicebench import (
            render_service_bench,
            run_service_bench,
        )

        result = run_service_bench(
            seed=args.seed,
            quick=args.quick,
            repeats=args.repeats,
            out=args.out,
        )
        print(render_service_bench(result))
        if args.out:
            print(f"wrote {args.out}")
        ok = (
            result["bit_identical_reference"]
            and result["zero_admission_violations"]
        )
        return 0 if ok else 1
    if args.bench_command == "encoding":
        from repro.bench.encodingbench import (
            render_encoding_bench,
            run_encoding_bench,
        )

        result = run_encoding_bench(
            cells=args.cells,
            seed=args.seed,
            quick=args.quick,
            repeats=args.repeats,
            iters=args.iters,
            out=args.out,
        )
        print(render_encoding_bench(result))
        if args.out:
            print(f"wrote {args.out}")
        return 0 if result["verified_before_timing"] else 1
    raise AssertionError(f"unhandled bench command {args.bench_command!r}")


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.server import ControllerService
    from repro.service.state import ControllerState
    from repro.service.topology import edge_names, service_topology

    graph = service_topology(args.topology)
    state = ControllerState(graph, validated_pool=True)
    service = ControllerService(state)

    async def serve() -> None:
        await service.start(host=args.host, port=args.port)
        edges = edge_names(graph)
        print(f"serving {args.topology} on "
              f"http://{args.host}:{service.port} "
              f"({len(edges)} edges: {', '.join(edges[:6])}"
              f"{', ...' if len(edges) > 6 else ''})")
        print("endpoints: GET /healthz /stats /topology /audit /flows; "
              "POST /flows /flows/{id}/reroute /topology/events; "
              "DELETE /flows/{id}")
        await service.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.farm.jobs import service_spec
    from repro.farm.sweep import run_service_specs
    from repro.service.loadgen import churn_rows, render_churn

    specs = [
        service_spec(
            args.topology,
            seed,
            users=args.users,
            operations=args.ops,
            qos_fraction=args.qos,
            transport=args.transport,
        )
        for seed in args.seeds
    ]
    reports = run_service_specs(
        specs, _farm_options(args, "loadgen"), label="loadgen"
    )
    print(render_churn(reports))
    if args.export:
        from repro.experiments.export import write_rows

        write_rows(churn_rows(reports), args.export)
        print(f"wrote {args.export}")
    return 0 if all(r.ok for r in reports) else 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "table2":
        return _cmd_table2()
    if args.command == "fig4":
        return _cmd_fig4(args)
    if args.command == "fig5":
        return _cmd_fig5(args)
    if args.command == "fig7":
        return _cmd_fig7(args)
    if args.command == "fig8":
        return _cmd_fig8(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "topo":
        return _cmd_topo(args.scenario, args.dot)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "frontier":
        return _cmd_frontier(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "farm":
        return _cmd_farm(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.profile is not None:
        from repro.bench.profiler import profile_call

        return profile_call(lambda: _dispatch(args), top=args.profile)
    return _dispatch(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
