"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's artifacts plus a free-form
runner:

* ``table1`` / ``table2`` — print the tables.
* ``fig4`` / ``fig5`` / ``fig7`` / ``fig8`` — run and print a figure.
* ``report [PATH]`` — regenerate EXPERIMENTS.md.
* ``topo SCENARIO [--dot]`` — describe (or DOT-dump) a topology.
* ``run`` — one custom iperf-under-failure run with full knobs.
* ``chaos`` — seeded generative fault injection with runtime invariant
  checking; ``--sweep`` maps delivery ratio vs. failure rate.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.switches.deflection import STRATEGY_NAMES

__all__ = ["main", "build_parser"]

_SCENARIOS = ("six_node", "fifteen_node", "rnp28", "redundant_path")

#: Kept in sync with repro.sim.chaos.CHAOS_MODES (asserted by tests);
#: listed literally so the parser builds without importing the sim.
_CHAOS_MODES = ("adversarial", "flap", "mtbf", "regional", "srlg")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="KAR (Key-for-Any-Route) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="route-ID bit lengths (Table 1)")
    sub.add_parser("table2", help="related-work feature matrix (Table 2)")
    fig4 = sub.add_parser("fig4", help="throughput time series by technique")
    fig4.add_argument("--seed", type=int, default=1)
    fig4.add_argument("--export", metavar="PATH.csv|PATH.json",
                      help="also write the raw series")
    fig5 = sub.add_parser("fig5", help="protection/technique/location grid")
    fig5.add_argument("--export", metavar="PATH.csv|PATH.json")
    fig7 = sub.add_parser("fig7", help="RNP backbone failures")
    fig7.add_argument("--export", metavar="PATH.csv|PATH.json")
    sub.add_parser("fig8", help="redundant-path worst case")

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("path", nargs="?", default="EXPERIMENTS.md")

    topo = sub.add_parser("topo", help="describe a scenario topology")
    topo.add_argument("scenario", choices=_SCENARIOS)
    topo.add_argument("--dot", action="store_true",
                      help="emit Graphviz DOT instead of a summary")

    run = sub.add_parser("run", help="one custom iperf-under-failure run")
    run.add_argument("--scenario", choices=_SCENARIOS[1:],
                     default="fifteen_node")
    run.add_argument("--deflection", choices=STRATEGY_NAMES, default="nip")
    run.add_argument("--protection", default="partial")
    run.add_argument("--failure", metavar="A-B", default=None,
                     help="link to fail, e.g. SW7-SW13 (default: the "
                          "scenario's first failure case)")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--duration", type=float, default=12.0,
                     help="total simulated seconds")

    chaos = sub.add_parser(
        "chaos",
        help="generative fault injection with invariant checking",
    )
    chaos.add_argument("--scenario", choices=_SCENARIOS[1:],
                       default="fifteen_node")
    chaos.add_argument("--deflection", choices=STRATEGY_NAMES, default="nip")
    chaos.add_argument("--mode", choices=sorted(_CHAOS_MODES),
                       default="mtbf",
                       help="failure process (default: %(default)s)")
    chaos.add_argument("--seed", type=int, default=42)
    chaos.add_argument("--duration", type=float, default=4.0,
                       help="simulated seconds of probe traffic")
    chaos.add_argument("--mtbf", type=float, default=2.0,
                       help="per-link mean time between failures (mtbf mode)")
    chaos.add_argument("--mttr", type=float, default=0.5,
                       help="mean time to repair (mtbf/srlg/regional modes)")
    chaos.add_argument("--ctrl-outage", action="store_true",
                       help="also inject controller outages (exercises the "
                            "re-encode retry/backoff path)")
    chaos.add_argument("--sweep", action="store_true",
                       help="run the full delivery-ratio vs. failure-rate "
                            "sweep (HP/AVP/NIP) instead of a single run")
    chaos.add_argument("--export", metavar="PATH.csv|PATH.json",
                       help="also write the sweep/run rows")
    return parser


def _cmd_table1() -> int:
    from repro.experiments.table1 import render_table1

    print(render_table1())
    return 0


def _cmd_table2() -> int:
    from repro.experiments.table2 import render_table2

    print(render_table2())
    return 0


def _cmd_fig4(seed: int, export: Optional[str]) -> int:
    from repro.experiments.export import figure4_rows, write_rows
    from repro.experiments.figure4 import render_figure4, run_figure4

    series = run_figure4(seed=seed)
    print(render_figure4(series))
    if export:
        write_rows(figure4_rows(series), export)
        print(f"wrote {export}")
    return 0


def _cmd_fig5(export: Optional[str]) -> int:
    from repro.experiments.export import figure5_rows, write_rows
    from repro.experiments.figure5 import render_figure5, run_figure5

    cells = run_figure5()
    print(render_figure5(cells))
    if export:
        write_rows(figure5_rows(cells), export)
        print(f"wrote {export}")
    return 0


def _cmd_fig7(export: Optional[str]) -> int:
    from repro.experiments.export import figure7_rows, write_rows
    from repro.experiments.figure7 import render_figure7, run_figure7

    points = run_figure7()
    print(render_figure7(points))
    if export:
        write_rows(figure7_rows(points), export)
        print(f"wrote {export}")
    return 0


def _cmd_fig8() -> int:
    from repro.experiments.figure8 import render_figure8, run_figure8

    print(render_figure8(run_figure8()))
    return 0


def _cmd_report(path: str) -> int:
    from repro.experiments.report import build_report

    with open(path, "w", encoding="utf-8") as f:
        f.write(build_report())
    print(f"wrote {path}")
    return 0


def _cmd_topo(name: str, dot: bool) -> int:
    from repro.experiments.common import scenario_factory
    from repro.topology.topologies import six_node

    scenario = six_node() if name == "six_node" else scenario_factory(name)()
    if dot:
        print(scenario.graph.to_dot())
        return 0
    g = scenario.graph
    cores = g.nodes("core")
    print(f"scenario {scenario.name}: {len(cores)} core switches, "
          f"{len(g.links())} links")
    print(f"primary route: {' -> '.join(scenario.primary_route)}")
    for level in scenario.protection_levels():
        segs = scenario.segments(level)
        rendered = ", ".join(f"{s.at}->{s.to}" for s in segs) or "(none)"
        print(f"protection[{level}]: {rendered}")
    print(f"failure cases: " + ", ".join(
        f"{a}-{b}" for a, b in scenario.failure_links))
    if scenario.notes:
        print(f"notes: {scenario.notes}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.common import (
        Timeline,
        run_failure_experiment,
        scenario_factory,
    )

    scenario = scenario_factory(args.scenario)()
    if args.failure:
        a, _, b = args.failure.partition("-")
        failure: Optional[tuple] = (a, b)
    else:
        failure = scenario.failure_links[0] if scenario.failure_links else None
    end = args.duration
    timeline = Timeline(
        flow_start=0.2,
        fail_at=end / 3,
        repair_at=2 * end / 3,
        end=end,
        baseline_window=(end / 6, end / 3),
        failure_window=(end / 3 + 0.5, 2 * end / 3),
        sample_interval_s=max(end / 24, 0.25),
    )
    outcome = run_failure_experiment(
        scenario, args.deflection, args.protection, failure,
        args.seed, timeline,
    )
    fail_label = f"{failure[0]}-{failure[1]}" if failure else "none"
    print(f"scenario={args.scenario} deflection={args.deflection} "
          f"protection={args.protection} failure={fail_label} "
          f"seed={args.seed}")
    print(outcome.iperf.describe())
    print(f"baseline {outcome.baseline_mbps:.2f} Mbit/s, during failure "
          f"{outcome.failure_mbps:.2f} Mbit/s "
          f"({100 * outcome.ratio:.1f}% of baseline)")
    return 0


def _chaos_kwargs(args: argparse.Namespace) -> dict:
    if args.mode == "mtbf":
        return {"mtbf_s": args.mtbf, "mttr_s": args.mttr}
    if args.mode in ("srlg", "regional"):
        return {"mttr_s": args.mttr}
    return {}


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos_sweep import (
        render_chaos_run,
        render_chaos_sweep,
        run_chaos_once,
        run_chaos_sweep,
    )

    if args.sweep:
        runs = run_chaos_sweep(scenario_name=args.scenario, seed=args.seed)
        print(render_chaos_sweep(runs))
    else:
        runs = [
            run_chaos_once(
                scenario_name=args.scenario,
                technique=args.deflection,
                mode=args.mode,
                seed=args.seed,
                chaos_kwargs=_chaos_kwargs(args),
                ctrl_outage=args.ctrl_outage,
                traffic_s=args.duration,
            )
        ]
        print(render_chaos_run(runs[0]))
    if args.export:
        from repro.experiments.export import chaos_rows, write_rows

        write_rows(chaos_rows(runs), args.export)
        print(f"wrote {args.export}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "table2":
        return _cmd_table2()
    if args.command == "fig4":
        return _cmd_fig4(args.seed, args.export)
    if args.command == "fig5":
        return _cmd_fig5(args.export)
    if args.command == "fig7":
        return _cmd_fig7(args.export)
    if args.command == "fig8":
        return _cmd_fig8()
    if args.command == "report":
        return _cmd_report(args.path)
    if args.command == "topo":
        return _cmd_topo(args.scenario, args.dot)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
