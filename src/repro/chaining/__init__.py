"""Service chaining over KAR segments (the paper's §5 future work)."""

from repro.chaining.chain import (
    ChainDeployment,
    ServiceChain,
    VnfFunction,
    add_chain_probe,
    deploy_chain,
)

__all__ = [
    "ServiceChain",
    "VnfFunction",
    "ChainDeployment",
    "deploy_chain",
    "add_chain_probe",
]
