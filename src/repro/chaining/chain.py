"""Service chaining over KAR (the paper's named future work).

Section 5: *"we plan ... to investigate the application of KAR in the
service chaining of virtualized network functions."*  This module
builds that extension on the reproduced system.

The one-residue-per-switch constraint means a single route ID cannot
express a path that crosses the same switch twice with different exits
— which service chains routinely need.  The natural KAR answer is
**segment re-encoding**: the chain is a sequence of ordinary KAR
segments (ingress → VNF₁ → VNF₂ → ... → destination), each with its own
route ID; the edge serving each VNF re-encapsulates the packet for the
next segment, exactly the way edges already re-encode stray packets.
The core stays stateless; all chain state lives at the edges (one
ingress entry per segment) and in the VNF hosts.

Because every segment is a plain KAR route, each can carry its own
driven-deflection protection — chains inherit the paper's resilience
story unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.rns.encoder import EncodedRoute
from repro.runner import KarSimulation
from repro.sim.packet import Packet
from repro.topology.graph import TopologyError
from repro.topology.topologies import ProtectionSegment

__all__ = ["ServiceChain", "VnfFunction", "ChainDeployment", "deploy_chain"]


@dataclass(frozen=True)
class ServiceChain:
    """An ordered service chain between two hosts.

    Attributes:
        name: chain identifier (also used as the flow-ID prefix).
        src_host: traffic source.
        vnf_hosts: hosts running the virtualized functions, in traversal
            order.  Each must hang off an edge node.
        dst_host: final destination.
    """

    name: str
    src_host: str
    vnf_hosts: Tuple[str, ...]
    dst_host: str

    def waypoints(self) -> List[str]:
        """The full host sequence the chain visits."""
        return [self.src_host, *self.vnf_hosts, self.dst_host]

    def segments(self) -> List[Tuple[str, str]]:
        """Consecutive (from_host, to_host) segment endpoints."""
        points = self.waypoints()
        return list(zip(points, points[1:]))


class VnfFunction:
    """A virtualized function running on a host.

    Receives every packet of its chain, applies a processing delay (and
    an optional payload transformation), and forwards the packet toward
    the next waypoint.  Registered on the host under the chain's flow
    ID, like any transport endpoint.
    """

    def __init__(
        self,
        ks: KarSimulation,
        host_name: str,
        next_host: str,
        processing_delay_s: float = 0.0005,
        transform=None,
    ):
        self.ks = ks
        self.host = ks.host(host_name)
        self.next_host = next_host
        self.processing_delay_s = processing_delay_s
        self.transform = transform
        self.processed = 0

    def on_packet(self, packet: Packet) -> None:
        self.processed += 1
        if self.transform is not None:
            packet.payload = self.transform(packet.payload)
        forwarded = Packet(
            src_host=self.host.name,
            dst_host=self.next_host,
            size_bytes=packet.size_bytes,
            payload=packet.payload,
            created_at=packet.created_at,
        )
        self.ks.sim.schedule(
            self.processing_delay_s, self.host.inject, forwarded
        )


@dataclass
class ChainDeployment:
    """A deployed chain: its per-segment routes and VNF endpoints."""

    chain: ServiceChain
    segment_routes: List[Tuple[EncodedRoute, EncodedRoute]]
    functions: List[VnfFunction]

    @property
    def total_header_bits(self) -> int:
        """Sum of forward route-ID sizes across segments.

        The chaining pay-off: N short segment keys instead of one
        impossibly constrained end-to-end key.
        """
        return sum(fwd.bit_length for fwd, _ in self.segment_routes)

    def processed_counts(self) -> List[int]:
        return [fn.processed for fn in self.functions]


def deploy_chain(
    ks: KarSimulation,
    chain: ServiceChain,
    processing_delay_s: float = 0.0005,
    transforms: Optional[Sequence] = None,
) -> ChainDeployment:
    """Install a service chain on a wired simulation.

    Installs forward/reverse routes for every segment (so TCP works
    across the chain as well as datagrams) and registers a
    :class:`VnfFunction` on each VNF host that relays traffic to the
    next waypoint.

    Args:
        ks: the simulation (its scenario's graph must contain every
            waypoint host).
        chain: the chain specification.
        processing_delay_s: per-VNF processing latency.
        transforms: optional per-VNF payload transforms (aligned with
            ``chain.vnf_hosts``).

    Raises:
        TopologyError: when a waypoint host does not exist.
    """
    graph = ks.scenario.graph
    for host in chain.waypoints():
        if host not in graph:
            raise TopologyError(f"chain waypoint {host!r} not in topology")
    if transforms is not None and len(transforms) != len(chain.vnf_hosts):
        raise ValueError(
            f"need one transform per VNF ({len(chain.vnf_hosts)}), "
            f"got {len(transforms)}"
        )

    segment_routes = [
        ks.install_flow(a, b) for a, b in chain.segments()
    ]
    functions: List[VnfFunction] = []
    waypoints = chain.waypoints()
    for i, vnf_host in enumerate(chain.vnf_hosts):
        fn = VnfFunction(
            ks,
            vnf_host,
            next_host=waypoints[i + 2],  # vnf i sits at waypoint i + 1
            processing_delay_s=processing_delay_s,
            transform=transforms[i] if transforms else None,
        )
        ks.host(vnf_host).register(chain.name, fn)
        functions.append(fn)
    return ChainDeployment(
        chain=chain, segment_routes=segment_routes, functions=functions
    )


def add_chain_probe(
    ks: KarSimulation,
    deployment: ChainDeployment,
    rate_pps: float,
    duration_s: float,
    payload_bytes: int = 1200,
):
    """A constant-rate probe traversing the whole chain.

    Returns ``(source, sink)``: the source addresses the first VNF and
    the sink listens at the chain's destination — delivery proves the
    full relay worked.
    """
    from repro.transport.udp import UdpSink, UdpSource

    chain = deployment.chain
    first_target = chain.waypoints()[1]
    source = UdpSource(
        ks.sim, ks.host(chain.src_host), first_target, chain.name,
        rate_pps=rate_pps, payload_bytes=payload_bytes,
        duration_s=duration_s,
    )
    sink = UdpSink(ks.sim, ks.host(chain.dst_host), chain.name)
    return source, sink
