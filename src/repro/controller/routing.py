"""Route computation: node paths → KAR hop lists → route IDs.

The controller selects a path (shortest by default, or the scenario's
pinned route), converts it into ``(switch ID, output port)`` hops using
the topology's port numbering, and hands the hop list to the RNS
encoder.  "The routing algorithm is out of the scope" of the paper —
anything that yields a node path works here.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.rns.encoder import EncodedRoute, Hop, RouteEncoder
from repro.topology.graph import NodeKind, PortGraph, TopologyError
from repro.topology.paths import shortest_path

__all__ = [
    "core_path_between_edges",
    "hops_for_path",
    "encode_node_path",
    "RoutingError",
]


class RoutingError(TopologyError):
    """Raised when a route cannot be computed or encoded."""


def core_path_between_edges(
    graph: PortGraph,
    src_edge: str,
    dst_edge: str,
    forbidden_links: Iterable[Tuple[str, str]] = (),
) -> List[str]:
    """Shortest edge-to-edge path; intermediates restricted to core.

    Returns the full node path ``[src_edge, SW..., dst_edge]``.
    """
    non_core = [
        n.name
        for n in graph.nodes()
        if n.kind != NodeKind.CORE and n.name not in (src_edge, dst_edge)
    ]
    return shortest_path(
        graph,
        src_edge,
        dst_edge,
        forbidden_links=forbidden_links,
        forbidden_nodes=non_core,
    )


def hops_for_path(graph: PortGraph, node_path: Sequence[str]) -> List[Hop]:
    """Convert a node path into KAR hops.

    For every *core* node on the path, emit ``Hop(switch_id, port toward
    the next node)``.  Non-core nodes (the edges at either end) are
    skipped — they do not forward by modulo.

    Raises:
        RoutingError: when consecutive nodes are not linked, or a core
            node's port index is not addressable by its switch ID.
    """
    if len(node_path) < 2:
        raise RoutingError(f"path too short to route: {list(node_path)}")
    hops: List[Hop] = []
    for current, nxt in zip(node_path, node_path[1:]):
        if not graph.has_link(current, nxt):
            raise RoutingError(f"path step {current}->{nxt} is not a link")
        if graph.node(current).kind != NodeKind.CORE:
            continue
        sid = graph.switch_id(current)
        port = graph.port_of(current, nxt)
        if port >= sid:
            raise RoutingError(
                f"{current}: port {port} not addressable by switch ID {sid}"
            )
        hops.append(Hop(switch_id=sid, port=port))
    if not hops:
        raise RoutingError(f"no core hops on path {list(node_path)}")
    return hops


def encode_node_path(
    graph: PortGraph,
    node_path: Sequence[str],
    extra_hops: Sequence[Hop] = (),
    encoder: Optional[RouteEncoder] = None,
) -> EncodedRoute:
    """Encode a node path (plus protection hops) into a route ID.

    Args:
        node_path: full path including the non-core endpoints.
        extra_hops: driven-deflection hops to fold in (disjoint switch
            IDs — :class:`~repro.rns.encoder.DuplicateSwitchError`
            otherwise, which is KAR's one-residue-per-switch constraint
            surfacing).
    """
    encoder = encoder or RouteEncoder()
    return encoder.encode(hops_for_path(graph, node_path) + list(extra_hops))
