"""Route computation: node paths → KAR hop lists → route IDs.

The controller selects a path (shortest by default, or the scenario's
pinned route), converts it into ``(switch ID, output port)`` hops using
the topology's port numbering, and hands the hop list to the RNS
encoder.  "The routing algorithm is out of the scope" of the paper —
anything that yields a node path works here.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.rns.encoder import EncodedRoute, Hop, RouteEncoder
from repro.rns.pool import ReencodeDelta
from repro.topology.graph import NodeKind, PortGraph, TopologyError
from repro.topology.paths import shortest_path

__all__ = [
    "core_path_between_edges",
    "hops_for_path",
    "encode_node_path",
    "delta_reencode_route",
    "RoutingError",
]


class RoutingError(TopologyError):
    """Raised when a route cannot be computed or encoded."""


def core_path_between_edges(
    graph: PortGraph,
    src_edge: str,
    dst_edge: str,
    forbidden_links: Iterable[Tuple[str, str]] = (),
) -> List[str]:
    """Shortest edge-to-edge path; intermediates restricted to core.

    Returns the full node path ``[src_edge, SW..., dst_edge]``.
    """
    non_core = [
        n.name
        for n in graph.nodes()
        if n.kind != NodeKind.CORE and n.name not in (src_edge, dst_edge)
    ]
    return shortest_path(
        graph,
        src_edge,
        dst_edge,
        forbidden_links=forbidden_links,
        forbidden_nodes=non_core,
    )


def hops_for_path(graph: PortGraph, node_path: Sequence[str]) -> List[Hop]:
    """Convert a node path into KAR hops.

    For every *core* node on the path, emit ``Hop(switch_id, port toward
    the next node)``.  Non-core nodes (the edges at either end) are
    skipped — they do not forward by modulo.

    Raises:
        RoutingError: when consecutive nodes are not linked, or a core
            node's port index is not addressable by its switch ID.
    """
    if len(node_path) < 2:
        raise RoutingError(f"path too short to route: {list(node_path)}")
    hops: List[Hop] = []
    for current, nxt in zip(node_path, node_path[1:]):
        if not graph.has_link(current, nxt):
            raise RoutingError(f"path step {current}->{nxt} is not a link")
        if graph.node(current).kind != NodeKind.CORE:
            continue
        sid = graph.switch_id(current)
        port = graph.port_of(current, nxt)
        if port >= sid:
            raise RoutingError(
                f"{current}: port {port} not addressable by switch ID {sid}"
            )
        hops.append(Hop(switch_id=sid, port=port))
    if not hops:
        raise RoutingError(f"no core hops on path {list(node_path)}")
    return hops


def encode_node_path(
    graph: PortGraph,
    node_path: Sequence[str],
    extra_hops: Sequence[Hop] = (),
    encoder: Optional[RouteEncoder] = None,
) -> EncodedRoute:
    """Encode a node path (plus protection hops) into a route ID.

    Args:
        node_path: full path including the non-core endpoints.
        extra_hops: driven-deflection hops to fold in (disjoint switch
            IDs — :class:`~repro.rns.encoder.DuplicateSwitchError`
            otherwise, which is KAR's one-residue-per-switch constraint
            surfacing).
    """
    encoder = encoder or RouteEncoder()
    return encoder.encode(hops_for_path(graph, node_path) + list(extra_hops))


def delta_reencode_route(
    graph: PortGraph,
    route: EncodedRoute,
    switch_name: str,
    new_next: str,
    delta: ReencodeDelta,
) -> EncodedRoute:
    """Re-encode *route* so *switch_name* exits toward *new_next*.

    The link-failure re-route primitive: when a switch's primary output
    port dies and the controller picks a different neighbor, only that
    one residue changes — ``R' = <R + (p' − p) · M_i L_i>_M`` — so the
    update goes through :class:`~repro.rns.pool.ReencodeDelta` (a single
    CRT addend, with transparent full-solve fallback for routes off the
    delta's pool) instead of re-solving the whole system.  Bit-identical
    to a fresh encode of the mutated hop list.

    Raises:
        RoutingError: when *switch_name*/*new_next* are not linked, or
            the new port is not addressable by the switch ID.
        CrtError: when *route* does not encode *switch_name*'s ID.
    """
    if not graph.has_link(switch_name, new_next):
        raise RoutingError(f"re-route step {switch_name}->{new_next} is not a link")
    sid = graph.switch_id(switch_name)
    port = graph.port_of(switch_name, new_next)
    if port >= sid:
        raise RoutingError(
            f"{switch_name}: port {port} not addressable by switch ID {sid}"
        )
    return delta.apply(route, sid, port)
