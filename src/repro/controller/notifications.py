"""Failure notifications from the dataplane to the controller.

The paper's switches *do* send failure notifications — the experimental
method just has the controller ignore them ("the controller ignores all
failure notifications and, then, keeps the same route with or without
link failures").  This module makes that channel explicit:

* every notification is logged with its arrival time (so experiments
  can report what the controller knew and when),
* an optional **reactive** mode implements the traditional
  notify-and-reroute behaviour KAR is compared against: on a link-down
  notification the controller recomputes every installed flow that
  crossed the link, avoiding all currently-down links; on link-up it
  restores the original routes.

The wiring is one callback per switch plus a configurable notification
latency (detection + channel delay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.controller.routing import core_path_between_edges, encode_node_path
from repro.sim.network import Network
from repro.switches.core import KarSwitch
from repro.switches.edge import EdgeNode, IngressEntry
from repro.topology.graph import PortGraph
from repro.topology.paths import NoPathError

__all__ = ["LinkNotification", "NotificationService"]

LinkKey = Tuple[str, str]


@dataclass(frozen=True)
class LinkNotification:
    """One link-state report as received by the controller."""

    received_at: float
    switch: str
    port: int
    peer: str
    up: bool

    @property
    def link(self) -> LinkKey:
        a, b = self.switch, self.peer
        return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class _FlowRecord:
    src_host: str
    dst_host: str
    src_edge: str
    dst_edge: str


class NotificationService:
    """Receives link-state notifications; optionally reroutes flows.

    Args:
        network: the live network (for reinstalling ingress entries).
        graph: the topology.
        notification_delay_s: detection + control-channel latency per
            notification.
        reactive: when False (the paper's experimental setting), only
            log; when True, behave like the traditional reroute-on-
            notification controller.
        default_ttl: TTL for recomputed routes.
        encoder: the route encoder reroutes go through (defaults to the
            reference integer CRT; the runner passes its controller's so
            reroutes match the run's encoding backend).
    """

    def __init__(
        self,
        network: Network,
        graph: PortGraph,
        notification_delay_s: float = 0.01,
        reactive: bool = False,
        default_ttl: int = 64,
        encoder=None,
    ):
        if notification_delay_s < 0:
            raise ValueError("notification delay must be non-negative")
        self.network = network
        self.graph = graph
        self.notification_delay_s = notification_delay_s
        self.reactive = reactive
        self.default_ttl = default_ttl
        self.encoder = encoder
        self.log: List[LinkNotification] = []
        self.down_links: Set[LinkKey] = set()
        self.reroutes = 0
        self.restores = 0
        self._flows: List[_FlowRecord] = []
        self._wired = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def wire(self) -> None:
        """Attach to every core switch's link-state hook."""
        if self._wired:
            raise RuntimeError("notification service already wired")
        self._wired = True
        for name, node in self.network.nodes.items():
            if isinstance(node, KarSwitch):
                self._wire_switch(node)

    def _wire_switch(self, switch: KarSwitch) -> None:
        def on_link_state(port: int, up: bool,
                          _switch: KarSwitch = switch) -> None:
            peer = _switch.peer_name(port) or "?"
            self.network.sim.schedule(
                self.notification_delay_s,
                self._receive,
                LinkNotification(
                    received_at=(
                        self.network.sim.now + self.notification_delay_s
                    ),
                    switch=_switch.name,
                    port=port,
                    peer=peer,
                    up=up,
                ),
            )

        switch.on_link_state = on_link_state

    def track_flow(self, src_host: str, dst_host: str) -> None:
        """Register a flow for reactive rerouting."""
        self._flows.append(
            _FlowRecord(
                src_host=src_host,
                dst_host=dst_host,
                src_edge=self.graph.edge_of_host(src_host),
                dst_edge=self.graph.edge_of_host(dst_host),
            )
        )

    # ------------------------------------------------------------------
    # notification handling
    # ------------------------------------------------------------------
    def _receive(self, notification: LinkNotification) -> None:
        self.log.append(notification)
        key = notification.link
        if notification.up:
            self.down_links.discard(key)
        else:
            self.down_links.add(key)
        if self.reactive:
            self._reroute_all()

    def _reroute_all(self) -> None:
        """Reinstall every tracked flow avoiding all known-down links."""
        for flow in self._flows:
            try:
                node_path = core_path_between_edges(
                    self.graph, flow.src_edge, flow.dst_edge,
                    forbidden_links=self.down_links,
                )
            except NoPathError:
                continue  # nothing the controller can do for this flow
            route = encode_node_path(self.graph, node_path, encoder=self.encoder)
            ingress = self.network.node(flow.src_edge)
            assert isinstance(ingress, EdgeNode)
            ingress.install_ingress(
                flow.dst_host,
                IngressEntry(
                    route_id=route.route_id,
                    modulus=route.modulus,
                    out_port=self.graph.port_of(flow.src_edge, node_path[1]),
                    ttl=self.default_ttl,
                    residues=route.residue_map(),
                ),
            )
            if self.down_links:
                self.reroutes += 1
            else:
                self.restores += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def notifications_for(self, a: str, b: str) -> List[LinkNotification]:
        key = (a, b) if a <= b else (b, a)
        return [n for n in self.log if n.link == key]

    def describe(self) -> str:
        mode = "reactive" if self.reactive else "ignoring (paper mode)"
        return (
            f"controller {mode}: {len(self.log)} notifications, "
            f"{self.reroutes} reroutes, {self.restores} restores, "
            f"down now: {sorted(self.down_links) or 'none'}"
        )
