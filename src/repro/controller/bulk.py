"""Vectorized all-pairs provisioning: CSR trees + down-tree CRT encode.

The per-flow engine (:class:`~repro.controller.provision
.ProvisioningEngine`) is the right oracle and the wrong cold-start
path: provisioning a full ingress×egress mesh over a real WAN means
one Python BFS per destination, one branch walk per flow, and one CRT
solve per route.  This module batches all three:

* **one CSR conversion per epoch** — the :class:`~repro.topology.csr
  .CsrTopology` arrays, built once and shared by every destination;
* **one frontier-batched BFS per destination** —
  :func:`~repro.topology.csr.destination_tree_arrays`, whole-frontier
  numpy operations, canonical smallest-name tie-break locked against
  the reference :class:`~repro.controller.provision.DestinationTree`;
* **one** :func:`~repro.rns.crt.crt_extend` **per (destination,
  switch)** — a route down a destination tree shares every residue of
  its parent's route plus one hop, so route IDs are computed by
  extending the parent's solved system (O(1) modular ops) in BFS
  order, never by re-solving Eq. 4 per flow.  At all-pairs scale this
  also beats per-route pooled dot products: a mesh touches ~n·m
  distinct switch subsets, which thrashes any per-subset weight cache,
  while the tree extension needs no per-subset state at all.

Everything is bit-identical to the per-flow path by construction (the
extended CRT solution is unique) and by test: the Hypothesis suite in
``tests/controller/test_bulk.py`` compares hop-for-hop and
route-ID-for-route-ID against :meth:`ProvisioningEngine.provision` on
random topologies, and ``repro bench provision`` refuses to time
anything before an identity pre-pass over every mesh pair passes.

Sharding: destinations are independent, so a mesh splits into
destination blocks that farm workers compute in isolation
(:func:`mesh_digest` per block); the digest-equality gate at each
shard boundary is the same canonical fingerprint computed from the
per-flow oracle (:func:`mesh_digest_reference`).
"""

from __future__ import annotations

import hashlib
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.controller.provision import ProvisionError, ProvisionedRoute
from repro.rns.crt import crt_extend
from repro.rns.encoder import EncodedRoute, Hop
from repro.topology.csr import CsrTopology, TreeArrays, destination_tree_arrays
from repro.topology.graph import NodeKind, PortGraph

__all__ = [
    "BulkProvisioner",
    "DestinationBlock",
    "MeshRow",
    "full_mesh_pairs",
    "mesh_digest",
    "mesh_digest_reference",
]

#: Sentinel larger than any (depth * n + index) entry key.
_NO_ENTRY = np.int64(2**62)


def full_mesh_pairs(graph: PortGraph) -> List[Tuple[str, str]]:
    """Every ordered (src_edge, dst_edge) pair, destination-major.

    The canonical mesh enumeration order: destinations ascending by
    name, sources ascending by name within each destination.  Both the
    bulk and the reference mesh digests walk pairs in this order.
    """
    edges = sorted(n.name for n in graph.nodes(NodeKind.EDGE))
    return [(s, d) for d in edges for s in edges if s != d]


class DestinationBlock:
    """One destination's tree plus every route ID rooted under it.

    ``route_id(x)`` / ``modulus(x)`` give the encoded route for the
    branch entering the core at node index ``x``; routes are computed
    once per block in BFS order via :func:`~repro.rns.crt.crt_extend`
    (each node's system = its parent's system + one hop).
    """

    __slots__ = (
        "csr", "dst_edge", "dst_idx", "tree", "_ids", "_mods",
        "_hops", "_branches", "_routes",
    )

    def __init__(self, csr: CsrTopology, dst_edge: str, tree: TreeArrays):
        self.csr = csr
        self.dst_edge = dst_edge
        self.dst_idx = tree.root
        self.tree = tree
        n = csr.n
        self._ids: List[Optional[int]] = [None] * n
        self._mods: List[Optional[int]] = [None] * n
        self._hops: Dict[int, Tuple[Hop, ...]] = {}
        self._branches: Dict[int, Tuple[str, ...]] = {}
        self._routes: Dict[int, EncodedRoute] = {}
        self._encode_all()

    def _encode_all(self) -> None:
        sids = self.csr.switch_ids
        parent = self.tree.parent
        pports = self.tree.parent_port
        ids, mods = self._ids, self._mods
        root = self.dst_idx
        for x in self.tree.order.tolist():
            s = int(sids[x])
            p = int(pports[x])
            if s <= 1:
                raise ProvisionError(
                    "bad-path",
                    f"core switch {self.csr.names[x]!r} has no switch ID",
                )
            if p >= s:
                raise ProvisionError(
                    "bad-path",
                    f"{self.csr.names[x]}: port {p} not addressable by "
                    f"switch ID {s}",
                )
            par = int(parent[x])
            if par == root:
                ids[x], mods[x] = p % s, s
            else:
                ids[x], mods[x] = crt_extend(ids[par], mods[par], s, p)

    def reaches(self, idx: int) -> bool:
        return self._ids[idx] is not None

    def route_id(self, idx: int) -> int:
        rid = self._ids[idx]
        if rid is None:
            raise ProvisionError(
                "no-core-path",
                f"{self.csr.names[idx]!r} cannot reach "
                f"{self.dst_edge!r} through the core",
            )
        return rid

    def modulus(self, idx: int) -> int:
        self.route_id(idx)
        return self._mods[idx]  # type: ignore[return-value]

    def hops(self, idx: int) -> Tuple[Hop, ...]:
        """Hop tuple for the branch entering the core at *idx* — in
        path order (entry first), matching ``hops_for_path``."""
        cached = self._hops.get(idx)
        if cached is not None:
            return cached
        self.route_id(idx)  # raises for unreachable nodes
        chain: List[int] = []
        x = idx
        while x != self.dst_idx and x not in self._hops:
            chain.append(x)
            x = int(self.tree.parent[x])
        tail = self._hops.get(x, ())
        sids, pports = self.csr.switch_ids, self.tree.parent_port
        for y in reversed(chain):
            tail = (Hop(int(sids[y]), int(pports[y])),) + tail
            self._hops[y] = tail
        return self._hops[idx]

    def branch_names(self, idx: int) -> Tuple[str, ...]:
        """Node names from *idx* down the tree to the destination."""
        cached = self._branches.get(idx)
        if cached is not None:
            return cached
        self.route_id(idx)
        chain: List[int] = []
        x = idx
        while x != self.dst_idx and x not in self._branches:
            chain.append(x)
            x = int(self.tree.parent[x])
        tail = self._branches.get(x, (self.dst_edge,))
        names = self.csr.names
        for y in reversed(chain):
            tail = (names[y],) + tail
            self._branches[y] = tail
        return self._branches[idx]

    def encoded_route(self, idx: int) -> EncodedRoute:
        """The :class:`EncodedRoute` for entry *idx* (memoized; shared
        by every flow entering the core there)."""
        route = self._routes.get(idx)
        if route is None:
            hops = self.hops(idx)
            route = EncodedRoute(
                route_id=self.route_id(idx),
                modulus=self.modulus(idx),
                hops=hops,
                _residues={h.switch_id: h.port for h in hops},
            )
            self._routes[idx] = route
        return route


class MeshRow:
    """One destination's slice of the full mesh, in array form.

    ``src_edges[i]`` enters the core at node index ``entries[i]``
    through source port ``out_ports[i]``; its route is
    ``(route_ids[i], moduli[i])``.  Sources are name-sorted — the
    canonical mesh order.
    """

    __slots__ = ("dst_edge", "src_edges", "entries", "out_ports",
                 "route_ids", "moduli", "block")

    def __init__(self, dst_edge: str, src_edges: List[str],
                 entries: np.ndarray, out_ports: np.ndarray,
                 route_ids: List[int], moduli: List[int],
                 block: DestinationBlock):
        self.dst_edge = dst_edge
        self.src_edges = src_edges
        self.entries = entries
        self.out_ports = out_ports
        self.route_ids = route_ids
        self.moduli = moduli
        self.block = block


class BulkProvisioner:
    """Vectorized batch provisioning over one (epoch, down-set) snapshot.

    Args:
        graph: the topology (switch IDs assigned, edges attached).
        down: canonical link keys to exclude — the engine's link-state
            overlay at snapshot time.

    The provisioner is immutable with respect to the topology: the
    engine rebuilds it on every epoch bump, exactly like destination
    trees.  ``trees_built`` counts array-tree constructions (one per
    distinct destination, memoized).
    """

    def __init__(
        self,
        graph: PortGraph,
        down: FrozenSet[Tuple[str, str]] = frozenset(),
    ):
        self.graph = graph
        self.csr = CsrTopology.from_graph(graph, down=down)
        self.trees_built = 0
        self.block_hits = 0
        self._blocks: Dict[str, DestinationBlock] = {}

        csr = self.csr
        self.edge_names: List[str] = sorted(
            n.name for n in graph.nodes(NodeKind.EDGE)
        )
        self.edge_idx = np.array(
            [csr.index[e] for e in self.edge_names], dtype=np.int64
        )
        self._edge_rank = {e: i for i, e in enumerate(self.edge_names)}
        # Flat per-edge core-neighbor arrays for vectorized entry
        # selection: nb_flat/port_flat hold each edge's core neighbors
        # (ascending) and the edge-side port toward them; edge i's
        # segment is nb_flat[eptr[i]:eptr[i+1]].
        nb_chunks: List[np.ndarray] = []
        port_chunks: List[np.ndarray] = []
        counts = np.zeros(len(self.edge_idx), dtype=np.int64)
        for i, e in enumerate(self.edge_idx.tolist()):
            sl = csr.edge_slice(e)
            nbs = csr.indices[sl]
            keep = csr.core_mask[nbs]
            nb_chunks.append(nbs[keep].astype(np.int64))
            port_chunks.append(csr.ports_out[sl][keep].astype(np.int64))
            counts[i] = int(keep.sum())
        self._nb_flat = (
            np.concatenate(nb_chunks) if nb_chunks
            else np.empty(0, dtype=np.int64)
        )
        self._port_flat = (
            np.concatenate(port_chunks) if port_chunks
            else np.empty(0, dtype=np.int64)
        )
        self._eptr = np.concatenate(([0], np.cumsum(counts)))
        self._ecounts = counts

    # ------------------------------------------------------------------
    # destination blocks
    # ------------------------------------------------------------------
    def block(self, dst_edge: str) -> DestinationBlock:
        """The (memoized) encoded tree block for one destination."""
        blk = self._blocks.get(dst_edge)
        if blk is not None:
            self.block_hits += 1
            return blk
        csr = self.csr
        idx = csr.node_index(dst_edge)
        if not self.graph.node(dst_edge).kind == NodeKind.EDGE:
            raise ProvisionError(
                "not-an-edge", f"{dst_edge!r} is not an edge node"
            )
        tree = destination_tree_arrays(csr, idx)
        blk = DestinationBlock(csr, dst_edge, tree)
        self._blocks[dst_edge] = blk
        self.trees_built += 1
        return blk

    # ------------------------------------------------------------------
    # entry selection
    # ------------------------------------------------------------------
    def _entries_for_all_edges(
        self, blk: DestinationBlock
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per edge-rank: chosen entry node index and source out-port.

        The canonical per-flow rule, vectorized: entry = min core
        neighbor by ``(tree depth, name)``; ``-1`` when the edge has no
        core neighbor that reaches the destination.
        """
        n = self.csr.n
        depth = blk.tree.depth
        cand_depth = depth[self._nb_flat].astype(np.int64)
        key = np.where(
            cand_depth < 0, _NO_ENTRY, cand_depth * n + self._nb_flat
        )
        n_edges = len(self.edge_idx)
        entries = np.full(n_edges, -1, dtype=np.int64)
        out_ports = np.full(n_edges, -1, dtype=np.int64)
        nonempty = self._ecounts > 0
        if not nonempty.any():
            return entries, out_ports
        seg_min = np.minimum.reduceat(key, self._eptr[:-1][nonempty])
        reachable = seg_min < _NO_ENTRY
        if not reachable.any():
            return entries, out_ports
        # First flat position per segment achieving the minimum: expand
        # each segment's minimum back over its members and keep the
        # first match (positions ascend within a segment).
        full_min = np.full(n_edges, _NO_ENTRY, dtype=np.int64)
        full_min[nonempty] = seg_min
        match = key == np.repeat(full_min, self._ecounts)
        seg_of = np.repeat(np.arange(n_edges), self._ecounts)
        match_pos = np.flatnonzero(match)
        seg_hit, first = np.unique(seg_of[match_pos], return_index=True)
        pos = match_pos[first]
        entries[seg_hit] = self._nb_flat[pos]
        out_ports[seg_hit] = self._port_flat[pos]
        return entries, out_ports

    def entry_for(self, src_edge: str, blk: DestinationBlock) -> Tuple[int, int]:
        """(entry node index, source out-port) for one source edge.

        Raises:
            ProvisionError: ``no-core-path`` when no core neighbor of
                *src_edge* reaches the block's destination (message
                identical to the per-flow engine's).
        """
        rank = self._edge_rank.get(src_edge)
        if rank is None:
            raise ProvisionError(
                "not-an-edge", f"{src_edge!r} is not an edge node"
            )
        entries, out_ports = self._entries_for_all_edges(blk)
        if entries[rank] < 0:
            raise ProvisionError(
                "no-core-path",
                f"{src_edge!r} has no core neighbor that reaches "
                f"{blk.dst_edge!r}",
            )
        return int(entries[rank]), int(out_ports[rank])

    # ------------------------------------------------------------------
    # mesh iteration
    # ------------------------------------------------------------------
    def mesh_row(
        self, dst_edge: str, src_edges: Optional[Sequence[str]] = None
    ) -> MeshRow:
        """One destination's mesh slice (all sources by default).

        Raises:
            ProvisionError: ``no-core-path`` when any requested source
                cannot reach the destination — full-mesh provisioning
                is strict, exactly like the per-flow loop it replaces.
        """
        blk = self.block(dst_edge)
        if src_edges is None:
            srcs = [e for e in self.edge_names if e != dst_edge]
        else:
            srcs = sorted(src_edges)
        entries_all, ports_all = self._entries_for_all_edges(blk)
        ranks = np.array([self._edge_rank[s] for s in srcs], dtype=np.int64)
        entries = entries_all[ranks]
        out_ports = ports_all[ranks]
        bad = np.flatnonzero(entries < 0)
        if bad.size:
            src = srcs[int(bad[0])]
            raise ProvisionError(
                "no-core-path",
                f"{src!r} has no core neighbor that reaches "
                f"{dst_edge!r}",
            )
        ids = blk._ids
        mods = blk._mods
        route_ids = [ids[e] for e in entries.tolist()]
        moduli = [mods[e] for e in entries.tolist()]
        return MeshRow(dst_edge, srcs, entries, out_ports,
                       route_ids, moduli, blk)

    def iter_full_mesh(self) -> Iterator[MeshRow]:
        """Every destination's mesh slice, destination-major order."""
        for dst in self.edge_names:
            yield self.mesh_row(dst)

    def routes_for(
        self, dst_edge: str, src_edges: Sequence[str]
    ) -> Dict[str, ProvisionedRoute]:
        """Materialized :class:`ProvisionedRoute` per source edge.

        Object-for-object equal to what
        :meth:`ProvisioningEngine.provision` returns for the same pair
        (same node path, same hops, same route ID and modulus, same
        out-port); flows sharing an entry switch share one
        :class:`EncodedRoute` instance.
        """
        row = self.mesh_row(dst_edge, src_edges)
        blk = row.block
        out: Dict[str, ProvisionedRoute] = {}
        for src, entry, port in zip(
            row.src_edges, row.entries.tolist(), row.out_ports.tolist()
        ):
            out[src] = ProvisionedRoute(
                src_edge=src,
                dst_edge=dst_edge,
                node_path=(src,) + blk.branch_names(entry),
                route=blk.encoded_route(entry),
                out_port=int(port),
            )
        return out


def mesh_digest(
    rows: Iterable[MeshRow],
) -> Tuple[str, int]:
    """Canonical sha256 fingerprint over mesh rows.

    Hashes ``src>dst=route_id/modulus;`` per pair, in row order — the
    exact byte stream :func:`mesh_digest_reference` produces from the
    per-flow engine, so equal digests mean every route ID (and its
    modulus) matches bit for bit.  Returns ``(hexdigest, pair_count)``.
    """
    h = hashlib.sha256()
    count = 0
    for row in rows:
        dst = row.dst_edge
        for src, rid, mod in zip(row.src_edges, row.route_ids, row.moduli):
            h.update(f"{src}>{dst}={rid}/{mod};".encode())
            count += 1
    return h.hexdigest(), count


def mesh_digest_reference(
    engine, pairs: Iterable[Tuple[str, str]]
) -> Tuple[str, int]:
    """The same fingerprint, computed from the per-flow oracle.

    *engine* is a :class:`~repro.controller.provision
    .ProvisioningEngine`; pairs must be in canonical mesh order
    (destination-major — see :func:`full_mesh_pairs`).
    """
    h = hashlib.sha256()
    count = 0
    for src, dst in pairs:
        p = engine.provision(src, dst)
        h.update(
            f"{src}>{dst}={p.route.route_id}/{p.route.modulus};".encode()
        )
        count += 1
    return h.hexdigest(), count
