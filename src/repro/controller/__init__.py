"""Controller plane: ID assignment, routing, protection, orchestration."""

from repro.controller.controller import KarController
from repro.controller.notifications import LinkNotification, NotificationService
from repro.controller.idassign import AssignmentError, assign_switch_ids
from repro.controller.protection import (
    CachedProtectionPlanner,
    ProtectionPlan,
    ProtectionPlanner,
    segments_to_hops,
)
from repro.controller.provision import (
    DestinationTree,
    ProvisionedRoute,
    ProvisioningEngine,
)
from repro.controller.retry import (
    DEFAULT_RETRY_POLICY,
    DeltaReencodeService,
    RetryPolicy,
)
from repro.controller.routing import (
    RoutingError,
    core_path_between_edges,
    delta_reencode_route,
    encode_node_path,
    hops_for_path,
)

__all__ = [
    "KarController",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "DeltaReencodeService",
    "ProvisioningEngine",
    "ProvisionedRoute",
    "DestinationTree",
    "NotificationService",
    "LinkNotification",
    "assign_switch_ids",
    "AssignmentError",
    "ProtectionPlanner",
    "CachedProtectionPlanner",
    "ProtectionPlan",
    "segments_to_hops",
    "RoutingError",
    "core_path_between_edges",
    "hops_for_path",
    "encode_node_path",
    "delta_reencode_route",
]
