"""Controller plane: ID assignment, routing, protection, orchestration."""

from repro.controller.controller import KarController
from repro.controller.notifications import LinkNotification, NotificationService
from repro.controller.idassign import AssignmentError, assign_switch_ids
from repro.controller.protection import (
    ProtectionPlan,
    ProtectionPlanner,
    segments_to_hops,
)
from repro.controller.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.controller.routing import (
    RoutingError,
    core_path_between_edges,
    encode_node_path,
    hops_for_path,
)

__all__ = [
    "KarController",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "NotificationService",
    "LinkNotification",
    "assign_switch_ids",
    "AssignmentError",
    "ProtectionPlanner",
    "ProtectionPlan",
    "segments_to_hops",
    "RoutingError",
    "core_path_between_edges",
    "hops_for_path",
    "encode_node_path",
]
