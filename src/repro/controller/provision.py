"""Batch route provisioning: destination trees + pooled CRT encoding.

The per-flow controller path (:class:`~repro.controller.controller
.KarController`) answers one request at a time: Dijkstra from the source
edge, then a fresh CRT solve.  Correct, and the right oracle — but the
work is almost entirely shared between flows.  Every flow to the same
destination traverses the same shortest-path *tree* toward it, and every
encode draws from the same coprime pool.  This module amortizes both:

* one :class:`DestinationTree` per (topology epoch, destination edge) —
  a BFS tree over the core subgraph rooted at the destination, built
  once and reused by every flow to that destination;
* one :class:`~repro.rns.pool.PoolContext` per topology epoch — all CRT
  basis weights precomputed, so each encode is a cached-subset dot
  product;
* one :class:`~repro.rns.pool.ReencodeDelta` for failure-time updates —
  a changed output port is a single CRT addend, not a re-solve.

Two invalidation granularities, split by what actually changed:

* :meth:`ProvisioningEngine.note_topology_change` — nodes, switch IDs
  or port numbering changed.  Everything is rebuilt: a tree or pool
  from a previous epoch must never encode a route for the current one.
* :meth:`ProvisioningEngine.note_link_change` — only link *state*
  changed (a link went down or came back up).  Trees are rebuilt over
  the residual graph, but the CRT pool, its memoized subset contexts
  and the incremental re-encoder survive: they depend only on the
  switch-ID set, which link churn cannot touch.  This is what lets a
  long-running controller service absorb port flaps without ever
  falling back to full CRT solves.

Link state itself lives here as an overlay (:meth:`ProvisioningEngine
.set_link_down` / :meth:`~ProvisioningEngine.set_link_up`): the
:class:`~repro.topology.graph.PortGraph` stays structurally untouched
(port numbering must remain stable — it is baked into every encoded
residue), and down links are simply excluded from tree construction and
entry selection.

Error contract: every user-input failure — unknown names, non-edge
endpoints, disconnected pairs, off-pool switches, down links — raises
:class:`ProvisionError` carrying a machine-readable ``reason`` slug.
The controller service maps these directly onto 4xx responses; nothing
in this module leaks a bare ``KeyError`` for bad input.

Route selection note — why this is a separate engine and not the
default inside :class:`~repro.controller.controller.KarController`: the
per-flow path uses source-rooted Dijkstra whose tie-break among
equal-length paths depends on heap order at the *source*; a
destination-rooted tree necessarily tie-breaks from the other end.
Both pick shortest paths, but not always the *same* shortest path, and
the repo's digest-reproducibility guarantees pin the per-flow choice.
The engine therefore defines its own deterministic rule (BFS with
name-sorted expansion, entry switch chosen by ``(depth, name)``) and is
wired in explicitly where batch provisioning is wanted.  Tests assert
path-*length* equality with the per-flow path and bit-identical
encoding against the reference solver on the engine's own hop lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.controller.protection import CachedProtectionPlanner, ProtectionPlan
from repro.controller.routing import RoutingError, hops_for_path
from repro.rns.crt import CrtError
from repro.rns.encoder import EncodedRoute
from repro.rns.pool import PoolContext, PooledEncoder, ReencodeDelta
from repro.sim.packet import DEFAULT_TTL
from repro.switches.edge import IngressEntry
from repro.topology.graph import NodeKind, PortGraph, TopologyError

__all__ = [
    "DestinationTree",
    "ProvisionError",
    "ProvisionedRoute",
    "ProvisioningEngine",
]


def _link_key(a: str, b: str) -> Tuple[str, str]:
    """Canonical unordered link key (mirrors ``LinkInfo.key``)."""
    return (a, b) if a <= b else (b, a)


class ProvisionError(RoutingError):
    """A provisioning request the engine must refuse, with a reason code.

    Attributes:
        reason: machine-readable slug — the controller service returns
            it verbatim as the ``error`` field of a 4xx response.
            Values: ``unknown-node``, ``not-an-edge``, ``not-a-switch``,
            ``same-edge``, ``no-core-path``, ``not-a-link``,
            ``link-down``, ``off-pool-switch``, ``switch-not-on-route``,
            ``port-unaddressable``, ``bad-path``.
    """

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class ProvisionedRoute:
    """One provisioned flow: the chosen path and its encoded route.

    Attributes:
        src_edge / dst_edge: the flow's ingress and egress edges.
        node_path: full node path ``[src_edge, SW..., dst_edge]``.
        route: the encoded route over the path's core hops.
        out_port: the source edge's port toward the first switch.
    """

    src_edge: str
    dst_edge: str
    node_path: Tuple[str, ...]
    route: EncodedRoute
    out_port: int

    def ingress_entry(self, ttl: int = DEFAULT_TTL) -> IngressEntry:
        """The edge-table entry installing this route."""
        return IngressEntry(
            route_id=self.route.route_id,
            modulus=self.route.modulus,
            out_port=self.out_port,
            ttl=ttl,
            residues=self.route.residue_map(),
        )


class DestinationTree:
    """Shortest-path (hop count) tree toward one destination edge.

    ``parent[x]`` is switch x's next node toward the destination;
    ``depth[x]`` its hop distance.  Built by BFS over the core subgraph
    with the frontier kept **name-sorted at every level**, which pins
    the canonical tie-break: among equal-depth alternatives,
    ``parent[x]`` is always the *smallest-named* node at
    ``depth[x] - 1`` adjacent to x — deterministic, independent of port
    numbering or insertion order, and exactly reproducible by the
    vectorized CSR pass (:func:`repro.topology.csr
    .destination_tree_arrays` picks parents by smallest node index over
    name-sorted indexing, which is the same rule).  Tests lock the two
    implementations together bit-for-bit.

    ``down`` is the set of canonical link keys currently failed: those
    links are skipped, so the tree describes the *residual* topology.
    """

    __slots__ = ("dst_edge", "epoch", "parent", "depth", "down")

    def __init__(
        self,
        graph: PortGraph,
        dst_edge: str,
        epoch: int,
        down: FrozenSet[Tuple[str, str]] = frozenset(),
    ):
        if graph.node(dst_edge).kind != NodeKind.EDGE:
            raise RoutingError(f"{dst_edge!r} is not an edge node")
        self.dst_edge = dst_edge
        self.epoch = epoch
        self.down = down
        parent: Dict[str, str] = {}
        depth: Dict[str, int] = {dst_edge: 0}
        frontier = [dst_edge]
        while frontier:
            nxt: List[str] = []
            for cur in frontier:
                neighbors = (
                    graph.core_subgraph_neighbors(cur)
                    if graph.node(cur).kind == NodeKind.CORE
                    else [
                        nb
                        for nb in graph.neighbors(cur)
                        if graph.node(nb).kind == NodeKind.CORE
                    ]
                )
                for nb in sorted(neighbors):
                    if nb in depth:
                        continue
                    if down and _link_key(cur, nb) in down:
                        continue
                    depth[nb] = depth[cur] + 1
                    parent[nb] = cur
                    nxt.append(nb)
            # Keeping the next frontier name-sorted is what makes the
            # first-wins claim above equal "smallest-named parent at the
            # previous depth" — the canonical tie-break the vectorized
            # pass reproduces.
            frontier = sorted(nxt)
        self.parent = parent
        self.depth = depth

    def branch(self, switch: str) -> List[str]:
        """Node path from *switch* down the tree to the destination."""
        if switch not in self.depth:
            raise RoutingError(
                f"{switch!r} cannot reach {self.dst_edge!r} through the core"
            )
        path = [switch]
        while path[-1] != self.dst_edge:
            path.append(self.parent[path[-1]])
        return path


class ProvisioningEngine:
    """Amortized batch provisioning over one topology epoch.

    Args:
        graph: the topology (switch IDs already assigned).
        default_ttl: hop budget stamped on ingress entries.
        validated_pool: pass True when the graph's switch IDs are known
            pairwise coprime (the topology builders validate them) to
            skip the pool's one-time O(n²) re-check.

    Every externally interesting event is counted — provisions, batch
    sizes, tree memo hits/misses, epoch bumps by granularity,
    incremental vs. full re-encodes — and exposed as one JSON-able
    mapping by :meth:`stats`, which is what the controller service's
    ``/stats`` endpoint serves.  Counters are cumulative across epoch
    rebuilds (retired encoder/delta counters are accumulated before
    their objects are replaced), so invalidation thrash is visible
    instead of resetting the evidence.
    """

    #: Per-destination batch-group size at which ``provision_batch``
    #: switches from the per-flow loop to the vectorized bulk path.
    #: Below it, CSR conversion + array trees cost more than they save.
    BULK_MIN_SOURCES = 8

    def __init__(
        self,
        graph: PortGraph,
        default_ttl: int = DEFAULT_TTL,
        validated_pool: bool = False,
        bulk_threshold: Optional[int] = None,
    ):
        self.graph = graph
        self.default_ttl = default_ttl
        self._validated_pool = validated_pool
        self.bulk_threshold = (
            self.BULK_MIN_SOURCES if bulk_threshold is None else bulk_threshold
        )
        self.epoch = 0
        self._trees: Dict[str, DestinationTree] = {}
        self._bulk: Any = None
        self._down: set = set()
        self.trees_built = 0
        self.tree_hits = 0
        self.provisions = 0
        self.batches = 0
        self.batch_flows = 0
        self.bulk_batches = 0
        self.bulk_routes = 0
        self.bulk_trees_built = 0
        self.bulk_block_hits = 0
        self.reroutes = 0
        self.epoch_bumps = 0
        self.full_rebuilds = 0
        self.link_invalidations = 0
        self._retired: Dict[str, int] = {
            "pooled_encodes": 0,
            "fallback_encodes": 0,
            "deltas_applied": 0,
            "identity_skips": 0,
            "full_solves": 0,
            "subsets_built": 0,
            "subset_hits": 0,
        }
        self._rebuild_epoch_state()

    def _retire_counters(self) -> None:
        """Bank the replaced objects' counters so stats stay cumulative."""
        r = self._retired
        r["pooled_encodes"] += self.encoder.pooled_encodes
        r["fallback_encodes"] += self.encoder.fallback_encodes
        r["deltas_applied"] += self.delta.deltas_applied
        r["identity_skips"] += self.delta.identity_skips
        r["full_solves"] += self.delta.full_solves
        r["subsets_built"] += self.pool.subsets_built
        r["subset_hits"] += self.pool.subset_hits

    def _rebuild_epoch_state(self) -> None:
        self.pool = PoolContext.from_graph(
            self.graph, validated=self._validated_pool
        )
        self.encoder = PooledEncoder(self.pool)
        self.delta = ReencodeDelta(self.pool)
        self.planner = CachedProtectionPlanner(self.graph)

    # ------------------------------------------------------------------
    # epoch / invalidation
    # ------------------------------------------------------------------
    def note_topology_change(self) -> None:
        """Invalidate every per-epoch artifact (trees, pool, planner).

        Call after any change to the graph's nodes, links, port
        numbering, or switch IDs.  Routes encoded before the change stay
        valid *as integers* (a route ID is self-contained) but may no
        longer describe live paths — the caller decides whether to
        re-provision them.  For pure link up/down events prefer
        :meth:`note_link_change`, which keeps the CRT pool.
        """
        self.epoch += 1
        self.epoch_bumps += 1
        self.full_rebuilds += 1
        self._trees.clear()
        self._retire_bulk()
        self._retire_counters()
        self._rebuild_epoch_state()

    def note_link_change(self) -> None:
        """Invalidate link-state-dependent artifacts only.

        Trees and protection plans are rebuilt (they follow links); the
        pool, its subset contexts and the incremental re-encoder are
        kept — the switch-ID set is unchanged, so every precomputed CRT
        weight is still exact.  This is the epoch bump a long-running
        service issues on every ``link_down``/``link_up``/``port_flap``
        event, and why steady-state churn never re-solves from scratch.
        """
        self.epoch += 1
        self.epoch_bumps += 1
        self.link_invalidations += 1
        self._trees.clear()
        self._retire_bulk()
        self.planner = CachedProtectionPlanner(self.graph)

    # ------------------------------------------------------------------
    # link-state overlay
    # ------------------------------------------------------------------
    @property
    def down_links(self) -> FrozenSet[Tuple[str, str]]:
        """Canonical keys of links currently marked down."""
        return frozenset(self._down)

    def _require_link(self, a: str, b: str) -> Tuple[str, str]:
        for name in (a, b):
            try:
                self.graph.node(name)
            except TopologyError as exc:
                raise ProvisionError("unknown-node", str(exc)) from None
        if not self.graph.has_link(a, b):
            raise ProvisionError("not-a-link", f"no link {a}-{b}")
        return _link_key(a, b)

    def link_is_up(self, a: str, b: str) -> bool:
        """True iff the (existing) link is not overlaid as down."""
        return self._require_link(a, b) not in self._down

    def set_link_down(self, a: str, b: str) -> bool:
        """Mark a link failed; returns True if the state changed.

        A change bumps the epoch via :meth:`note_link_change`, so the
        next provision sees residual trees.
        """
        key = self._require_link(a, b)
        if key in self._down:
            return False
        self._down.add(key)
        self.note_link_change()
        return True

    def set_link_up(self, a: str, b: str) -> bool:
        """Clear a link's failed mark; returns True if the state changed."""
        key = self._require_link(a, b)
        if key not in self._down:
            return False
        self._down.discard(key)
        self.note_link_change()
        return True

    # ------------------------------------------------------------------
    # bulk provisioner (lazy, per epoch)
    # ------------------------------------------------------------------
    def _retire_bulk(self) -> None:
        """Bank the outgoing bulk provisioner's counters and drop it."""
        bp = self._bulk
        if bp is not None and bp is not False:
            self.bulk_trees_built += bp.trees_built
            self.bulk_block_hits += bp.block_hits
        self._bulk = None

    def _bulk_provisioner(self):
        """This epoch's :class:`~repro.controller.bulk.BulkProvisioner`.

        Built lazily on the first qualifying batch and invalidated with
        the destination trees (it snapshots the same residual
        topology).  Returns None when numpy is unavailable — callers
        fall back to the per-flow loop, so the engine's behavior never
        depends on the accelerator being importable.
        """
        if self._bulk is False:
            return None
        if self._bulk is None:
            try:
                from repro.controller.bulk import BulkProvisioner
            except ImportError:
                self._bulk = False
                return None
            self._bulk = BulkProvisioner(
                self.graph, down=frozenset(self._down)
            )
        return self._bulk

    # ------------------------------------------------------------------
    # destination trees
    # ------------------------------------------------------------------
    def destination_tree(self, dst_edge: str) -> DestinationTree:
        """The (memoized) tree for one destination in the current epoch."""
        tree = self._trees.get(dst_edge)
        if tree is not None:
            self.tree_hits += 1
            return tree
        tree = DestinationTree(
            self.graph, dst_edge, self.epoch, down=frozenset(self._down)
        )
        self._trees[dst_edge] = tree
        self.trees_built += 1
        return tree

    # ------------------------------------------------------------------
    # provisioning
    # ------------------------------------------------------------------
    def _require_edge(self, name: str) -> None:
        try:
            info = self.graph.node(name)
        except TopologyError as exc:
            raise ProvisionError("unknown-node", str(exc)) from None
        if info.kind != NodeKind.EDGE:
            raise ProvisionError(
                "not-an-edge", f"{name!r} is not an edge node"
            )

    def select_path(self, src_edge: str, dst_edge: str) -> List[str]:
        """The engine's deterministic path choice, without encoding.

        The path enters the core at the source-edge neighbor with the
        smallest ``(tree depth, name)`` and follows tree parents to the
        destination — hop-count shortest end to end over the *residual*
        topology (down links excluded).

        Raises:
            ProvisionError: unknown or non-edge endpoints
                (``unknown-node`` / ``not-an-edge``), same-edge flows
                (``same-edge``), or no residual core path
                (``no-core-path``).
        """
        if src_edge == dst_edge:
            raise ProvisionError(
                "same-edge",
                f"flow endpoints share the edge {src_edge!r}; "
                f"no core route to provision",
            )
        self._require_edge(src_edge)
        self._require_edge(dst_edge)
        tree = self.destination_tree(dst_edge)
        entries = [
            nb
            for nb in self.graph.neighbors(src_edge)
            if self.graph.node(nb).kind == NodeKind.CORE
            and nb in tree.depth
            and _link_key(src_edge, nb) not in self._down
        ]
        if not entries:
            raise ProvisionError(
                "no-core-path",
                f"{src_edge!r} has no core neighbor that reaches "
                f"{dst_edge!r}",
            )
        entry = min(entries, key=lambda nb: (tree.depth[nb], nb))
        return [src_edge] + tree.branch(entry)

    def encode_path(self, node_path: Sequence[str]) -> ProvisionedRoute:
        """Encode an explicit edge-to-edge node path into a route.

        Used by :meth:`provision` for tree paths and by the admission-
        control service for CSPF paths — both go through the same
        pooled encoder, so every served route ID is bit-identical to a
        fresh reference solve of the same hop list.

        Raises:
            ProvisionError: malformed or unroutable paths
                (``bad-path``), with the underlying message preserved.
        """
        path = list(node_path)
        if len(path) < 3:
            raise ProvisionError(
                "bad-path", f"path too short to provision: {path}"
            )
        self._require_edge(path[0])
        self._require_edge(path[-1])
        try:
            hops = hops_for_path(self.graph, path)
            route = self.encoder.encode(hops)
            out_port = self.graph.port_of(path[0], path[1])
        except ProvisionError:
            raise
        except (RoutingError, TopologyError, CrtError) as exc:
            raise ProvisionError("bad-path", str(exc)) from exc
        self.provisions += 1
        return ProvisionedRoute(
            src_edge=path[0],
            dst_edge=path[-1],
            node_path=tuple(path),
            route=route,
            out_port=out_port,
        )

    def provision(self, src_edge: str, dst_edge: str) -> ProvisionedRoute:
        """Provision one flow edge-to-edge along the destination tree.

        Raises:
            ProvisionError: see :meth:`select_path` /
                :meth:`encode_path`.
        """
        return self.encode_path(self.select_path(src_edge, dst_edge))

    def provision_batch(
        self,
        pairs: Iterable[Tuple[str, str]],
        bulk: Optional[bool] = None,
    ) -> List[ProvisionedRoute]:
        """Provision many ``(src_edge, dst_edge)`` flows in one pass.

        Order-preserving.  Pairs are grouped by destination; groups
        with at least :attr:`bulk_threshold` distinct sources go
        through the vectorized bulk path
        (:class:`~repro.controller.bulk.BulkProvisioner`: one CSR
        conversion per epoch, one array BFS per destination, one
        incremental CRT extension per tree node), the rest through the
        per-flow loop.  Both paths produce object-for-object equal
        :class:`ProvisionedRoute`\\ s — the bulk path is a strict
        speedup, never a different answer, and the property suite in
        ``tests/controller/test_bulk.py`` holds them bit-identical.

        Args:
            bulk: force the dispatch — True sends every destination
                group through the bulk path regardless of size, False
                disables it entirely, None (default) applies the
                threshold.  numpy being unavailable silently degrades
                to per-flow.
        """
        pair_list = list(pairs)
        bulk_map: Dict[Tuple[str, str], ProvisionedRoute] = {}
        if bulk is not False and pair_list:
            by_dst: Dict[str, set] = {}
            for src, dst in pair_list:
                by_dst.setdefault(dst, set()).add(src)
            floor = 1 if bulk else self.bulk_threshold
            eligible = sorted(
                d for d, s in by_dst.items() if len(s) >= floor
            )
            bp = self._bulk_provisioner() if eligible else None
            if bp is not None:
                for dst in eligible:
                    srcs = by_dst[dst]
                    if dst in srcs:
                        raise ProvisionError(
                            "same-edge",
                            f"flow endpoints share the edge {dst!r}; "
                            f"no core route to provision",
                        )
                    self._require_edge(dst)
                    for src in srcs:
                        self._require_edge(src)
                    got = bp.routes_for(dst, sorted(srcs))
                    for src, route in got.items():
                        bulk_map[(src, dst)] = route
                    self.bulk_batches += 1
                    self.bulk_routes += len(got)
        routes: List[ProvisionedRoute] = []
        for src, dst in pair_list:
            route = bulk_map.get((src, dst))
            if route is None:
                route = self.provision(src, dst)
            else:
                self.provisions += 1
            routes.append(route)
        self.batches += 1
        self.batch_flows += len(routes)
        return routes

    def provision_full_mesh(
        self, bulk: Optional[bool] = None
    ) -> List[ProvisionedRoute]:
        """Provision every ordered edge pair, destination-major.

        The canonical mesh order (destinations ascending by name,
        sources ascending within each) — the order
        :func:`repro.controller.bulk.full_mesh_pairs` enumerates and
        the mesh digests hash.
        """
        edges = sorted(n.name for n in self.graph.nodes(NodeKind.EDGE))
        return self.provision_batch(
            [(s, d) for d in edges for s in edges if s != d], bulk=bulk
        )

    # ------------------------------------------------------------------
    # failure-time updates
    # ------------------------------------------------------------------
    def reroute_hop(
        self, route: EncodedRoute, switch_name: str, new_next: str
    ) -> EncodedRoute:
        """Re-encode *route* with *switch_name* exiting toward *new_next*.

        The incremental single-addend update (see
        :class:`~repro.rns.pool.ReencodeDelta`) — O(1) big-int work,
        never a full CRT solve.  Inputs are validated up front so the
        delta's silent full-solve fallback can never mask a bad request:

        Raises:
            ProvisionError: unknown names (``unknown-node``), a non-
                switch pivot (``not-a-switch``), a missing or failed
                link (``not-a-link`` / ``link-down``), a route or pivot
                off the engine's pool (``off-pool-switch``), a pivot the
                route does not encode (``switch-not-on-route``), or a
                port outside the switch's residue range
                (``port-unaddressable``).
        """
        try:
            info = self.graph.node(switch_name)
            self.graph.node(new_next)
        except TopologyError as exc:
            raise ProvisionError("unknown-node", str(exc)) from None
        if info.kind != NodeKind.CORE or info.switch_id is None:
            raise ProvisionError(
                "not-a-switch",
                f"{switch_name!r} is not a core switch with an ID",
            )
        try:
            port = self.graph.port_of(switch_name, new_next)
        except TopologyError:
            raise ProvisionError(
                "not-a-link",
                f"re-route step {switch_name}->{new_next} is not a link",
            ) from None
        if self._down and _link_key(switch_name, new_next) in self._down:
            raise ProvisionError(
                "link-down",
                f"re-route step {switch_name}->{new_next} is a failed link",
            )
        sid = info.switch_id
        residues = route.residue_map()
        if sid not in self.pool or not self.pool.covers(residues):
            raise ProvisionError(
                "off-pool-switch",
                f"route or switch {switch_name!r} (ID {sid}) is not covered "
                f"by this epoch's coprime pool",
            )
        if sid not in residues:
            raise ProvisionError(
                "switch-not-on-route",
                f"switch ID {sid} is not encoded in this route",
            )
        if port >= sid:
            raise ProvisionError(
                "port-unaddressable",
                f"{switch_name}: port {port} not addressable by switch ID "
                f"{sid}",
            )
        updated = self.delta.apply(route, sid, port)
        self.reroutes += 1
        return updated

    # ------------------------------------------------------------------
    # protection
    # ------------------------------------------------------------------
    def protect(
        self,
        provisioned: ProvisionedRoute,
        budget_bits: Optional[int] = None,
    ) -> ProtectionPlan:
        """Protection plan for a provisioned route (memoized per epoch).

        Flows sharing a destination share tree branches, so their
        protection plans hit the planner's per-epoch cache.
        """
        core_route = [
            n
            for n in provisioned.node_path
            if self.graph.node(n).kind == NodeKind.CORE
        ]
        if budget_bits is None:
            return self.planner.full(core_route)
        return self.planner.partial(core_route, budget_bits)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Cumulative engine counters as one JSON-able mapping.

        The live encoder/delta/pool counters are summed with the
        retired totals banked by full rebuilds, so a reader can tell
        whether :meth:`note_topology_change` invalidation is thrashing
        (``full_rebuilds`` climbing, ``subset_hits`` flat) versus the
        healthy steady state (``link_invalidations`` climbing while
        ``deltas_applied``/``subset_hits`` keep growing and
        ``full_solves`` stays zero).
        """
        r = self._retired
        return {
            "epoch": self.epoch,
            "provisions": self.provisions,
            "batches": self.batches,
            "batch_flows": self.batch_flows,
            "reroutes": self.reroutes,
            "links_down": len(self._down),
            "trees": {"built": self.trees_built, "hits": self.tree_hits},
            "bulk": {
                "batches": self.bulk_batches,
                "routes": self.bulk_routes,
                "trees_built": self.bulk_trees_built + (
                    self._bulk.trees_built
                    if self._bulk not in (None, False) else 0
                ),
                "block_hits": self.bulk_block_hits + (
                    self._bulk.block_hits
                    if self._bulk not in (None, False) else 0
                ),
            },
            "epochs": {
                "bumps": self.epoch_bumps,
                "full_rebuilds": self.full_rebuilds,
                "link_invalidations": self.link_invalidations,
            },
            "encoder": {
                "pooled": r["pooled_encodes"] + self.encoder.pooled_encodes,
                "fallback": (
                    r["fallback_encodes"] + self.encoder.fallback_encodes
                ),
            },
            "delta": {
                "applied": r["deltas_applied"] + self.delta.deltas_applied,
                "identity_skips": (
                    r["identity_skips"] + self.delta.identity_skips
                ),
                "full_solves": r["full_solves"] + self.delta.full_solves,
            },
            "subsets": {
                "built": r["subsets_built"] + self.pool.subsets_built,
                "hits": r["subset_hits"] + self.pool.subset_hits,
            },
        }
