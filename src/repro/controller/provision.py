"""Batch route provisioning: destination trees + pooled CRT encoding.

The per-flow controller path (:class:`~repro.controller.controller
.KarController`) answers one request at a time: Dijkstra from the source
edge, then a fresh CRT solve.  Correct, and the right oracle — but the
work is almost entirely shared between flows.  Every flow to the same
destination traverses the same shortest-path *tree* toward it, and every
encode draws from the same coprime pool.  This module amortizes both:

* one :class:`DestinationTree` per (topology epoch, destination edge) —
  a BFS tree over the core subgraph rooted at the destination, built
  once and reused by every flow to that destination;
* one :class:`~repro.rns.pool.PoolContext` per topology epoch — all CRT
  basis weights precomputed, so each encode is a cached-subset dot
  product;
* one :class:`~repro.rns.pool.ReencodeDelta` for failure-time updates —
  a changed output port is a single CRT addend, not a re-solve.

Everything is invalidated together by :meth:`ProvisioningEngine
.note_topology_change` — a tree or pool from a previous epoch must never
encode a route for the current one.

Route selection note — why this is a separate engine and not the
default inside :class:`~repro.controller.controller.KarController`: the
per-flow path uses source-rooted Dijkstra whose tie-break among
equal-length paths depends on heap order at the *source*; a
destination-rooted tree necessarily tie-breaks from the other end.
Both pick shortest paths, but not always the *same* shortest path, and
the repo's digest-reproducibility guarantees pin the per-flow choice.
The engine therefore defines its own deterministic rule (BFS with
name-sorted expansion, entry switch chosen by ``(depth, name)``) and is
wired in explicitly where batch provisioning is wanted.  Tests assert
path-*length* equality with the per-flow path and bit-identical
encoding against the reference solver on the engine's own hop lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.controller.protection import CachedProtectionPlanner, ProtectionPlan
from repro.controller.routing import RoutingError, hops_for_path
from repro.rns.encoder import EncodedRoute
from repro.rns.pool import PoolContext, PooledEncoder, ReencodeDelta
from repro.sim.packet import DEFAULT_TTL
from repro.switches.edge import IngressEntry
from repro.topology.graph import NodeKind, PortGraph, TopologyError

__all__ = [
    "DestinationTree",
    "ProvisionedRoute",
    "ProvisioningEngine",
]


@dataclass(frozen=True)
class ProvisionedRoute:
    """One provisioned flow: the chosen path and its encoded route.

    Attributes:
        src_edge / dst_edge: the flow's ingress and egress edges.
        node_path: full node path ``[src_edge, SW..., dst_edge]``.
        route: the encoded route over the path's core hops.
        out_port: the source edge's port toward the first switch.
    """

    src_edge: str
    dst_edge: str
    node_path: Tuple[str, ...]
    route: EncodedRoute
    out_port: int

    def ingress_entry(self, ttl: int = DEFAULT_TTL) -> IngressEntry:
        """The edge-table entry installing this route."""
        return IngressEntry(
            route_id=self.route.route_id,
            modulus=self.route.modulus,
            out_port=self.out_port,
            ttl=ttl,
            residues=self.route.residue_map(),
        )


class DestinationTree:
    """Shortest-path (hop count) tree toward one destination edge.

    ``parent[x]`` is switch x's next node toward the destination;
    ``depth[x]`` its hop distance.  Built by BFS over the core subgraph
    with name-sorted frontier expansion, so the parent choice among
    equal-depth alternatives is deterministic and independent of port
    numbering or insertion order.
    """

    __slots__ = ("dst_edge", "epoch", "parent", "depth")

    def __init__(self, graph: PortGraph, dst_edge: str, epoch: int):
        if graph.node(dst_edge).kind != NodeKind.EDGE:
            raise RoutingError(f"{dst_edge!r} is not an edge node")
        self.dst_edge = dst_edge
        self.epoch = epoch
        parent: Dict[str, str] = {}
        depth: Dict[str, int] = {dst_edge: 0}
        frontier = [dst_edge]
        while frontier:
            nxt: List[str] = []
            for cur in frontier:
                neighbors = (
                    graph.core_subgraph_neighbors(cur)
                    if graph.node(cur).kind == NodeKind.CORE
                    else [
                        nb
                        for nb in graph.neighbors(cur)
                        if graph.node(nb).kind == NodeKind.CORE
                    ]
                )
                for nb in sorted(neighbors):
                    if nb in depth:
                        continue
                    depth[nb] = depth[cur] + 1
                    parent[nb] = cur
                    nxt.append(nb)
            frontier = nxt
        self.parent = parent
        self.depth = depth

    def branch(self, switch: str) -> List[str]:
        """Node path from *switch* down the tree to the destination."""
        if switch not in self.depth:
            raise RoutingError(
                f"{switch!r} cannot reach {self.dst_edge!r} through the core"
            )
        path = [switch]
        while path[-1] != self.dst_edge:
            path.append(self.parent[path[-1]])
        return path


class ProvisioningEngine:
    """Amortized batch provisioning over one topology epoch.

    Args:
        graph: the topology (switch IDs already assigned).
        default_ttl: hop budget stamped on ingress entries.
        validated_pool: pass True when the graph's switch IDs are known
            pairwise coprime (the topology builders validate them) to
            skip the pool's one-time O(n²) re-check.
    """

    def __init__(
        self,
        graph: PortGraph,
        default_ttl: int = DEFAULT_TTL,
        validated_pool: bool = False,
    ):
        self.graph = graph
        self.default_ttl = default_ttl
        self._validated_pool = validated_pool
        self.epoch = 0
        self._trees: Dict[str, DestinationTree] = {}
        self.trees_built = 0
        self.tree_hits = 0
        self._rebuild_epoch_state()

    def _rebuild_epoch_state(self) -> None:
        self.pool = PoolContext.from_graph(
            self.graph, validated=self._validated_pool
        )
        self.encoder = PooledEncoder(self.pool)
        self.delta = ReencodeDelta(self.pool)
        self.planner = CachedProtectionPlanner(self.graph)

    # ------------------------------------------------------------------
    # epoch / invalidation
    # ------------------------------------------------------------------
    def note_topology_change(self) -> None:
        """Invalidate every per-epoch artifact (trees, pool, planner).

        Call after any change to the graph's nodes, links, port
        numbering, or switch IDs.  Routes encoded before the change stay
        valid *as integers* (a route ID is self-contained) but may no
        longer describe live paths — the caller decides whether to
        re-provision them.
        """
        self.epoch += 1
        self._trees.clear()
        self._rebuild_epoch_state()

    # ------------------------------------------------------------------
    # destination trees
    # ------------------------------------------------------------------
    def destination_tree(self, dst_edge: str) -> DestinationTree:
        """The (memoized) tree for one destination in the current epoch."""
        tree = self._trees.get(dst_edge)
        if tree is not None:
            self.tree_hits += 1
            return tree
        tree = DestinationTree(self.graph, dst_edge, self.epoch)
        self._trees[dst_edge] = tree
        self.trees_built += 1
        return tree

    # ------------------------------------------------------------------
    # provisioning
    # ------------------------------------------------------------------
    def provision(self, src_edge: str, dst_edge: str) -> ProvisionedRoute:
        """Provision one flow edge-to-edge along the destination tree.

        The path enters the core at the source-edge neighbor with the
        smallest ``(tree depth, name)`` and follows tree parents to the
        destination — hop-count shortest end to end (each core switch's
        tree branch is hop-minimal, and the entry choice minimizes over
        the source's options).

        Raises:
            RoutingError: same-edge flows, or no core path under the
                current topology.
        """
        if src_edge == dst_edge:
            raise RoutingError(
                f"flow endpoints share the edge {src_edge!r}; "
                f"no core route to provision"
            )
        tree = self.destination_tree(dst_edge)
        if self.graph.node(src_edge).kind != NodeKind.EDGE:
            raise RoutingError(f"{src_edge!r} is not an edge node")
        entries = [
            nb
            for nb in self.graph.neighbors(src_edge)
            if self.graph.node(nb).kind == NodeKind.CORE and nb in tree.depth
        ]
        if not entries:
            raise RoutingError(
                f"{src_edge!r} has no core neighbor that reaches "
                f"{dst_edge!r}"
            )
        entry = min(entries, key=lambda nb: (tree.depth[nb], nb))
        node_path = [src_edge] + tree.branch(entry)
        route = self.encoder.encode(hops_for_path(self.graph, node_path))
        return ProvisionedRoute(
            src_edge=src_edge,
            dst_edge=dst_edge,
            node_path=tuple(node_path),
            route=route,
            out_port=self.graph.port_of(src_edge, entry),
        )

    def provision_batch(
        self, pairs: Iterable[Tuple[str, str]]
    ) -> List[ProvisionedRoute]:
        """Provision many ``(src_edge, dst_edge)`` flows in one pass.

        Order-preserving; destination trees and CRT subset contexts are
        shared across the batch, which is where the amortization pays:
        the first flow to a destination builds its tree, every further
        flow reuses it.
        """
        return [self.provision(src, dst) for src, dst in pairs]

    # ------------------------------------------------------------------
    # failure-time updates
    # ------------------------------------------------------------------
    def reroute_hop(
        self, route: EncodedRoute, switch_name: str, new_next: str
    ) -> EncodedRoute:
        """Re-encode *route* with *switch_name* exiting toward *new_next*.

        The incremental single-addend update — see
        :func:`repro.controller.routing.delta_reencode_route`.
        """
        from repro.controller.routing import delta_reencode_route

        return delta_reencode_route(
            self.graph, route, switch_name, new_next, self.delta
        )

    # ------------------------------------------------------------------
    # protection
    # ------------------------------------------------------------------
    def protect(
        self,
        provisioned: ProvisionedRoute,
        budget_bits: Optional[int] = None,
    ) -> ProtectionPlan:
        """Protection plan for a provisioned route (memoized per epoch).

        Flows sharing a destination share tree branches, so their
        protection plans hit the planner's per-epoch cache.
        """
        core_route = [
            n
            for n in provisioned.node_path
            if self.graph.node(n).kind == NodeKind.CORE
        ]
        if budget_bits is None:
            return self.planner.full(core_route)
        return self.planner.partial(core_route, budget_bits)
