"""Driven-deflection protection planning.

Protection in KAR is a set of extra ``(switch, port)`` residues folded
into the route ID, forming a logical tree rooted at the destination
(Fig. 1b).  This module provides:

* :func:`segments_to_hops` — turn declarative
  :class:`~repro.topology.topologies.ProtectionSegment` lists (the
  paper's pinned scenarios) into encodable hops;
* :class:`ProtectionPlanner` — *automatic* planners that derive full or
  bit-budgeted partial protection for arbitrary topologies (the paper
  designs its protection by hand; the planner generalizes the same
  construction: cover every first-hop deflection candidate and chain it
  to the destination along a shortest-path tree).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.rns.bitlength import route_id_bit_length
from repro.rns.encoder import Hop
from repro.topology.graph import NodeKind, PortGraph
from repro.topology.topologies import ProtectionSegment

__all__ = [
    "segments_to_hops",
    "ProtectionPlanner",
    "CachedProtectionPlanner",
    "ProtectionPlan",
]


def segments_to_hops(
    graph: PortGraph, segments: Iterable[ProtectionSegment]
) -> List[Hop]:
    """Convert protection segments to hops using topology port numbers."""
    hops: List[Hop] = []
    for seg in segments:
        sid = graph.switch_id(seg.at)
        port = graph.port_of(seg.at, seg.to)
        hops.append(Hop(switch_id=sid, port=port))
    return hops


@dataclass(frozen=True)
class ProtectionPlan:
    """An automatically planned protection set.

    Attributes:
        segments: the driven-deflection segments, deterministic order.
        covered: first-hop deflection candidates covered by the plan.
        uncovered: candidates left out (empty for full protection unless
            disconnected or blocked by the one-residue constraint).
        bit_length: route-ID bits for primary route + this plan.
    """

    segments: Tuple[ProtectionSegment, ...]
    covered: Tuple[str, ...]
    uncovered: Tuple[str, ...]
    bit_length: int


class ProtectionPlanner:
    """Plans driven-deflection forwarding paths for a primary route.

    The construction mirrors the paper's hand-built trees:

    1. The *deflection candidates* are the core neighbours of the
       primary-route switches that are not themselves on the route —
       exactly the places a NIP/AVP deflection can land in one hop.
    2. Build a shortest-path tree (hop count) toward the destination
       switch over the core subgraph, excluding primary-route switches
       as intermediates (their residues are taken — KAR's one-residue
       constraint; reaching one means the packet simply resumes the
       primary route).
    3. For *full* protection, add the tree edges that chain every
       candidate to the destination (or to a primary-route switch).
       For *partial* protection, add candidates in order of usefulness
       until the route-ID bit budget is exhausted.
    """

    def __init__(self, graph: PortGraph):
        self.graph = graph

    # -- public API ------------------------------------------------------
    def deflection_candidates(self, route: Sequence[str]) -> List[str]:
        """Core neighbours of route switches that are off-route."""
        on_route = set(route)
        seen: Set[str] = set()
        out: List[str] = []
        for sw in route:
            for nb in self.graph.core_subgraph_neighbors(sw):
                if nb not in on_route and nb not in seen:
                    seen.add(nb)
                    out.append(nb)
        return out

    def full(self, route: Sequence[str]) -> ProtectionPlan:
        """Cover every deflection candidate (when reachable)."""
        return self._plan(route, budget_bits=None)

    def partial(self, route: Sequence[str], budget_bits: int) -> ProtectionPlan:
        """Cover candidates best-first within a route-ID bit budget."""
        if budget_bits < 1:
            raise ValueError(f"budget must be >= 1 bit, got {budget_bits}")
        return self._plan(route, budget_bits=budget_bits)

    # -- construction ------------------------------------------------------
    def _tree_parent(self, route: Sequence[str]) -> Dict[str, str]:
        """BFS parents toward the destination switch.

        ``parent[x]`` is x's next hop toward the destination.  The tree
        is rooted at the destination *only* and grows through off-route
        switches: a chain must not route through (or terminate at) an
        upstream route switch, whose residue may point straight back at
        the failed link.  This mirrors the paper's hand-built trees
        ("a logical tree with its root at destination ... has been
        built").
        """
        dst = route[-1]
        on_route = set(route)
        parent: Dict[str, str] = {}
        dist = {dst: 0}
        frontier = [dst]
        while frontier:
            nxt: List[str] = []
            for cur in frontier:
                for nb in self.graph.core_subgraph_neighbors(cur):
                    if nb in dist or nb in on_route:
                        continue
                    dist[nb] = dist[cur] + 1
                    parent[nb] = cur
                    nxt.append(nb)
            frontier = nxt
        return parent

    def _chain(
        self, start: str, parent: Dict[str, str], on_route: Set[str]
    ) -> Optional[List[ProtectionSegment]]:
        """Segments from *start* along the tree until home (route/dst)."""
        if start not in parent:
            return None
        segs: List[ProtectionSegment] = []
        cur = start
        while cur not in on_route:
            nxt = parent[cur]
            segs.append(ProtectionSegment(cur, nxt))
            cur = nxt
        return segs

    def _plan(
        self, route: Sequence[str], budget_bits: Optional[int]
    ) -> ProtectionPlan:
        if len(route) < 1:
            raise ValueError("route must contain at least one switch")
        on_route = set(route)
        parent = self._tree_parent(route)
        candidates = self.deflection_candidates(route)

        base_product = math.prod(self.graph.switch_id(sw) for sw in route)
        chosen: Dict[str, ProtectionSegment] = {}
        covered: List[str] = []
        uncovered: List[str] = []
        product = base_product

        # Candidates adjacent to *earlier* route switches first: a
        # failure early in the route strands the most traffic.
        for cand in candidates:
            chain = self._chain(cand, parent, on_route)
            if chain is None:
                uncovered.append(cand)
                continue
            new_segments = [s for s in chain if s.at not in chosen]
            extra = math.prod(
                self.graph.switch_id(s.at) for s in new_segments
            ) if new_segments else 1
            if budget_bits is not None and new_segments:
                if route_id_bit_length(product * extra) > budget_bits:
                    uncovered.append(cand)
                    continue
            for seg in new_segments:
                chosen[seg.at] = seg
            product *= extra
            covered.append(cand)

        return ProtectionPlan(
            segments=tuple(chosen.values()),
            covered=tuple(covered),
            uncovered=tuple(uncovered),
            bit_length=route_id_bit_length(product),
        )


class CachedProtectionPlanner(ProtectionPlanner):
    """A :class:`ProtectionPlanner` with per-topology-epoch memoization.

    Planning is a pure function of (topology, route, budget), and in a
    batch-provisioning pass the same inputs recur constantly: every flow
    to a destination that enters the core at the same switch shares the
    destination-tree branch, hence the same core route, hence the same
    protection tree and plan.  This subclass memoizes both levels:

    * the destination-rooted BFS parent map (:meth:`_tree_parent`),
      keyed by the route's (destination, on-route switch set) — the only
      inputs the tree construction reads;
    * the finished :class:`ProtectionPlan`, keyed by (route, budget) —
      plans are frozen dataclasses, safe to share between flows.

    The caches are valid for exactly one topology epoch.  Call
    :meth:`invalidate` after any topology change — a stale parent map
    would chain deflections along links that no longer exist.
    """

    def __init__(self, graph: PortGraph):
        super().__init__(graph)
        self.epoch = 0
        self._tree_cache: Dict[Tuple[str, frozenset], Dict[str, str]] = {}
        self._plan_cache: Dict[
            Tuple[Tuple[str, ...], Optional[int]], ProtectionPlan
        ] = {}
        self.tree_builds = 0
        self.tree_hits = 0
        self.plan_hits = 0

    def invalidate(self) -> None:
        """Drop all memoized trees/plans; call on topology change."""
        self.epoch += 1
        self._tree_cache.clear()
        self._plan_cache.clear()

    def _tree_parent(self, route: Sequence[str]) -> Dict[str, str]:
        key = (route[-1], frozenset(route))
        cached = self._tree_cache.get(key)
        if cached is not None:
            self.tree_hits += 1
            return cached
        parent = super()._tree_parent(route)
        self._tree_cache[key] = parent
        self.tree_builds += 1
        return parent

    def _plan(
        self, route: Sequence[str], budget_bits: Optional[int]
    ) -> ProtectionPlan:
        key = (tuple(route), budget_bits)
        cached = self._plan_cache.get(key)
        if cached is not None:
            self.plan_hits += 1
            return cached
        plan = super()._plan(route, budget_bits)
        self._plan_cache[key] = plan
        return plan
