"""Switch-ID assignment strategies.

The controller (or local setup) must give every core switch a unique ID
such that the ID set is pairwise coprime and each ID exceeds its
switch's port count.  Two strategies are provided and compared in the
``ablation_idassign`` benchmark:

* ``prime`` — consecutive primes.
* ``greedy`` — smallest pairwise-coprime integers (admits 4, 9, 25...),
  minimising route-ID bit growth (Eq. 9).
"""

from __future__ import annotations

from typing import Dict, List

from repro.rns.coprime import greedy_coprime_pool, min_id_for_ports, prime_pool

__all__ = ["assign_switch_ids", "AssignmentError"]


class AssignmentError(ValueError):
    """Raised when no valid assignment exists for the inputs."""


def _pool(strategy: str, size: int) -> List[int]:
    if strategy == "prime":
        return prime_pool(size, min_value=2)
    if strategy == "greedy":
        return greedy_coprime_pool(size, min_value=2)
    raise AssignmentError(
        f"unknown strategy {strategy!r}; use 'greedy' or 'prime'"
    )


def assign_switch_ids(
    degrees: Dict[str, int],
    strategy: str = "greedy",
) -> Dict[str, int]:
    """Assign pairwise-coprime IDs to switches given their port counts.

    Switches are processed in ascending degree order and each takes the
    smallest unused pool value that can address its ports, keeping the
    product of IDs — and therefore route-ID bit length (Eq. 9) — small.

    Args:
        degrees: switch name -> number of ports.
        strategy: ``"greedy"`` or ``"prime"``.

    Returns:
        switch name -> assigned ID; every ID > the switch's max port
        index and the set pairwise coprime.

    Raises:
        AssignmentError: on empty input, negative degrees, or an unknown
            strategy.
    """
    if not degrees:
        raise AssignmentError("no switches to assign IDs to")
    for name, deg in degrees.items():
        if deg < 0:
            raise AssignmentError(f"negative degree for {name!r}: {deg}")

    count = len(degrees)
    # Generate generously: some pool values may be skipped because they
    # are too small for high-degree switches.
    pool_size = count
    values = _pool(strategy, pool_size)
    by_degree = sorted(degrees, key=lambda n: (degrees[n], n))
    for _attempt in range(64):
        assignment: Dict[str, int] = {}
        available = sorted(values)
        feasible = True
        for name in by_degree:
            need = min_id_for_ports(degrees[name])
            pick = next((v for v in available if v >= need), None)
            if pick is None:
                feasible = False
                break
            available.remove(pick)
            assignment[name] = pick
        if feasible:
            return assignment
        pool_size += max(4, count // 2)
        values = _pool(strategy, pool_size)
    raise AssignmentError(
        "could not find a feasible coprime ID assignment "
        f"(max degree {max(degrees.values())})"
    )
