"""Switch-ID assignment strategies.

The controller (or local setup) must give every core switch a unique ID
such that the ID set is pairwise coprime and each ID exceeds its
switch's port count.  Four strategies are provided and compared in the
``ablation_idassign`` and ``bench encoding`` benchmarks:

* ``prime`` — consecutive primes.
* ``greedy`` — smallest pairwise-coprime integers (admits 4, 9, 25...),
  minimising route-ID bit growth (Eq. 9), processed in ascending degree
  order.
* ``weighted`` — header-bit-optimal assignment à la Hari/Niesen/Wilfong:
  same greedy coprime pool, but the **highest-traffic** switches take
  the smallest feasible IDs.  A route's header costs
  ``ceil(log2(prod ids - 1))`` bits, so the expected header bill is
  ``~ sum_s w_s · log2(id_s)`` where ``w_s`` counts provisioned routes
  through switch *s* — and by the rearrangement inequality that sum is
  minimised by pairing the largest weights with the smallest IDs the
  port constraint allows.  Weights come from
  :func:`route_frequency_weights` (or the caller); with no weights the
  switch degree stands in, which is the right proxy on shortest-path
  provisioning (hubs carry routes).
* ``xsr`` — *dual-coprime* assignment for the XSR (GF(2)[X]) backend:
  IDs are simultaneously pairwise coprime in Z (so
  :meth:`~repro.topology.graph.PortGraph.validate` keeps its invariant
  and the integer backends still work on the same graph) and pairwise
  coprime as binary polynomials, each with a remainder space covering
  the switch's ports.  Ordered by weight like ``weighted``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.rns.coprime import greedy_coprime_pool, min_id_for_ports, prime_pool
from repro.rns.gf2 import dual_coprime_pool, min_gf2_id_for_ports

__all__ = [
    "assign_switch_ids",
    "reassign_switch_ids",
    "route_frequency_weights",
    "ASSIGN_STRATEGIES",
    "AssignmentError",
]

#: All accepted ``strategy`` spellings, sorted — the CLI mirrors this
#: tuple literally and a test asserts they stay in sync.
ASSIGN_STRATEGIES = ("greedy", "prime", "weighted", "xsr")


class AssignmentError(ValueError):
    """Raised when no valid assignment exists for the inputs."""


def _pool(strategy: str, size: int) -> List[int]:
    if strategy == "prime":
        return prime_pool(size, min_value=2)
    if strategy in ("greedy", "weighted"):
        return greedy_coprime_pool(size, min_value=2)
    if strategy == "xsr":
        return dual_coprime_pool(size, min_value=2)
    raise AssignmentError(
        f"unknown strategy {strategy!r}; use one of {list(ASSIGN_STRATEGIES)}"
    )


def _min_id(strategy: str, port_count: int) -> int:
    need = min_id_for_ports(port_count)
    if strategy == "xsr":
        # The polynomial remainder space must also cover every port.
        need = max(need, min_gf2_id_for_ports(port_count))
    return need


def assign_switch_ids(
    degrees: Dict[str, int],
    strategy: str = "greedy",
    weights: Optional[Mapping[str, float]] = None,
) -> Dict[str, int]:
    """Assign pairwise-coprime IDs to switches given their port counts.

    With ``greedy``/``prime`` (and no *weights*), switches are processed
    in ascending degree order and each takes the smallest unused pool
    value that can address its ports — the historical baseline.  With
    ``weighted``/``xsr`` (or whenever *weights* is given), switches are
    processed in **descending weight** order instead, so the switches
    that appear in the most routes get the smallest IDs the feasibility
    constraint allows (see the module docstring for why that is the
    bit-optimal pairing).

    Args:
        degrees: switch name -> number of ports.
        strategy: one of :data:`ASSIGN_STRATEGIES`.
        weights: optional switch name -> traffic weight (e.g. from
            :func:`route_frequency_weights`).  Missing names weigh 0.
            Defaults to *degrees* for the weight-ordered strategies.

    Returns:
        switch name -> assigned ID; every ID > the switch's max port
        index and the set pairwise coprime (for ``xsr``: in both rings).

    Raises:
        AssignmentError: on empty input, negative degrees, or an unknown
            strategy.
    """
    if not degrees:
        raise AssignmentError("no switches to assign IDs to")
    for name, deg in degrees.items():
        if deg < 0:
            raise AssignmentError(f"negative degree for {name!r}: {deg}")
    if strategy not in ASSIGN_STRATEGIES:
        raise AssignmentError(
            f"unknown strategy {strategy!r}; use one of {list(ASSIGN_STRATEGIES)}"
        )

    if weights is None and strategy in ("weighted", "xsr"):
        weights = {name: float(deg) for name, deg in degrees.items()}
    if weights is not None:
        # Heaviest first; ties broken like the baseline for determinism.
        order = sorted(
            degrees,
            key=lambda n: (-float(weights.get(n, 0.0)), degrees[n], n),
        )
    else:
        order = sorted(degrees, key=lambda n: (degrees[n], n))

    count = len(degrees)
    # Generate generously: some pool values may be skipped because they
    # are too small for high-degree switches.
    pool_size = count
    values = _pool(strategy, pool_size)
    for _attempt in range(64):
        assignment: Dict[str, int] = {}
        available = sorted(values)
        feasible = True
        for name in order:
            need = _min_id(strategy, degrees[name])
            pick = next((v for v in available if v >= need), None)
            if pick is None:
                feasible = False
                break
            available.remove(pick)
            assignment[name] = pick
        if feasible:
            return assignment
        pool_size += max(4, count // 2)
        values = _pool(strategy, pool_size)
    raise AssignmentError(
        "could not find a feasible coprime ID assignment "
        f"(max degree {max(degrees.values())})"
    )


def route_frequency_weights(graph) -> Dict[str, float]:
    """Per-switch provisioned-route frequency over shortest-path trees.

    For every destination switch, a deterministic BFS predecessor tree
    gives the route each source would be provisioned with; a switch's
    weight is the number of (source, destination) routes whose path
    contains it.  Computed by subtree counting — one BFS per
    destination, O(N·(N+E)) total — so it is exact for single-shortest-
    path provisioning and a faithful proxy for the repo's bulk
    provisioner (which builds the same per-destination down-trees).

    Hosts are skipped (they terminate routes, they don't forward).
    Returns a weight for every non-host node; callers that only assign
    core IDs simply ignore the edge entries.
    """
    names = sorted(
        n.name for n in graph.nodes() if n.kind != "host"
    )
    name_set = set(names)
    weights: Dict[str, float] = {n: 0.0 for n in names}
    for dst in names:
        parent: Dict[str, Optional[str]] = {dst: None}
        order: List[str] = [dst]
        head = 0
        while head < len(order):
            cur = order[head]
            head += 1
            for nb in sorted(graph.neighbors(cur)):
                if nb in name_set and nb not in parent:
                    parent[nb] = cur
                    order.append(nb)
        counts = {n: 1 for n in order}
        for node in reversed(order[1:]):
            counts[parent[node]] += counts[node]  # type: ignore[index]
        for node, c in counts.items():
            weights[node] += float(c)
    return weights


def reassign_switch_ids(
    graph,
    strategy: str = "weighted",
    weights: Optional[Mapping[str, float]] = None,
) -> Dict[str, int]:
    """Re-plan the core switch IDs of an already-built topology in place.

    Used when a graph built with one strategy must serve another backend
    or a better assignment: e.g. re-IDing a paper scenario with
    ``strategy="xsr"`` before running it through the XSR datapath, or
    re-IDing a zoo graph with ``strategy="weighted"`` and
    :func:`route_frequency_weights` once the traffic matrix is known
    (IDs are a control-plane planning output, so this is exactly the
    controller's re-provisioning step, not a hack).

    Degrees are taken from the built graph's port counts.  The new
    assignment is validated through ``graph.validate()`` before
    returning; on failure the original IDs are restored.

    Returns the new name -> ID mapping (cores only).
    """
    cores = [n for n in graph.nodes() if n.kind == "core"]
    if not cores:
        raise AssignmentError("graph has no core switches to re-ID")
    degrees = {n.name: n.degree for n in cores}
    if weights is None and strategy in ("weighted", "xsr"):
        freq = route_frequency_weights(graph)
        weights = {name: freq.get(name, 0.0) for name in degrees}
    assignment = assign_switch_ids(degrees, strategy=strategy, weights=weights)
    previous = {n.name: n.switch_id for n in cores}
    for n in cores:
        n.switch_id = assignment[n.name]
    try:
        graph.validate()
    except Exception:
        for n in cores:
            n.switch_id = previous[n.name]
        raise
    return assignment
