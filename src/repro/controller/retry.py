"""Retry policy for edge→controller requests.

The seed code assumed the controller always answers; under chaos
(:class:`~repro.sim.chaos.ControllerOutageChaos`) it does not.  An edge
RPC now follows the standard degradation discipline: wait *timeout_s*
for the response, retry with exponentially growing, jittered backoff,
and give up after *max_attempts* with an explicit drop reason.

Jitter draws come from the caller's named RNG stream, so retry timing
is bit-reproducible under a fixed seed (a property the unit tests pin
down) and does not perturb any other component's stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + bounded exponential backoff with jitter.

    Attributes:
        timeout_s: how long one request waits before it is declared
            lost (an unreachable controller never answers).
        max_attempts: total tries, the first included; the packet is
            dropped with reason ``reencode-unreachable`` when the last
            attempt times out.
        base_backoff_s: wait after the first timeout.
        multiplier: growth factor per further attempt.
        max_backoff_s: cap on the (pre-jitter) wait.
        jitter_frac: each wait is stretched by ``[0, jitter_frac)`` of
            itself, drawn from the caller's stream — desynchronizing
            retries from different edges after a shared outage.
    """

    timeout_s: float = 0.02
    max_attempts: int = 4
    base_backoff_s: float = 0.01
    multiplier: float = 2.0
    max_backoff_s: float = 0.25
    jitter_frac: float = 0.5

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout_s}")
        if self.max_attempts < 1:
            raise ValueError(
                f"need at least one attempt, got {self.max_attempts}"
            )
        if self.base_backoff_s <= 0:
            raise ValueError(
                f"base backoff must be positive, got {self.base_backoff_s}"
            )
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError(
                f"max backoff {self.max_backoff_s} below base "
                f"{self.base_backoff_s}"
            )
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError(
                f"jitter fraction must be in [0, 1], got {self.jitter_frac}"
            )

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Wait before retry number *attempt* (1 = first retry)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(
            self.base_backoff_s * self.multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        return base * (1.0 + self.jitter_frac * rng.random())

    def schedule(self, rng: random.Random) -> List[float]:
        """The full wait sequence one request would experience.

        ``max_attempts`` timeout waits interleaved with the backoff
        waits between attempts — useful for tests and capacity
        planning (worst-case added latency before the drop).
        """
        waits = [self.timeout_s]
        for attempt in range(1, self.max_attempts):
            waits.append(self.backoff_s(attempt, rng))
            waits.append(self.timeout_s)
        return waits

    def worst_case_s(self) -> float:
        """Upper bound on time-to-drop (max jitter on every wait)."""
        total = self.timeout_s * self.max_attempts
        for attempt in range(1, self.max_attempts):
            base = min(
                self.base_backoff_s * self.multiplier ** (attempt - 1),
                self.max_backoff_s,
            )
            total += base * (1.0 + self.jitter_frac)
        return total


DEFAULT_RETRY_POLICY = RetryPolicy()
