"""Retry policy and delta-patched serving for edge→controller requests.

The seed code assumed the controller always answers; under chaos
(:class:`~repro.sim.chaos.ControllerOutageChaos`) it does not.  An edge
RPC now follows the standard degradation discipline: wait *timeout_s*
for the response, retry with exponentially growing, jittered backoff,
and give up after *max_attempts* with an explicit drop reason.

Jitter draws come from the caller's named RNG stream, so retry timing
is bit-reproducible under a fixed seed (a property the unit tests pin
down) and does not perturb any other component's stream.

:class:`DeltaReencodeService` closes the loop on the *cost* of those
retried requests: it fronts any re-encode service with a served-entry
cache that is patched **incrementally** when a switch's output port
changes — one CRT addend per affected route
(:class:`~repro.rns.pool.ReencodeDelta`) instead of a fresh solve per
(edge, destination) pair.  Under link churn, the retry storm hits the
patched cache, not the solver.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.rns.encoder import EncodedRoute, Hop
from repro.rns.pool import ReencodeDelta
from repro.switches.edge import IngressEntry, ReencodeService

__all__ = [
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "DeltaReencodeService",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + bounded exponential backoff with jitter.

    Attributes:
        timeout_s: how long one request waits before it is declared
            lost (an unreachable controller never answers).
        max_attempts: total tries, the first included; the packet is
            dropped with reason ``reencode-unreachable`` when the last
            attempt times out.
        base_backoff_s: wait after the first timeout.
        multiplier: growth factor per further attempt.
        max_backoff_s: cap on the (pre-jitter) wait.
        jitter_frac: each wait is stretched by ``[0, jitter_frac)`` of
            itself, drawn from the caller's stream — desynchronizing
            retries from different edges after a shared outage.
    """

    timeout_s: float = 0.02
    max_attempts: int = 4
    base_backoff_s: float = 0.01
    multiplier: float = 2.0
    max_backoff_s: float = 0.25
    jitter_frac: float = 0.5

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout_s}")
        if self.max_attempts < 1:
            raise ValueError(
                f"need at least one attempt, got {self.max_attempts}"
            )
        if self.base_backoff_s <= 0:
            raise ValueError(
                f"base backoff must be positive, got {self.base_backoff_s}"
            )
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError(
                f"max backoff {self.max_backoff_s} below base "
                f"{self.base_backoff_s}"
            )
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError(
                f"jitter fraction must be in [0, 1], got {self.jitter_frac}"
            )

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Wait before retry number *attempt* (1 = first retry)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(
            self.base_backoff_s * self.multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        return base * (1.0 + self.jitter_frac * rng.random())

    def schedule(self, rng: random.Random) -> List[float]:
        """The full wait sequence one request would experience.

        ``max_attempts`` timeout waits interleaved with the backoff
        waits between attempts — useful for tests and capacity
        planning (worst-case added latency before the drop).
        """
        waits = [self.timeout_s]
        for attempt in range(1, self.max_attempts):
            waits.append(self.backoff_s(attempt, rng))
            waits.append(self.timeout_s)
        return waits

    def worst_case_s(self) -> float:
        """Upper bound on time-to-drop (max jitter on every wait)."""
        total = self.timeout_s * self.max_attempts
        for attempt in range(1, self.max_attempts):
            base = min(
                self.base_backoff_s * self.multiplier ** (attempt - 1),
                self.max_backoff_s,
            )
            total += base * (1.0 + self.jitter_frac)
        return total


DEFAULT_RETRY_POLICY = RetryPolicy()


class DeltaReencodeService:
    """A :class:`~repro.switches.edge.ReencodeService` with delta patching.

    Wraps an inner service (typically
    :class:`~repro.controller.controller.KarController`) and keeps every
    entry it has served.  When the control plane learns that one
    switch's output port changed (:meth:`note_port_change`), every
    served entry encoding that switch is patched in place with a
    single-addend CRT update — ``R' = <R + (p' − p) · M_i L_i>_M`` via
    :class:`~repro.rns.pool.ReencodeDelta` — instead of recomputing one
    route per (edge, destination) pair.  Edges keep calling
    :meth:`reencode` as before and observe the patched entries.

    Entries served without a residue hint cannot be patched (there is no
    hop set to delta against); they are dropped from the cache on the
    next port change and re-fetched from the inner service.

    Counters:
        delta_updates: entries patched incrementally.
        served_local: requests answered from the patched cache.
        served_inner: requests forwarded to the inner service.
    """

    def __init__(self, inner: ReencodeService, delta: ReencodeDelta):
        self.inner = inner
        self.delta = delta
        self._served: Dict[Tuple[str, str], Optional[IngressEntry]] = {}
        self.delta_updates = 0
        self.served_local = 0
        self.served_inner = 0

    # -- ReencodeService protocol --------------------------------------
    @property
    def control_rtt_s(self) -> float:
        return self.inner.control_rtt_s

    @property
    def reachable(self) -> bool:
        return self.inner.reachable

    def reencode(self, edge_name: str, dst_host: str) -> Optional[IngressEntry]:
        key = (edge_name, dst_host)
        if key in self._served:
            self.served_local += 1
            return self._served[key]
        entry = self.inner.reencode(edge_name, dst_host)
        self._served[key] = entry
        self.served_inner += 1
        return entry

    # -- delta patching ------------------------------------------------
    def note_port_change(self, switch_id: int, new_port: int) -> int:
        """Patch every served entry that encodes *switch_id*.

        Returns the number of entries updated.  Identity changes (the
        entry already uses *new_port*) are left untouched.
        """
        patched = 0
        for key, entry in list(self._served.items()):
            if entry is None or not entry.residues:
                if entry is not None:
                    # No residue hint: cannot delta; refetch next time.
                    del self._served[key]
                continue
            old_port = entry.residues.get(switch_id)
            if old_port is None or old_port == new_port:
                continue
            route = EncodedRoute(
                route_id=entry.route_id,
                modulus=entry.modulus,
                hops=tuple(
                    Hop(s, p) for s, p in sorted(entry.residues.items())
                ),
            )
            updated = self.delta.apply(route, switch_id, new_port)
            self._served[key] = dataclasses.replace(
                entry,
                route_id=updated.route_id,
                residues=updated.residue_map(),
            )
            self.delta_updates += 1
            patched += 1
        return patched

    def invalidate(self) -> None:
        """Forget every served entry (e.g. on a topology epoch change)."""
        self._served.clear()
