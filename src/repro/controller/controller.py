"""The KAR network controller.

The controller plays the three roles named in the paper:

1. **Switch-ID handling** — validated at topology construction (or
   planned via :mod:`repro.controller.idassign` for generated graphs).
2. **Routing decisions** — computing route IDs for flows: the primary
   path hops plus any driven-deflection protection hops, via the RNS
   encoder.
3. **Re-encoding for stray packets** — an edge that receives a packet
   it does not serve asks the controller for a fresh route ID from
   itself to the destination (Section 2.1's second approach, the one
   the paper evaluates).  The re-encode is served after a configurable
   control-plane RTT.

Per the paper's experimental method, the controller *ignores failure
notifications* — deflection, not control-plane repair, is the failure
response being measured.  A repair baseline that does react lives in
:mod:`repro.baselines.repair`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.controller.protection import segments_to_hops
from repro.controller.routing import core_path_between_edges, encode_node_path
from repro.rns.encoder import EncodedRoute, RouteEncoder
from repro.sim.network import Network
from repro.sim.packet import DEFAULT_TTL
from repro.switches.edge import EdgeNode, IngressEntry
from repro.topology.graph import PortGraph, TopologyError
from repro.topology.topologies import ProtectionSegment

__all__ = ["KarController"]


class KarController:
    """Centralized route computation + re-encode service.

    Args:
        graph: the full topology (the controller "knows the entire
            network topology, including the Switch IDs").
        control_rtt_s: latency of one edge-to-controller round trip,
            charged to every misdelivery re-encode.
        default_ttl: hop budget stamped on encapsulated packets.
    """

    def __init__(
        self,
        graph: PortGraph,
        control_rtt_s: float = 0.005,
        default_ttl: int = DEFAULT_TTL,
        encoder: Optional[RouteEncoder] = None,
    ):
        self.graph = graph
        self._control_rtt_s = control_rtt_s
        self.default_ttl = default_ttl
        self.encoder = encoder or RouteEncoder()
        self._reencode_cache: Dict[Tuple[str, str], Optional[IngressEntry]] = {}
        self.reencodes_served = 0
        self._reachable = True
        self.outages = 0

    # ------------------------------------------------------------------
    # ReencodeService protocol (used by EdgeNode)
    # ------------------------------------------------------------------
    @property
    def control_rtt_s(self) -> float:
        return self._control_rtt_s

    @property
    def reachable(self) -> bool:
        """Whether the re-encode service currently answers requests.

        Chaos injectors (:class:`~repro.sim.chaos.ControllerOutageChaos`)
        toggle this; edges observe an unreachable controller as a
        request timeout and enter their retry/backoff path.
        """
        return self._reachable

    def set_reachable(self, up: bool) -> None:
        if not up and self._reachable:
            self.outages += 1
        self._reachable = up

    def reencode(self, edge_name: str, dst_host: str) -> Optional[IngressEntry]:
        """Best-path route ID from *edge_name* to *dst_host*'s edge.

        Deterministic, so results are cached.  The controller ignores
        link failures here (it ignores failure notifications during the
        experiments), so a re-encoded route may well traverse the failed
        link again and deflect again — faithful to the prototype.
        """
        key = (edge_name, dst_host)
        if key not in self._reencode_cache:
            self._reencode_cache[key] = self._compute_entry(edge_name, dst_host)
        self.reencodes_served += 1
        return self._reencode_cache[key]

    def _compute_entry(
        self, edge_name: str, dst_host: str
    ) -> Optional[IngressEntry]:
        try:
            dst_edge = self.graph.edge_of_host(dst_host)
            node_path = core_path_between_edges(self.graph, edge_name, dst_edge)
            route = encode_node_path(self.graph, node_path, encoder=self.encoder)
        except TopologyError:
            # Unknown host or no path: no entry (the edge will drop).
            return None
        out_port = self.graph.port_of(edge_name, node_path[1])
        return IngressEntry(
            route_id=route.route_id,
            modulus=route.modulus,
            out_port=out_port,
            ttl=self.default_ttl,
            residues=route.residue_map(),
        )

    # ------------------------------------------------------------------
    # Flow installation
    # ------------------------------------------------------------------
    def encode_route(
        self,
        src_edge: str,
        core_path: Sequence[str],
        dst_edge: str,
        protection: Iterable[ProtectionSegment] = (),
    ) -> EncodedRoute:
        """Encode an explicit core path (plus protection) edge-to-edge."""
        node_path = [src_edge, *core_path, dst_edge]
        extra = segments_to_hops(self.graph, protection)
        return encode_node_path(
            self.graph, node_path, extra_hops=extra, encoder=self.encoder
        )

    def install_flow(
        self,
        network: Network,
        src_host: str,
        dst_host: str,
        core_path: Optional[Sequence[str]] = None,
        protection: Iterable[ProtectionSegment] = (),
        reverse_protection: Iterable[ProtectionSegment] = (),
        reverse_core_path: Optional[Sequence[str]] = None,
    ) -> Tuple[EncodedRoute, EncodedRoute]:
        """Install forward and reverse routes for a host pair.

        The forward direction uses *core_path* (or the shortest path)
        plus *protection*.  The reverse direction — needed by TCP ACKs —
        uses *reverse_core_path* (or the forward path reversed) plus
        *reverse_protection* (empty by default: the paper protects the
        measured direction only; deflection still shields the ACK
        stream).

        Returns:
            (forward_route, reverse_route) as encoded routes.
        """
        src_edge = self.graph.edge_of_host(src_host)
        dst_edge = self.graph.edge_of_host(dst_host)
        if core_path is None:
            node_path = core_path_between_edges(self.graph, src_edge, dst_edge)
            core_path = node_path[1:-1]
        if reverse_core_path is None:
            reverse_core_path = list(reversed(core_path))

        forward = self.encode_route(src_edge, core_path, dst_edge, protection)
        reverse = self.encode_route(
            dst_edge, reverse_core_path, src_edge, reverse_protection
        )

        self._install_entry(network, src_edge, dst_host, core_path[0], forward)
        self._install_entry(
            network, dst_edge, src_host, reverse_core_path[0], reverse
        )
        return forward, reverse

    def _install_entry(
        self,
        network: Network,
        edge_name: str,
        dst_host: str,
        first_switch: str,
        route: EncodedRoute,
    ) -> None:
        edge = network.node(edge_name)
        if not isinstance(edge, EdgeNode):
            raise TypeError(f"{edge_name!r} is not an EdgeNode")
        edge.install_ingress(
            dst_host,
            IngressEntry(
                route_id=route.route_id,
                modulus=route.modulus,
                out_port=self.graph.port_of(edge_name, first_switch),
                ttl=self.default_ttl,
                residues=route.residue_map(),
            ),
        )
