"""Constant-rate datagram probe (UDP-like).

A lightweight, congestion-oblivious traffic source used for
delivery-ratio, hop-count and path-coverage measurements: unlike TCP,
it keeps transmitting through failures, so every packet's fate
(delivered / dropped / wandering) is directly observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.transport.host import Host

__all__ = ["UdpDatagram", "UdpSource", "UdpSink"]

UDP_HEADER_BYTES = 50


@dataclass(slots=True)
class UdpDatagram:
    flow_id: str
    seq: int
    sent_at: float


class UdpSource:
    """Sends fixed-size datagrams at a constant rate for a duration."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst_host: str,
        flow_id: str,
        rate_pps: float,
        payload_bytes: int = 1400,
        duration_s: Optional[float] = None,
    ):
        if rate_pps <= 0:
            raise ValueError(f"rate must be positive, got {rate_pps}")
        self.sim = sim
        self.host = host
        self.dst_host = dst_host
        self.flow_id = flow_id
        self.interval = 1.0 / rate_pps
        self.payload_bytes = payload_bytes
        self.duration_s = duration_s
        self.sent = 0
        self._stop_at: Optional[float] = None
        self._running = False
        # Sources never receive, but register so stray packets are counted
        # at the host rather than warned about.
        host.register(flow_id, self)

    def on_packet(self, packet: Packet) -> None:  # pragma: no cover - sink side
        pass

    def start(self, at: Optional[float] = None) -> None:
        if self._running:
            raise RuntimeError(f"probe {self.flow_id!r} already started")
        self._running = True
        start_time = self.sim.now if at is None else at
        if self.duration_s is not None:
            self._stop_at = start_time + self.duration_s
        if at is None or at <= self.sim.now:
            self._tick()
        else:
            self.sim.post_at(at, self._tick)

    def _tick(self) -> None:
        if self._stop_at is not None and self.sim.now >= self._stop_at:
            return
        datagram = UdpDatagram(
            flow_id=self.flow_id, seq=self.sent, sent_at=self.sim.now
        )
        self.host.inject(
            Packet(
                src_host=self.host.name,
                dst_host=self.dst_host,
                size_bytes=self.payload_bytes + UDP_HEADER_BYTES,
                payload=datagram,
                created_at=self.sim.now,
            )
        )
        self.sent += 1
        # Tick events are never cancelled (the stop check is at the top),
        # so they take the engine's handle-free post() path.
        self.sim.post(self.interval, self._tick)


class UdpSink:
    """Counts and time-stamps datagram arrivals."""

    def __init__(self, sim: Simulator, host: Host, flow_id: str):
        self.sim = sim
        self.received = 0
        self.arrivals: List[Tuple[float, int, float, int]] = []
        # (arrival_time, seq, one_way_delay, hops)
        host.register(flow_id, self)

    def on_packet(self, packet: Packet) -> None:
        datagram = packet.payload
        if not isinstance(datagram, UdpDatagram):
            return
        self.received += 1
        self.arrivals.append(
            (self.sim.now, datagram.seq,
             self.sim.now - datagram.sent_at, packet.hops)
        )

    def delivery_ratio(self, sent: int) -> float:
        if sent == 0:
            return 0.0
        return self.received / sent

    def mean_delay(self) -> Optional[float]:
        if not self.arrivals:
            return None
        return sum(a[2] for a in self.arrivals) / len(self.arrivals)

    def mean_hops(self) -> Optional[float]:
        if not self.arrivals:
            return None
        return sum(a[3] for a in self.arrivals) / len(self.arrivals)

    def sequences(self) -> List[int]:
        return [a[1] for a in self.arrivals]
