"""CUBIC congestion control (RFC 8312 flavour).

The paper's Mininet hosts ran Linux, whose default congestion control
is CUBIC, not Reno.  This subclass plugs the CUBIC window law into the
Reno/NewReno machinery of :class:`~repro.transport.tcp.TcpSender`
(loss detection, recovery, Eifel, RTO are shared), enabling the
``ablation_tcp_variants`` benchmark: does the paper's measured
deflection cost depend on the congestion-control flavour?

Implemented per RFC 8312:

* window growth ``W(t) = C (t - K)^3 + W_max`` with
  ``K = ((W_max (1 - beta)) / C)^(1/3)``,
* multiplicative decrease by ``beta = 0.7``,
* fast convergence (shrink the remembered ``W_max`` when a flow backs
  off twice in a row below its previous peak),
* TCP-friendly region (never slower than Reno's AIMD estimate).

Windows are computed in segments (as in the RFC) and stored in bytes.
"""

from __future__ import annotations

from typing import Optional

from repro.transport.tcp import TcpSender

__all__ = ["CubicTcpSender"]


class CubicTcpSender(TcpSender):
    """TCP sender with CUBIC congestion avoidance."""

    #: RFC 8312 constants.
    C = 0.4
    BETA = 0.7

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._w_max = 0.0             # segments, last pre-backoff window
        self._epoch_start: Optional[float] = None
        self._k = 0.0
        self._ack_count = 0           # for the TCP-friendly estimate
        self._w_est = 0.0

    # ------------------------------------------------------------------
    # congestion-control hooks
    # ------------------------------------------------------------------
    def _grow_cwnd(self, newly: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += min(newly, self.mss)   # slow start, as Reno
            return
        now = self.sim.now
        cwnd_seg = self.cwnd / self.mss
        if self._epoch_start is None:
            self._epoch_start = now
            self._ack_count = 0
            if self._w_max < cwnd_seg:
                self._w_max = cwnd_seg
            self._k = ((self._w_max * (1.0 - self.BETA)) / self.C) ** (1 / 3)
            self._w_est = cwnd_seg
        t = now - self._epoch_start
        rtt = self.srtt if self.srtt is not None else 0.01
        # Cubic target one RTT ahead.
        target = self.C * (t + rtt - self._k) ** 3 + self._w_max
        # TCP-friendly region (RFC 8312 §4.2): Reno-equivalent estimate.
        self._ack_count += 1
        self._w_est += 3.0 * (1.0 - self.BETA) / (1.0 + self.BETA) / cwnd_seg
        target = max(target, self._w_est)
        if target > cwnd_seg:
            # Spread the increase over the ACKs of one window.
            increment = (target - cwnd_seg) / cwnd_seg
            self.cwnd += min(increment, 1.0) * self.mss
        else:
            # Plateau region: creep slowly (RFC: 1% of cwnd per RTT).
            self.cwnd += 0.01 * self.mss

    def _loss_backoff(self) -> float:
        cwnd_seg = self.cwnd / self.mss
        if cwnd_seg < self._w_max:
            # Fast convergence: release bandwidth for newcomers.
            self._w_max = cwnd_seg * (1.0 + self.BETA) / 2.0
        else:
            self._w_max = cwnd_seg
        self._epoch_start = None
        return max(self.cwnd * self.BETA, 2.0 * self.mss)
