"""End hosts.

A host is a single-port node hanging off an edge.  It demultiplexes
received packets to registered transport endpoints by flow ID and
injects packets from its transports into the network.  Hosts know
nothing about KAR — route IDs are attached/stripped by the edge, so the
"host protocol" stays decoupled exactly as the paper requires.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from repro.sim.engine import Simulator
from repro.sim.node import Node
from repro.sim.packet import Packet

__all__ = ["Host", "TransportEndpoint"]


class TransportEndpoint(Protocol):
    """Anything that can consume packets delivered to a host."""

    def on_packet(self, packet: Packet) -> None: ...


class Host(Node):
    """A single-homed end host."""

    def __init__(self, name: str, sim: Simulator, num_ports: int = 1):
        super().__init__(name, sim, num_ports)
        self._endpoints: Dict[str, TransportEndpoint] = {}
        self.rx_packets = 0
        self.tx_packets = 0
        self.unmatched = 0

    def register(self, flow_id: str, endpoint: TransportEndpoint) -> None:
        """Attach a transport endpoint to *flow_id*."""
        if flow_id in self._endpoints:
            raise ValueError(f"{self.name}: flow {flow_id!r} already registered")
        self._endpoints[flow_id] = endpoint

    def inject(self, packet: Packet) -> bool:
        """Send a packet from this host into the network (port 0)."""
        packet.src_host = self.name
        self.tx_packets += 1
        return self.send(0, packet)

    def receive(self, packet: Packet, in_port: int) -> None:
        self.rx_packets += 1
        flow_id = getattr(packet.payload, "flow_id", None)
        endpoint = self._endpoints.get(flow_id) if flow_id else None
        if endpoint is None:
            self.unmatched += 1
            return
        endpoint.on_packet(packet)
