"""Packet-reordering metrics (RFC 4737 style).

The paper's central performance observation is that deflection bounds
*packet disordering* and hence the TCP throughput hit.  These metrics
quantify disorder from a receiver's arrival log:

* **reordered ratio** — fraction of arrivals whose sequence number is
  smaller than one already seen (Type-P-Reordered),
* **displacement histogram** — how far (in arrival positions) reordered
  packets land from where they should have,
* **dup-ACK pressure** — arrivals that would generate duplicate ACKs at
  a cumulative-ACK receiver; the direct cause of spurious fast
  retransmits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["ReorderingReport", "analyze_sequences", "analyze_arrivals"]


@dataclass(frozen=True)
class ReorderingReport:
    """Summary of reordering in one arrival sequence."""

    total: int
    reordered: int
    max_displacement: int
    mean_displacement: float
    dupack_events: int

    @property
    def reordered_ratio(self) -> float:
        return self.reordered / self.total if self.total else 0.0

    def describe(self) -> str:
        return (
            f"{self.reordered}/{self.total} reordered "
            f"({100 * self.reordered_ratio:.2f}%), "
            f"max displacement {self.max_displacement}, "
            f"{self.dupack_events} dup-ack events"
        )


def analyze_sequences(sequences: Sequence[int]) -> ReorderingReport:
    """Compute reordering metrics from sequence numbers in arrival order.

    Sequence numbers may be packet indexes (UDP probe) or byte offsets
    (TCP); only their relative order matters.  Duplicates (retransmitted
    data) are treated as in-order arrivals of old data and do not count
    as reordering.
    """
    total = len(sequences)
    reordered = 0
    displacements: List[int] = []
    dupack_events = 0

    max_seen = None
    # Position where each sequence *should* have arrived: its rank order.
    rank = {s: i for i, s in enumerate(sorted(set(sequences)))}
    for position, seq in enumerate(sequences):
        if max_seen is not None and seq < max_seen:
            reordered += 1
            # Displacement: how many later-rank packets arrived first.
            displacements.append(max(position - rank[seq], 0))
            dupack_events += 1
        if max_seen is None or seq > max_seen:
            max_seen = seq

    mean_disp = sum(displacements) / len(displacements) if displacements else 0.0
    return ReorderingReport(
        total=total,
        reordered=reordered,
        max_displacement=max(displacements) if displacements else 0,
        mean_displacement=mean_disp,
        dupack_events=dupack_events,
    )


def analyze_arrivals(arrivals: Sequence[Tuple[float, int]]) -> ReorderingReport:
    """Convenience: (time, seq) pairs — e.g. ``TcpReceiver.arrivals``."""
    return analyze_sequences([seq for _, seq in arrivals])
