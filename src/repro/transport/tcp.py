"""TCP Reno/NewReno transport over the simulated network.

This is the measurement instrument of the reproduction: the paper's
results are *TCP throughput under deflection-induced reordering*, and
the mechanism that converts reordering into throughput loss is TCP's
congestion control — duplicate ACKs from out-of-order arrivals trigger
spurious fast retransmits and window reductions.  We implement:

* slow start / congestion avoidance (byte-counted),
* fast retransmit on 3 duplicate ACKs + NewReno fast recovery with
  partial-ACK retransmission,
* RTO estimation (SRTT/RTTVAR, RFC 6298 style) with Karn's rule and
  exponential backoff,
* a cumulative-ACK receiver with an out-of-order reassembly buffer that
  logs every arrival for reordering analysis.

Sizes are in bytes; sequence numbers start at 0 and count payload bytes.
The connection is modeled as pre-established (no SYN/FIN handshakes —
iperf measurements in the paper run long enough that setup is noise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import EventHandle, Simulator
from repro.sim.packet import Packet
from repro.transport.host import Host

__all__ = ["TcpSegment", "TcpSender", "TcpReceiver", "TCP_HEADER_BYTES"]

#: Bytes of combined framing per segment: L2 + IP + TCP + the KAR shim.
#: (Table 1 routes need at most 43 bits, comfortably inside 8 bytes.)
TCP_HEADER_BYTES = 66


@dataclass
class TcpSegment:
    """A TCP segment payload (data or pure ACK).

    ``ts`` / ``ts_echo`` model the RFC 7323 timestamp option: data
    segments carry their send time, ACKs echo the timestamp of the
    segment that triggered them.  The sender's Eifel detection compares
    the echo against its retransmit time to recognise spurious fast
    retransmits caused by reordering.
    """

    flow_id: str
    seq: int = 0
    length: int = 0
    ack: int = 0
    is_ack: bool = False
    ts: float = 0.0
    ts_echo: float = 0.0


class TcpSender:
    """Bulk-data TCP Reno/NewReno sender (the iperf client).

    Args:
        sim: event engine.
        host: local host node (packets are injected here).
        dst_host: destination host name.
        flow_id: flow identifier shared with the receiver.
        mss: maximum segment size (payload bytes).
        rwnd: receiver window we assume (bytes) — static.
        min_rto / initial_rto: RTO clamps, seconds.
        max_data: stop after this many payload bytes (None = unlimited).
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst_host: str,
        flow_id: str,
        mss: int = 1400,
        rwnd: int = 262144,
        min_rto: float = 0.2,
        initial_rto: float = 0.5,
        max_rto: float = 60.0,
        dupack_threshold: int = 3,
        max_dupack_threshold: int = 12,
        reorder_adaptation: bool = True,
        initial_ssthresh: Optional[float] = 65536.0,
        max_data: Optional[int] = None,
    ):
        if mss <= 0:
            raise ValueError(f"mss must be positive, got {mss}")
        self.sim = sim
        self.host = host
        self.dst_host = dst_host
        self.flow_id = flow_id
        self.mss = mss
        self.rwnd = rwnd
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.dupack_threshold = dupack_threshold
        self.max_dupack_threshold = max_dupack_threshold
        self.reorder_adaptation = reorder_adaptation
        self.max_data = max_data

        # Connection state.
        self.send_base = 0          # lowest unacknowledged byte
        self.next_seq = 0           # next new byte to transmit
        self.cwnd = float(2 * mss)
        self.ssthresh = (
            float(initial_ssthresh) if initial_ssthresh else float(rwnd)
        )
        self.dupacks = 0
        self.in_recovery = False
        self.recover_point = 0
        self._recovery_entered_at = 0.0
        self._cwnd_before_recovery = 0.0
        self._ssthresh_before_recovery = 0.0
        self._rtx_sent_at = 0.0  # when the fast retransmit left (Eifel)
        self._rewound_until = 0  # bytes below this resend as retransmits
        self.spurious_recoveries = 0

        # RTT estimation.
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = initial_rto
        self._probe: Optional[Tuple[int, float]] = None  # (end_seq, sent_at)
        self._rto_timer: Optional[EventHandle] = None

        # Counters.
        self.segments_sent = 0
        self.retransmits = 0
        self.fast_retransmits = 0
        self.timeouts = 0
        self.started = False
        host.register(flow_id, self)

    # ------------------------------------------------------------------
    # public controls
    # ------------------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        """Begin transmitting (now, or at an absolute time)."""
        if self.started:
            raise RuntimeError(f"flow {self.flow_id!r} already started")
        self.started = True
        if at is None or at <= self.sim.now:
            self._try_send()
        else:
            self.sim.schedule_at(at, self._try_send)

    @property
    def flight_size(self) -> int:
        return self.next_seq - self.send_base

    @property
    def bytes_acked(self) -> int:
        return self.send_base

    # ------------------------------------------------------------------
    # receive path (ACKs from the receiver)
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        seg = packet.payload
        if not isinstance(seg, TcpSegment) or not seg.is_ack:
            return
        ack = seg.ack
        if ack > self.send_base:
            self._new_ack(ack, seg.ts_echo)
        elif ack == self.send_base and self.flight_size > 0:
            self._dup_ack()
        self._try_send()

    def _new_ack(self, ack: int, ts_echo: float) -> None:
        newly = ack - self.send_base
        self.send_base = ack
        self._sample_rtt(ack)
        if self.in_recovery and self._eifel_spurious(ts_echo):
            self._undo_spurious_recovery()
        if self.in_recovery:
            if ack >= self.recover_point:
                # Full ACK: leave recovery, deflate to ssthresh.
                self.in_recovery = False
                self.cwnd = max(self.ssthresh, float(self.mss))
                self.dupacks = 0
            else:
                # NewReno partial ACK: the next hole is lost too.
                self._retransmit(self.send_base)
                self.cwnd = max(self.cwnd - newly + self.mss, float(self.mss))
        else:
            self.dupacks = 0
            self._grow_cwnd(newly)
        self._restart_rto()

    def _grow_cwnd(self, newly: int) -> None:
        """Congestion-avoidance growth on a new ACK (Reno: AIMD).

        Subclasses override this (and :meth:`_loss_backoff`) to plug in
        a different congestion-control law — see
        :class:`~repro.transport.cubic.CubicTcpSender`.
        """
        if self.cwnd < self.ssthresh:
            self.cwnd += min(newly, self.mss)   # slow start
        else:
            self.cwnd += self.mss * self.mss / self.cwnd  # AIMD

    def _loss_backoff(self) -> float:
        """New ssthresh on a congestion event (Reno: half the flight)."""
        return max(self.flight_size / 2.0, 2.0 * self.mss)

    def _eifel_spurious(self, ts_echo: float) -> bool:
        """Eifel detection (RFC 3522): was the fast retransmit needless?

        The first ACK advancing past the retransmitted hole echoes the
        timestamp of the segment that filled it.  If that timestamp
        predates the retransmission, the *original* copy arrived — the
        segment was reordered, not lost.
        """
        return (
            self.reorder_adaptation
            and ts_echo > 0.0
            and ts_echo < self._rtx_sent_at
        )

    def _undo_spurious_recovery(self) -> None:
        """Undo a spurious fast recovery and raise reordering tolerance.

        Mirrors Linux: restore cwnd/ssthresh (Eifel response) and raise
        the duplicate-ACK threshold past the observed reordering depth
        (the ``tp->reordering`` metric) so similar reordering no longer
        triggers recovery at all.
        """
        self.spurious_recoveries += 1
        self.in_recovery = False
        self.cwnd = max(self.cwnd, self._cwnd_before_recovery)
        self.ssthresh = max(self.ssthresh, self._ssthresh_before_recovery)
        self.dupack_threshold = min(
            max(self.dupack_threshold + 1, self.dupacks + 1),
            self.max_dupack_threshold,
        )
        self.dupacks = 0

    def _dup_ack(self) -> None:
        self.dupacks += 1
        if self.in_recovery:
            self.cwnd += self.mss  # window inflation
            return
        if self.dupacks == self.dupack_threshold:
            # Fast retransmit + enter fast recovery.
            self._cwnd_before_recovery = self.cwnd
            self._ssthresh_before_recovery = self.ssthresh
            self._recovery_entered_at = self.sim.now
            self._rtx_sent_at = self.sim.now
            self.ssthresh = self._loss_backoff()
            self._retransmit(self.send_base)
            self.fast_retransmits += 1
            self.cwnd = self.ssthresh + self.dupack_threshold * self.mss
            self.in_recovery = True
            self.recover_point = self.next_seq
            self._restart_rto()

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def _window(self) -> float:
        return min(self.cwnd, float(self.rwnd))

    def _try_send(self) -> None:
        if not self.started:
            return
        while self.flight_size + self.mss <= self._window():
            if self.max_data is not None and self.next_seq >= self.max_data:
                break
            length = self.mss
            if self.max_data is not None:
                length = min(length, self.max_data - self.next_seq)
            self._send_segment(
                self.next_seq, length,
                retransmission=self.next_seq < self._rewound_until,
            )
            self.next_seq += length
        if self._rto_timer is None and self.flight_size > 0:
            self._restart_rto()

    def _send_segment(self, seq: int, length: int, retransmission: bool) -> None:
        seg = TcpSegment(
            flow_id=self.flow_id, seq=seq, length=length, ts=self.sim.now
        )
        packet = Packet(
            src_host=self.host.name,
            dst_host=self.dst_host,
            size_bytes=length + TCP_HEADER_BYTES,
            payload=seg,
            created_at=self.sim.now,
        )
        self.segments_sent += 1
        if retransmission:
            self.retransmits += 1
            if self._probe is not None and self._probe[0] > seq:
                self._probe = None  # Karn: never time retransmitted data
        elif self._probe is None:
            self._probe = (seq + length, self.sim.now)
        self.host.inject(packet)

    def _retransmit(self, seq: int) -> None:
        length = self.mss
        if self.max_data is not None:
            length = min(length, self.max_data - seq)
        if length <= 0:
            return
        self._send_segment(seq, length, retransmission=True)

    # ------------------------------------------------------------------
    # timers / RTT
    # ------------------------------------------------------------------
    def _sample_rtt(self, ack: int) -> None:
        if self._probe is None:
            return
        end_seq, sent_at = self._probe
        if ack < end_seq:
            return
        sample = self.sim.now - sent_at
        self._probe = None
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(
            max(self.srtt + 4.0 * self.rttvar, self.min_rto), self.max_rto
        )

    def _restart_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
        if self.flight_size > 0:
            self._rto_timer = self.sim.schedule(self.rto, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self.flight_size == 0:
            return
        self.timeouts += 1
        self.ssthresh = self._loss_backoff()
        self.cwnd = float(self.mss)
        self.in_recovery = False
        self.dupacks = 0
        self._probe = None
        # Go-back-N: everything outstanding is presumed lost; rewind the
        # send pointer so slow start retransmits the whole window (the
        # receiver discards what it already buffered).  Without this the
        # sender can deadlock: flight stays >= cwnd forever and only the
        # backed-off timer ever retransmits one segment at a time.
        self._rewound_until = max(self._rewound_until, self.next_seq)
        self.next_seq = self.send_base
        self._try_send()
        self.rto = min(self.rto * 2.0, self.max_rto)  # exponential backoff
        # _try_send may have armed a timer with the pre-backoff RTO;
        # _restart_rto cancels it before arming the backed-off one
        # (double-armed timers would multiply into an RTO storm).
        self._restart_rto()


class TcpReceiver:
    """Cumulative-ACK receiver with out-of-order buffering (iperf server).

    Every data arrival is acknowledged immediately (no delayed ACKs):
    immediate ACKs are what RFC 5681 prescribes for out-of-order
    segments, and they are what makes reordering visible to the sender.
    """

    def __init__(self, sim: Simulator, host: Host, src_host: str, flow_id: str,
                 log_arrivals: bool = True):
        self.sim = sim
        self.host = host
        self.src_host = src_host
        self.flow_id = flow_id
        self.rcv_next = 0
        self._ooo: Dict[int, int] = {}  # seq -> length
        self.log_arrivals = log_arrivals
        self.arrivals: List[Tuple[float, int]] = []  # (time, seq)
        self.data_segments = 0
        self.duplicate_segments = 0
        self.acks_sent = 0
        host.register(flow_id, self)

    @property
    def bytes_received(self) -> int:
        """In-order bytes delivered to the application."""
        return self.rcv_next

    def on_packet(self, packet: Packet) -> None:
        seg = packet.payload
        if not isinstance(seg, TcpSegment) or seg.is_ack or seg.length == 0:
            return
        self.data_segments += 1
        if self.log_arrivals:
            self.arrivals.append((self.sim.now, seg.seq))
        if seg.seq == self.rcv_next:
            self.rcv_next += seg.length
            self._drain_buffer()
        elif seg.seq > self.rcv_next:
            self._ooo.setdefault(seg.seq, seg.length)
        else:
            self.duplicate_segments += 1
        self._send_ack(ts_echo=seg.ts)

    def _drain_buffer(self) -> None:
        while self.rcv_next in self._ooo:
            self.rcv_next += self._ooo.pop(self.rcv_next)

    def _send_ack(self, ts_echo: float) -> None:
        # RFC 7323 flavour: echo the timestamp of the segment that
        # triggered this ACK (what the sender's Eifel check needs).
        ack = TcpSegment(
            flow_id=self.flow_id, ack=self.rcv_next, is_ack=True,
            ts_echo=ts_echo,
        )
        packet = Packet(
            src_host=self.host.name,
            dst_host=self.src_host,
            size_bytes=TCP_HEADER_BYTES,
            payload=ack,
            created_at=self.sim.now,
        )
        self.acks_sent += 1
        self.host.inject(packet)
