"""iperf-style measured TCP flows.

:class:`IperfFlow` bundles a :class:`~repro.transport.tcp.TcpSender`
and :class:`~repro.transport.tcp.TcpReceiver`, samples the receiver's
in-order goodput on a fixed interval, and produces an
:class:`IperfResult` — the moral equivalent of an ``iperf -i 1`` report,
which is exactly what the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.transport.host import Host
from repro.transport.reordering import ReorderingReport, analyze_arrivals
from repro.transport.tcp import TcpReceiver, TcpSender

__all__ = ["IperfFlow", "IperfResult"]


@dataclass
class IperfResult:
    """Outcome of one measured flow.

    Attributes:
        flow_id: the flow's identifier.
        intervals: (interval_end_time, Mbit/s) goodput samples.
        bytes_received: total in-order bytes at the receiver.
        duration_s: measurement duration.
        retransmits / fast_retransmits / timeouts: sender counters.
        reordering: receiver-side reordering metrics.
    """

    flow_id: str
    intervals: List[Tuple[float, float]]
    bytes_received: int
    duration_s: float
    retransmits: int
    fast_retransmits: int
    timeouts: int
    reordering: ReorderingReport

    @property
    def mean_mbps(self) -> float:
        """Average goodput over the whole measurement window."""
        if self.duration_s <= 0:
            return 0.0
        return self.bytes_received * 8 / self.duration_s / 1e6

    def mean_mbps_between(self, start: float, end: float) -> float:
        """Average goodput over interval samples in (start, end]."""
        samples = [m for t, m in self.intervals if start < t <= end]
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    def describe(self) -> str:
        return (
            f"{self.flow_id}: {self.mean_mbps:.2f} Mbit/s over "
            f"{self.duration_s:g}s, {self.retransmits} retransmits "
            f"({self.fast_retransmits} fast, {self.timeouts} RTO), "
            f"reordering: {self.reordering.describe()}"
        )


class IperfFlow:
    """One measured bulk TCP flow between two hosts.

    Args:
        sim: event engine.
        src / dst: host nodes (must already be wired into the network,
            with forward and reverse routes installed at their edges).
        flow_id: unique flow name.
        sample_interval_s: goodput sampling period (iperf's ``-i``).
        tcp_kwargs: forwarded to :class:`TcpSender` (mss, rwnd, ...).
    """

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: Host,
        flow_id: str = "iperf",
        sample_interval_s: float = 0.5,
        sender_cls: type = TcpSender,
        **tcp_kwargs,
    ):
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self.sim = sim
        self.flow_id = flow_id
        self.sample_interval_s = sample_interval_s
        self.sender = sender_cls(
            sim, src, dst.name, flow_id, **tcp_kwargs
        )
        self.receiver = TcpReceiver(sim, dst, src.name, flow_id)
        self._samples: List[Tuple[float, float]] = []
        self._last_bytes = 0
        self._started_at: Optional[float] = None
        self._ends_at: Optional[float] = None

    def start(self, at: float = 0.0, duration_s: float = 10.0) -> None:
        """Schedule the flow to run during [at, at + duration_s]."""
        if self._started_at is not None:
            raise RuntimeError(f"flow {self.flow_id!r} already scheduled")
        self._started_at = at
        self._ends_at = at + duration_s
        self.sender.start(at=at if at > self.sim.now else None)
        self.sim.schedule_at(at + self.sample_interval_s, self._sample)

    def _sample(self) -> None:
        now = self.sim.now
        current = self.receiver.bytes_received
        mbps = (current - self._last_bytes) * 8 / self.sample_interval_s / 1e6
        self._last_bytes = current
        self._samples.append((now, mbps))
        if self._ends_at is not None and now + self.sample_interval_s <= self._ends_at + 1e-9:
            self.sim.schedule(self.sample_interval_s, self._sample)

    def result(self) -> IperfResult:
        """Build the report (call after the simulation has run)."""
        if self._started_at is None or self._ends_at is None:
            raise RuntimeError("flow was never started")
        return IperfResult(
            flow_id=self.flow_id,
            intervals=list(self._samples),
            bytes_received=self.receiver.bytes_received,
            duration_s=self._ends_at - self._started_at,
            retransmits=self.sender.retransmits,
            fast_retransmits=self.sender.fast_retransmits,
            timeouts=self.sender.timeouts,
            reordering=analyze_arrivals(self.receiver.arrivals),
        )
