"""Transports: hosts, TCP Reno/NewReno, UDP probes, iperf-style flows."""

from repro.transport.cubic import CubicTcpSender
from repro.transport.flow import IperfFlow, IperfResult
from repro.transport.host import Host, TransportEndpoint
from repro.transport.reordering import (
    ReorderingReport,
    analyze_arrivals,
    analyze_sequences,
)
from repro.transport.tcp import TCP_HEADER_BYTES, TcpReceiver, TcpSegment, TcpSender
from repro.transport.udp import UdpDatagram, UdpSink, UdpSource

__all__ = [
    "Host",
    "TransportEndpoint",
    "TcpSender",
    "CubicTcpSender",
    "TcpReceiver",
    "TcpSegment",
    "TCP_HEADER_BYTES",
    "UdpSource",
    "UdpSink",
    "UdpDatagram",
    "IperfFlow",
    "IperfResult",
    "ReorderingReport",
    "analyze_sequences",
    "analyze_arrivals",
]
