"""Multipath route IDs (the paper's §5 future work on multiple paths)."""

from repro.multipath.edge import (
    FAILOVER,
    FLOW_HASH,
    POLICIES,
    ROUND_ROBIN,
    MultipathEdgeNode,
)
from repro.multipath.planner import install_multipath_flow, link_disjoint_paths

__all__ = [
    "MultipathEdgeNode",
    "FAILOVER",
    "ROUND_ROBIN",
    "FLOW_HASH",
    "POLICIES",
    "link_disjoint_paths",
    "install_multipath_flow",
]
