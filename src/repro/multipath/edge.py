"""Multipath ingress: several route IDs per destination.

The paper's §5 future work: *"we plan to explore the use of multiple
paths and improve performance indicators in the case of redundant
links."*  KAR makes multipath natural — a path is just an integer, so
the edge can hold several per destination and pick one per packet.
The core stays untouched and stateless.

Three selection policies:

* ``FAILOVER`` — primary route while its first-hop link is up, else
  the first alternative whose first hop is up.  Edge-local 1+1
  protection: reacts in zero time, never reorders, and (unlike core
  deflection) sidesteps the Fig. 8 one-residue constraint entirely —
  the redundant SW109 branch simply becomes the standby key.
* ``ROUND_ROBIN`` — per-packet alternation (load balancing; reordering
  cost measured by the multipath ablation benchmark).
* ``FLOW_HASH`` — stable choice per transport flow (load balancing
  without reordering).
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.packet import KarHeader, Packet
from repro.sim.trace import PacketTracer
from repro.switches.edge import EdgeNode, IngressEntry

__all__ = ["MultipathEdgeNode", "FAILOVER", "ROUND_ROBIN", "FLOW_HASH",
           "POLICIES"]

FAILOVER = "failover"
ROUND_ROBIN = "roundrobin"
FLOW_HASH = "flowhash"
POLICIES = (FAILOVER, ROUND_ROBIN, FLOW_HASH)


class MultipathEdgeNode(EdgeNode):
    """Edge node holding multiple ingress entries per destination.

    Single-entry destinations (installed via the plain
    :meth:`~repro.switches.edge.EdgeNode.install_ingress`) behave
    exactly like the base edge, so this class is a drop-in replacement.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        num_ports: int,
        tracer: Optional[PacketTracer] = None,
        **edge_kwargs,
    ):
        super().__init__(name, sim, num_ports, tracer=tracer, **edge_kwargs)
        self._multi: Dict[str, List[IngressEntry]] = {}
        self._policy: Dict[str, str] = {}
        self._rr_index: Dict[str, int] = {}
        self.failovers = 0

    # -- provisioning -----------------------------------------------------
    def install_multipath(
        self,
        dst_host: str,
        entries: List[IngressEntry],
        policy: str = FAILOVER,
    ) -> None:
        """Install several route IDs for *dst_host* under a policy."""
        if not entries:
            raise ValueError("need at least one ingress entry")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown multipath policy {policy!r}; choose from {POLICIES}"
            )
        self._multi[dst_host] = list(entries)
        self._policy[dst_host] = policy
        self._rr_index[dst_host] = 0
        # Keep the base table pointing at the primary so existing code
        # paths (and introspection) see a sensible default.
        self.install_ingress(dst_host, entries[0])

    def multipath_entries(self, dst_host: str) -> List[IngressEntry]:
        return list(self._multi.get(dst_host, ()))

    def set_preferred(self, dst_host: str, index: int) -> None:
        """Promote entry *index* to primary (controller/operator action).

        Edge-local FAILOVER only sees the edge's own uplink state; for a
        failure deeper in the core, the controller (after a
        notification) flips the preferred key with this call — one
        control message, no route recomputation, because the alternates
        were encoded in advance.
        """
        entries = self._multi.get(dst_host)
        if not entries:
            raise KeyError(f"no multipath entries for {dst_host!r}")
        if not 0 <= index < len(entries):
            raise IndexError(
                f"entry index {index} out of range (have {len(entries)})"
            )
        entries.insert(0, entries.pop(index))
        self.install_ingress(dst_host, entries[0])

    # -- datapath ----------------------------------------------------------
    def _ingress_packet(self, packet: Packet) -> None:
        entries = self._multi.get(packet.dst_host)
        if not entries:
            super()._ingress_packet(packet)
            return
        entry = self._select(packet, entries)
        if entry is None:
            self._drop(packet, "multipath-all-paths-down")
            return
        packet.kar = KarHeader(
            route_id=entry.route_id, modulus=entry.modulus, ttl=entry.ttl,
            residues=entry.residues,
        )
        self.encapsulated += 1
        self.send(entry.out_port, packet)

    def _select(
        self, packet: Packet, entries: List[IngressEntry]
    ) -> Optional[IngressEntry]:
        policy = self._policy[packet.dst_host]
        if policy == FAILOVER:
            for i, entry in enumerate(entries):
                if self.port_up(entry.out_port):
                    if i > 0:
                        self.failovers += 1
                    return entry
            return None
        if policy == ROUND_ROBIN:
            idx = self._rr_index[packet.dst_host]
            self._rr_index[packet.dst_host] = (idx + 1) % len(entries)
            return entries[idx]
        # FLOW_HASH: stable per transport flow (crc32: deterministic
        # across runs, unlike Python's salted str hash).
        flow_id = getattr(packet.payload, "flow_id", packet.dst_host)
        digest = zlib.crc32(str(flow_id).encode("utf-8"))
        return entries[digest % len(entries)]
