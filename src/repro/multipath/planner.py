"""Disjoint-path planning and multipath flow installation."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.controller.routing import encode_node_path
from repro.multipath.edge import FAILOVER, MultipathEdgeNode
from repro.rns.encoder import EncodedRoute
from repro.runner import KarSimulation
from repro.switches.edge import IngressEntry
from repro.topology.graph import PortGraph, TopologyError
from repro.topology.paths import NoPathError, path_links, shortest_path

__all__ = ["link_disjoint_paths", "install_multipath_flow"]


def link_disjoint_paths(
    graph: PortGraph,
    src_edge: str,
    dst_edge: str,
    max_paths: int = 2,
) -> List[List[str]]:
    """Greedy link-disjoint edge-to-edge paths, shortest first.

    Finds up to *max_paths* paths whose core links are pairwise
    disjoint (the shared edge-attachment links are unavoidable and
    exempt).  Returns at least one path or raises
    :class:`~repro.topology.paths.NoPathError`.
    """
    if max_paths < 1:
        raise ValueError(f"max_paths must be >= 1, got {max_paths}")
    non_core = [
        n.name for n in graph.nodes()
        if n.kind != "core" and n.name not in (src_edge, dst_edge)
    ]
    paths: List[List[str]] = []
    used_links = set()
    for _ in range(max_paths):
        try:
            path = shortest_path(
                graph, src_edge, dst_edge,
                forbidden_links=used_links,
                forbidden_nodes=non_core,
            )
        except NoPathError:
            break
        paths.append(path)
        for key in path_links(path):
            # Edge attachments stay usable for every path.
            if graph.node(key[0]).kind == "core" and \
                    graph.node(key[1]).kind == "core":
                used_links.add(key)
    if not paths:
        raise NoPathError(src_edge, dst_edge, "no disjoint paths")
    return paths


def install_multipath_flow(
    ks: KarSimulation,
    src_host: str,
    dst_host: str,
    policy: str = FAILOVER,
    max_paths: int = 2,
    reverse_policy: Optional[str] = None,
) -> Tuple[List[EncodedRoute], List[EncodedRoute]]:
    """Install link-disjoint multipath routes between two hosts.

    Requires the simulation to have been built with
    ``edge_node_cls=MultipathEdgeNode``.

    Returns:
        (forward_routes, reverse_routes), primaries first.
    """
    graph = ks.scenario.graph
    src_edge = graph.edge_of_host(src_host)
    dst_edge = graph.edge_of_host(dst_host)
    ingress = ks.network.node(src_edge)
    egress = ks.network.node(dst_edge)
    if not isinstance(ingress, MultipathEdgeNode) or not isinstance(
        egress, MultipathEdgeNode
    ):
        raise TypeError(
            "multipath needs MultipathEdgeNode edges; build the "
            "simulation with edge_node_cls=MultipathEdgeNode"
        )

    paths = link_disjoint_paths(graph, src_edge, dst_edge, max_paths)
    forward: List[EncodedRoute] = []
    reverse: List[EncodedRoute] = []
    fwd_entries: List[IngressEntry] = []
    rev_entries: List[IngressEntry] = []
    ttl = ks.controller.default_ttl
    for path in paths:
        fwd = encode_node_path(graph, path)
        rev = encode_node_path(graph, list(reversed(path)))
        forward.append(fwd)
        reverse.append(rev)
        fwd_entries.append(
            IngressEntry(
                route_id=fwd.route_id, modulus=fwd.modulus,
                out_port=graph.port_of(src_edge, path[1]), ttl=ttl,
                residues=fwd.residue_map(),
            )
        )
        rev_entries.append(
            IngressEntry(
                route_id=rev.route_id, modulus=rev.modulus,
                out_port=graph.port_of(dst_edge, path[-2]), ttl=ttl,
                residues=rev.residue_map(),
            )
        )
    ingress.install_multipath(dst_host, fwd_entries, policy=policy)
    egress.install_multipath(
        src_host, rev_entries, policy=reverse_policy or policy
    )
    return forward, reverse
