"""Network assembly: topology description → live simulation objects.

:class:`Network` instantiates one runtime :class:`~repro.sim.node.Node`
per topology node (using caller-supplied factories, so this module stays
independent of the KAR dataplane classes) and one
:class:`~repro.sim.link.Link` per topology link, preserving port
numbering exactly — the property KAR's modulo forwarding depends on.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.invariants import InvariantChecker
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import Packet
from repro.sim.trace import PacketTracer
from repro.topology.graph import NodeInfo, PortGraph

__all__ = ["Network", "NodeFactory"]

#: A factory builds the runtime node for one topology node.
NodeFactory = Callable[[NodeInfo, Simulator], Node]


class Network:
    """Live simulation network built from a :class:`PortGraph`.

    Args:
        graph: the static topology.
        sim: the event engine to schedule on.
        factories: node-kind -> factory.  Every kind present in the graph
            must have a factory.
        tracer: optional packet tracer shared by all nodes that support
            one (factories are responsible for passing it to their
            nodes; the network keeps it here for convenient access).
        invariants: optional runtime invariant checker; the network
            reports link-level drops (queue overflow, link-down) to its
            conservation ledger, so chaos cuts never make packets
            vanish unaccounted.
    """

    def __init__(
        self,
        graph: PortGraph,
        sim: Simulator,
        factories: Dict[str, NodeFactory],
        tracer: Optional[PacketTracer] = None,
        invariants: Optional[InvariantChecker] = None,
    ):
        self.graph = graph
        self.sim = sim
        self.tracer = tracer
        self.invariants = invariants
        self.nodes: Dict[str, Node] = {}
        self._links: Dict[tuple, Link] = {}

        for info in graph.nodes():
            factory = factories.get(info.kind)
            if factory is None:
                raise ValueError(
                    f"no factory for node kind {info.kind!r} ({info.name!r})"
                )
            node = factory(info, sim)
            if node.num_ports != info.degree:
                raise ValueError(
                    f"factory built {info.name!r} with {node.num_ports} "
                    f"ports; topology needs {info.degree}"
                )
            self.nodes[info.name] = node

        def drop_hook(packet: Packet, reason: str) -> None:
            if self.tracer is not None:
                self.tracer.on_drop(sim.now, "<link>", packet, reason)
            if self.invariants is not None:
                self.invariants.on_drop(sim.now, "<link>", packet, reason)

        for link_info in graph.links():
            link = Link(
                sim,
                self.nodes[link_info.a],
                link_info.a_port,
                self.nodes[link_info.b],
                link_info.b_port,
                rate_mbps=link_info.rate_mbps,
                delay_s=link_info.delay_s,
                queue_packets=link_info.queue_packets,
                drop_hook=drop_hook,
            )
            self._links[link_info.key] = link

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"no node {name!r} in network") from None

    def link_between(self, a: str, b: str) -> Link:
        key = (a, b) if a <= b else (b, a)
        try:
            return self._links[key]
        except KeyError:
            raise KeyError(f"no link {a}-{b} in network") from None

    def links(self) -> Dict[tuple, Link]:
        return dict(self._links)

    def core_link_keys(self) -> list:
        """Keys of links joining two core switches, in insertion order.

        These are the chaos-eligible links: cutting host/edge access
        links proves nothing about deflection, so fault injectors
        restrict themselves to the core by default.
        """
        from repro.topology.graph import NodeKind

        return [
            key for key in self._links
            if self.graph.node(key[0]).kind == NodeKind.CORE
            and self.graph.node(key[1]).kind == NodeKind.CORE
        ]

    def down_link_keys(self) -> list:
        """Keys of links currently down (chaos/monitor reporting)."""
        return [key for key, link in self._links.items() if not link.up]
