"""Dynamic link-failure adversaries.

Dai & Foerster ("On the Resilience of Fast Failover Routing Against
Dynamic Link Failures", 2024) show that failover schemes proven
resilient against *static* failure sets can still lose packets when
links fail **and recover while packets are in flight** — a recovered
link re-opens a forwarding rule mid-walk and the precomputed reaction
logic chases a moving target.  This module supplies that adversary
model for the resilience-frontier experiments:

* :class:`DynamicLinkChaos` — an *oblivious-schedule* injector: the
  whole strike schedule (times, victim links, down durations) is drawn
  up front from one named RNG stream, so the adversary is a pure
  function of (topology, config, seed, schedule_seed) and cannot peek
  at the traffic.  Down durations default to the forwarding timescale
  (milliseconds against millisecond link delays), the regime the
  static analyses miss.
* :func:`search_worst_schedule` — the worst-case search mode: sweep
  *schedule_seed* over the farm (:mod:`repro.farm`), rank schedules by
  delivery ratio, and return the cells worst-first.  An oblivious
  adversary with seed search approximates the adaptive worst case
  while every individual run stays digest-reproducible.

Like every injector, :class:`DynamicLinkChaos` is budget-capped via
the base class's ``_budget_allows`` machinery and registered in
:data:`~repro.sim.chaos.CHAOS_MODES` (as ``"dynamic"``), so
``KarSimulation.add_chaos("dynamic", ...)`` and the chaos CLI work
unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.sim.chaos import CHAOS_MODES, ChaosInjector, LinkKey
from repro.sim.network import Network
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # lazy at runtime: the farm/experiments import back
    from repro.experiments.frontier import FrontierCell
    from repro.farm.executor import FarmOptions

__all__ = ["DynamicLinkChaos", "search_worst_schedule"]


class DynamicLinkChaos(ChaosInjector):
    """Oblivious dynamic adversary: seeded fail+recover strikes.

    *strikes* strike times are drawn uniformly over (0, *until*), each
    with a victim link and a down duration uniform in
    [*min_down_s*, *max_down_s*] — short enough that links come back
    while the packets they stranded are still walking.  The entire
    schedule comes from the ``schedule:<schedule_seed>`` stream, so two
    runs with the same (seed, schedule_seed) produce bit-identical
    event logs, and :func:`search_worst_schedule` can sweep
    *schedule_seed* without perturbing any other stream.
    """

    stream_prefix = "chaos:dynamic"

    def __init__(
        self,
        network: Network,
        rng: RngRegistry,
        until: float,
        strikes: int = 32,
        min_down_s: float = 0.002,
        max_down_s: float = 0.03,
        schedule_seed: int = 0,
        **kwargs,
    ):
        super().__init__(network, rng, until, **kwargs)
        if strikes < 1:
            raise ValueError(f"strikes must be >= 1, got {strikes}")
        if not 0.0 < min_down_s <= max_down_s:
            raise ValueError(
                f"down window must satisfy 0 < min <= max, got "
                f"{min_down_s}/{max_down_s}"
            )
        self.strikes = strikes
        self.min_down_s = min_down_s
        self.max_down_s = max_down_s
        self.schedule_seed = schedule_seed

    def _arm(self) -> None:
        stream = self._stream(f"schedule:{self.schedule_seed}")
        schedule: List[Tuple[float, int, LinkKey, float]] = []
        for i in range(self.strikes):
            at = stream.uniform(0.0, self.until)
            victim = stream.choice(self.eligible)
            down_s = stream.uniform(self.min_down_s, self.max_down_s)
            schedule.append((at, i, victim, down_s))
        for at, i, victim, down_s in sorted(schedule):
            self.sim.schedule_at(at, self._strike, i, victim, down_s)

    def _strike(self, index: int, victim: LinkKey, down_s: float) -> None:
        if self._budget_allows() and self._set_link(
            victim, False, f"strike{index}"
        ):
            self.sim.schedule(down_s, self._set_link, victim, True,
                              f"strike{index}")


CHAOS_MODES["dynamic"] = DynamicLinkChaos


def search_worst_schedule(
    topology: str,
    scheme: str,
    seed: int = 1,
    schedules: int = 8,
    budget: int = 2,
    farm: "FarmOptions | None" = None,
    adversary: Optional[dict] = None,
) -> "List[FrontierCell]":
    """Sweep adversarial schedules, worst delivery ratio first.

    Runs *schedules* dynamic-adversary frontier cells — identical
    except for ``schedule_seed`` — through the farm, and returns them
    sorted ascending by delivery ratio: ``result[0]`` is the worst
    schedule found.  *budget* is the adversary's concurrent-down-link
    allowance (the cell's ``failures`` axis).  Every cell is an
    ordinary :class:`~repro.experiments.frontier.FrontierCell` (strict
    invariants, digest-reproducible), so the worst case found is a
    replayable record, not just a number.
    """
    from repro.experiments.frontier import run_frontier_cells
    from repro.farm.jobs import frontier_spec

    if schedules < 1:
        raise ValueError(f"need >= 1 schedule, got {schedules}")
    if budget < 1:
        raise ValueError(f"adversary budget must be >= 1, got {budget}")
    specs = [
        frontier_spec(
            topology, scheme, "dynamic", budget, seed,
            schedule_seed=schedule_seed,
            adversary=dict(adversary or {}),
        )
        for schedule_seed in range(schedules)
    ]
    cells = run_frontier_cells(specs, farm, label="adversary-search")
    return sorted(cells, key=lambda c: (c.delivery_ratio, c.schedule_seed))
