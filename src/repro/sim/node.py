"""Node base class: port bookkeeping and send/receive plumbing.

Concrete behaviours live elsewhere: KAR core switches and edge nodes in
:mod:`repro.switches`, hosts (transport endpoints) in
:mod:`repro.transport`.  This base class only knows about ports and the
links attached to them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.fastpath import fastpath_enabled
from repro.sim.link import Channel, Link
from repro.sim.packet import Packet

__all__ = ["Node", "NodeError"]


class NodeError(RuntimeError):
    """Raised on node wiring/usage errors."""


class Node:
    """A network element with numbered ports.

    Subclasses override :meth:`receive` (packet arrived on a port) and
    may override :meth:`on_link_state` (attached link went up/down).
    """

    def __init__(self, name: str, sim: Simulator, num_ports: int):
        if num_ports < 0:
            raise NodeError(f"num_ports must be >= 0, got {num_ports}")
        self.name = name
        self.sim = sim
        self._links: List[Optional[Link]] = [None] * num_ports
        # Per-port outbound channel, resolved once at attach time so
        # the datapath send is a single table lookup.
        self._channels: List[Optional[Channel]] = [None] * num_ports
        # Fast path: the healthy-ports tuple is cached and invalidated
        # by attach()/link flips (Link.set_up calls ports_changed()
        # directly, so instance-level on_link_state overrides cannot
        # break invalidation).  Reference mode recomputes per call.
        self._fastpath = fastpath_enabled()
        self._healthy_cache: Optional[Tuple[int, ...]] = None

    # -- wiring ---------------------------------------------------------
    @property
    def num_ports(self) -> int:
        return len(self._links)

    def attach(self, port: int, link: Link) -> None:
        if not 0 <= port < self.num_ports:
            raise NodeError(
                f"{self.name}: port {port} out of range (has {self.num_ports})"
            )
        if self._links[port] is not None:
            raise NodeError(f"{self.name}: port {port} already attached")
        self._links[port] = link
        self._channels[port] = link.channel_from(self)
        self._healthy_cache = None

    def link_on(self, port: int) -> Optional[Link]:
        if not 0 <= port < self.num_ports:
            return None
        return self._links[port]

    def port_up(self, port: int) -> bool:
        """True when the port exists, is cabled, and its link is up.

        This is the switch-local "output port is under failure" check the
        paper's deflection techniques rely on — loss-of-carrier
        detection, available immediately without control-plane help.
        """
        link = self.link_on(port)
        return link is not None and link.up

    def healthy_ports(self) -> Tuple[int, ...]:
        """Ports that exist, are cabled, and whose link is up.

        On the fast path the tuple is cached until a link attaches or
        flips state; the reference path rebuilds it per call (the
        original cost profile, retained for benchmarking).
        """
        if self._fastpath:
            cached = self._healthy_cache
            if cached is None:
                cached = tuple(
                    p for p in range(len(self._links)) if self.port_up(p)
                )
                self._healthy_cache = cached
            return cached
        return tuple(p for p in range(self.num_ports) if self.port_up(p))

    def ports_changed(self) -> None:
        """Invalidate cached port state (called by the attached links)."""
        self._healthy_cache = None

    def peer_name(self, port: int) -> Optional[str]:
        link = self.link_on(port)
        if link is None:
            return None
        return link.peer_of(self).name

    # -- datapath --------------------------------------------------------
    def send(self, port: int, packet: Packet) -> bool:
        """Transmit *packet* out of *port*; False if unsendable/dropped."""
        if 0 <= port < len(self._channels):
            channel = self._channels[port]
            if channel is not None:
                return channel.send(packet)
        return False

    def receive(self, packet: Packet, in_port: int) -> None:
        raise NotImplementedError

    # -- events ----------------------------------------------------------
    def on_link_state(self, port: int, up: bool) -> None:
        """Hook: the link on *port* changed state.  Default: ignore."""
