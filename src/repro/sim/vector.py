"""Epoch-batched forwarding: the million-packet datapath.

The DES engine (:mod:`repro.sim.engine`) prices every hop as a heap
event — exact, but bounded by Python per-event overhead even with the
PR-3 fast path.  This module adds the ROADMAP's "million-packet
datapath": an **epoch-quantized forwarding model** in which every live
packet advances exactly one switch hop per epoch, and a whole switch's
epoch queue is drained in one vectorized numpy pass (the CPU analogue
of the array-batched bulk provisioner in
:mod:`repro.controller.bulk`).

Two engines implement the *same* canonical model and must produce
bit-identical outcome records (digested with
:func:`repro.farm.jobs.record_digest`):

* :func:`run_epoch_reference` — the oracle.  It drives **untouched**
  :class:`~repro.switches.core.KarSwitch` objects, built in reference
  mode (:func:`~repro.sim.fastpath.use_fastpath`), one
  ``receive()`` call per packet per hop: per-hop big-int
  ``R mod switch_id``, per-decision ``healthy_ports()`` rebuilds, real
  ``Decision`` allocations, and the switch's own RNG stream draws.
* :func:`run_epoch_vector` — the batch engine.  Per switch per epoch
  it resolves ``R mod switch_id`` for the whole queue at once (from
  per-flow residue arrays seeded by
  :meth:`~repro.rns.encoder.EncodedRoute.residue_map`), applies the
  deflection strategy's happy-path predicate as a numpy mask, and only
  the fallback minority goes through the *reference*
  ``select_port`` — so every RNG draw is literally the reference
  code's draw, in the reference order.

Canonical model (shared by both engines, and by the sharded engine in
:mod:`repro.sim.shard`):

1. At each epoch start, scheduled link flips apply in sorted link-key
   order; then this epoch's injections append to their ingress
   switches' queues **after** carried-over arrivals, in flow order.
2. Switches process their queues in node-index order (node indices are
   name-sorted ranks, the same canonical order
   :class:`~repro.topology.csr.CsrTopology` locks in).  Every packet a
   switch forwards lands in the target switch's *next*-epoch queue
   (one hop per epoch, no serialization or queueing model).
3. Arrival order in a queue is (sender node index, sender emission
   order) — exactly what processing switches in index order produces.
4. A forward onto an edge-facing port terminates the packet: delivered
   when that edge is the flow's egress, misdelivered otherwise (the
   epoch model has no re-encode path; misdelivery is a terminal
   outcome both engines count identically).
5. TTL follows the core switch's rule: drop when ``ttl <= 0`` on
   arrival, else decrement and forward.

The outcome record (per-switch forwarded/deflections/drops, drop
reasons, delivery/misdelivery tallies, and a fingerprint over every
switch RNG's final state) is the bit-identical contract: equal digests
mean both engines made the same decisions AND the same random draws.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.farm.jobs import record_digest
from repro.rns.encoder import Hop, RouteEncoder
from repro.sim.engine import Simulator
from repro.sim.fastpath import use_fastpath
from repro.sim.invariants import InvariantChecker
from repro.sim.packet import KarHeader, Packet
from repro.sim.rng import RngRegistry
from repro.switches.core import KarSwitch
from repro.switches.deflection import strategy_by_name
from repro.topology import random_connected, shortest_path
from repro.topology.csr import CsrTopology
from repro.topology.graph import NodeKind, PortGraph

__all__ = [
    "EpochTopology",
    "EpochFlow",
    "EpochWorkload",
    "EpochOutcome",
    "WORKLOAD_BUILDERS",
    "synthetic_spec",
    "build_workload",
    "run_epoch_reference",
    "run_epoch_vector",
    "EpochCore",
    "process_epoch_batch",
    "injection_batch",
    "iter_injections",
    "rng_state_digest",
    "merge_rng_fragments",
    "finalize_traces",
]

#: (epoch, a, b) — toggle the a-b link's state at the start of *epoch*.
FlipEvent = Tuple[int, str, str]


def rng_state_digest(rng: random.Random) -> str:
    """Canonical fingerprint of one RNG stream's current position."""
    return hashlib.sha256(
        repr(rng.getstate()).encode("utf-8")
    ).hexdigest()[:16]


def merge_rng_fragments(fragments: Sequence[Tuple[str, str]]) -> str:
    """Combine per-switch RNG fingerprints (name order) into one.

    Shards ship fragments instead of raw states, so the sharded
    engine's merged fingerprint is byte-equal to the unsharded ones.
    """
    h = hashlib.sha256()
    for name, frag in sorted(fragments):
        h.update(f"{name}:{frag};".encode("utf-8"))
    return h.hexdigest()[:16]


class EpochTopology:
    """Dense per-node port maps for the epoch model.

    Built once from a :class:`PortGraph` via the CSR snapshot: for node
    ``u`` and port ``p``, ``peer[u][p]`` is the neighbor's node index
    and ``peer_port[u][p]`` the port **on the neighbor** facing ``u``
    (the arriving packet's input port).  Node indices are name-sorted
    ranks, matching :class:`~repro.topology.csr.CsrTopology`.
    """

    def __init__(self, graph: PortGraph):
        csr = CsrTopology.from_graph(graph)
        self.names: Tuple[str, ...] = csr.names
        self.index: Dict[str, int] = csr.index
        self.n = csr.n
        self.core_mask = csr.core_mask
        self.switch_ids = csr.switch_ids
        self.core_indices: Tuple[int, ...] = tuple(
            int(i) for i in np.nonzero(csr.core_mask)[0]
        )
        degree = np.diff(csr.indptr)
        self.degree: Tuple[int, ...] = tuple(int(d) for d in degree)
        self.peer: List[np.ndarray] = []
        self.peer_port: List[np.ndarray] = []
        for u in range(self.n):
            d = self.degree[u]
            peers = np.full(d, -1, dtype=np.int64)
            pports = np.full(d, -1, dtype=np.int64)
            sl = csr.edge_slice(u)
            for nb, p_out, p_back in zip(
                csr.indices[sl], csr.ports_out[sl], csr.ports_back[sl]
            ):
                peers[p_out] = nb
                pports[p_out] = p_back
            peers.setflags(write=False)
            pports.setflags(write=False)
            self.peer.append(peers)
            self.peer_port.append(pports)
        #: link key (sorted names) -> (u, port_on_u, v, port_on_v)
        self.links: Dict[Tuple[str, str], Tuple[int, int, int, int]] = {}
        for link in graph.links():
            u, v = self.index[link.a], self.index[link.b]
            self.links[link.key] = (u, link.a_port, v, link.b_port)

    def fresh_up_state(self) -> List[np.ndarray]:
        """All-ports-up carrier state, one bool array per node."""
        return [np.ones(d, dtype=bool) for d in self.degree]


@dataclass(frozen=True)
class EpochFlow:
    """One provisioned flow: a constant route ID entering at one switch.

    ``residues`` is the encode-time hint
    (:meth:`~repro.rns.encoder.EncodedRoute.residue_map`); switches not
    in it fall back to the big-int ``route_id % switch_id`` — computed
    per packet by the reference engine, once per (flow, switch) by the
    vector engine.
    """

    route_id: int
    residues: Optional[Mapping[int, int]]
    ingress: int  # node index of the first core switch
    in_port: int  # port on the ingress switch facing its edge
    egress: int  # node index of the destination edge
    ttl: int


@dataclass(frozen=True)
class EpochWorkload:
    """A complete epoch-model scenario, rebuildable from ``spec``."""

    topo: EpochTopology
    flows: Tuple[EpochFlow, ...]
    inject_per_epoch: int
    inject_epochs: int
    max_epochs: int
    seed: int
    strategy: str
    flips: Tuple[FlipEvent, ...]
    spec: Dict[str, Any]

    @property
    def injected_total(self) -> int:
        return len(self.flows) * self.inject_per_epoch * self.inject_epochs

    def flips_at(self, epoch: int) -> Tuple[Tuple[str, str], ...]:
        """Link keys toggling at *epoch*, in sorted key order."""
        keys = sorted(
            (min(a, b), max(a, b))
            for e, a, b in self.flips if e == epoch
        )
        return tuple(keys)


@dataclass
class EpochOutcome:
    """One engine run: the digested record plus optional diagnostics."""

    record: Dict[str, Any]
    fates: Optional[Dict[int, Tuple[Any, ...]]] = None
    traces: Optional[Dict[int, Tuple[Tuple[Any, ...], ...]]] = None
    meta: Optional[Dict[str, Any]] = None

    @property
    def digest(self) -> str:
        return self.record["digest"]


# ---------------------------------------------------------------------------
# workload construction
# ---------------------------------------------------------------------------

#: spec["kind"] -> builder.  Populated at import time so spawn-started
#: shard workers (which re-import this module) can rebuild any workload
#: from its plain spec record — the same discipline as
#: :data:`repro.farm.jobs.JOB_KINDS`.
WORKLOAD_BUILDERS: Dict[str, Callable[[Mapping[str, Any]], "EpochWorkload"]] = {}


def synthetic_spec(
    num_switches: int = 8,
    extra_links: int = 3,
    min_switch_id: int = 29,
    id_strategy: str = "prime",
    seed: int = 1,
    strategy: str = "nip",
    flows: int = 4,
    ttl: int = 48,
    inject_per_epoch: int = 2,
    inject_epochs: int = 6,
    link_failures: int = 1,
    fail_epoch: int = 2,
    repair_epoch: Optional[int] = None,
    extra_flips: Sequence[FlipEvent] = (),
) -> Dict[str, Any]:
    """Plain spec record for the random-connected epoch workload."""
    return {
        "kind": "synthetic",
        "num_switches": num_switches,
        "extra_links": extra_links,
        "min_switch_id": min_switch_id,
        "id_strategy": id_strategy,
        "seed": seed,
        "strategy": strategy,
        "flows": flows,
        "ttl": ttl,
        "inject_per_epoch": inject_per_epoch,
        "inject_epochs": inject_epochs,
        "link_failures": link_failures,
        "fail_epoch": fail_epoch,
        "repair_epoch": repair_epoch,
        "extra_flips": [list(f) for f in extra_flips],
    }


def _build_synthetic(spec: Mapping[str, Any]) -> EpochWorkload:
    """Random connected core + one edge node per flow endpoint.

    Everything is a pure function of the spec: topology (seeded
    generator), flow endpoint choice (its own derived stream), routes
    (deterministic shortest paths + CRT encode) and the failure
    schedule (links on flow 0's route, innermost first).
    """
    graph = random_connected(
        spec["num_switches"],
        extra_links=spec["extra_links"],
        seed=spec["seed"],
        id_strategy=spec.get("id_strategy", "prime"),
        min_switch_id=spec["min_switch_id"],
        rate_mbps=100.0,
        delay_s=0.0002,
    )
    core = sorted(graph.node_names(NodeKind.CORE))
    rng = random.Random(f"epoch-flows-{spec['seed']}")
    pairs: List[Tuple[str, str]] = []
    seen = set()
    attempts = 0
    while len(pairs) < spec["flows"] and attempts < spec["flows"] * 20:
        attempts += 1
        src, dst = rng.sample(core, 2)
        if (src, dst) in seen:
            continue
        seen.add((src, dst))
        pairs.append((src, dst))
    # Attach one edge node per endpoint switch actually used.
    edge_of: Dict[str, str] = {}
    for sw in sorted({n for pair in pairs for n in pair}):
        edge = f"EV-{sw}"
        graph.add_node(edge, kind=NodeKind.EDGE)
        graph.add_link(sw, edge, rate_mbps=100.0, delay_s=0.0002)
        edge_of[sw] = edge

    encoder = RouteEncoder()
    topo = EpochTopology(graph)
    flows: List[EpochFlow] = []
    routes: List[List[str]] = []
    for src, dst in pairs:
        path = shortest_path(graph, src, dst)
        hops = [
            Hop(graph.switch_id(a), graph.port_of(a, b))
            for a, b in zip(path, path[1:])
        ]
        hops.append(
            Hop(graph.switch_id(dst), graph.port_of(dst, edge_of[dst]))
        )
        route = encoder.encode(hops)
        flows.append(EpochFlow(
            route_id=route.route_id,
            residues=dict(route.residue_map()),
            ingress=topo.index[src],
            in_port=graph.port_of(src, edge_of[src]),
            egress=topo.index[edge_of[dst]],
            ttl=spec["ttl"],
        ))
        routes.append(path)

    flips: List[FlipEvent] = [tuple(f) for f in spec.get("extra_flips", ())]
    failures = spec.get("link_failures", 0)
    if failures and routes and len(routes[0]) >= 2:
        path = routes[0]
        mid = len(path) // 2
        # Innermost links first: the most route-disturbing cuts.
        order = sorted(
            range(len(path) - 1), key=lambda i: (abs(i - mid), i)
        )
        fail_epoch = spec.get("fail_epoch", 2)
        repair_epoch = spec.get("repair_epoch")
        for i in order[:failures]:
            a, b = path[i], path[i + 1]
            flips.append((fail_epoch, a, b))
            if repair_epoch is not None:
                flips.append((repair_epoch, a, b))

    inject_epochs = spec["inject_epochs"]
    return EpochWorkload(
        topo=topo,
        flows=tuple(flows),
        inject_per_epoch=spec["inject_per_epoch"],
        inject_epochs=inject_epochs,
        max_epochs=inject_epochs + spec["ttl"] + 4,
        seed=spec["seed"],
        strategy=spec["strategy"],
        flips=tuple(flips),
        spec=dict(spec),
    )


WORKLOAD_BUILDERS["synthetic"] = _build_synthetic


def build_workload(spec: Mapping[str, Any]) -> EpochWorkload:
    """Rebuild a workload from its plain spec record (spawn-safe)."""
    try:
        builder = WORKLOAD_BUILDERS[spec["kind"]]
    except KeyError:
        raise ValueError(
            f"unknown workload kind {spec.get('kind')!r}; registered: "
            f"{sorted(WORKLOAD_BUILDERS)}"
        ) from None
    return builder(spec)


def iter_injections(
    workload: EpochWorkload, epoch: int
) -> List[Tuple[int, int]]:
    """Canonical injection list for *epoch*: ``(uid, flow_index)``.

    Uids are epoch-major, then flow order, then per-flow count — the
    shared numbering every engine (and every shard) reproduces.
    """
    if epoch >= workload.inject_epochs:
        return []
    per_epoch = len(workload.flows) * workload.inject_per_epoch
    base = epoch * per_epoch
    out = []
    for f in range(len(workload.flows)):
        for k in range(workload.inject_per_epoch):
            out.append((base + f * workload.inject_per_epoch + k, f))
    return out


def _finish_record(
    workload: EpochWorkload,
    epochs: int,
    switches: Dict[str, List[int]],
    delivered: int,
    misdelivered: Dict[str, int],
    drop_reasons: Dict[str, int],
    live_at_end: int,
    rng_fragments: Sequence[Tuple[str, str]],
) -> Dict[str, Any]:
    """The canonical outcome record — identical shape in every engine."""
    record: Dict[str, Any] = {
        "model": "epoch",
        "strategy": workload.strategy,
        "seed": workload.seed,
        "epochs": epochs,
        "injected": workload.injected_total,
        "delivered": delivered,
        "misdelivered": dict(sorted(misdelivered.items())),
        "drop_reasons": dict(sorted(drop_reasons.items())),
        "switches": {k: switches[k] for k in sorted(switches)},
        "hops": sum(v[0] for v in switches.values()),
        "live_at_end": live_at_end,
        "rng_fingerprint": merge_rng_fragments(rng_fragments),
    }
    record["digest"] = record_digest(record)
    return record


# ---------------------------------------------------------------------------
# reference engine: untouched KarSwitch objects, one receive() per hop
# ---------------------------------------------------------------------------

class _StubState:
    """Shared carrier state of one link (both endpoints read it)."""

    __slots__ = ("up",)

    def __init__(self) -> None:
        self.up = True


class _CaptureChannel:
    """Records the switch's transmit instead of serializing it."""

    __slots__ = ("sink", "port")

    def __init__(self, sink: List[Tuple[int, Packet]], port: int):
        self.sink = sink
        self.port = port

    def send(self, packet: Packet) -> bool:
        self.sink.append((self.port, packet))
        return True


class _Peer:
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class _StubLink:
    """What :meth:`Node.attach` (and the invariant checker's violation
    path, via ``peer_name``) need: an ``up`` flag, a channel, a peer."""

    __slots__ = ("_state", "_channel", "_peer")

    def __init__(self, state: _StubState, channel: _CaptureChannel,
                 peer: str):
        self._state = state
        self._channel = channel
        self._peer = _Peer(peer)

    @property
    def up(self) -> bool:
        return self._state.up

    def channel_from(self, node: Any) -> _CaptureChannel:
        return self._channel

    def peer_of(self, node: Any) -> _Peer:
        return self._peer


class _HopRecorder:
    """Minimal tracer: drop-reason tally plus optional per-uid hops."""

    def __init__(self, uid_of: Dict[int, int], trace: bool):
        self.drop_reasons: Dict[str, int] = {}
        self.uid_of = uid_of
        self.trace = trace
        self.hops: Dict[int, List[Tuple[Any, ...]]] = {}
        self.last_drop: Optional[Tuple[str, str]] = None

    def on_forward(self, now, name, packet, in_port, out_port, deflected):
        if self.trace:
            uid = self.uid_of[id(packet)]
            self.hops.setdefault(uid, []).append(
                (name, in_port, out_port, bool(deflected))
            )

    def on_drop(self, now, name, packet, reason):
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1
        self.last_drop = (name, reason)


def run_epoch_reference(
    workload: EpochWorkload,
    trace: bool = False,
    invariants: Optional[InvariantChecker] = None,
) -> EpochOutcome:
    """The oracle: untouched reference-mode switches, packet by packet.

    ``invariants`` optionally attaches a live
    :class:`~repro.sim.invariants.InvariantChecker` — the switches call
    its forward hook themselves; injection/terminal hooks are driven by
    the epoch loop, so conservation checks cover the whole model.
    """
    topo = workload.topo
    sim = Simulator()
    registry = RngRegistry(workload.seed)
    strategy = strategy_by_name(workload.strategy)
    uid_of: Dict[int, int] = {}
    recorder = _HopRecorder(uid_of, trace)

    switches: Dict[int, KarSwitch] = {}
    sinks: Dict[int, List[Tuple[int, Packet]]] = {}
    states: Dict[Tuple[str, str], _StubState] = {}
    with use_fastpath(False):
        for u in topo.core_indices:
            name = topo.names[u]
            sw = KarSwitch(
                name, sim, num_ports=topo.degree[u],
                switch_id=int(topo.switch_ids[u]),
                strategy=strategy,
                rng=registry.stream(f"deflect:{name}"),
                tracer=recorder,
                invariants=invariants,
            )
            switches[u] = sw
            sinks[u] = []
        for key, (u, pu, v, pv) in sorted(topo.links.items()):
            state = _StubState()
            states[key] = state
            for node_idx, port, peer_idx in ((u, pu, v), (v, pv, u)):
                sw = switches.get(node_idx)
                if sw is not None:
                    sw.attach(
                        port,
                        _StubLink(
                            state,
                            _CaptureChannel(sinks[node_idx], port),
                            topo.names[peer_idx],
                        ),
                    )

    flows = workload.flows
    queues: Dict[int, List[Tuple[int, int, Packet, int]]] = {
        u: [] for u in topo.core_indices
    }
    delivered = 0
    misdelivered: Dict[str, int] = {}
    fates: Dict[int, Tuple[Any, ...]] = {}
    epoch = 0
    live = 0
    while epoch < workload.max_epochs and (
        live > 0 or epoch < workload.inject_epochs
    ):
        for key in workload.flips_at(epoch):
            state = states[key]
            state.up = not state.up
            u, pu, v, pv = topo.links[key]
            for node_idx in (u, v):
                sw = switches.get(node_idx)
                if sw is not None:
                    sw.ports_changed()
        for uid, f in iter_injections(workload, epoch):
            flow = flows[f]
            packet = Packet(
                src_host=f"flow{f}", dst_host=f"flow{f}", size_bytes=100,
                kar=KarHeader(
                    route_id=flow.route_id, modulus=0, ttl=flow.ttl,
                    residues=flow.residues,
                ),
            )
            uid_of[id(packet)] = uid
            if invariants is not None:
                invariants.on_encapsulate(0.0, topo.names[flow.ingress], packet)
            queues[flow.ingress].append((uid, f, packet, flow.in_port))
            live += 1
        next_queues: Dict[int, List[Tuple[int, int, Packet, int]]] = {
            u: [] for u in topo.core_indices
        }
        for u in topo.core_indices:
            sw = switches[u]
            sink = sinks[u]
            for uid, f, packet, in_port in queues[u]:
                sw.receive(packet, in_port)
                if sink:
                    port, pkt = sink[0]
                    del sink[:]
                    v = int(topo.peer[u][port])
                    if topo.core_mask[v]:
                        next_queues[v].append(
                            (uid, f, pkt, int(topo.peer_port[u][port]))
                        )
                    else:
                        live -= 1
                        edge_name = topo.names[v]
                        if v == flows[f].egress:
                            delivered += 1
                            fates[uid] = ("delivered", edge_name)
                        else:
                            misdelivered[edge_name] = (
                                misdelivered.get(edge_name, 0) + 1
                            )
                            fates[uid] = ("misdelivered", edge_name)
                        if invariants is not None:
                            invariants.on_deliver(0.0, edge_name, pkt)
                else:
                    # The switch's _drop already notified tracer and
                    # invariants; only the fate is ours to record.
                    live -= 1
                    node, reason = recorder.last_drop or (topo.names[u], "?")
                    fates[uid] = ("dropped", node, reason)
        queues = next_queues
        epoch += 1

    live_at_end = sum(len(q) for q in queues.values())
    record = _finish_record(
        workload, epoch,
        {
            topo.names[u]: [sw.forwarded, sw.deflections, sw.drops]
            for u, sw in switches.items()
        },
        delivered, misdelivered, recorder.drop_reasons, live_at_end,
        [(topo.names[u], rng_state_digest(sw._rng))
         for u, sw in switches.items()],
    )
    return EpochOutcome(
        record=record,
        fates=fates,
        traces={k: tuple(v) for k, v in recorder.hops.items()}
        if trace else None,
        meta={"engine": "reference"},
    )


# ---------------------------------------------------------------------------
# vector engine: per-switch-per-epoch numpy batches
# ---------------------------------------------------------------------------

class _ArrayPortView:
    """PortView over a numpy carrier array — what fallback decisions see.

    ``healthy_ports`` is cached per epoch (flips invalidate it); the
    tuple holds plain ints so ``select_port``'s RNG draws and candidate
    lists are indistinguishable from the reference switch's.
    """

    __slots__ = ("num_ports", "_up", "_healthy")

    def __init__(self, num_ports: int, up: np.ndarray):
        self.num_ports = num_ports
        self._up = up
        self._healthy: Optional[Tuple[int, ...]] = None

    def port_up(self, port: int) -> bool:
        return 0 <= port < self.num_ports and bool(self._up[port])

    def healthy_ports(self) -> Tuple[int, ...]:
        cached = self._healthy
        if cached is None:
            cached = tuple(int(p) for p in np.nonzero(self._up)[0])
            self._healthy = cached
        return cached

    def invalidate(self) -> None:
        self._healthy = None


class _ShimKar:
    __slots__ = ("deflected",)

    def __init__(self, deflected: bool):
        self.deflected = deflected


class _ShimPacket:
    """The one attribute ``select_port`` reads from a packet."""

    __slots__ = ("kar",)

    def __init__(self, deflected: bool):
        self.kar = _ShimKar(deflected)


class EpochCore:
    """Vectorized switch state for a (subset of a) topology.

    Owns per-switch counters, RNG streams and residue arrays for the
    switches in ``owned`` (all core switches by default — the sharded
    engine passes each shard's block).  Carrier state covers the whole
    topology: flips are global knowledge, exactly as loss-of-carrier is
    local-but-instant in the DES model.
    """

    def __init__(
        self,
        workload: EpochWorkload,
        owned: Optional[Sequence[int]] = None,
        trace: bool = False,
    ):
        topo = workload.topo
        self.workload = workload
        self.topo = topo
        self.strategy = strategy_by_name(workload.strategy)
        self.strategy_name = workload.strategy
        self.owned: Tuple[int, ...] = tuple(
            int(u) for u in (owned if owned is not None else topo.core_indices)
        )
        registry = RngRegistry(workload.seed)
        self.rngs: Dict[int, random.Random] = {
            u: registry.stream(f"deflect:{topo.names[u]}") for u in self.owned
        }
        self.up: List[np.ndarray] = topo.fresh_up_state()
        self.views: Dict[int, _ArrayPortView] = {
            u: _ArrayPortView(topo.degree[u], self.up[u]) for u in self.owned
        }
        # counters[u] = [forwarded, deflections, drops]
        self.counters: Dict[int, List[int]] = {
            u: [0, 0, 0] for u in self.owned
        }
        self.drop_reasons: Dict[str, int] = {}
        self.delivered = 0
        self.misdelivered: Dict[str, int] = {}
        self.trace = trace
        self.fates: Dict[int, Tuple[Any, ...]] = {}
        # uid -> [(epoch, switch, in_port, out_port, deflected), ...].
        # The epoch stamp exists so shard-local fragments can be merged
        # into global hop order; finalize_traces() strips it.
        self.traces: Dict[int, List[Tuple[Any, ...]]] = {}
        self.epoch = -1  # bumped by process_epoch_batch
        # Lazily-built per-switch residue arrays over flows.
        self._residues: Dict[int, np.ndarray] = {}
        self._flow_egress = np.array(
            [f.egress for f in workload.flows], dtype=np.int64
        )
        self._flow_ttl = np.array(
            [f.ttl for f in workload.flows], dtype=np.int64
        )
        self._flow_ingress = np.array(
            [f.ingress for f in workload.flows], dtype=np.int64
        )
        self._flow_in_port = np.array(
            [f.in_port for f in workload.flows], dtype=np.int64
        )

    def apply_flips(self, keys: Sequence[Tuple[str, str]]) -> None:
        for key in keys:
            u, pu, v, pv = self.topo.links[key]
            self.up[u][pu] = not self.up[u][pu]
            self.up[v][pv] = not self.up[v][pv]
            for node_idx in (u, v):
                view = self.views.get(node_idx)
                if view is not None:
                    view.invalidate()

    def residues_for(self, u: int) -> np.ndarray:
        res = self._residues.get(u)
        if res is None:
            sid = int(self.topo.switch_ids[u])
            vals = []
            for flow in self.workload.flows:
                r = None
                if flow.residues is not None:
                    r = flow.residues.get(sid)
                if r is None:
                    r = flow.route_id % sid
                vals.append(r)
            res = np.array(vals, dtype=np.int64)
            self._residues[u] = res
        return res

    def process_switch(
        self,
        u: int,
        flow: np.ndarray,
        ttl: np.ndarray,
        deflected: np.ndarray,
        in_port: np.ndarray,
        uid: np.ndarray,
    ) -> Dict[str, np.ndarray]:
        """Drain one switch's epoch queue in one vectorized pass.

        Returns the surviving (core-bound) packets as arrays in
        emission order: ``sw``/``in_port``/``ttl``/``deflected``/
        ``flow``/``uid``.  Terminals (delivered, misdelivered, drops)
        are tallied on the core's counters.
        """
        topo = self.topo
        name = topo.names[u]
        deg = topo.degree[u]
        counters = self.counters[u]
        n = len(flow)

        expired = ttl <= 0
        n_expired = int(expired.sum())
        if n_expired:
            counters[2] += n_expired
            self._drop_n("ttl-expired", n_expired)
            if self.trace:
                for w in np.nonzero(expired)[0]:
                    self.fates[int(uid[w])] = ("dropped", name, "ttl-expired")
        alive = ~expired
        if not alive.all():
            flow = flow[alive]
            ttl = ttl[alive]
            deflected = deflected[alive]
            in_port = in_port[alive]
            uid = uid[alive]
        if len(flow) == 0:
            return _empty_batch()
        ttl = ttl - 1

        comp = self.residues_for(u)[flow]
        up_u = self.up[u]
        valid = comp < deg
        usable = np.zeros(len(comp), dtype=bool)
        if valid.any():
            usable[valid] = up_u[comp[valid]]
        s = self.strategy_name
        if s == "none":
            happy = usable
        elif s == "hp":
            happy = usable & ~deflected
        elif s == "avp":
            happy = usable
        else:  # nip
            happy = usable & (comp != in_port)

        out_port = np.where(happy, comp, -1)
        out_defl = deflected.copy()
        # The per-hop decision flag (what the tracer records) is not
        # the sticky kar.deflected bit: a happy-path hop traces False
        # even for a packet deflected upstream.
        hop_defl = np.zeros(len(comp), dtype=bool)
        dropped = np.zeros(len(comp), dtype=bool)
        fallback = np.nonzero(~happy)[0]
        if s == "none":
            dropped[fallback] = True
            n_drop = len(fallback)
            if n_drop:
                counters[2] += n_drop
                self._drop_n("no-usable-port(none)", n_drop)
        elif len(fallback):
            # The slow minority goes through the reference select_port
            # with the switch's real RNG stream, in queue order — the
            # draws ARE the reference engine's draws.
            strategy = self.strategy
            view = self.views[u]
            rng = self.rngs[u]
            reason = f"no-usable-port({s})"
            for w in fallback:
                decision = strategy.select_port(
                    view, _ShimPacket(bool(deflected[w])),
                    int(in_port[w]), int(comp[w]), rng,
                )
                if decision.port is None:
                    dropped[w] = True
                    counters[2] += 1
                    self._drop_n(reason, 1)
                else:
                    out_port[w] = decision.port
                    if decision.deflected:
                        out_defl[w] = True
                        hop_defl[w] = True
                        counters[1] += 1
        if self.trace:
            for w in np.nonzero(dropped & ~happy)[0]:
                if int(uid[w]) not in self.fates:
                    self.fates[int(uid[w])] = (
                        "dropped", name, f"no-usable-port({s})"
                    )

        fwd = ~dropped
        n_fwd = int(fwd.sum())
        counters[0] += n_fwd
        if n_fwd == 0:
            return _empty_batch()
        flow = flow[fwd]
        ttl = ttl[fwd]
        out_defl = out_defl[fwd]
        hop_defl = hop_defl[fwd]
        out_port = out_port[fwd]
        uid = uid[fwd]
        in_port = in_port[fwd]

        peers = topo.peer[u][out_port]
        next_in = topo.peer_port[u][out_port]
        if self.trace:
            for w in range(len(uid)):
                self.traces.setdefault(int(uid[w]), []).append(
                    (self.epoch, name, int(in_port[w]), int(out_port[w]),
                     bool(hop_defl[w]))
                )
        is_core = self.topo.core_mask[peers]
        term = np.nonzero(~is_core)[0]
        if len(term):
            egress = self._flow_egress[flow[term]]
            ok = peers[term] == egress
            self.delivered += int(ok.sum())
            if (~ok).any():
                bad_edges = peers[term][~ok]
                for v, cnt in zip(*np.unique(bad_edges, return_counts=True)):
                    edge_name = topo.names[int(v)]
                    self.misdelivered[edge_name] = (
                        self.misdelivered.get(edge_name, 0) + int(cnt)
                    )
            if self.trace:
                for w, good in zip(term, ok):
                    edge_name = topo.names[int(peers[w])]
                    self.fates[int(uid[w])] = (
                        ("delivered", edge_name) if good
                        else ("misdelivered", edge_name)
                    )
        keep = is_core
        return {
            "sw": peers[keep],
            "in_port": next_in[keep],
            "ttl": ttl[keep],
            "deflected": out_defl[keep],
            "flow": flow[keep],
            "uid": uid[keep],
        }

    def _drop_n(self, reason: str, n: int) -> None:
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + n

    def rng_fragments(self) -> List[Tuple[str, str]]:
        return [
            (self.topo.names[u], rng_state_digest(rng))
            for u, rng in self.rngs.items()
        ]

    def switch_counters(self) -> Dict[str, List[int]]:
        return {
            self.topo.names[u]: list(c) for u, c in self.counters.items()
        }


def _empty_batch() -> Dict[str, np.ndarray]:
    return {
        "sw": np.empty(0, dtype=np.int64),
        "in_port": np.empty(0, dtype=np.int64),
        "ttl": np.empty(0, dtype=np.int64),
        "deflected": np.empty(0, dtype=bool),
        "flow": np.empty(0, dtype=np.int64),
        "uid": np.empty(0, dtype=np.int64),
    }


def _concat_batches(batches: List[Dict[str, np.ndarray]]) -> Dict[str, np.ndarray]:
    if not batches:
        return _empty_batch()
    return {
        k: np.concatenate([b[k] for b in batches]) for k in batches[0]
    }


def injection_batch(
    workload: EpochWorkload, injections: Sequence[Tuple[int, int]]
) -> Dict[str, np.ndarray]:
    """Array form of an ``iter_injections`` list (canonical order)."""
    if not injections:
        return _empty_batch()
    uid = np.array([u for u, _ in injections], dtype=np.int64)
    flow = np.array([f for _, f in injections], dtype=np.int64)
    flows = workload.flows
    return {
        "sw": np.array([flows[f].ingress for _, f in injections], np.int64),
        "in_port": np.array([flows[f].in_port for _, f in injections], np.int64),
        "ttl": np.array([flows[f].ttl for _, f in injections], np.int64),
        "deflected": np.zeros(len(injections), dtype=bool),
        "flow": flow,
        "uid": uid,
    }


def process_epoch_batch(
    core: EpochCore, batch: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """One epoch over *batch*: group per switch, drain each in one pass.

    The stable sort groups per-switch queues without perturbing arrival
    order (sender index, emission order) inside one.  Shared by the
    unsharded engine and each shard (whose batches only contain its own
    switches).
    """
    core.epoch += 1
    sw = batch["sw"]
    if not len(sw):
        return _empty_batch()
    outputs: List[Dict[str, np.ndarray]] = []
    order = np.argsort(sw, kind="stable")
    sw_sorted = sw[order]
    bounds = np.nonzero(np.diff(sw_sorted))[0] + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [len(sw_sorted)]))
    for lo, hi in zip(starts, ends):
        sel = order[lo:hi]
        outputs.append(core.process_switch(
            int(sw_sorted[lo]),
            batch["flow"][sel],
            batch["ttl"][sel],
            batch["deflected"][sel],
            batch["in_port"][sel],
            batch["uid"][sel],
        ))
    return _concat_batches(outputs)


def finalize_traces(
    raw: Mapping[int, Sequence[Tuple[Any, ...]]],
) -> Dict[int, Tuple[Tuple[Any, ...], ...]]:
    """Order each uid's epoch-stamped hops globally and strip the stamp.

    A packet visits at most one switch per epoch, so sorting the merged
    shard fragments by epoch reconstructs the exact reference hop order.
    """
    return {
        uid: tuple(entry[1:] for entry in sorted(entries))
        for uid, entries in raw.items()
    }


def run_epoch_vector(
    workload: EpochWorkload, trace: bool = False
) -> EpochOutcome:
    """The batch engine: one vectorized pass per switch per epoch."""
    core = EpochCore(workload, trace=trace)
    batch = _empty_batch()
    epoch = 0
    while epoch < workload.max_epochs and (
        len(batch["uid"]) > 0 or epoch < workload.inject_epochs
    ):
        core.apply_flips(workload.flips_at(epoch))
        inj = injection_batch(workload, iter_injections(workload, epoch))
        batch = process_epoch_batch(core, _concat_batches([batch, inj]))
        epoch += 1

    record = _finish_record(
        workload, epoch, core.switch_counters(),
        core.delivered, core.misdelivered, core.drop_reasons,
        int(len(batch["uid"])), core.rng_fragments(),
    )
    return EpochOutcome(
        record=record,
        fates=core.fates if trace else None,
        traces=finalize_traces(core.traces) if trace else None,
        meta={"engine": "vector"},
    )
