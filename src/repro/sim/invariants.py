"""Runtime invariant checking for the packet path.

Chaos runs (:mod:`repro.sim.chaos`) flip link state at arbitrary
instants, which is exactly where forwarding bugs hide: a strategy that
only ever saw scripted fail/repair pairs can silently forward into a
dead port or ping-pong forever when failures flip mid-flight.  The
checker turns the properties KAR *claims* into executable assertions:

* **no-dead-port** — a deflection decision never selects a port whose
  link is down at decision time (all strategies);
* **no-return-to-sender** — the packet never leaves on the port it
  arrived on (NIP's Algorithm 1 guarantee; optional, because HP
  legitimately random-walks back);
* **TTL sanity** — the remaining hop budget never goes negative and a
  packet's hop count never exceeds its initial budget;
* **packet conservation** — every packet encapsulated at an ingress
  edge is eventually delivered or dropped with an explicit reason;
  nothing silently vanishes (checked at drain time).

Violations are structured :class:`InvariantViolation` errors carrying
the offending packet's recent hop trace.  In ``strict`` mode the first
violation raises; otherwise violations are collected for reporting
(the chaos CLI prints the tally, which must be zero for AVP/NIP).

The checker is observational: attaching it never changes forwarding
behaviour, only adds assertions (same contract as
:class:`~repro.sim.trace.PacketTracer`).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.node import Node

__all__ = ["InvariantViolation", "Violation", "InvariantChecker"]

#: How many recent hops to keep per live packet for violation traces.
TRACE_WINDOW = 16


@dataclass(frozen=True)
class Violation:
    """One recorded invariant violation."""

    kind: str
    time: float
    node: str
    packet_uid: int
    detail: str
    trace: Tuple[str, ...] = ()

    def describe(self) -> str:
        path = " -> ".join(self.trace) or "(no trace)"
        return (
            f"[{self.kind}] t={self.time:.6f}s at {self.node} "
            f"pkt#{self.packet_uid}: {self.detail} (trace: {path})"
        )


class InvariantViolation(AssertionError):
    """Raised in strict mode; carries the structured violation."""

    def __init__(self, violation: Violation):
        super().__init__(violation.describe())
        self.violation = violation


class InvariantChecker:
    """Collects (or raises on) packet-path invariant violations.

    Args:
        strict: raise :class:`InvariantViolation` on the first violation
            instead of collecting it.
        forbid_return_to_sender: also enforce NIP's never-use-the-input-
            port guarantee (enable only for NIP runs; HP may legally
            revisit the sender).
    """

    def __init__(
        self,
        strict: bool = False,
        forbid_return_to_sender: bool = False,
    ):
        self.strict = strict
        self.forbid_return_to_sender = forbid_return_to_sender
        self.violations: List[Violation] = []
        self.violation_counts: Counter = Counter()
        # Conservation ledger: uids encapsulated and not yet resolved.
        self._outstanding: Dict[int, str] = {}  # uid -> src edge
        self.injected = 0
        self.delivered = 0
        self.dropped = 0
        # Recent hop window per live packet (for violation traces and
        # the return-to-sender check).
        self._recent: Dict[int, Deque[str]] = {}

    # ------------------------------------------------------------------
    # hooks called by the dataplane
    # ------------------------------------------------------------------
    def on_encapsulate(self, time: float, edge: str, packet: Packet) -> None:
        """An ingress edge attached a KAR header to *packet*."""
        self.injected += 1
        self._outstanding[packet.uid] = edge
        self._recent[packet.uid] = deque([edge], maxlen=TRACE_WINDOW)

    def on_switch_forward(
        self,
        time: float,
        switch: "Node",
        packet: Packet,
        in_port: int,
        out_port: int,
    ) -> None:
        """A core switch decided to transmit *packet* on *out_port*.

        Called after the deflection decision, before the send — the
        decision and the transmission are one atomic event, so checking
        port state here is exact (no flip can interleave).
        """
        trace = self._recent.setdefault(
            packet.uid, deque(maxlen=TRACE_WINDOW)
        )
        trace.append(switch.name)
        if not switch.port_up(out_port):
            peer = switch.peer_name(out_port) or f"port{out_port}"
            self._flag(
                "dead-port-forward", time, switch.name, packet,
                f"selected port {out_port} (toward {peer}) while its "
                f"link is down",
            )
        if (
            self.forbid_return_to_sender
            and in_port == out_port
            and switch.link_on(in_port) is not None
        ):
            peer = switch.peer_name(in_port) or f"port{in_port}"
            self._flag(
                "return-to-sender", time, switch.name, packet,
                f"forwarded back out input port {in_port} (toward {peer})",
            )
        if packet.kar is not None and packet.kar.ttl < 0:
            self._flag(
                "negative-ttl", time, switch.name, packet,
                f"TTL went negative ({packet.kar.ttl})",
            )

    def on_reencode(self, time: float, edge: str, packet: Packet) -> None:
        """An edge re-encoded a stray packet (fresh route, fresh trace).

        The packet may now legally revisit nodes it just came from, so
        the hop window restarts.
        """
        self._recent[packet.uid] = deque([edge], maxlen=TRACE_WINDOW)

    def on_deliver(self, time: float, edge: str, packet: Packet) -> None:
        """An egress edge stripped the header and delivered *packet*."""
        if packet.uid in self._outstanding:
            del self._outstanding[packet.uid]
            self.delivered += 1
        self._recent.pop(packet.uid, None)

    def on_drop(self, time: float, node: str, packet: Packet,
                reason: str) -> None:
        """Any element dropped *packet* with an explicit *reason*."""
        if packet.uid in self._outstanding:
            del self._outstanding[packet.uid]
            self.dropped += 1
        self._recent.pop(packet.uid, None)

    # ------------------------------------------------------------------
    # end-of-run checks & reporting
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Packets encapsulated but not yet delivered or dropped."""
        return len(self._outstanding)

    def check_conservation(self, time: float, expect_in_flight: int = 0) -> None:
        """Assert injected == delivered + dropped + in-flight.

        Call after the event heap has drained (or at a quiesce point
        where *expect_in_flight* packets are legitimately still inside
        the network).
        """
        if self.in_flight != expect_in_flight:
            uids = sorted(self._outstanding)[:8]
            self._flag(
                "conservation", time, "<network>", None,
                f"{self.in_flight} packet(s) unaccounted for at drain "
                f"(injected={self.injected} delivered={self.delivered} "
                f"dropped={self.dropped}; first uids: {uids})",
            )

    def summary(self) -> str:
        tally = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(self.violation_counts.items())
        ) or "none"
        return (
            f"invariants: injected={self.injected} "
            f"delivered={self.delivered} dropped={self.dropped} "
            f"in_flight={self.in_flight} violations: {tally}"
        )

    # ------------------------------------------------------------------
    def _flag(
        self,
        kind: str,
        time: float,
        node: str,
        packet: Optional[Packet],
        detail: str,
    ) -> None:
        uid = packet.uid if packet is not None else -1
        trace: Tuple[str, ...] = ()
        if packet is not None:
            trace = tuple(self._recent.get(uid, ()))
        violation = Violation(
            kind=kind, time=time, node=node, packet_uid=uid,
            detail=detail, trace=trace,
        )
        self.violation_counts[kind] += 1
        if self.strict:
            raise InvariantViolation(violation)
        self.violations.append(violation)
