"""Packet-level discrete-event network simulator.

This package is the substrate that replaces the paper's Mininet/OVS
emulation environment: an event engine (:mod:`~repro.sim.engine`),
links with serialization/queueing/propagation/failure
(:mod:`~repro.sim.link`), port-based nodes (:mod:`~repro.sim.node`),
network assembly (:mod:`~repro.sim.network`), failure injection
(:mod:`~repro.sim.failures`), seeded randomness (:mod:`~repro.sim.rng`)
and packet tracing (:mod:`~repro.sim.trace`).
"""

from repro.sim.engine import EventHandle, SimError, Simulator
from repro.sim.failures import FailureEvent, FailureSchedule
from repro.sim.link import Channel, ChannelStats, Link
from repro.sim.network import Network
from repro.sim.node import Node, NodeError
from repro.sim.packet import DEFAULT_TTL, KarHeader, Packet
from repro.sim.rng import RngRegistry
from repro.sim.trace import DropRecord, HopRecord, PacketTracer

__all__ = [
    "Simulator",
    "SimError",
    "EventHandle",
    "Link",
    "Channel",
    "ChannelStats",
    "Node",
    "NodeError",
    "Network",
    "Packet",
    "KarHeader",
    "DEFAULT_TTL",
    "RngRegistry",
    "PacketTracer",
    "HopRecord",
    "DropRecord",
    "FailureSchedule",
    "FailureEvent",
]
