"""Packet-level discrete-event network simulator.

This package is the substrate that replaces the paper's Mininet/OVS
emulation environment: an event engine (:mod:`~repro.sim.engine`),
links with serialization/queueing/propagation/failure
(:mod:`~repro.sim.link`), port-based nodes (:mod:`~repro.sim.node`),
network assembly (:mod:`~repro.sim.network`), scripted failure
injection (:mod:`~repro.sim.failures`), generative chaos fault
injection (:mod:`~repro.sim.chaos`), runtime invariant checking
(:mod:`~repro.sim.invariants`), seeded randomness
(:mod:`~repro.sim.rng`) and packet tracing (:mod:`~repro.sim.trace`).
"""

from repro.sim.chaos import (
    CHAOS_MODES,
    AdversarialChaos,
    ChaosEvent,
    ChaosInjector,
    ControllerOutageChaos,
    FlappingChaos,
    MtbfMttrChaos,
    RegionalChaos,
    SrlgChaos,
    events_digest,
)
from repro.sim.engine import EventHandle, SimError, Simulator
from repro.sim.failures import FailureEvent, FailureSchedule
from repro.sim.invariants import InvariantChecker, InvariantViolation, Violation
from repro.sim.link import Channel, ChannelStats, Link
from repro.sim.network import Network
from repro.sim.node import Node, NodeError
from repro.sim.packet import DEFAULT_TTL, KarHeader, Packet
from repro.sim.rng import RngRegistry
from repro.sim.trace import DropRecord, HopRecord, PacketTracer

__all__ = [
    "ChaosEvent",
    "ChaosInjector",
    "MtbfMttrChaos",
    "FlappingChaos",
    "SrlgChaos",
    "RegionalChaos",
    "AdversarialChaos",
    "ControllerOutageChaos",
    "CHAOS_MODES",
    "events_digest",
    "InvariantChecker",
    "InvariantViolation",
    "Violation",
    "Simulator",
    "SimError",
    "EventHandle",
    "Link",
    "Channel",
    "ChannelStats",
    "Node",
    "NodeError",
    "Network",
    "Packet",
    "KarHeader",
    "DEFAULT_TTL",
    "RngRegistry",
    "PacketTracer",
    "HopRecord",
    "DropRecord",
    "FailureSchedule",
    "FailureEvent",
]
