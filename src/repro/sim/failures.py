"""Failure injection.

Experiments schedule link failures/repairs on the virtual clock, exactly
like the paper's scripted Mininet runs (fail at t=30 s, repair at
t=60 s).  The schedule is declarative so experiment configs can print
and compare it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import Network

__all__ = ["FailureEvent", "FailureSchedule"]


@dataclass(frozen=True)
class FailureEvent:
    """One link state flip at an absolute simulation time."""

    time: float
    a: str
    b: str
    up: bool

    def describe(self) -> str:
        state = "repair" if self.up else "fail"
        return f"t={self.time:g}s {state} {self.a}-{self.b}"


class FailureSchedule:
    """An ordered list of link failures/repairs to apply to a network."""

    def __init__(self) -> None:
        self._events: List[FailureEvent] = []

    def fail(self, time: float, a: str, b: str) -> "FailureSchedule":
        if time < 0:
            raise ValueError(
                f"failure time for {a}-{b} must be non-negative, got {time}"
            )
        self._events.append(FailureEvent(time, a, b, up=False))
        return self

    def repair(self, time: float, a: str, b: str) -> "FailureSchedule":
        if time < 0:
            raise ValueError(
                f"repair time for {a}-{b} must be non-negative, got {time}"
            )
        self._events.append(FailureEvent(time, a, b, up=True))
        return self

    def fail_between(self, a: str, b: str, start: float,
                     end: float) -> "FailureSchedule":
        """Fail link a-b during [start, end) — the paper's pattern."""
        if end <= start:
            raise ValueError(
                f"link {a}-{b}: repair time t={end} must come after "
                f"failure time t={start}"
            )
        return self.fail(start, a, b).repair(end, a, b)

    @property
    def events(self) -> Tuple[FailureEvent, ...]:
        return tuple(sorted(self._events, key=lambda e: e.time))

    def install(self, network: "Network") -> None:
        """Schedule every event on the network's simulator.

        Every event is validated against the network first, so a typo'd
        endpoint pair fails here with the offending link named, not
        later inside the event loop.
        """
        events = self.events
        for ev in events:
            try:
                network.link_between(ev.a, ev.b)
            except KeyError:
                raise ValueError(
                    f"failure schedule references link {ev.a}-{ev.b} "
                    f"(event: {ev.describe()}), which does not exist in "
                    f"the network"
                ) from None
        for ev in events:
            link = network.link_between(ev.a, ev.b)
            network.sim.schedule_at(ev.time, link.set_up, ev.up)

    def describe(self) -> str:
        return "; ".join(ev.describe() for ev in self.events) or "no failures"
