"""Discrete-event simulation engine.

A minimal, fast event loop: a binary heap of ``(time, sequence,
callback)`` entries.  The sequence number breaks ties deterministically
(FIFO among same-time events), which — together with seeded RNG streams
(:mod:`repro.sim.rng`) — makes every simulation bit-reproducible.

This engine replaces Mininet's real-time kernel datapath in the paper's
evaluation: instead of emulating Linux interfaces, we schedule packet
transmissions and arrivals as events on a virtual clock.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator", "SimError", "EventHandle"]


class SimError(RuntimeError):
    """Raised on engine misuse (negative delays, running twice, ...)."""


class EventHandle:
    """Handle to a scheduled event; supports O(1) cancellation.

    Cancellation marks the entry dead; the heap lazily discards dead
    entries when they surface.
    """

    __slots__ = ("time", "_fn", "_args")

    def __init__(self, time: float, fn: Callable[..., None], args: Tuple[Any, ...]):
        self.time = time
        self._fn: Optional[Callable[..., None]] = fn
        self._args = args

    def cancel(self) -> None:
        self._fn = None
        self._args = ()

    @property
    def cancelled(self) -> bool:
        return self._fn is None

    def _fire(self) -> None:
        if self._fn is not None:
            self._fn(*self._args)


class Simulator:
    """The event loop and virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, link.deliver, packet)
        sim.run_until(10.0)

    Time is in seconds (floats).  Events scheduled for the same instant
    fire in scheduling order.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    def schedule(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run *delay* seconds from now."""
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        handle = EventHandle(self._now + delay, fn, args)
        heapq.heappush(self._heap, (handle.time, next(self._seq), handle))
        return handle

    def schedule_at(
        self, time: float, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual *time*."""
        if time < self._now:
            raise SimError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        handle = EventHandle(time, fn, args)
        heapq.heappush(self._heap, (time, next(self._seq), handle))
        return handle

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def run_until(self, end_time: float) -> None:
        """Process events with time <= *end_time*; clock ends at *end_time*.

        The clock advances to *end_time* even if the heap drains early,
        so periodic samplers observe a consistent final timestamp.
        """
        if self._running:
            raise SimError("simulator is already running (re-entrant run)")
        if end_time < self._now:
            raise SimError(f"end_time {end_time} is before now {self._now}")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                time, _, handle = self._heap[0]
                if time > end_time:
                    break
                heapq.heappop(self._heap)
                if handle.cancelled:
                    continue
                self._now = time
                self.events_processed += 1
                handle._fire()
            if not self._stopped:
                self._now = end_time
        finally:
            self._running = False

    def run(self) -> None:
        """Process every pending event (until the heap drains or stop())."""
        if self._running:
            raise SimError("simulator is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                _, _, handle = heapq.heappop(self._heap)
                if handle.cancelled:
                    continue
                self._now = handle.time
                self.events_processed += 1
                handle._fire()
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)
