"""Discrete-event simulation engine.

A minimal, fast event loop: a binary heap of ``(time, sequence,
callback, args)`` entries.  The sequence number breaks ties
deterministically (FIFO among same-time events), which — together with
seeded RNG streams (:mod:`repro.sim.rng`) — makes every simulation
bit-reproducible.

Two scheduling paths share the heap and the sequence counter:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`EventHandle` supporting O(1) cancellation — for timers that
  may be cancelled (retransmission timeouts, in-flight deliveries).
* :meth:`Simulator.post` / :meth:`Simulator.post_at` are the
  no-allocation fast path for events that are **never cancelled**
  (serializer completions, periodic monitor ticks): the callback and
  its arguments go straight into the heap entry, no handle object.

Both paths consume one sequence number per call, so mixing them does
not perturb event order — a ``post`` fires exactly when the equivalent
``schedule`` would have.

This engine replaces Mininet's real-time kernel datapath in the paper's
evaluation: instead of emulating Linux interfaces, we schedule packet
transmissions and arrivals as events on a virtual clock.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator", "SimError", "EventHandle"]


class SimError(RuntimeError):
    """Raised on engine misuse (negative delays, running twice, ...)."""


class EventHandle:
    """Handle to a scheduled event; supports O(1) cancellation.

    Cancellation marks the entry dead; the heap lazily discards dead
    entries when they surface.
    """

    __slots__ = ("time", "_fn", "_args", "_sim")

    def __init__(
        self,
        time: float,
        fn: Callable[..., None],
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self._fn: Optional[Callable[..., None]] = fn
        self._args = args
        self._sim = sim

    def cancel(self) -> None:
        if self._fn is None:
            return
        self._fn = None
        self._args = ()
        if self._sim is not None:
            self._sim._live -= 1

    @property
    def cancelled(self) -> bool:
        return self._fn is None

    def _fire(self) -> None:
        # Clear the handle *before* invoking: a fired event must look
        # cancelled to a late cancel() call, or that cancel would
        # decrement the simulator's live counter a second time and
        # pending() could go negative.  (Consequence: `cancelled` is
        # True for fired handles too — it means "cancel is a no-op".)
        fn = self._fn
        if fn is not None:
            args = self._args
            self._fn = None
            self._args = ()
            fn(*args)


class Simulator:
    """The event loop and virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, link.deliver, packet)
        sim.run_until(10.0)

    Time is in seconds (floats).  Events scheduled for the same instant
    fire in scheduling order.
    """

    def __init__(self) -> None:
        # Entries are (time, seq, payload, args): payload is an
        # EventHandle when args is None (cancellable path) or a bare
        # callable when args is a tuple (post fast path).
        self._heap: List[Tuple[float, int, Any, Optional[Tuple[Any, ...]]]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._live = 0  # live (non-cancelled) entries, kept O(1)
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    def schedule(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run *delay* seconds from now."""
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        handle = EventHandle(self._now + delay, fn, args, self)
        heapq.heappush(self._heap, (handle.time, next(self._seq), handle, None))
        self._live += 1
        return handle

    def schedule_at(
        self, time: float, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual *time*."""
        if time < self._now:
            raise SimError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        handle = EventHandle(time, fn, args, self)
        heapq.heappush(self._heap, (time, next(self._seq), handle, None))
        self._live += 1
        return handle

    def post(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` with no cancellation handle.

        The no-allocation fast path for events that are never cancelled
        (the bulk of a packet simulation: serializer completions,
        monitor ticks).  Fires in exactly the slot the equivalent
        :meth:`schedule` call would have used.
        """
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._heap, (self._now + delay, next(self._seq), fn, args)
        )
        self._live += 1

    def post_at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Absolute-time variant of :meth:`post`."""
        if time < self._now:
            raise SimError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        heapq.heappush(self._heap, (time, next(self._seq), fn, args))
        self._live += 1

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def run_until(self, end_time: float) -> None:
        """Process events with time <= *end_time*; clock ends at *end_time*.

        The clock advances to *end_time* even if the heap drains early,
        so periodic samplers observe a consistent final timestamp.
        """
        if self._running:
            raise SimError("simulator is already running (re-entrant run)")
        if end_time < self._now:
            raise SimError(f"end_time {end_time} is before now {self._now}")
        self._running = True
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        # Counters are batched into locals and folded back in the
        # finally block: two attribute writes per event were visible in
        # profiles.  (pending()/events_processed are therefore stale
        # *inside* a run; both are read between runs.)
        processed = 0
        try:
            while heap and not self._stopped:
                if heap[0][0] > end_time:
                    break
                time, _, payload, args = heappop(heap)
                if args is None:
                    # Cancellable path: payload is an EventHandle.
                    if payload._fn is None:
                        continue  # cancelled; _live already decremented
                    processed += 1
                    self._now = time
                    payload._fire()
                else:
                    processed += 1
                    self._now = time
                    payload(*args)
            if not self._stopped:
                self._now = end_time
        finally:
            self._running = False
            self._live -= processed
            self.events_processed += processed

    def run(self) -> None:
        """Process every pending event (until the heap drains or stop())."""
        if self._running:
            raise SimError("simulator is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        processed = 0
        try:
            while heap and not self._stopped:
                time, _, payload, args = heappop(heap)
                if args is None:
                    if payload._fn is None:
                        continue
                    processed += 1
                    self._now = time
                    payload._fire()
                else:
                    processed += 1
                    self._now = time
                    payload(*args)
        finally:
            self._running = False
            self._live -= processed
            self.events_processed += processed

    def pending(self) -> int:
        """Number of live (non-cancelled) events in the queue.

        O(1): a counter maintained on schedule/post, cancel and fire —
        monitors call this from inside runs, where the old O(n) heap
        scan showed up in profiles.
        """
        return self._live
