"""Process-sharded epoch simulation with digest-gated handoffs.

The topology's core switches are partitioned into contiguous blocks of
the name-sorted node-index order; each shard runs an
:class:`~repro.sim.vector.EpochCore` over its block.  Epochs are
barriers: within one epoch every shard drains its queues independently
(switch state is strictly local in KAR — that is the paper's point), and
packets crossing a shard boundary are handed off *between* epochs.

**Ordering is preserved by construction.**  The canonical queue order is
(sender node index, sender emission order).  Because shard blocks are
contiguous in node-index order, every sender in shard 0 has a smaller
index than every sender in shard 1, and each shard emits its per-target
batches already ordered (it processes its switches ascending).  So the
receiver merely concatenates inbound batches in ascending sender-shard
order and gets exactly the queue the unsharded engine would have built.

**Every boundary is a digest gate.**  A handoff batch travels with the
sha-256 (truncated) of its canonical JSON serialization; the receiving
shard recomputes and compares before accepting — a corrupted, reordered
or dropped-row batch raises :class:`HandoffError` instead of silently
diverging.  Self-handoffs (a shard's packets staying home) go through
the same serialize→digest→verify path, so the in-process and
spawn-process modes execute identical gate code and the gate itself is
exercised by every run.

With ``processes=True`` each shard runs in its own spawn-started worker
process (the same spawn discipline as the farm executor:
workloads are rebuilt in-worker from their plain spec via the
import-time :data:`~repro.sim.vector.WORKLOAD_BUILDERS` registry, and
RNG state never crosses a pipe — only fingerprint fragments do).  The
merged outcome record is digest-identical to the unsharded engines'.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.vector import (
    EpochCore,
    EpochOutcome,
    EpochWorkload,
    _concat_batches,
    _empty_batch,
    _finish_record,
    build_workload,
    finalize_traces,
    injection_batch,
    iter_injections,
    process_epoch_batch,
)

__all__ = [
    "HandoffError",
    "WORKER_START_METHOD",
    "partition",
    "handoff_digest",
    "batch_to_rows",
    "rows_to_batch",
    "ShardRunner",
    "run_epoch_sharded",
]

#: Start method for shard workers.  Spawn (not fork): workers must
#: rebuild state from plain specs, never inherit it — the same rule the
#: farm executor enforces so results cannot depend on parent memory.
WORKER_START_METHOD = "spawn"

#: Row layout of a serialized handoff batch (order is part of the
#: digest contract).
ROW_FIELDS = ("flow", "ttl", "deflected", "sw", "in_port", "uid")


class HandoffError(RuntimeError):
    """A cross-shard handoff batch failed its digest gate."""


def partition(
    core_indices: Sequence[int], shards: int
) -> List[Tuple[int, ...]]:
    """Contiguous blocks of the node-index order, sizes within one.

    Contiguity is load-bearing: it is what makes ascending-shard merge
    order equal the unsharded (sender index, emission order) queue
    order — see the module docstring.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > len(core_indices):
        raise ValueError(
            f"cannot split {len(core_indices)} switches into {shards} shards"
        )
    ordered = sorted(int(u) for u in core_indices)
    n = len(ordered)
    blocks: List[Tuple[int, ...]] = []
    start = 0
    for s in range(shards):
        size = n // shards + (1 if s < n % shards else 0)
        blocks.append(tuple(ordered[start:start + size]))
        start += size
    return blocks


def batch_to_rows(batch: Dict[str, np.ndarray]) -> List[List[Any]]:
    """Canonical (picklable, JSON-able) form of a handoff batch."""
    return [
        [int(f), int(t), bool(d), int(s), int(p), int(u)]
        for f, t, d, s, p, u in zip(
            batch["flow"], batch["ttl"], batch["deflected"],
            batch["sw"], batch["in_port"], batch["uid"],
        )
    ]


def rows_to_batch(rows: Sequence[Sequence[Any]]) -> Dict[str, np.ndarray]:
    if not rows:
        return _empty_batch()
    cols = list(zip(*rows))
    return {
        "flow": np.array(cols[0], dtype=np.int64),
        "ttl": np.array(cols[1], dtype=np.int64),
        "deflected": np.array(cols[2], dtype=bool),
        "sw": np.array(cols[3], dtype=np.int64),
        "in_port": np.array(cols[4], dtype=np.int64),
        "uid": np.array(cols[5], dtype=np.int64),
    }


def handoff_digest(rows: Sequence[Sequence[Any]]) -> str:
    """Digest of a batch's canonical JSON — row order included."""
    payload = json.dumps(list(rows), separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class ShardRunner:
    """One shard: an :class:`EpochCore` over a block of switches.

    Used directly (in-process mode) and inside spawn workers (process
    mode) — the digest gates and the epoch step are the same code.
    """

    def __init__(
        self,
        workload: EpochWorkload,
        shard_id: int,
        blocks: Sequence[Sequence[int]],
        trace: bool = False,
    ):
        self.workload = workload
        self.shard_id = shard_id
        self.num_shards = len(blocks)
        self.core = EpochCore(workload, owned=blocks[shard_id], trace=trace)
        # node index -> owning shard (-1 for non-core: never a target).
        owner = np.full(workload.topo.n, -1, dtype=np.int64)
        for s, block in enumerate(blocks):
            for u in block:
                owner[u] = s
        self._owner = owner
        self.handoff_checks = 0

    def step(
        self,
        flips: Sequence[Tuple[str, str]],
        injections: Sequence[Tuple[int, int]],
        inbound: Sequence[Tuple[Sequence[Sequence[Any]], str]],
    ) -> Dict[int, Tuple[List[List[Any]], str]]:
        """Run one epoch over this shard's queues.

        ``inbound`` is the (rows, digest) batch from each sender shard in
        ascending shard order (empty batches included — the barrier is
        total).  Returns this shard's outboxes, one per target shard.
        """
        self.core.apply_flips(flips)
        accepted: List[Dict[str, np.ndarray]] = []
        for rows, digest in inbound:
            if handoff_digest(rows) != digest:
                raise HandoffError(
                    f"shard {self.shard_id}: handoff digest mismatch "
                    f"({len(rows)} rows, claimed {digest})"
                )
            self.handoff_checks += 1
            accepted.append(rows_to_batch(rows))
        accepted.append(injection_batch(self.workload, injections))
        out = process_epoch_batch(self.core, _concat_batches(accepted))
        targets = self._owner[out["sw"]] if len(out["sw"]) else np.empty(
            0, dtype=np.int64
        )
        outboxes: Dict[int, Tuple[List[List[Any]], str]] = {}
        for t in range(self.num_shards):
            sel = targets == t
            rows = batch_to_rows({k: v[sel] for k, v in out.items()})
            outboxes[t] = (rows, handoff_digest(rows))
        return outboxes

    def final_fragment(self) -> Dict[str, Any]:
        """Everything the coordinator needs to merge this shard."""
        core = self.core
        return {
            "switches": core.switch_counters(),
            "drop_reasons": dict(core.drop_reasons),
            "delivered": core.delivered,
            "misdelivered": dict(core.misdelivered),
            "rng_fragments": core.rng_fragments(),
            "handoff_checks": self.handoff_checks,
            "fates": dict(core.fates),
            "traces": {k: tuple(v) for k, v in core.traces.items()},
        }


def _shard_worker(conn, spec, shard_id, blocks, trace):
    """Spawn-worker loop: rebuild the workload from its spec, then serve
    epoch steps until told to finish."""
    try:
        workload = build_workload(spec)
        runner = ShardRunner(workload, shard_id, blocks, trace=trace)
        while True:
            msg = conn.recv()
            if msg[0] == "step":
                _, flips, injections, inbound = msg
                conn.send(("out", runner.step(flips, injections, inbound)))
            elif msg[0] == "finish":
                conn.send(("final", runner.final_fragment()))
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {msg[0]!r}")
    except BaseException as exc:  # surface worker faults to the parent
        try:
            conn.send(("error", repr(exc)))
        except Exception:  # pragma: no cover - pipe already gone
            pass
        raise
    finally:
        conn.close()


class _LocalShard:
    """In-process stand-in with the worker protocol's surface."""

    def __init__(self, workload, shard_id, blocks, trace):
        self.runner = ShardRunner(workload, shard_id, blocks, trace=trace)

    def step(self, flips, injections, inbound):
        return self.runner.step(flips, injections, inbound)

    def finish(self):
        return self.runner.final_fragment()

    def close(self):
        pass


class _ProcessShard:
    """One spawn-started worker behind a pipe."""

    def __init__(self, ctx, workload, shard_id, blocks, trace):
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker,
            args=(child, workload.spec, shard_id, list(blocks), trace),
            daemon=True,
        )
        self._proc.start()
        child.close()

    def _recv(self):
        kind, payload = self._conn.recv()
        if kind == "error":
            raise HandoffError(f"shard worker failed: {payload}")
        return payload

    def step(self, flips, injections, inbound):
        self._conn.send(("step", flips, injections, inbound))
        return self._recv()

    def finish(self):
        self._conn.send(("finish",))
        return self._recv()

    def close(self):
        try:
            self._conn.close()
        finally:
            self._proc.join(timeout=10)
            if self._proc.is_alive():  # pragma: no cover - hung worker
                self._proc.terminate()
                self._proc.join(timeout=10)


def run_epoch_sharded(
    workload: EpochWorkload,
    shards: int = 2,
    processes: bool = False,
    trace: bool = False,
) -> EpochOutcome:
    """Run the epoch model over *shards* partitions; merge to one record.

    The merged record — including the combined RNG fingerprint — is
    digest-identical to :func:`~repro.sim.vector.run_epoch_vector` and
    :func:`~repro.sim.vector.run_epoch_reference` on the same workload.
    ``processes=True`` runs each shard in its own spawn worker; the
    default runs them in-process (same gates, no pickling).
    """
    topo = workload.topo
    blocks = partition(topo.core_indices, shards)
    owner_of_node: Dict[int, int] = {
        u: s for s, block in enumerate(blocks) for u in block
    }

    if processes:
        import multiprocessing

        ctx = multiprocessing.get_context(WORKER_START_METHOD)
        members: List[Any] = [
            _ProcessShard(ctx, workload, s, blocks, trace)
            for s in range(shards)
        ]
    else:
        members = [
            _LocalShard(workload, s, blocks, trace) for s in range(shards)
        ]

    empty_rows: List[List[Any]] = []
    empty_digest = handoff_digest(empty_rows)
    # pending[receiver][sender] = (rows, digest) for the next epoch.
    pending: List[List[Tuple[List[List[Any]], str]]] = [
        [(empty_rows, empty_digest)] * shards for _ in range(shards)
    ]
    live = 0
    epoch = 0
    try:
        while epoch < workload.max_epochs and (
            live > 0 or epoch < workload.inject_epochs
        ):
            flips = workload.flips_at(epoch)
            injections = iter_injections(workload, epoch)
            inject_for: List[List[Tuple[int, int]]] = [
                [] for _ in range(shards)
            ]
            for uid, f in injections:
                inject_for[owner_of_node[workload.flows[f].ingress]].append(
                    (uid, f)
                )
            nxt: List[List[Tuple[List[List[Any]], str]]] = [
                [None] * shards for _ in range(shards)  # type: ignore
            ]
            live = 0
            for s, member in enumerate(members):
                outboxes = member.step(flips, inject_for[s], pending[s])
                for t, (rows, digest) in outboxes.items():
                    nxt[t][s] = (rows, digest)
                    live += len(rows)
            pending = nxt
            epoch += 1

        fragments = [member.finish() for member in members]
    finally:
        for member in members:
            member.close()

    switches: Dict[str, List[int]] = {}
    drop_reasons: Dict[str, int] = {}
    misdelivered: Dict[str, int] = {}
    delivered = 0
    handoff_checks = 0
    rng_fragments: List[Tuple[str, str]] = []
    fates: Dict[int, Tuple[Any, ...]] = {}
    # A packet that crossed shards left epoch-stamped hops in several
    # fragments; collect them all, then let finalize_traces re-order.
    raw_traces: Dict[int, List[Tuple[Any, ...]]] = {}
    for frag in fragments:
        switches.update(frag["switches"])
        delivered += frag["delivered"]
        handoff_checks += frag["handoff_checks"]
        for k, v in frag["drop_reasons"].items():
            drop_reasons[k] = drop_reasons.get(k, 0) + v
        for k, v in frag["misdelivered"].items():
            misdelivered[k] = misdelivered.get(k, 0) + v
        rng_fragments.extend(
            (name, digest) for name, digest in frag["rng_fragments"]
        )
        fates.update(frag["fates"])
        for uid, hops in frag["traces"].items():
            raw_traces.setdefault(uid, []).extend(hops)

    live_at_end = sum(
        len(rows) for inbox in pending for rows, _ in inbox
    )
    record = _finish_record(
        workload, epoch, switches, delivered, misdelivered,
        drop_reasons, live_at_end, rng_fragments,
    )
    return EpochOutcome(
        record=record,
        fates=fates if trace else None,
        traces=finalize_traces(raw_traces) if trace else None,
        meta={
            "engine": "sharded",
            "shards": shards,
            "processes": processes,
            "handoff_checks": handoff_checks,
        },
    )
