"""Periodic link monitors: utilization and queue-depth time series.

The paper's throughput plots only see the end hosts; these monitors
expose *where* in the network the bytes actually flowed — which links a
deflection storm loaded, how queues built on a protection branch — the
observability a simulator owes its user over an emulated testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.invariants import InvariantChecker
from repro.sim.link import Link
from repro.sim.network import Network

__all__ = [
    "LinkSample",
    "LinkMonitor",
    "NetworkMonitor",
    "HealthSample",
    "InvariantSampler",
]


@dataclass(frozen=True)
class LinkSample:
    """One sampling interval on one link direction.

    All rate-like fields are **per-interval**: ``mbps_*`` are the bytes
    moved during this interval, and ``drops_ab``/``drops_ba`` are the
    queue drops that happened during this interval (so a drop plot sums
    to the true total instead of double-counting).  The running totals
    up to and including this sample are carried alongside as
    ``cum_drops_*``.
    """

    time: float
    mbps_ab: float
    mbps_ba: float
    queue_ab: int
    queue_ba: int
    drops_ab: int   # queue drops during this interval, a->b
    drops_ba: int
    cum_drops_ab: int = 0   # cumulative queue drops up to this sample
    cum_drops_ba: int = 0

    @property
    def cum_drops(self) -> int:
        """Cumulative queue drops, both directions."""
        return self.cum_drops_ab + self.cum_drops_ba


class LinkMonitor:
    """Samples one link's throughput and queue depth on an interval."""

    def __init__(self, link: Link, name: Tuple[str, str],
                 interval_s: float = 0.25):
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.link = link
        self.name = name
        self.interval_s = interval_s
        self.samples: List[LinkSample] = []
        self._last_bytes = (0, 0)
        self._last_drops = (0, 0)
        self._sim = None

    def start(self, sim) -> None:
        self._sim = sim
        self._last_bytes = (
            self.link.stats_ab.tx_bytes, self.link.stats_ba.tx_bytes
        )
        self._last_drops = (
            self.link.stats_ab.queue_drops, self.link.stats_ba.queue_drops
        )
        sim.post(self.interval_s, self._tick)

    def _tick(self) -> None:
        ab, ba = self.link.stats_ab, self.link.stats_ba
        prev_ab, prev_ba = self._last_bytes
        drop_ab0, drop_ba0 = self._last_drops
        self._last_bytes = (ab.tx_bytes, ba.tx_bytes)
        self._last_drops = (ab.queue_drops, ba.queue_drops)
        scale = 8 / self.interval_s / 1e6
        self.samples.append(
            LinkSample(
                time=self._sim.now,
                mbps_ab=(ab.tx_bytes - prev_ab) * scale,
                mbps_ba=(ba.tx_bytes - prev_ba) * scale,
                queue_ab=self.link.channel_from(self.link.node_a).queue_depth,
                queue_ba=self.link.channel_from(self.link.node_b).queue_depth,
                drops_ab=ab.queue_drops - drop_ab0,
                drops_ba=ba.queue_drops - drop_ba0,
                cum_drops_ab=ab.queue_drops,
                cum_drops_ba=ba.queue_drops,
            )
        )
        self._sim.post(self.interval_s, self._tick)

    # -- queries ---------------------------------------------------------
    def peak_mbps(self) -> float:
        if not self.samples:
            return 0.0
        return max(max(s.mbps_ab, s.mbps_ba) for s in self.samples)

    def mean_mbps(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.mbps_ab + s.mbps_ba for s in self.samples) / len(
            self.samples
        )

    def peak_queue(self) -> int:
        if not self.samples:
            return 0
        return max(max(s.queue_ab, s.queue_ba) for s in self.samples)

    def cumulative_drops(self) -> Tuple[int, int]:
        """Total queue drops observed so far, as ``(ab, ba)``."""
        if not self.samples:
            return (0, 0)
        last = self.samples[-1]
        return (last.cum_drops_ab, last.cum_drops_ba)


class NetworkMonitor:
    """Monitors every (or a chosen subset of) link in a network."""

    def __init__(self, network: Network, interval_s: float = 0.25,
                 links: Optional[List[Tuple[str, str]]] = None):
        self.network = network
        self.monitors: Dict[Tuple[str, str], LinkMonitor] = {}
        keys = links if links is not None else list(network.links())
        for key in keys:
            link = network.link_between(*key)
            self.monitors[tuple(sorted(key))] = LinkMonitor(
                link, tuple(sorted(key)), interval_s
            )

    def start(self) -> None:
        for monitor in self.monitors.values():
            monitor.start(self.network.sim)

    def monitor(self, a: str, b: str) -> LinkMonitor:
        key = (a, b) if a <= b else (b, a)
        return self.monitors[key]

    def busiest_links(self, top: int = 5) -> List[Tuple[Tuple[str, str], float]]:
        """Links ranked by mean carried traffic (Mbit/s, both ways)."""
        ranked = sorted(
            ((name, m.mean_mbps()) for name, m in self.monitors.items()),
            key=lambda item: item[1],
            reverse=True,
        )
        return ranked[:top]

    def total_queue_drops(self) -> int:
        total = 0
        for monitor in self.monitors.values():
            ab, ba = monitor.cumulative_drops()
            total += ab + ba
        return total


@dataclass(frozen=True)
class HealthSample:
    """Point-in-time network health during a chaos run."""

    time: float
    links_down: int
    in_flight: int
    injected: int
    delivered: int
    dropped: int
    violations: int


class InvariantSampler:
    """Samples the invariant checker + link state on an interval.

    The per-link monitors say where the bytes went; this sampler says
    whether the system stayed *sane* while chaos ran: how many links
    were dark, how many packets were in flight, and whether any
    invariant had been violated by that point — the time series a
    resilience-envelope plot needs.
    """

    def __init__(
        self,
        network: Network,
        invariants: InvariantChecker,
        interval_s: float = 0.25,
    ):
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.network = network
        self.invariants = invariants
        self.interval_s = interval_s
        self.samples: List[HealthSample] = []

    def start(self) -> None:
        self.network.sim.post(self.interval_s, self._tick)

    def _tick(self) -> None:
        inv = self.invariants
        self.samples.append(
            HealthSample(
                time=self.network.sim.now,
                links_down=len(self.network.down_link_keys()),
                in_flight=inv.in_flight,
                injected=inv.injected,
                delivered=inv.delivered,
                dropped=inv.dropped,
                violations=sum(inv.violation_counts.values()),
            )
        )
        self.network.sim.post(self.interval_s, self._tick)

    def peak_links_down(self) -> int:
        if not self.samples:
            return 0
        return max(s.links_down for s in self.samples)

    def peak_in_flight(self) -> int:
        if not self.samples:
            return 0
        return max(s.in_flight for s in self.samples)
