"""Generative chaos fault injection.

:mod:`repro.sim.failures` replays the paper's two scripted fail/repair
pairs; this module *generates* failures, so the resilience envelope can
be mapped instead of spot-checked.  Related work motivates each
process: Dai & Foerster show dynamic/flapping failures defeat schemes
that survive static ones; Chiesa et al. motivate adversarial
multi-failure stress.

Injector families (all layered on the existing
:class:`~repro.sim.network.Network` / virtual clock, nothing in the
dataplane knows chaos exists):

* :class:`MtbfMttrChaos` — independent per-link two-state process:
  up for Exp(MTBF), down for Exp(MTTR), repeat.
* :class:`FlappingChaos` — gray links: a sampled subset flaps with a
  tunable period and down fraction (the failure pattern that defeats
  static failover analyses).
* :class:`SrlgChaos` — correlated failures: links are partitioned into
  shared-risk link groups (a conduit cut takes out every member).
* :class:`RegionalChaos` — a random core node and every eligible link
  within its k-hop neighborhood go dark together (regional outage).
* :class:`AdversarialChaos` — targets the live traffic: periodically
  fails the eligible link that carried the most packets since the last
  strike (worst case for deflection, which concentrates load).
* :class:`ControllerOutageChaos` — takes the controller's re-encode
  service unreachable for stochastic windows, exercising the hardened
  degradation path in :mod:`repro.switches.edge`.
* :class:`~repro.sim.adversary.DynamicLinkChaos` (mode ``"dynamic"``,
  defined in :mod:`repro.sim.adversary`) — oblivious fail+recover
  strikes on the forwarding timescale, with a sweepable schedule seed
  for worst-case search.

Every random draw comes from a named :class:`~repro.sim.rng.RngRegistry`
stream, so a chaos run is a pure function of (scenario, config, seed):
two runs with the same seed produce bit-identical event logs —
:func:`events_digest` gives a printable fingerprint to compare.

Injectors never cut host access links (chaos on the core is the
interesting regime; a severed host proves nothing) and respect a
``max_down`` budget so the core cannot be driven fully dark.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.network import Network
from repro.sim.rng import RngRegistry

__all__ = [
    "ChaosEvent",
    "ChaosInjector",
    "MtbfMttrChaos",
    "FlappingChaos",
    "SrlgChaos",
    "RegionalChaos",
    "AdversarialChaos",
    "ControllerOutageChaos",
    "events_digest",
    "CHAOS_MODES",
]

LinkKey = Tuple[str, str]


@dataclass(frozen=True)
class ChaosEvent:
    """One state flip the injector actually applied."""

    time: float
    kind: str        # "fail" | "repair" | "ctrl-down" | "ctrl-up"
    link: LinkKey    # ("<controller>", "<controller>") for control plane
    cause: str       # injector-specific annotation (group id, center, ...)

    def describe(self) -> str:
        a, b = self.link
        return f"t={self.time:.4f}s {self.kind} {a}-{b} [{self.cause}]"


def events_digest(events: Sequence[ChaosEvent]) -> str:
    """Stable fingerprint of an event log (for reproducibility checks)."""
    h = hashlib.sha256()
    for ev in events:
        h.update(
            f"{ev.time:.9f}|{ev.kind}|{ev.link[0]}|{ev.link[1]}|{ev.cause}"
            .encode("utf-8")
        )
    return h.hexdigest()[:16]


class _FlipCoordinator:
    """Applies same-instant link flips in one canonical order.

    ``_set_link`` used to flip the link immediately, so two injector
    events landing on the *same timestamp* applied in scheduler
    insertion order — an accident of who armed first.  The coordinator
    stages every requested flip instead and flushes the batch once per
    timestamp (a zero-delay post, which the engine fires before time
    can advance) in a canonical order: repairs first, then fails, each
    group sorted by link key and cause.  Repairs-before-fails is the
    conservative tie-break — when a fail and a repair of the same link
    collide on one instant, the link ends *down*, never transiently
    rescued by insertion luck.

    One coordinator per simulator, shared by all injectors; each staged
    flip remembers its owner so the event lands in the right log.
    """

    __slots__ = ("sim", "_pending")

    def __init__(self, sim):
        self.sim = sim
        self._pending: List[Tuple[bool, LinkKey, str, "ChaosInjector"]] = []

    def _effective(self, network: Network, key: LinkKey) -> bool:
        """Link state as of the staged batch (actual + pending flips)."""
        state = network.link_between(*key).up
        for up, staged_key, _, _ in self._pending:
            if staged_key == key:
                state = up
        return state

    def request(
        self, injector: "ChaosInjector", key: LinkKey, up: bool, cause: str
    ) -> bool:
        """Stage one flip; False when it would be a no-op at flush."""
        if self._effective(injector.network, key) == up:
            return False
        if not self._pending:
            self.sim.post(0.0, self._flush)
        self._pending.append((up, key, cause, injector))
        return True

    def _flush(self) -> None:
        batch = sorted(
            self._pending, key=lambda f: (not f[0], f[1], f[2])
        )
        self._pending = []
        for up, key, cause, injector in batch:
            injector._apply_flip(key, up, cause)


class ChaosInjector:
    """Base: eligible-link bookkeeping, the down budget, the event log.

    Args:
        network: the live network to torment.
        rng: named stream registry (the injector derives its streams
            from its :attr:`stream_prefix`).
        until: no new fault *starts* after this time (repairs of faults
            already in progress may land later, so a run can always
            quiesce).
        max_down: budget of concurrently-down eligible links; a fault
            that would exceed it is skipped, not queued.
        links: explicit eligible link keys; default every core–core
            link (host and edge access links are never chaos targets).
    """

    #: subclasses set this; it prefixes every RNG stream name.
    stream_prefix = "chaos"

    def __init__(
        self,
        network: Network,
        rng: RngRegistry,
        until: float,
        max_down: Optional[int] = None,
        links: Optional[Sequence[LinkKey]] = None,
    ):
        if until <= 0:
            raise ValueError(f"chaos horizon must be positive, got {until}")
        self.network = network
        self.sim = network.sim
        self.rng = rng
        self.until = until
        self.eligible: List[LinkKey] = (
            [self._canon(k) for k in links]
            if links is not None
            else network.core_link_keys()
        )
        if not self.eligible:
            raise ValueError("no eligible links for chaos injection")
        for key in self.eligible:
            network.link_between(*key)  # validate early, clear KeyError
        if max_down is None:
            max_down = max(1, len(self.eligible) // 3)
        if max_down < 1:
            raise ValueError(f"max_down must be >= 1, got {max_down}")
        self.max_down = max_down
        self.events: List[ChaosEvent] = []
        self._installed = False
        # One flip coordinator per simulator (see _FlipCoordinator):
        # injectors sharing a sim share the same staging batch, so
        # cross-injector same-instant collisions canonicalize too.
        flips = getattr(self.sim, "_chaos_flips", None)
        if flips is None:
            flips = _FlipCoordinator(self.sim)
            self.sim._chaos_flips = flips
        self._flips = flips

    # -- subclass API ---------------------------------------------------
    def install(self) -> "ChaosInjector":
        """Arm the injector on the network's simulator (once)."""
        if self._installed:
            raise RuntimeError(f"{type(self).__name__} already installed")
        self._installed = True
        self._arm()
        return self

    def _arm(self) -> None:
        raise NotImplementedError

    def _stream(self, name: str) -> random.Random:
        return self.rng.stream(f"{self.stream_prefix}:{name}")

    # -- link plumbing --------------------------------------------------
    @staticmethod
    def _canon(key: LinkKey) -> LinkKey:
        a, b = key
        return (a, b) if a <= b else (b, a)

    def _down_count(self) -> int:
        return sum(
            1 for key in self.eligible
            if not self.network.link_between(*key).up
        )

    def _budget_allows(self, extra: int = 1) -> bool:
        return self._down_count() + extra <= self.max_down

    def _set_link(self, key: LinkKey, up: bool, cause: str) -> bool:
        """Stage one link flip; no-op (False) if already in that state.

        The flip is applied by the shared :class:`_FlipCoordinator` at
        the end of the current instant, so simultaneous events land in
        a canonical order regardless of scheduler insertion.  The
        return value answers "will this flip happen?" against the
        staged state, exactly as the immediate version answered it
        against the live state.
        """
        return self._flips.request(self, self._canon(key), up, cause)

    def _apply_flip(self, key: LinkKey, up: bool, cause: str) -> None:
        """Coordinator callback: actually flip the link and log it."""
        link = self.network.link_between(*key)
        if link.up == up:
            # A same-instant sibling already left the link here (e.g. a
            # staged repair superseded by a staged fail); nothing to log.
            return
        link.set_up(up)
        self.events.append(
            ChaosEvent(
                time=self.sim.now,
                kind="repair" if up else "fail",
                link=key,
                cause=cause,
            )
        )

    # -- reporting ------------------------------------------------------
    def digest(self) -> str:
        return events_digest(self.events)

    def describe(self) -> str:
        fails = sum(1 for e in self.events if e.kind == "fail")
        repairs = sum(1 for e in self.events if e.kind == "repair")
        return (
            f"{type(self).__name__}: {len(self.events)} events "
            f"({fails} fail / {repairs} repair), digest {self.digest()}"
        )


class MtbfMttrChaos(ChaosInjector):
    """Independent exponential two-state process per eligible link.

    Each link draws time-to-failure from Exp(mean=*mtbf_s*) and
    time-to-repair from Exp(mean=*mttr_s*), from its own named stream —
    so adding or removing one link never perturbs another link's
    trajectory (the same variance-isolation property the deflection
    streams rely on).
    """

    stream_prefix = "chaos:mtbf"

    def __init__(
        self,
        network: Network,
        rng: RngRegistry,
        until: float,
        mtbf_s: float = 2.0,
        mttr_s: float = 0.5,
        **kwargs,
    ):
        super().__init__(network, rng, until, **kwargs)
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError(
                f"mtbf/mttr must be positive, got {mtbf_s}/{mttr_s}"
            )
        self.mtbf_s = mtbf_s
        self.mttr_s = mttr_s

    def _arm(self) -> None:
        for key in self.eligible:
            stream = self._stream(f"{key[0]}-{key[1]}")
            self._schedule_failure(key, stream)

    def _schedule_failure(self, key: LinkKey, stream: random.Random) -> None:
        at = self.sim.now + stream.expovariate(1.0 / self.mtbf_s)
        if at > self.until:
            return
        self.sim.schedule_at(at, self._fail, key, stream)

    def _fail(self, key: LinkKey, stream: random.Random) -> None:
        # The repair draw happens even when the budget skips the fault,
        # so one link's trajectory is independent of the others' state.
        downtime = stream.expovariate(1.0 / self.mttr_s)
        if self._budget_allows() and self._set_link(key, False, "mtbf"):
            self.sim.schedule(downtime, self._repair, key, stream)
        else:
            self._schedule_failure(key, stream)

    def _repair(self, key: LinkKey, stream: random.Random) -> None:
        self._set_link(key, True, "mttr")
        self._schedule_failure(key, stream)


class FlappingChaos(ChaosInjector):
    """Gray links that flap on a fixed period with a random phase.

    A sampled subset of *flap_count* links cycles down for
    ``period_s * down_fraction`` then up for the remainder, starting at
    a uniformly random phase so flaps interleave rather than align.
    """

    stream_prefix = "chaos:flap"

    def __init__(
        self,
        network: Network,
        rng: RngRegistry,
        until: float,
        flap_count: int = 2,
        period_s: float = 1.0,
        down_fraction: float = 0.3,
        **kwargs,
    ):
        super().__init__(network, rng, until, **kwargs)
        if period_s <= 0:
            raise ValueError(f"flap period must be positive, got {period_s}")
        if not 0.0 < down_fraction < 1.0:
            raise ValueError(
                f"down fraction must be in (0, 1), got {down_fraction}"
            )
        if flap_count < 1:
            raise ValueError(f"flap count must be >= 1, got {flap_count}")
        self.period_s = period_s
        self.down_s = period_s * down_fraction
        self.flap_count = min(flap_count, len(self.eligible))

    def _arm(self) -> None:
        picker = self._stream("pick")
        flappers = picker.sample(self.eligible, self.flap_count)
        for key in flappers:
            phase = picker.uniform(0, self.period_s)
            self.sim.schedule_at(self.sim.now + phase, self._flap_down, key)

    def _flap_down(self, key: LinkKey) -> None:
        if self.sim.now > self.until:
            return
        if self._budget_allows():
            self._set_link(key, False, "flap")
            self.sim.schedule(self.down_s, self._flap_up, key)
        else:
            # Budget full: skip this down phase, keep the cadence.
            self.sim.schedule(self.period_s, self._flap_down, key)

    def _flap_up(self, key: LinkKey) -> None:
        self._set_link(key, True, "flap")
        self.sim.schedule(self.period_s - self.down_s, self._flap_down, key)


class SrlgChaos(ChaosInjector):
    """Correlated failures via shared-risk link groups.

    Links are partitioned into *group_count* SRLGs (explicit *groups*
    override the random partition).  Group failures arrive as a Poisson
    process with mean inter-arrival *group_mtbf_s*; a strike downs every
    up member at once and repairs them together after Exp(mttr).
    """

    stream_prefix = "chaos:srlg"

    def __init__(
        self,
        network: Network,
        rng: RngRegistry,
        until: float,
        group_count: int = 3,
        group_mtbf_s: float = 1.5,
        mttr_s: float = 0.5,
        groups: Optional[Sequence[Sequence[LinkKey]]] = None,
        **kwargs,
    ):
        super().__init__(network, rng, until, **kwargs)
        if group_mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError(
                f"group mtbf/mttr must be positive, got "
                f"{group_mtbf_s}/{mttr_s}"
            )
        self.group_mtbf_s = group_mtbf_s
        self.mttr_s = mttr_s
        if groups is not None:
            self.groups: List[List[LinkKey]] = [
                [self._canon(k) for k in g] for g in groups if g
            ]
            for group in self.groups:
                for key in group:
                    network.link_between(*key)
            if not self.groups:
                raise ValueError("explicit SRLG list is empty")
        else:
            if group_count < 1:
                raise ValueError(f"need >= 1 group, got {group_count}")
            self.groups = self._partition(min(group_count, len(self.eligible)))

    def _partition(self, count: int) -> List[List[LinkKey]]:
        shuffled = list(self.eligible)
        self._stream("partition").shuffle(shuffled)
        groups: List[List[LinkKey]] = [[] for _ in range(count)]
        for i, key in enumerate(shuffled):
            groups[i % count].append(key)
        return groups

    def _arm(self) -> None:
        self._clock = self._stream("clock")
        self._schedule_strike()

    def _schedule_strike(self) -> None:
        at = self.sim.now + self._clock.expovariate(1.0 / self.group_mtbf_s)
        if at > self.until:
            return
        self.sim.schedule_at(at, self._strike)

    def _strike(self) -> None:
        group_id = self._clock.randrange(len(self.groups))
        group = self.groups[group_id]
        victims = [
            key for key in group if self.network.link_between(*key).up
        ]
        if victims and self._budget_allows(extra=len(victims)):
            cause = f"srlg-{group_id}"
            for key in victims:
                self._set_link(key, False, cause)
            downtime = self._clock.expovariate(1.0 / self.mttr_s)
            self.sim.schedule(downtime, self._repair_group, victims, cause)
        self._schedule_strike()

    def _repair_group(self, victims: List[LinkKey], cause: str) -> None:
        for key in victims:
            self._set_link(key, True, cause)


class RegionalChaos(ChaosInjector):
    """k-hop-neighborhood outages around a random core switch.

    Each strike picks a center core switch, walks *radius* hops over
    the core subgraph, and downs every eligible link touching the ball
    (radius 0 = the center's own links).  Models a site/power-domain
    loss rather than a fiber cut.
    """

    stream_prefix = "chaos:regional"

    def __init__(
        self,
        network: Network,
        rng: RngRegistry,
        until: float,
        radius: int = 1,
        strike_mtbf_s: float = 2.0,
        mttr_s: float = 0.5,
        **kwargs,
    ):
        super().__init__(network, rng, until, **kwargs)
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        if strike_mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError(
                f"strike mtbf/mttr must be positive, got "
                f"{strike_mtbf_s}/{mttr_s}"
            )
        self.radius = radius
        self.strike_mtbf_s = strike_mtbf_s
        self.mttr_s = mttr_s
        self._centers = sorted(
            {name for key in self.eligible for name in key}
        )

    def _arm(self) -> None:
        self._clock = self._stream("clock")
        self._schedule_strike()

    def _schedule_strike(self) -> None:
        at = self.sim.now + self._clock.expovariate(1.0 / self.strike_mtbf_s)
        if at > self.until:
            return
        self.sim.schedule_at(at, self._strike)

    def _ball(self, center: str) -> Set[str]:
        graph = self.network.graph
        seen = {center}
        frontier = [center]
        for _ in range(self.radius):
            nxt: List[str] = []
            for name in frontier:
                for nb in graph.core_subgraph_neighbors(name):
                    if nb not in seen:
                        seen.add(nb)
                        nxt.append(nb)
            frontier = nxt
        return seen

    def _strike(self) -> None:
        center = self._clock.choice(self._centers)
        ball = self._ball(center)
        victims = [
            key for key in self.eligible
            if (key[0] in ball or key[1] in ball)
            and self.network.link_between(*key).up
        ]
        if victims and self._budget_allows(extra=len(victims)):
            cause = f"region-{center}"
            for key in victims:
                self._set_link(key, False, cause)
            downtime = self._clock.expovariate(1.0 / self.mttr_s)
            self.sim.schedule(downtime, self._repair_region, victims, cause)
        self._schedule_strike()

    def _repair_region(self, victims: List[LinkKey], cause: str) -> None:
        for key in victims:
            self._set_link(key, True, cause)


class AdversarialChaos(ChaosInjector):
    """Strikes the link the traffic is actually using.

    Every *interval_s* the injector ranks eligible up links by packets
    carried since the last look (both directions) and fails the hottest
    one, repairing it *hold_s* later.  Deflection concentrates a flow
    onto its current detour, so this adversary chases the flow from
    detour to detour — the worst case Chiesa et al.'s adversarial model
    asks about, applied online.
    """

    stream_prefix = "chaos:adversarial"

    def __init__(
        self,
        network: Network,
        rng: RngRegistry,
        until: float,
        interval_s: float = 0.5,
        hold_s: float = 0.4,
        **kwargs,
    ):
        super().__init__(network, rng, until, **kwargs)
        if interval_s <= 0 or hold_s <= 0:
            raise ValueError(
                f"interval/hold must be positive, got {interval_s}/{hold_s}"
            )
        self.interval_s = interval_s
        self.hold_s = hold_s
        self._last_tx: Dict[LinkKey, int] = {}

    def _carried(self, key: LinkKey) -> int:
        link = self.network.link_between(*key)
        return link.stats_ab.tx_packets + link.stats_ba.tx_packets

    def _arm(self) -> None:
        self._tiebreak = self._stream("tiebreak")
        for key in self.eligible:
            self._last_tx[key] = self._carried(key)
        self.sim.schedule(self.interval_s, self._tick)

    def _tick(self) -> None:
        if self.sim.now > self.until:
            return
        deltas: List[Tuple[int, LinkKey]] = []
        for key in self.eligible:
            carried = self._carried(key)
            delta = carried - self._last_tx[key]
            self._last_tx[key] = carried
            if delta > 0 and self.network.link_between(*key).up:
                deltas.append((delta, key))
        if deltas and self._budget_allows():
            top = max(d for d, _ in deltas)
            hottest = [key for d, key in deltas if d == top]
            victim = self._tiebreak.choice(sorted(hottest))
            self._set_link(victim, False, f"hot:{top}pkts")
            self.sim.schedule(self.hold_s, self._set_link, victim, True,
                              "hold-expired")
        self.sim.schedule(self.interval_s, self._tick)


class ControllerOutageChaos(ChaosInjector):
    """Takes the controller's re-encode service down for random windows.

    Exercises the edge's hardened degradation path (timeout, bounded
    retries with backoff, drop-with-reason) instead of the dataplane.
    The *controller* only needs a ``set_reachable(bool)`` method —
    :class:`~repro.controller.controller.KarController` provides it.
    """

    stream_prefix = "chaos:controller"

    def __init__(
        self,
        network: Network,
        rng: RngRegistry,
        until: float,
        controller: object = None,
        outage_mtbf_s: float = 2.0,
        outage_s: float = 0.5,
        **kwargs,
    ):
        super().__init__(network, rng, until, **kwargs)
        if controller is None or not hasattr(controller, "set_reachable"):
            raise ValueError(
                "ControllerOutageChaos needs a controller with set_reachable()"
            )
        if outage_mtbf_s <= 0 or outage_s <= 0:
            raise ValueError(
                f"outage mtbf/duration must be positive, got "
                f"{outage_mtbf_s}/{outage_s}"
            )
        self.controller = controller
        self.outage_mtbf_s = outage_mtbf_s
        self.outage_s = outage_s

    def _arm(self) -> None:
        self._clock = self._stream("clock")
        self._schedule_outage()

    def _schedule_outage(self) -> None:
        at = self.sim.now + self._clock.expovariate(1.0 / self.outage_mtbf_s)
        if at > self.until:
            return
        self.sim.schedule_at(at, self._outage_start)

    def _outage_start(self) -> None:
        duration = self._clock.expovariate(1.0 / self.outage_s)
        self.controller.set_reachable(False)
        self.events.append(
            ChaosEvent(self.sim.now, "ctrl-down",
                       ("<controller>", "<controller>"), "outage")
        )
        self.sim.schedule(duration, self._outage_end)

    def _outage_end(self) -> None:
        self.controller.set_reachable(True)
        self.events.append(
            ChaosEvent(self.sim.now, "ctrl-up",
                       ("<controller>", "<controller>"), "outage")
        )
        self._schedule_outage()


#: CLI/experiment mode name -> injector class (controller outages are
#: composed on top via --ctrl-outage, not a standalone mode).
#: :mod:`repro.sim.adversary` registers "dynamic" on import below.
CHAOS_MODES = {
    "mtbf": MtbfMttrChaos,
    "flap": FlappingChaos,
    "srlg": SrlgChaos,
    "regional": RegionalChaos,
    "adversarial": AdversarialChaos,
}

# Imported for its side effect (CHAOS_MODES["dynamic"] registration);
# sits at the bottom so the circular import back into this module finds
# every name already bound.
import repro.sim.adversary  # noqa: E402,F401
