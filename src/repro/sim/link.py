"""Full-duplex links with serialization, propagation, queueing, failure.

A :class:`Link` joins two node ports and owns two independent
:class:`Channel` objects (one per direction).  Each channel models:

* **serialization** — packets occupy the transmitter for
  ``size * 8 / rate`` seconds,
* **drop-tail queueing** — up to ``queue_packets`` packets wait for the
  transmitter; overflow is dropped (and reported),
* **propagation** — delivered to the peer ``delay_s`` after the last
  bit is serialized,
* **failure** — a downed link drops queued and in-flight packets and
  refuses new ones; both directions share the up/down state (a cut
  fiber kills both), matching how the paper's switches observe "output
  port is under failure".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Optional

from repro.sim.engine import Simulator
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.node import Node

__all__ = ["Link", "Channel", "ChannelStats"]


@dataclass(slots=True)
class ChannelStats:
    """Per-direction counters (slotted: bumped on every transmission)."""

    tx_packets: int = 0
    tx_bytes: int = 0
    delivered_packets: int = 0
    queue_drops: int = 0
    failure_drops: int = 0


class Channel:
    """One direction of a link: serializer + drop-tail queue + pipe."""

    def __init__(
        self,
        sim: Simulator,
        rate_mbps: float,
        delay_s: float,
        queue_packets: int,
        deliver: Callable[[Packet], None],
        drop_hook: Optional[Callable[[Packet, str], None]] = None,
    ):
        self._sim = sim
        self._post = sim.post  # bound once: called twice per packet
        self._rate_bps = rate_mbps * 1e6
        self._tx_s_per_byte = 8 / self._rate_bps
        self._delay_s = delay_s
        self._capacity = queue_packets
        self._deliver = deliver
        self._drop_hook = drop_hook
        self._queue: Deque[Packet] = deque()
        self._busy = False
        self._up = True
        self._transmitting: Optional[Packet] = None
        # Packets on the wire, oldest first (propagation delay is
        # constant per channel, so the pipe is strictly FIFO).
        self._in_flight: Deque[Packet] = deque()
        self.stats = ChannelStats()

    # -- state ---------------------------------------------------------
    @property
    def up(self) -> bool:
        return self._up

    def set_up(self, up: bool) -> None:
        if up == self._up:
            return
        self._up = up
        if not up:
            # A cut loses everything queued and on the wire.  Every
            # casualty goes through the drop hook: chaos runs verify
            # packet conservation, so nothing may vanish silently.
            for pkt in self._queue:
                self._drop(pkt, "link-down")
                self.stats.failure_drops += 1
            self._queue.clear()
            if self._transmitting is not None:
                self._drop(self._transmitting, "link-down")
                self.stats.failure_drops += 1
                self._transmitting = None
            for pkt in self._in_flight:
                self._drop(pkt, "link-down")
                self.stats.failure_drops += 1
            self._in_flight.clear()
            self._busy = False

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- datapath ------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Enqueue *packet* for transmission.

        Returns False (and drops) when the channel is down or the queue
        is full — the caller has already committed the packet to this
        port, as a real switch ASIC would have.
        """
        if not self._up:
            self._drop(packet, "link-down")
            self.stats.failure_drops += 1
            return False
        if self._busy:
            if len(self._queue) >= self._capacity:
                self._drop(packet, "queue-overflow")
                self.stats.queue_drops += 1
                return False
            self._queue.append(packet)
            return True
        self._transmit(packet)
        return True

    def _transmit(self, packet: Packet) -> None:
        self._busy = True
        self._transmitting = packet
        size = packet.size_bytes
        stats = self.stats
        stats.tx_packets += 1
        stats.tx_bytes += size
        # Serializer completions are never cancelled (link-down is
        # handled by the identity check in _tx_done), so they take the
        # engine's no-allocation post() path.
        self._post(size * self._tx_s_per_byte, self._tx_done, packet)

    def _tx_done(self, packet: Packet) -> None:
        if packet is not self._transmitting:
            # State flipped mid-serialization: the packet was dropped
            # (and accounted) by set_up, even if the link has already
            # been repaired by now — an interrupted serialization never
            # resumes.
            return
        self._transmitting = None
        # Arrival events are posted handle-free; a link-down empties the
        # pipe (dropping and accounting every casualty), and the
        # identity check in _arrive ignores the stale events.
        self._post(self._delay_s, self._arrive, packet)
        self._in_flight.append(packet)
        if self._queue:
            self._transmit(self._queue.popleft())
        else:
            self._busy = False

    def _arrive(self, packet: Packet) -> None:
        pipe = self._in_flight
        if not pipe or pipe[0] is not packet:
            # Stale: this packet was dropped (and accounted) by set_up
            # while it was on the wire.
            return
        pipe.popleft()
        self.stats.delivered_packets += 1
        self._deliver(packet)

    def _drop(self, packet: Packet, reason: str) -> None:
        if self._drop_hook is not None:
            self._drop_hook(packet, reason)


class Link:
    """A full-duplex link between (node_a, port_a) and (node_b, port_b)."""

    def __init__(
        self,
        sim: Simulator,
        node_a: "Node",
        port_a: int,
        node_b: "Node",
        port_b: int,
        rate_mbps: float = 100.0,
        delay_s: float = 0.001,
        queue_packets: int = 50,
        drop_hook: Optional[Callable[[Packet, str], None]] = None,
    ):
        self.node_a, self.port_a = node_a, port_a
        self.node_b, self.port_b = node_b, port_b
        self.rate_mbps = rate_mbps
        self._up = True
        self._ab = Channel(
            sim, rate_mbps, delay_s, queue_packets,
            deliver=lambda p: node_b.receive(p, port_b),
            drop_hook=drop_hook,
        )
        self._ba = Channel(
            sim, rate_mbps, delay_s, queue_packets,
            deliver=lambda p: node_a.receive(p, port_a),
            drop_hook=drop_hook,
        )
        node_a.attach(port_a, self)
        node_b.attach(port_b, self)

    @property
    def up(self) -> bool:
        return self._up

    def set_up(self, up: bool) -> None:
        """Bring the link up/down; notifies both endpoint nodes."""
        if up == self._up:
            return
        self._up = up
        self._ab.set_up(up)
        self._ba.set_up(up)
        # Invalidate cached port state *before* the hooks run: a hook
        # (or anything it schedules) may query healthy_ports(), and
        # instance-level on_link_state overrides (the notification
        # service installs one) must not bypass invalidation.
        self.node_a.ports_changed()
        self.node_b.ports_changed()
        self.node_a.on_link_state(self.port_a, up)
        self.node_b.on_link_state(self.port_b, up)

    def channel_from(self, node: "Node") -> Channel:
        if node is self.node_a:
            return self._ab
        if node is self.node_b:
            return self._ba
        raise ValueError(f"{node!r} is not an endpoint of this link")

    def peer_of(self, node: "Node") -> "Node":
        if node is self.node_a:
            return self.node_b
        if node is self.node_b:
            return self.node_a
        raise ValueError(f"{node!r} is not an endpoint of this link")

    @property
    def stats_ab(self) -> ChannelStats:
        return self._ab.stats

    @property
    def stats_ba(self) -> ChannelStats:
        return self._ba.stats
