"""Packet tracing and drop accounting.

The tracer is the simulator's ``tcpdump``: switches and edges report
forwarding decisions, deflections, drops and deliveries to it.  It is
optional (pass ``None`` for speed) and purely observational — attaching
a tracer never changes behaviour.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.packet import Packet

__all__ = ["PacketTracer", "HopRecord", "DropRecord"]


@dataclass(frozen=True)
class HopRecord:
    """One forwarding decision for one packet."""

    time: float
    node: str
    in_port: int
    out_port: int
    deflected: bool


@dataclass(frozen=True)
class DropRecord:
    time: float
    node: str
    reason: str
    packet_uid: int


@dataclass
class PacketTracer:
    """Collects per-packet hop lists, drops, and deliveries.

    Attributes:
        trace_paths: when False, only aggregate counters are kept (cheap
            enough for full experiment runs); when True, full per-packet
            hop lists are retained (for path-level assertions in tests).
    """

    trace_paths: bool = False
    forward_count: int = 0
    deflection_count: int = 0
    delivered_count: int = 0
    drop_reasons: Counter = field(default_factory=Counter)
    hop_histogram: Counter = field(default_factory=Counter)
    _paths: Dict[int, List[HopRecord]] = field(default_factory=dict)
    drops: List[DropRecord] = field(default_factory=list)
    deliveries: Dict[int, Tuple[float, str]] = field(default_factory=dict)

    # -- hooks called by the dataplane ----------------------------------
    def on_forward(
        self,
        time: float,
        node: str,
        packet: Packet,
        in_port: int,
        out_port: int,
        deflected: bool,
    ) -> None:
        self.forward_count += 1
        if deflected:
            self.deflection_count += 1
        if self.trace_paths:
            self._paths.setdefault(packet.uid, []).append(
                HopRecord(time, node, in_port, out_port, deflected)
            )

    def on_drop(self, time: float, node: str, packet: Packet, reason: str) -> None:
        self.drop_reasons[reason] += 1
        if self.trace_paths:
            self.drops.append(DropRecord(time, node, reason, packet.uid))

    def on_deliver(self, time: float, host: str, packet: Packet) -> None:
        self.delivered_count += 1
        self.hop_histogram[packet.hops] += 1
        if self.trace_paths:
            self.deliveries[packet.uid] = (time, host)

    # -- queries ---------------------------------------------------------
    def path_of(self, packet_uid: int) -> List[HopRecord]:
        if not self.trace_paths:
            raise RuntimeError("tracer was created with trace_paths=False")
        return self._paths.get(packet_uid, [])

    def switch_sequence(self, packet_uid: int) -> List[str]:
        """Node names a packet visited, in order."""
        return [h.node for h in self.path_of(packet_uid)]

    @property
    def total_drops(self) -> int:
        return sum(self.drop_reasons.values())

    def mean_hops(self) -> Optional[float]:
        total = sum(self.hop_histogram.values())
        if total == 0:
            return None
        return sum(h * c for h, c in self.hop_histogram.items()) / total

    def max_hops(self) -> Optional[int]:
        if not self.hop_histogram:
            return None
        return max(self.hop_histogram)
