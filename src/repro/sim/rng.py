"""Named, seeded random-number streams.

Every stochastic component in the simulator (each switch's deflection
choices, failure jitter, application start offsets) draws from its own
named stream derived from one root seed.  Two benefits:

* **Reproducibility** — a run is a pure function of (scenario, seed).
* **Variance isolation** — changing one component's draws (e.g. a
  different deflection technique) does not perturb the streams of
  unrelated components, which keeps paired experiment comparisons tight.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory for named :class:`random.Random` streams under one root seed.

    The per-stream seed is derived by hashing ``(root_seed, name)`` with
    SHA-256, so streams are statistically independent and stable across
    Python versions (unlike ``hash()``, which is salted).
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def spawn(self, salt: int) -> "RngRegistry":
        """A registry with a seed derived from this one (for sub-runs)."""
        return RngRegistry(self.root_seed * 1_000_003 + salt)
