"""The datapath fast-path switch: one flag, two cost profiles.

KAR's premise is that the per-hop operation — ``R mod switch_id`` — is
trivially cheap in hardware.  The emulation should have the same cost
profile, so the hot datapath keeps two implementations:

* the **reference path** — the original, straight-line code: a big-int
  modulo per hop, a fresh healthy-ports list per deflection decision, a
  ``Decision`` object per packet;
* the **fast path** — residue hints/caches, a cached healthy-ports
  tuple invalidated on link flips, and an allocation-free happy path.

Both are *bit-identical* by construction: same event order, same RNG
draws, same run digests.  The equivalence suite
(``tests/integration/test_fastpath_equivalence.py``) enforces this on
random topologies, and ``repro bench sim`` re-checks digests on every
benchmark run before reporting a speedup.

The flag is sampled once per object at construction time (switches and
nodes snapshot it), so toggling mid-run never leaves a simulation half
switched.  Use the context manager to build a reference-mode run::

    from repro.sim.fastpath import use_fastpath

    with use_fastpath(False):
        ks = KarSimulation(scenario, ...)   # reference datapath
    ks.run(until=...)                       # mode already baked in

The fast path is ON by default — it is the production datapath; the
reference path is retained for benchmarking and equivalence testing.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["fastpath_enabled", "set_fastpath", "use_fastpath"]

_enabled = True


def fastpath_enabled() -> bool:
    """Whether newly built datapath objects use the fast path."""
    return _enabled


def set_fastpath(enabled: bool) -> bool:
    """Set the global flag; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def use_fastpath(enabled: bool) -> Iterator[None]:
    """Temporarily force the flag (build-time scope, see module docs)."""
    previous = set_fastpath(enabled)
    try:
        yield
    finally:
        set_fastpath(previous)
