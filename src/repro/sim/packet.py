"""Packet and header models.

A packet carries:

* host-layer addressing (source/destination host names — standing in
  for IP addresses, which KAR route IDs are "completely decoupled
  from"),
* the KAR header (route ID + deflected flag + TTL), attached by the
  ingress edge and stripped at the egress edge,
* a transport payload (a TCP segment or UDP datagram object),
* bookkeeping (unique ID, creation time, hop count) used by tracing and
  metrics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

__all__ = ["KarHeader", "Packet", "DEFAULT_TTL"]

#: Default KAR hop limit.  The paper does not state one; random-walk
#: deflections (Hot-Potato) need a TTL to terminate, and 64 matches the
#: common IP default.
DEFAULT_TTL = 64

_uid_counter = itertools.count(1)


@dataclass(slots=True)
class KarHeader:
    """The KAR shim header.

    Attributes:
        route_id: the CRT-encoded route (``R``).
        modulus: product of the encoded switch IDs — not carried on the
            wire (switches never need it) but kept for header-size
            accounting (Eq. 9) and debugging.
        deflected: set by the first deflection; Hot-Potato switches treat
            flagged packets as pure random-walkers.
        ttl: remaining hop budget; decremented per core switch.
        residues: optional ``switch_id -> residue`` hint precomputed at
            encode time.  Not on the wire either — in hardware the
            modulo is free, so the emulation is allowed to remember
            ``R mod s_i`` instead of redoing big-int arithmetic per
            hop.  Purely an acceleration: ``residues[s] == route_id % s``
            for every encoded switch, so behaviour is bit-identical.
    """

    route_id: int
    modulus: int = 0
    deflected: bool = False
    ttl: int = DEFAULT_TTL
    residues: Optional[Mapping[int, int]] = None

    @property
    def header_bits(self) -> int:
        """Wire size of the route-ID field for this route (Eq. 9)."""
        if self.modulus < 2:
            return max(1, self.route_id.bit_length())
        from repro.rns.bitlength import route_id_bit_length

        return route_id_bit_length(self.modulus)


@dataclass(slots=True)
class Packet:
    """One simulated packet.

    ``size_bytes`` is the full on-wire size (headers + payload) and
    drives serialization delay; the KAR header's extra bits are already
    expected to be included by the sender's accounting.
    """

    src_host: str
    dst_host: str
    size_bytes: int
    payload: Any = None
    kar: Optional[KarHeader] = None
    created_at: float = 0.0
    uid: int = field(default_factory=lambda: next(_uid_counter))
    hops: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")

    def clone_for_retransmit(self) -> "Packet":
        """A fresh packet carrying the same payload (new uid, no header).

        Used by transports on retransmission: the network treats it as a
        brand-new packet (it is one on the wire).
        """
        return Packet(
            src_host=self.src_host,
            dst_host=self.dst_host,
            size_bytes=self.size_bytes,
            payload=self.payload,
            created_at=self.created_at,
        )

    def __repr__(self) -> str:  # compact, for traces
        kar = ""
        if self.kar is not None:
            kar = f" R={self.kar.route_id}{'*' if self.kar.deflected else ''}"
        return (
            f"<pkt#{self.uid} {self.src_host}->{self.dst_host} "
            f"{self.size_bytes}B{kar}>"
        )
