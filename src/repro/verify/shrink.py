"""Greedy scenario shrinking for divergence repros.

When an oracle reports a divergence on a fuzz case, the raw case is
rarely the story: a 14-switch topology with three timed failures and a
few hundred packets obscures the two links and one decision that
actually disagree.  :func:`shrink_case` walks the case toward a local
minimum — dropping failures, removing chord links, shrinking the
switch count and the coprime pool, shortening traffic — re-checking
the divergence after every candidate step and keeping only steps that
still fail.

The shrinker is oracle-agnostic: it takes a ``still_fails`` predicate
(usually "rerun the diverging oracle on this case"), so it works the
same for a datapath mismatch and for an injected strategy mutation.
Candidates that produce unbuildable cases (a failure link that no
longer exists after regeneration, a degree exceeding the shrunken
coprime pool) are skipped, not counted as passes.
"""

from __future__ import annotations

from typing import Callable, Iterator, List

from repro.verify.cases import FuzzCase, case_is_buildable

__all__ = ["shrink_case"]

#: the coprime-pool ladder candidates may descend (mirrors generate_case).
_MIN_ID_LADDER = (79, 41, 23, 11)

#: hard ceiling on predicate evaluations per shrink (each may rerun a
#: full oracle, so this bounds shrink cost).
_DEFAULT_BUDGET = 60


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """One-step simplifications of *case*, most aggressive first."""
    # Remove failures one at a time (and all at once when several).
    if len(case.failures) > 1:
        yield case.with_(failures=())
    for i in range(len(case.failures)):
        yield case.with_(
            failures=case.failures[:i] + case.failures[i + 1:]
        )
    # Make unrepaired failures out of repaired ones (simpler schedule).
    for i, (a, b, at, repair) in enumerate(case.failures):
        if repair is not None:
            yield case.with_(
                failures=case.failures[:i]
                + ((a, b, at, None),)
                + case.failures[i + 1:]
            )
    # Smaller topology: fewer chords, then fewer switches.
    if case.extra_links > 0:
        yield case.with_(extra_links=case.extra_links // 2)
        yield case.with_(extra_links=case.extra_links - 1)
    if case.num_switches > 3:
        yield case.with_(num_switches=case.num_switches - 1)
    if case.num_switches > 6:
        yield case.with_(num_switches=max(3, case.num_switches // 2))
    # Smaller coprime pool (smaller switch IDs, shorter route IDs).
    for lower in _MIN_ID_LADDER:
        if lower < case.min_switch_id:
            yield case.with_(min_switch_id=lower)
            break
    # Less traffic, shorter runs, smaller hop budget.
    if case.rate_pps > 5:
        yield case.with_(rate_pps=max(5.0, case.rate_pps / 2))
    if case.traffic_s > 0.05:
        yield case.with_(traffic_s=round(max(0.05, case.traffic_s / 2), 3))
    if case.ttl > 4:
        yield case.with_(ttl=max(4, case.ttl // 2))


def shrink_case(
    case: FuzzCase,
    still_fails: Callable[[FuzzCase], bool],
    budget: int = _DEFAULT_BUDGET,
) -> FuzzCase:
    """Greedily minimize *case* while ``still_fails`` holds.

    Returns the smallest failing case found (possibly the input).  The
    predicate is never called on unbuildable candidates; predicate
    exceptions are treated as "does not fail" so a shrink step can
    never turn one bug into a crash loop.
    """
    current = case
    spent = 0
    improved = True
    while improved and spent < budget:
        improved = False
        for candidate in _candidates(current):
            if spent >= budget:
                break
            if not case_is_buildable(candidate):
                continue
            spent += 1
            try:
                fails = still_fails(candidate)
            except Exception:
                fails = False
            if fails:
                current = candidate
                improved = True
                break
    return current
