"""Differential verification: cross-oracle fuzzing of the KAR stack.

Chiesa et al. and Dai & Foerster both show that failover-routing
correctness fails on *adversarial combinations* of topology and
failures, not on the examples papers print.  This package searches for
such combinations mechanically: seeded random scenarios are replayed
through independent oracle pairs (reference vs fast datapath, strategy
implementations vs paper pseudocode, wire codec vs in-memory headers,
event simulator vs pure-graph walk model), divergences are shrunk to
minimal cases, and every repro is a replayable JSON artifact.

Entry points: ``repro verify --trials N --seed S [--shrink]`` on the
command line, :func:`~repro.verify.harness.run_verify` in code.
"""

from repro.verify.artifact import (
    artifact_record,
    load_artifact,
    replay_artifact,
    write_artifact,
)
from repro.verify.cases import FuzzCase, build_scenario, generate_case
from repro.verify.harness import (
    VerifyOutcome,
    render_verify,
    run_trial_record,
    run_verify,
)
from repro.verify.oracles import (
    ORACLE_NAMES,
    Divergence,
    OracleResult,
    check_datapaths,
    check_strategy,
    check_walk,
    check_wire,
    run_case,
    run_oracle,
)
from repro.verify.pseudocode import PSEUDOCODE
from repro.verify.shrink import shrink_case

__all__ = [
    "FuzzCase",
    "generate_case",
    "build_scenario",
    "PSEUDOCODE",
    "Divergence",
    "OracleResult",
    "ORACLE_NAMES",
    "check_datapaths",
    "check_strategy",
    "check_wire",
    "check_walk",
    "run_oracle",
    "run_case",
    "shrink_case",
    "artifact_record",
    "write_artifact",
    "load_artifact",
    "replay_artifact",
    "run_trial_record",
    "run_verify",
    "render_verify",
    "VerifyOutcome",
]
