"""Replayable divergence artifacts.

A divergence artifact is a small canonical-JSON file holding the
(usually shrunk) fuzz case, the oracle that disagreed, and the
recorded details.  It is self-contained: ``repro verify --replay
FILE`` (or :func:`replay_artifact` programmatically) rebuilds the
scenario from the case record and reruns the named oracle, so a
counterexample found in CI reproduces on any checkout.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Mapping, Optional

from repro.farm.spec import canonical_json
from repro.switches.deflection import DeflectionStrategy
from repro.verify.cases import FuzzCase
from repro.verify.oracles import OracleResult, run_oracle

__all__ = [
    "ARTIFACT_FORMAT",
    "artifact_record",
    "write_artifact",
    "load_artifact",
    "replay_artifact",
]

ARTIFACT_FORMAT = 1


def artifact_record(
    oracle: str,
    case: FuzzCase,
    details: list,
    original_case: Optional[FuzzCase] = None,
) -> Dict[str, Any]:
    """Build the JSON-able artifact payload for one divergence."""
    record: Dict[str, Any] = {
        "format": ARTIFACT_FORMAT,
        "oracle": oracle,
        "case": case.to_record(),
        "details": list(details),
        "replay": "python -m repro verify --replay <this-file>",
    }
    if original_case is not None and original_case != case:
        record["unshrunk_case"] = original_case.to_record()
    return record


def write_artifact(path: str, record: Mapping[str, Any]) -> str:
    """Write an artifact file (creating parent directories)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(canonical_json(dict(record)))
        f.write("\n")
    return path


def load_artifact(path: str) -> Dict[str, Any]:
    """Load and validate an artifact file."""
    import json

    with open(path, "r", encoding="utf-8") as f:
        record = json.load(f)
    if record.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path}: unsupported artifact format "
            f"{record.get('format')!r} (expected {ARTIFACT_FORMAT})"
        )
    for key in ("oracle", "case"):
        if key not in record:
            raise ValueError(f"{path}: artifact missing {key!r}")
    return record


def replay_artifact(
    record: Mapping[str, Any],
    strategy: Optional[DeflectionStrategy] = None,
) -> OracleResult:
    """Rerun an artifact's oracle on its stored case.

    Returns the fresh :class:`OracleResult`: divergences present means
    the bug still reproduces; an empty list means it is fixed (or the
    strategy mutation that produced it is not injected).
    """
    case = FuzzCase.from_record(record["case"])
    return run_oracle(record["oracle"], case, strategy=strategy)
