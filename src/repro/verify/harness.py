"""The ``repro verify`` driver: trials through the farm, shrink, report.

One *trial* is one fuzz case run through the selected oracles.  Trials
are independent and pure in their seed, so they ship through the farm
executor (:mod:`repro.farm`) like any other job kind and parallelize
across workers.  Divergent trials are then shrunk **in the parent
process** (shrinking is sequential by nature — each step depends on
the last verdict) and written out as replayable JSON artifacts.

Caching note: verify results are deliberately *not* cached by default.
A farm cache key covers the spec, not the code under test, so a cached
"no divergence" from before a code change would be a false clean bill.
Pass an explicit cache dir only when that is understood.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.farm.executor import FarmOptions, run_specs
from repro.farm.jobs import verify_spec
from repro.verify.artifact import artifact_record, write_artifact
from repro.verify.cases import FuzzCase, generate_case
from repro.verify.oracles import ORACLE_NAMES, run_case, run_oracle
from repro.verify.shrink import shrink_case

__all__ = [
    "TrialDivergence",
    "VerifyOutcome",
    "run_trial_record",
    "run_verify",
    "render_verify",
]


def trial_seed(seed: int, index: int) -> int:
    """The per-trial seed: decoupled from trial count, stable across
    --trials values (trial 7 of 25 == trial 7 of 100)."""
    return seed * 1_000_003 + index


def run_trial_record(
    seed: int, oracles: Optional[Sequence[str]] = None
) -> Dict[str, Any]:
    """One farm job: generate the case, run the oracles, record all.

    This is the ``verify`` job kind's body (see
    :mod:`repro.farm.jobs`); the record is JSON-able so it caches and
    ships across process boundaries like every other farm result.
    """
    case = generate_case(seed)
    results = run_case(case, oracles)
    return {
        "trial_seed": seed,
        "case": case.to_record(),
        "oracles": {
            name: result.to_record() for name, result in results.items()
        },
    }


@dataclass(frozen=True)
class TrialDivergence:
    """One diverging (oracle, case) pair, after optional shrinking."""

    oracle: str
    case: FuzzCase
    shrunk_case: FuzzCase
    details: tuple
    artifact_path: Optional[str] = None


@dataclass
class VerifyOutcome:
    """Aggregate result of a verify run."""

    trials: int
    seed: int
    checks: Dict[str, int] = field(default_factory=dict)
    divergences: List[TrialDivergence] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def total_checks(self) -> int:
        return sum(self.checks.values())


def _shrink_and_archive(
    oracle: str,
    case: FuzzCase,
    details: Sequence[Mapping[str, Any]],
    shrink: bool,
    artifact_dir: Optional[str],
) -> TrialDivergence:
    shrunk = case
    if shrink:
        shrunk = shrink_case(
            case,
            lambda c: bool(run_oracle(oracle, c).divergences),
        )
    final_details = tuple(d["detail"] for d in details)
    if shrunk != case:
        # Details refer to the shrunk repro the artifact carries.
        rerun = run_oracle(oracle, shrunk)
        final_details = tuple(d.detail for d in rerun.divergences)
    path = None
    if artifact_dir is not None:
        path = os.path.join(
            artifact_dir, f"divergence-{oracle}-seed{case.seed}.json"
        )
        write_artifact(
            path,
            artifact_record(
                oracle, shrunk, list(final_details), original_case=case
            ),
        )
    return TrialDivergence(
        oracle=oracle,
        case=case,
        shrunk_case=shrunk,
        details=final_details,
        artifact_path=path,
    )


def run_verify(
    trials: int,
    seed: int = 0,
    oracles: Optional[Sequence[str]] = None,
    shrink: bool = False,
    artifact_dir: Optional[str] = "verify-artifacts",
    farm: Optional[FarmOptions] = None,
) -> VerifyOutcome:
    """Run *trials* fuzz cases through the oracle matrix.

    Artifacts are only written for divergences, so a clean run leaves
    no ``artifact_dir`` behind.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    names = tuple(oracles) if oracles else ORACLE_NAMES
    for name in names:
        if name not in ORACLE_NAMES:
            raise ValueError(
                f"unknown oracle {name!r}; choose from {ORACLE_NAMES}"
            )
    started = time.perf_counter()
    specs = [
        verify_spec(trial_seed(seed, i), oracles=names)
        for i in range(trials)
    ]
    records = run_specs(specs, farm, label="verify")
    outcome = VerifyOutcome(trials=trials, seed=seed,
                            checks={name: 0 for name in names})
    for record in records:
        case = FuzzCase.from_record(record["case"])
        for name, oracle_rec in record["oracles"].items():
            outcome.checks[name] = (
                outcome.checks.get(name, 0) + oracle_rec["checks"]
            )
            if oracle_rec["divergences"]:
                outcome.divergences.append(
                    _shrink_and_archive(
                        name, case, oracle_rec["divergences"],
                        shrink, artifact_dir,
                    )
                )
    outcome.elapsed_s = time.perf_counter() - started
    return outcome


def render_verify(outcome: VerifyOutcome) -> str:
    """Human-readable summary (the CLI's output)."""
    lines = [
        f"verify: {outcome.trials} trials (seed {outcome.seed}), "
        f"{outcome.total_checks} checks in {outcome.elapsed_s:.1f}s"
    ]
    for name in sorted(outcome.checks):
        diverged = sum(
            1 for d in outcome.divergences if d.oracle == name
        )
        status = "ok" if diverged == 0 else f"{diverged} DIVERGENT"
        lines.append(
            f"  {name:<10} {outcome.checks[name]:>8} checks   {status}"
        )
    if outcome.ok:
        lines.append("no divergences: all oracle pairs agree")
        return "\n".join(lines)
    lines.append("")
    for d in outcome.divergences:
        lines.append(
            f"DIVERGENCE [{d.oracle}] trial seed {d.case.seed}"
        )
        shrunk = d.shrunk_case
        lines.append(
            f"  shrunk to: {shrunk.num_switches} switches, "
            f"{shrunk.extra_links} chords, {len(shrunk.failures)} "
            f"failures, ttl {shrunk.ttl}, "
            f"{shrunk.rate_pps:g}pps x {shrunk.traffic_s:g}s"
        )
        for detail in d.details[:3]:
            lines.append(f"    {detail}")
        if len(d.details) > 3:
            lines.append(f"    ... and {len(d.details) - 3} more")
        if d.artifact_path:
            lines.append(f"  artifact: {d.artifact_path}")
    return "\n".join(lines)
