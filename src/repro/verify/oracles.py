"""The differential oracles.

Each oracle takes a :class:`~repro.verify.cases.FuzzCase` and replays
it through two *independent* evaluations of the same semantics, then
diffs the outcomes:

* ``datapath`` — the reference datapath vs the fast datapath
  (:mod:`repro.sim.fastpath`): full outcome digest (per-switch
  counters, drop reasons, event counts, RNG stream positions) plus
  hop-by-hop per-packet traces.
* ``strategy`` — each deflection strategy implementation vs the
  paper-pseudocode transcription (:mod:`repro.verify.pseudocode`),
  decision by decision, and the ``fast_port``/``fast_fallback`` split
  vs ``select_port``, including RNG stream identity.
* ``wire`` — the :mod:`repro.rns.wire` codec vs in-memory
  :class:`~repro.sim.packet.KarHeader` semantics: round trips, the
  encode/decode inverse pair on arbitrary bytes, truncation at every
  offset, and TTL decrement points against the core switch's expiry
  rule.
* ``walk`` — the event simulator's per-packet delivery/loop verdicts
  vs the pure-graph walk model
  (:func:`repro.analysis.walk.deterministic_route_walk`), for the
  controller's real route, a fuzzed route ID that wanders, and the
  stateful failover baselines (``ff``/``arb`` from
  :mod:`repro.baselines`, walked by
  :func:`~repro.analysis.walk.deterministic_strategy_walk` with the
  very strategy tables the simulator runs).
* ``encoder`` — the amortized control-plane encoders
  (:class:`~repro.rns.pool.PoolContext` /
  :class:`~repro.rns.pool.PooledEncoder` /
  :class:`~repro.rns.pool.ReencodeDelta`) vs the reference
  :func:`~repro.rns.crt.crt` solver on the case's switch-ID pool:
  fuzzed subsets, mutation chains, identity mutations, off-pool
  fallback, and error parity on malformed systems.
* ``vector`` — the vectorized and sharded epoch engines vs the
  reference per-event KarSwitch engine: records, digests, hop traces
  and terminal fates.
* ``backend`` — every pluggable encoding backend
  (:data:`repro.rns.backends.BACKEND_NAMES`) vs the reference
  semantics: encoder contract fuzzing, bit-identical integer datapath
  digests, and XSR's full-sim walk-model equivalence.

Every oracle returns an :class:`OracleResult`; a non-empty
``divergences`` list means the two sides disagreed, and the attached
details say exactly where.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.walk import (
    deterministic_route_walk,
    deterministic_strategy_walk,
)
from repro.baselines import BASELINE_SCHEMES, plan_baseline_strategies
from repro.rns.crt import CrtError, NotCoprimeError, crt
from repro.rns.encoder import Hop, RouteEncoder
from repro.rns.pool import PoolContext, PooledEncoder, ReencodeDelta
from repro.rns.wire import (
    WireError,
    decode_header,
    encode_header,
    header_wire_size,
)
from repro.runner import KarSimulation
from repro.sim.fastpath import use_fastpath
from repro.sim.packet import KarHeader, Packet
from repro.switches.core import KarSwitch
from repro.switches.deflection import DeflectionStrategy, strategy_by_name
from repro.switches.edge import IngressEntry
from repro.topology.graph import NodeKind
from repro.verify.cases import FuzzCase, build_graph, build_scenario
from repro.verify.pseudocode import PSEUDOCODE

__all__ = [
    "Divergence",
    "OracleResult",
    "ORACLE_NAMES",
    "check_datapaths",
    "check_strategy",
    "check_wire",
    "check_walk",
    "check_encoder",
    "check_backend",
    "run_oracle",
    "run_case",
]

#: decision-fuzz trials per case in the strategy oracle.
_STRATEGY_TRIALS = 150

#: random headers per case in the wire oracle.
_WIRE_TRIALS = 80

#: fuzzed subset/mutation trials per case in the encoder oracle.
_ENCODER_TRIALS = 40


@dataclass(frozen=True)
class Divergence:
    """One disagreement between an oracle's two sides."""

    oracle: str
    detail: str

    def to_record(self) -> Dict[str, Any]:
        return {"oracle": self.oracle, "detail": self.detail}


@dataclass
class OracleResult:
    """Outcome of one oracle over one case."""

    oracle: str
    checks: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def check(self, condition: bool, detail: Callable[[], str]) -> bool:
        """Count one comparison; record a divergence when it fails.

        *detail* is lazy so passing traces don't pay for formatting.
        """
        self.checks += 1
        if not condition:
            self.divergences.append(Divergence(self.oracle, detail()))
        return condition

    def to_record(self) -> Dict[str, Any]:
        return {
            "oracle": self.oracle,
            "checks": self.checks,
            "divergences": [d.to_record() for d in self.divergences],
        }


# ---------------------------------------------------------------------------
# (a) reference datapath vs fast datapath
# ---------------------------------------------------------------------------

def _run_case_sim(
    case: FuzzCase,
    scenario,
    deflection,
    ttl: int,
    backend: Optional[str] = None,
) -> Tuple[KarSimulation, Any, Any]:
    ks = KarSimulation(
        scenario, deflection=deflection, protection="none",
        seed=case.seed, ttl=ttl, trace_paths=True, backend=backend,
    )
    src, sink = ks.add_udp_probe(
        rate_pps=case.rate_pps, duration_s=case.traffic_s
    )
    src.start(at=0.02)
    for a, b, at, repair in case.failures:
        ks.schedule_failure(a, b, at=at, repair_at=repair)
    ks.run(until=case.traffic_s + 1.5)
    return ks, src, sink


def _outcome_record(ks: KarSimulation, src, sink) -> Dict[str, Any]:
    """The full digestable outcome of one run — the bit-identical
    contract: counters, drop reasons, event order, RNG positions."""
    switches = {}
    rng_fp = hashlib.sha256()
    for info in sorted(ks.scenario.graph.nodes(NodeKind.CORE),
                       key=lambda i: i.name):
        sw = ks.network.node(info.name)
        assert isinstance(sw, KarSwitch)
        switches[info.name] = (sw.forwarded, sw.deflections, sw.drops)
        rng_fp.update(repr(sw._rng.getstate()).encode("utf-8"))
    return {
        "sent": src.sent,
        "received": sink.received,
        "events": ks.sim.events_processed,
        "drop_reasons": dict(sorted(ks.tracer.drop_reasons.items())),
        "switches": switches,
        "rng_fingerprint": rng_fp.hexdigest()[:16],
    }


def check_datapaths(case: FuzzCase) -> OracleResult:
    """Reference vs fast datapath on the full case (oracle a)."""
    result = OracleResult("datapath")
    scenario = build_scenario(case)
    with use_fastpath(False):
        ks_ref, src, sink = _run_case_sim(
            case, scenario, case.strategy, case.ttl
        )
        ref = _outcome_record(ks_ref, src, sink)
    ref_paths = ks_ref.tracer._paths
    with use_fastpath(True):
        ks_fast, src, sink = _run_case_sim(
            case, scenario, case.strategy, case.ttl
        )
        fast = _outcome_record(ks_fast, src, sink)
    fast_paths = ks_fast.tracer._paths

    for key in ref:
        result.check(
            fast[key] == ref[key],
            lambda key=key: (
                f"outcome[{key}] differs: reference={ref[key]!r} "
                f"fast={fast[key]!r}"
            ),
        )
    # Hop-by-hop digest: every packet must take the same ports with the
    # same deflected flags at the same times.  Packet uids come from a
    # process-global counter, so traces pair up in uid order.
    if result.check(
        len(fast_paths) == len(ref_paths),
        lambda: (
            f"traced packet count differs: reference={len(ref_paths)} "
            f"fast={len(fast_paths)}"
        ),
    ):
        for ref_uid, fast_uid in zip(sorted(ref_paths), sorted(fast_paths)):
            result.check(
                fast_paths[fast_uid] == ref_paths[ref_uid],
                lambda r=ref_uid, f=fast_uid: (
                    f"hop trace differs for packet pair ref#{r}/fast#{f}: "
                    f"reference={ref_paths[r]!r} fast={fast_paths[f]!r}"
                ),
            )
    return result


# ---------------------------------------------------------------------------
# (b) strategy implementations vs paper pseudocode
# ---------------------------------------------------------------------------

class _FuzzPortView:
    """A bare PortView: N ports, a subset of them healthy."""

    __slots__ = ("num_ports", "_up")

    def __init__(self, num_ports: int, up: Sequence[int]):
        self.num_ports = num_ports
        self._up = frozenset(up)

    def port_up(self, port: int) -> bool:
        return port in self._up

    def healthy_ports(self) -> Tuple[int, ...]:
        return tuple(p for p in range(self.num_ports) if p in self._up)


def check_strategy(
    case: FuzzCase,
    strategy: Optional[DeflectionStrategy] = None,
) -> OracleResult:
    """Implementation vs pseudocode, decision by decision (oracle b).

    *strategy* overrides the case's strategy instance — the hook the
    harness's self-test uses to prove a mutated strategy is caught.
    """
    result = OracleResult("strategy")
    impl = strategy if strategy is not None else strategy_by_name(case.strategy)
    spec = PSEUDOCODE[case.strategy]
    rng = random.Random(f"verify-strategy-{case.seed}")
    for trial in range(_STRATEGY_TRIALS):
        num_ports = rng.randrange(2, 9)
        up = frozenset(
            p for p in range(num_ports) if rng.random() < 0.75
        )
        in_port = rng.randrange(num_ports)
        # R mod s ranges over the switch ID, which exceeds the degree,
        # so out-of-range computed ports are legal inputs.
        computed = rng.randrange(num_ports + 3)
        already_deflected = rng.random() < 0.5
        draw_seed = rng.getrandbits(32)

        view = _FuzzPortView(num_ports, up)
        packet = Packet(
            src_host="H-SRC", dst_host="H-DST", size_bytes=100,
            kar=KarHeader(route_id=1, deflected=already_deflected, ttl=32),
        )
        state = (
            f"ports={num_ports} up={sorted(up)} in={in_port} "
            f"computed={computed} deflected={already_deflected} "
            f"draw_seed={draw_seed}"
        )

        rng_spec = random.Random(draw_seed)
        want = spec(
            num_ports, up, in_port, computed, already_deflected, rng_spec
        )

        rng_impl = random.Random(draw_seed)
        decision = impl.select_port(view, packet, in_port, computed, rng_impl)
        got = (decision.port, decision.deflected)
        result.check(
            got == want,
            lambda s=state, g=got, w=want: (
                f"select_port disagrees with pseudocode at {s}: "
                f"impl={g} paper={w}"
            ),
        )
        result.check(
            rng_impl.getstate() == rng_spec.getstate(),
            lambda s=state: (
                f"select_port consumed a different RNG stream than the "
                f"pseudocode at {s}"
            ),
        )

        # The fast split must compose to the same decision with the
        # same draws: fast_port (no RNG) or fast_fallback (RNG).
        rng_fast = random.Random(draw_seed)
        fast_hit = impl.fast_port(view, packet, in_port, computed)
        if fast_hit is not None:
            got_fast = (fast_hit, False)
        else:
            got_fast = impl.fast_fallback(
                view, packet, in_port, computed, rng_fast
            )
        result.check(
            got_fast == want,
            lambda s=state, g=got_fast, w=want: (
                f"fast_port/fast_fallback disagrees with pseudocode at "
                f"{s}: fast={g} paper={w}"
            ),
        )
        result.check(
            rng_fast.getstate() == rng_spec.getstate(),
            lambda s=state: (
                f"fast path consumed a different RNG stream than the "
                f"pseudocode at {s}"
            ),
        )
    return result


# ---------------------------------------------------------------------------
# (c) wire codec vs in-memory header semantics
# ---------------------------------------------------------------------------

def _random_header(rng: random.Random) -> KarHeader:
    bits = rng.randrange(0, 80)
    route_id = rng.getrandbits(bits) if bits else 0
    ttl = rng.choice((0, 1, 255, rng.randrange(256)))
    modulus = 0
    if rng.random() < 0.5:
        modulus = route_id + 2 + rng.randrange(1000)
    return KarHeader(
        route_id=route_id, modulus=modulus,
        deflected=rng.random() < 0.5, ttl=ttl,
    )


def check_wire(case: FuzzCase) -> OracleResult:
    """Wire codec vs in-memory KarHeader semantics (oracle c)."""
    result = OracleResult("wire")
    rng = random.Random(f"verify-wire-{case.seed}")
    for trial in range(_WIRE_TRIALS):
        header = _random_header(rng)
        label = (
            f"rid={header.route_id} mod={header.modulus} "
            f"ttl={header.ttl} deflected={header.deflected}"
        )
        data = encode_header(header)

        # Round trip: every wire-carried field survives, trailing bytes
        # are untouched, and re-encoding is byte-identical.
        decoded, consumed = decode_header(data + b"payload")
        result.check(
            consumed == len(data)
            and decoded.route_id == header.route_id
            and decoded.ttl == header.ttl
            and decoded.deflected == header.deflected
            and decoded.modulus == 0,
            lambda l=label, d=decoded: (
                f"decode(encode(h)) mangled {l}: got rid={d.route_id} "
                f"ttl={d.ttl} deflected={d.deflected} mod={d.modulus}"
            ),
        )
        result.check(
            encode_header(decoded) == data,
            lambda l=label: f"encode(decode(encode(h))) != encode(h) for {l}",
        )
        if header.modulus >= 2:
            result.check(
                len(data) <= header_wire_size(header.modulus),
                lambda l=label, n=len(data): (
                    f"encoding of {l} is {n} bytes, above the "
                    f"header_wire_size worst case"
                ),
            )

        # Truncation at every byte offset must be detected, never
        # misparsed as a shorter valid header.
        truncation_ok = True
        for cut in range(len(data)):
            try:
                decode_header(data[:cut])
                truncation_ok = False
                break
            except WireError:
                pass
        result.check(
            truncation_ok,
            lambda l=label, c=cut: (
                f"decode accepted a {c}-byte truncation of {l}"
            ),
        )

        # TTL decrement points: walk the header through hops twice — as
        # wire bytes and as the in-memory header — applying the core
        # switch's arrival rule (drop when ttl <= 0, else decrement) to
        # both, and require them to agree at every point.
        mem = KarHeader(
            route_id=header.route_id, deflected=header.deflected,
            ttl=header.ttl,
        )
        wire = encode_header(mem)
        ttl_ok = True
        for hop in range(min(header.ttl + 2, 12)):
            dec, _ = decode_header(wire)
            if dec.ttl != mem.ttl or (dec.ttl <= 0) != (mem.ttl <= 0):
                ttl_ok = False
                break
            if mem.ttl <= 0:
                break
            mem.ttl -= 1
            dec.ttl -= 1
            wire = encode_header(dec)
            if encode_header(mem) != wire:
                ttl_ok = False
                break
        result.check(
            ttl_ok,
            lambda l=label, h=hop: (
                f"wire/in-memory TTL semantics diverge at hop {h} for {l}"
            ),
        )

        # Inverse pair on arbitrary bytes: decode either rejects a
        # mutated blob or parses it into a header whose canonical
        # encoding is exactly the bytes consumed.
        blob = bytearray(data)
        blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
        blob = bytes(blob)
        try:
            parsed, used = decode_header(blob)
        except WireError:
            result.check(True, lambda: "")
        else:
            result.check(
                encode_header(parsed) == blob[:used],
                lambda l=label, b=blob.hex(): (
                    f"decode accepted mutated bytes {b} (from {l}) that "
                    f"do not re-encode to themselves"
                ),
            )
    return result


# ---------------------------------------------------------------------------
# (d) event simulator vs pure-graph walk model
# ---------------------------------------------------------------------------

def _fuzz_route_id(case: FuzzCase, graph) -> int:
    """A CRT-crafted wandering route ID.

    A uniformly random integer is a boring fuzz route: ``R mod s``
    lands outside the degree at the very first switch almost always
    (IDs are >= 23, degrees are small), so every packet dies on hop
    one.  Instead, solve the CRT system over the real switch IDs with
    per-switch residues drawn *mostly* in port range — the packet then
    genuinely wanders: misdeliveries, re-encodes, TTL expiry, and the
    occasional out-of-range drop all get exercised.
    """
    from repro.rns.crt import crt

    rng = random.Random(f"verify-walk-{case.seed}")
    moduli = []
    residues = []
    for info in sorted(graph.nodes(NodeKind.CORE), key=lambda i: i.name):
        moduli.append(info.switch_id)
        if rng.random() < 0.9:
            residues.append(rng.randrange(graph.degree(info.name)))
        else:
            residues.append(rng.randrange(info.switch_id))
    route_id, _ = crt(residues, moduli)
    return route_id


def check_walk(case: FuzzCase) -> OracleResult:
    """Simulator verdicts vs the graph walk model (oracle d).

    Runs the case with the failures applied *statically* before
    traffic (the walk model has no clock), in four flavours: the
    controller's real route and a fuzzed route ID that makes the
    packet wander through misdelivery re-encodes (both under
    no-deflection forwarding, diffed against
    :func:`~repro.analysis.walk.deterministic_route_walk`), plus the
    two stateful failover baselines ``ff`` and ``arb`` (per-switch
    strategy tables installed through ``strategy_factory``, diffed
    against :func:`~repro.analysis.walk.deterministic_strategy_walk`
    over the *same* tables).  Every packet's hop-by-hop trace —
    deflection flags included — and final verdict must match the
    model's prediction.
    """
    result = OracleResult("walk")
    scenario = build_scenario(case)
    graph = scenario.graph
    ingress_edge = graph.edge_of_host(scenario.src_host)
    dst_edge = graph.edge_of_host(scenario.dst_host)
    down = tuple({tuple(sorted((a, b))) for a, b, _, _ in case.failures})
    for flavour in ("routed", "fuzzed") + BASELINE_SCHEMES:
        strategies = (
            plan_baseline_strategies(
                flavour, graph, scenario.primary_route, dst_edge
            )
            if flavour in BASELINE_SCHEMES
            else None
        )
        ks = KarSimulation(
            scenario, deflection="none", protection="none",
            seed=case.seed, ttl=case.ttl, trace_paths=True,
            strategy_factory=(
                strategies.__getitem__ if strategies is not None else None
            ),
        )
        edge = ks.network.node(ingress_edge)
        entry = edge.ingress_entry(scenario.dst_host)
        assert entry is not None
        if flavour == "fuzzed":
            entry = IngressEntry(
                route_id=_fuzz_route_id(case, graph), modulus=0,
                out_port=entry.out_port, ttl=case.ttl, residues=None,
            )
            edge.install_ingress(scenario.dst_host, entry)
        for a, b in down:
            ks.network.link_between(a, b).set_up(False)
        src, sink = ks.add_udp_probe(
            rate_pps=case.rate_pps, duration_s=case.traffic_s
        )
        src.start(at=0.01)
        ks.run(until=case.traffic_s + 2.0)

        def reencode(edge_name: str, dst: str):
            fresh = ks.controller.reencode(edge_name, dst)
            return None if fresh is None else (fresh.route_id, fresh.out_port)

        if strategies is not None:
            verdict = deterministic_strategy_walk(
                graph, strategies, entry.route_id, entry.ttl,
                ingress_edge, entry.out_port, scenario.dst_host,
                down_links=down, reencode=reencode,
            )
        else:
            verdict = deterministic_route_walk(
                graph, entry.route_id, entry.ttl, ingress_edge,
                entry.out_port, scenario.dst_host,
                down_links=down, reencode=reencode,
            )
        expected_hops = [
            (h.node, h.in_port, h.out_port, h.deflected)
            for h in verdict.hops
        ]

        tracer = ks.tracer
        drops_by_uid = {d.packet_uid: d for d in tracer.drops}
        uids = sorted(
            set(tracer._paths) | set(drops_by_uid) | set(tracer.deliveries)
        )
        result.check(
            len(uids) == src.sent,
            lambda f=flavour, n=len(uids), s=src.sent: (
                f"[{f}] {s} packets sent but {n} accounted for in traces"
            ),
        )
        for uid in uids:
            got_hops = [
                (h.node, h.in_port, h.out_port, h.deflected)
                for h in tracer._paths.get(uid, [])
            ]
            result.check(
                got_hops == expected_hops,
                lambda f=flavour, u=uid, g=got_hops: (
                    f"[{f}] packet #{u} hop trace differs from the walk "
                    f"model: sim={g!r} model={expected_hops!r}"
                ),
            )
            if uid in tracer.deliveries:
                _, host = tracer.deliveries[uid]
                result.check(
                    verdict.delivered and host == verdict.node,
                    lambda f=flavour, u=uid, h=host: (
                        f"[{f}] packet #{u} delivered to {h} but the walk "
                        f"model predicted "
                        f"{verdict.outcome}({verdict.node}, {verdict.reason})"
                    ),
                )
            else:
                drop = drops_by_uid.get(uid)
                result.check(
                    drop is not None
                    and not verdict.delivered
                    and (drop.node, drop.reason)
                    == (verdict.node, verdict.reason),
                    lambda f=flavour, u=uid, d=drop: (
                        f"[{f}] packet #{u} sim fate "
                        f"{(d.node, d.reason) if d else 'lost'} differs "
                        f"from walk model "
                        f"{verdict.outcome}({verdict.node}, "
                        f"{verdict.reason})"
                    ),
                )
    return result


# ---------------------------------------------------------------------------
# (e) pooled/incremental encoders vs the reference crt() solver
# ---------------------------------------------------------------------------

def _off_pool_id(subset_ids: Sequence[int], pool: PoolContext) -> int:
    """A modulus outside the pool yet coprime with *subset_ids*."""
    product = 1
    for s in subset_ids:
        product *= s
    candidate = 2
    while candidate in pool or math.gcd(candidate, product) != 1:
        candidate += 1
    return candidate


def check_encoder(case: FuzzCase) -> OracleResult:
    """Pooled/incremental encoders vs the reference solver (oracle e).

    Builds a :class:`~repro.rns.pool.PoolContext` over the case's real
    switch-ID pool and fuzzes random subsets through every amortized
    path — :meth:`PoolContext.encode`, :class:`PooledEncoder`,
    :class:`ReencodeDelta` single mutations, multi-hop mutation chains,
    identity mutations, and the off-pool fallback — requiring each
    result to be bit-identical to a fresh :func:`~repro.rns.crt.crt`
    solve / :class:`~repro.rns.encoder.RouteEncoder` encode of the same
    residue system.  Malformed systems (duplicate moduli, out-of-range
    residues) must fail with the same exception the reference raises.
    """
    result = OracleResult("encoder")
    graph = build_graph(case)
    # from_graph re-runs the pairwise-coprime check by default — that
    # one-time validation is part of what this oracle exercises.
    pool = PoolContext.from_graph(graph)
    reference = RouteEncoder()
    pooled = PooledEncoder(pool)
    delta = ReencodeDelta(pool)
    rng = random.Random(f"verify-encoder-{case.seed}")
    off_pool_encodes = 0

    for trial in range(_ENCODER_TRIALS):
        k = rng.randrange(1, min(len(pool), 8) + 1)
        ids = rng.sample(pool.pool, k)
        ports = [rng.randrange(s) for s in ids]
        label = f"trial {trial}: system {list(zip(ports, ids))}"

        # Raw Eq. 4 pair: pooled dot product vs full reference solve.
        want_pair = crt(ports, ids)
        got_pair = pool.encode(ports, ids)
        result.check(
            got_pair == want_pair,
            lambda l=label, g=got_pair, w=want_pair: (
                f"PoolContext.encode differs from crt() at {l}: "
                f"pooled={g} reference={w}"
            ),
        )

        # Full route objects: PooledEncoder vs RouteEncoder.
        hops = [Hop(s, p) for s, p in zip(ids, ports)]
        route = pooled.encode(hops)
        ref_route = reference.encode(hops)
        result.check(
            route == ref_route
            and route.residue_map() == ref_route.residue_map(),
            lambda l=label, g=route, w=ref_route: (
                f"PooledEncoder differs from RouteEncoder at {l}: "
                f"pooled={g!r} reference={w!r}"
            ),
        )

        # A mutation chain (possibly including identity steps) applied
        # incrementally must land exactly where a fresh solve of the
        # final residue system lands, at every step of the chain.
        residues = dict(route.residue_map())
        current = route
        for step in range(rng.randrange(1, 5)):
            sid = rng.choice(ids)
            new_port = rng.randrange(sid)
            chain_label = (
                f"{label} chain step {step}: switch {sid} -> port {new_port}"
            )
            if residues[sid] == new_port:
                result.check(
                    delta.apply(current, sid, new_port) is current,
                    lambda l=chain_label: (
                        f"identity mutation was not a same-object no-op "
                        f"at {l}"
                    ),
                )
            residues[sid] = new_port
            want_id, want_mod = crt(
                [residues[s] for s in ids], ids, assume_coprime=True
            )
            got_id = delta.apply_id(current, sid, new_port)
            current = delta.apply(current, sid, new_port)
            result.check(
                got_id == want_id
                and (current.route_id, current.modulus)
                == (want_id, want_mod)
                and current.residue_map() == residues,
                lambda l=chain_label, g=current, i=got_id, w=want_id: (
                    f"incremental re-encode differs from fresh solve at "
                    f"{l}: apply_id={i} apply={g!r} reference_id={w}"
                ),
            )

        # Off-pool switch IDs must take the reference fallback and still
        # produce the reference answer.
        extra = _off_pool_id(ids, pool)
        fallback_hops = hops + [Hop(extra, rng.randrange(extra))]
        off_pool_encodes += 1
        result.check(
            pooled.encode(fallback_hops) == reference.encode(fallback_hops),
            lambda l=label, e=extra: (
                f"off-pool fallback (extra switch {e}) differs from "
                f"RouteEncoder at {l}"
            ),
        )

    # Error parity on malformed systems: same exception type, same
    # message as the reference solver.
    dup = rng.choice(pool.pool)
    dup_system = ([0, 0], [dup, dup])
    errors = []
    for solver in (crt, pool.encode):
        try:
            solver(*dup_system)
            errors.append(None)
        except NotCoprimeError as exc:
            errors.append((type(exc).__name__, str(exc)))
    result.check(
        errors[0] is not None and errors[0] == errors[1],
        lambda e=tuple(errors): (
            f"duplicate-modulus error parity broken: crt={e[0]} pool={e[1]}"
        ),
    )
    bad = rng.choice(pool.pool)
    bad_system = ([bad], [bad])  # residue == modulus: out of range
    errors = []
    for solver in (crt, pool.encode):
        try:
            solver(*bad_system)
            errors.append(None)
        except CrtError as exc:
            errors.append((type(exc).__name__, str(exc)))
    result.check(
        errors[0] is not None and errors[0] == errors[1],
        lambda e=tuple(errors): (
            f"out-of-range error parity broken: crt={e[0]} pool={e[1]}"
        ),
    )

    # The amortized paths must actually have been the paths under test.
    result.check(
        pooled.fallback_encodes == off_pool_encodes,
        lambda p=pooled, n=off_pool_encodes: (
            f"fallback count {p.fallback_encodes} != expected {n}: "
            f"pool-covered encodes leaked onto the reference path"
        ),
    )
    result.check(
        delta.full_solves == 0,
        lambda d=delta: (
            f"{d.full_solves} incremental updates fell back to a full "
            f"solve on pool-covered routes"
        ),
    )
    return result


# ---------------------------------------------------------------------------
# (g) pluggable encoding backends vs the reference datapath / walk model
# ---------------------------------------------------------------------------

def check_backend(case: FuzzCase) -> OracleResult:
    """Encoding backends vs the reference semantics (oracle g).

    Three layers, every backend in :data:`~repro.rns.backends.BACKEND_NAMES`:

    * **encoder contract** — fuzzed hop systems over a pool the backend
      accepts: ``decode(encode(hops))`` recovers every port,
      ``with_hop`` chains land exactly where a fresh encode lands,
      ``without_switch`` inverts them, and the advertised
      ``header_bits`` matches the route's own ``bit_length``.  Integer
      backends must be *bit-identical* to the reference
      :class:`~repro.rns.encoder.RouteEncoder`.
    * **integer datapath digests** — full case runs under ``crt`` and
      ``pooled`` must reproduce the default datapath's outcome record
      and hop-by-hop traces byte for byte (these backends change how
      the controller computes, never what the network does).
    * **XSR walk equivalence** — a full case run under ``xsr`` (the
      runner transparently re-IDs the graph onto the dual-coprime
      pool), diffed packet-by-packet against
      :func:`~repro.analysis.walk.deterministic_route_walk` driven by
      the backend's own ``port_at`` — the same differential contract
      the ``walk`` oracle pins on the integer datapath.
    """
    from repro.rns.backends import BACKEND_NAMES, backend_by_name
    from repro.rns.gf2 import dual_coprime_pool

    result = OracleResult("backend")
    scenario = build_scenario(case)
    reference = RouteEncoder()
    rng = random.Random(f"verify-backend-{case.seed}")
    graph_ids = sorted(scenario.graph.switch_ids().values())

    for name in BACKEND_NAMES:
        backend = backend_by_name(name)
        try:
            backend.validate_switch_ids(graph_ids)
            ids_pool = list(graph_ids)
        except (ValueError, CrtError):
            # the graph's integer pool is infeasible for this backend
            # (XSR on non-GF(2)-coprime IDs) — fuzz on its native pool.
            ids_pool = dual_coprime_pool(max(len(graph_ids), 6))
        backend.prepare(ids_pool)
        for trial in range(_ENCODER_TRIALS):
            k = rng.randrange(2, min(len(ids_pool), 8) + 1)
            ids = rng.sample(ids_pool, k)
            ports = [rng.randrange(backend.residue_space(s)) for s in ids]
            hops = [Hop(s, p) for s, p in zip(ids, ports)]
            label = f"[{name}] trial {trial}: system {list(zip(ports, ids))}"

            route = backend.encode(hops)
            result.check(
                backend.decode(route.route_id, ids) == ports
                and [route.port_at(s) for s in ids] == ports,
                lambda l=label, r=route: (
                    f"decode(encode(hops)) does not recover the ports at "
                    f"{l}: route={r!r}"
                ),
            )
            result.check(
                backend.header_bits(route.modulus) == route.bit_length,
                lambda l=label, r=route: (
                    f"header_bits({r.modulus}) disagrees with the route's "
                    f"bit_length {r.bit_length} at {l}"
                ),
            )
            if name != "xsr":
                ref_route = reference.encode(hops)
                result.check(
                    route == ref_route
                    and route.residue_map() == ref_route.residue_map(),
                    lambda l=label, g=route, w=ref_route: (
                        f"integer backend differs from RouteEncoder at "
                        f"{l}: backend={g!r} reference={w!r}"
                    ),
                )

            # Incremental with_hop must land where a fresh encode lands;
            # without_switch must invert it.
            enc = backend.encoder()
            grown = enc.encode(hops[:-1])
            grown = enc.with_hop(grown, hops[-1])
            result.check(
                (grown.route_id, grown.modulus)
                == (route.route_id, route.modulus),
                lambda l=label, g=grown, w=route: (
                    f"with_hop chain differs from fresh encode at {l}: "
                    f"chain={g!r} fresh={w!r}"
                ),
            )
            shrunk = enc.without_switch(grown, ids[-1])
            want_shrunk = enc.encode(hops[:-1])
            result.check(
                (shrunk.route_id, shrunk.modulus)
                == (want_shrunk.route_id, want_shrunk.modulus),
                lambda l=label, g=shrunk, w=want_shrunk: (
                    f"without_switch does not invert with_hop at {l}: "
                    f"got={g!r} want={w!r}"
                ),
            )

    # Integer backends: the full case run must be bit-identical to the
    # default datapath (decode hook None, same controller numbers).
    ks_ref, src, sink = _run_case_sim(case, scenario, case.strategy, case.ttl)
    ref = _outcome_record(ks_ref, src, sink)
    ref_paths = ks_ref.tracer._paths
    for name in ("crt", "pooled"):
        ks_b, src, sink = _run_case_sim(
            case, scenario, case.strategy, case.ttl, backend=name
        )
        got = _outcome_record(ks_b, src, sink)
        for key in ref:
            result.check(
                got[key] == ref[key],
                lambda key=key, name=name, got=got: (
                    f"[{name}] outcome[{key}] differs from the default "
                    f"datapath: default={ref[key]!r} {name}={got[key]!r}"
                ),
            )
        # Packet uids come from a process-global counter — traces pair
        # up in uid order, the same pairing check_datapaths uses.
        got_paths = ks_b.tracer._paths
        result.check(
            [got_paths[u] for u in sorted(got_paths)]
            == [ref_paths[u] for u in sorted(ref_paths)],
            lambda name=name: (
                f"[{name}] hop traces differ from the default datapath"
            ),
        )

    # XSR: run the case statically (the walk model has no clock) and
    # diff the simulator against the pure-graph walk driven by the
    # backend's own port_at.
    xsr = backend_by_name("xsr")
    down = tuple({tuple(sorted((a, b))) for a, b, _, _ in case.failures})
    ks = KarSimulation(
        scenario, deflection="none", protection="none",
        seed=case.seed, ttl=case.ttl, trace_paths=True, backend=xsr,
    )
    graph = ks.scenario.graph  # possibly the re-IDed deep copy
    ingress_edge = graph.edge_of_host(ks.scenario.src_host)
    edge = ks.network.node(ingress_edge)
    entry = edge.ingress_entry(ks.scenario.dst_host)
    assert entry is not None
    for a, b in down:
        ks.network.link_between(a, b).set_up(False)
    src, sink = ks.add_udp_probe(
        rate_pps=case.rate_pps, duration_s=case.traffic_s
    )
    src.start(at=0.01)
    ks.run(until=case.traffic_s + 2.0)

    def reencode(edge_name: str, dst: str):
        fresh = ks.controller.reencode(edge_name, dst)
        return None if fresh is None else (fresh.route_id, fresh.out_port)

    verdict = deterministic_route_walk(
        graph, entry.route_id, entry.ttl, ingress_edge,
        entry.out_port, ks.scenario.dst_host,
        down_links=down, reencode=reencode, port_at=xsr.port_at,
    )
    expected_hops = [
        (h.node, h.in_port, h.out_port, h.deflected) for h in verdict.hops
    ]
    tracer = ks.tracer
    drops_by_uid = {d.packet_uid: d for d in tracer.drops}
    uids = sorted(
        set(tracer._paths) | set(drops_by_uid) | set(tracer.deliveries)
    )
    result.check(
        len(uids) == src.sent,
        lambda n=len(uids), s=src.sent: (
            f"[xsr] {s} packets sent but {n} accounted for in traces"
        ),
    )
    for uid in uids:
        got_hops = [
            (h.node, h.in_port, h.out_port, h.deflected)
            for h in tracer._paths.get(uid, [])
        ]
        result.check(
            got_hops == expected_hops,
            lambda u=uid, g=got_hops: (
                f"[xsr] packet #{u} hop trace differs from the walk "
                f"model: sim={g!r} model={expected_hops!r}"
            ),
        )
        if uid in tracer.deliveries:
            _, host = tracer.deliveries[uid]
            result.check(
                verdict.delivered and host == verdict.node,
                lambda u=uid, h=host: (
                    f"[xsr] packet #{u} delivered to {h} but the walk "
                    f"model predicted "
                    f"{verdict.outcome}({verdict.node}, {verdict.reason})"
                ),
            )
        else:
            drop = drops_by_uid.get(uid)
            result.check(
                drop is not None
                and not verdict.delivered
                and (drop.node, drop.reason) == (verdict.node, verdict.reason),
                lambda u=uid, d=drop: (
                    f"[xsr] packet #{u} sim fate "
                    f"{(d.node, d.reason) if d else 'lost'} differs from "
                    f"walk model {verdict.outcome}({verdict.node}, "
                    f"{verdict.reason})"
                ),
            )
    return result


# ---------------------------------------------------------------------------
# (f) epoch datapath: reference KarSwitch engine vs vector vs sharded
# ---------------------------------------------------------------------------

def vector_workload_spec(case: FuzzCase) -> Dict[str, Any]:
    """Map a fuzz case onto an epoch-model workload spec.

    Topology parameters carry over verbatim (the epoch builder runs the
    same seeded generator, so the core graph is identical); the
    continuous-time failure schedule quantizes onto epochs
    deterministically.
    """
    extra_flips: List[Tuple[int, str, str]] = []
    for i, (a, b, _at, repair) in enumerate(case.failures):
        fail_epoch = 1 + (i % 3)
        extra_flips.append((fail_epoch, a, b))
        if repair is not None:
            extra_flips.append((fail_epoch + 3, a, b))
    return {
        "kind": "synthetic",
        "num_switches": case.num_switches,
        "extra_links": case.extra_links,
        "min_switch_id": case.min_switch_id,
        "id_strategy": case.id_strategy,
        "seed": case.seed,
        "strategy": case.strategy,
        "flows": min(4, max(2, case.num_switches // 3)),
        "ttl": min(case.ttl, 48),
        "inject_per_epoch": 2,
        "inject_epochs": 4,
        "link_failures": 0,
        "fail_epoch": 0,
        "repair_epoch": None,
        "extra_flips": [list(f) for f in extra_flips],
    }


def check_vector(case: FuzzCase) -> OracleResult:
    """Vector and sharded epoch engines vs the reference engine.

    Decision-by-decision: full outcome records (counters, drop reasons,
    RNG fingerprints), record digests, per-packet hop traces (port and
    deflected flag at every hop) and terminal fates must all match the
    untouched-KarSwitch reference run.
    """
    from repro.sim.shard import run_epoch_sharded
    from repro.sim.vector import (
        build_workload,
        run_epoch_reference,
        run_epoch_vector,
    )

    result = OracleResult("vector")
    workload = build_workload(vector_workload_spec(case))
    ref = run_epoch_reference(workload, trace=True)
    shards = min(2, len(workload.topo.core_indices))
    contenders = [
        ("vector", run_epoch_vector(workload, trace=True)),
        ("sharded", run_epoch_sharded(workload, shards=shards, trace=True)),
    ]
    for engine, out in contenders:
        for key in ref.record:
            result.check(
                out.record[key] == ref.record[key],
                lambda key=key, engine=engine, out=out: (
                    f"{engine}: record[{key}] differs: "
                    f"reference={ref.record[key]!r} {engine}={out.record[key]!r}"
                ),
            )
        result.check(
            out.digest == ref.digest,
            lambda engine=engine, out=out: (
                f"{engine}: digest differs: reference={ref.digest} "
                f"{engine}={out.digest}"
            ),
        )
        ref_traces = ref.traces or {}
        out_traces = out.traces or {}
        if result.check(
            sorted(out_traces) == sorted(ref_traces),
            lambda engine=engine, out_traces=out_traces: (
                f"{engine}: traced uid sets differ: "
                f"reference={len(ref_traces)} {engine}={len(out_traces)}"
            ),
        ):
            for uid in sorted(ref_traces):
                result.check(
                    out_traces[uid] == ref_traces[uid],
                    lambda uid=uid, engine=engine, out_traces=out_traces: (
                        f"{engine}: hop trace differs for uid {uid}: "
                        f"reference={ref_traces[uid]!r} "
                        f"{engine}={out_traces[uid]!r}"
                    ),
                )
        result.check(
            (out.fates or {}) == (ref.fates or {}),
            lambda engine=engine, out=out: (
                f"{engine}: terminal fates differ "
                f"(reference={len(ref.fates or {})} fates, "
                f"{engine}={len(out.fates or {})})"
            ),
        )
    return result


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------

_ORACLES: Dict[str, Callable[..., OracleResult]] = {
    "datapath": check_datapaths,
    "strategy": check_strategy,
    "wire": check_wire,
    "walk": check_walk,
    "encoder": check_encoder,
    "vector": check_vector,
    "backend": check_backend,
}

#: All oracle names, in stable order.
ORACLE_NAMES: Tuple[str, ...] = tuple(sorted(_ORACLES))


def run_oracle(
    name: str,
    case: FuzzCase,
    strategy: Optional[DeflectionStrategy] = None,
) -> OracleResult:
    """Run one oracle over one case.

    *strategy* (strategy oracle only) substitutes the implementation
    under test — used by the harness self-test to inject mutations.
    """
    try:
        fn = _ORACLES[name]
    except KeyError:
        raise ValueError(
            f"unknown oracle {name!r}; choose from {ORACLE_NAMES}"
        ) from None
    if name == "strategy":
        return fn(case, strategy=strategy)
    return fn(case)


def run_case(
    case: FuzzCase,
    oracles: Optional[Sequence[str]] = None,
) -> Dict[str, OracleResult]:
    """Run a case through the selected (default: all) oracles."""
    names = tuple(oracles) if oracles else ORACLE_NAMES
    return {name: run_oracle(name, case) for name in names}
