"""Executable transcriptions of the paper's deflection pseudocode.

These functions are the *specification side* of the strategy oracle:
each is written naively, straight from the paper's prose and Algorithm
1, against a bare description of the switch state — no ``Decision``
dataclass, no ``PortView`` protocol, no fast-path split.  The oracle
(:func:`repro.verify.oracles.check_strategy`) then checks the real
:mod:`repro.switches.deflection` implementations against them decision
by decision, including RNG stream positions, so a refactor of the
implementation cannot silently drift from the paper.

Shared conventions (mirroring the dataplane):

* ``up`` is the set of healthy port numbers, ``num_ports`` the port
  count; the computed port may be ``>= num_ports`` (``R mod s`` ranges
  over the switch ID, which exceeds the degree).
* randomness is ``rng.choice`` over the **ascending** candidate list —
  the same single uniform draw the implementation makes, so comparing
  ``rng.getstate()`` afterwards is meaningful.
* return value is ``(port, deflected)`` with ``port=None`` for a drop.
"""

from __future__ import annotations

import random
from typing import AbstractSet, Dict, Optional, Protocol, Tuple

__all__ = ["PSEUDOCODE", "none_decision", "hp_decision", "avp_decision",
           "nip_decision"]

DecisionPair = Tuple[Optional[int], bool]


class PseudocodeFn(Protocol):
    def __call__(
        self,
        num_ports: int,
        up: AbstractSet[int],
        in_port: int,
        computed: int,
        already_deflected: bool,
        rng: random.Random,
    ) -> DecisionPair: ...


def _usable(num_ports: int, up: AbstractSet[int], port: int) -> bool:
    """"valid, healthy output port": exists on this switch and is up."""
    return port < num_ports and port in up


def none_decision(num_ports, up, in_port, computed, already_deflected, rng):
    """No deflection: the plain KeyFlow switch.

    Forward on ``R mod s`` when that port is usable; otherwise drop.
    """
    if _usable(num_ports, up, computed):
        return computed, False
    return None, False


def hp_decision(num_ports, up, in_port, computed, already_deflected, rng):
    """Hot Potato.

    Once a packet has been deflected anywhere, "it follows a complete
    random path in network": every subsequent switch sends it out a
    uniformly random healthy port.  An undeflected packet uses the
    computed port when usable, else takes its first random deflection.
    """
    if already_deflected:
        candidates = sorted(up)
        if not candidates:
            return None, False
        return rng.choice(candidates), True
    if _usable(num_ports, up, computed):
        return computed, False
    candidates = sorted(up)
    if not candidates:
        return None, False
    return rng.choice(candidates), True


def avp_decision(num_ports, up, in_port, computed, already_deflected, rng):
    """Any Valid Port.

    Always trust the modulo result when it is a usable port — the input
    port included.  Otherwise deflect to a uniformly random healthy
    port (again the input port included).
    """
    if _usable(num_ports, up, computed):
        return computed, False
    candidates = sorted(up)
    if not candidates:
        return None, False
    return rng.choice(candidates), True


def nip_decision(num_ports, up, in_port, computed, already_deflected, rng):
    """Not Input Port — the paper's Algorithm 1.

    1.  p <- R mod s
    2.  if p is a valid, healthy port and p != input port:
    3.      forward on p
    4.  else:
    5.      C <- healthy ports \\ {input port}
    6.      if C is empty: drop
    7.      else: forward on a uniformly random member of C (deflected)
    """
    if _usable(num_ports, up, computed) and computed != in_port:
        return computed, False
    candidates = [p for p in sorted(up) if p != in_port]
    if not candidates:
        return None, False
    return rng.choice(candidates), True


#: strategy short name -> its specification transcription.
PSEUDOCODE: Dict[str, PseudocodeFn] = {
    "none": none_decision,
    "hp": hp_decision,
    "avp": avp_decision,
    "nip": nip_decision,
}
