"""Fuzz-case generation for the differential verifier.

A :class:`FuzzCase` is the complete, JSON-able description of one
randomized scenario: topology shape, coprime ID pool, deflection
strategy, traffic profile, and a failure schedule.  Everything the
oracles need is derived deterministically from the case, so a case
record **is** a repro: load it, rebuild the scenario, rerun the oracle.

Cases are deliberately plain data (no graph objects) so the shrinker
can mutate them field-by-field and the farm can ship them between
processes as canonical JSON.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.switches.deflection import STRATEGY_NAMES
from repro.topology import (
    NodeKind,
    Scenario,
    attach_host_pair,
    random_connected,
    shortest_path,
)
from repro.topology.graph import PortGraph

__all__ = ["FuzzCase", "generate_case", "build_graph", "build_scenario",
           "case_is_buildable"]

#: (a, b, fail_at, repair_at-or-None) — a core-link failure event.
FailureEvent = Tuple[str, str, float, Optional[float]]

#: Link parameters shared by every fuzz topology: fast links and short
#: delays keep wall-clock per trial low without changing the logic
#: under test.
_RATE_MBPS = 50.0
_DELAY_S = 0.0002


@dataclass(frozen=True)
class FuzzCase:
    """One randomized verification scenario, as pure data."""

    seed: int
    num_switches: int
    extra_links: int
    min_switch_id: int
    id_strategy: str
    strategy: str
    ttl: int
    rate_pps: float
    traffic_s: float
    failures: Tuple[FailureEvent, ...] = ()

    def to_record(self) -> Dict[str, Any]:
        """JSON-able form (artifact files, farm results)."""
        return {
            "seed": self.seed,
            "num_switches": self.num_switches,
            "extra_links": self.extra_links,
            "min_switch_id": self.min_switch_id,
            "id_strategy": self.id_strategy,
            "strategy": self.strategy,
            "ttl": self.ttl,
            "rate_pps": self.rate_pps,
            "traffic_s": self.traffic_s,
            "failures": [list(f) for f in self.failures],
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "FuzzCase":
        return cls(
            seed=record["seed"],
            num_switches=record["num_switches"],
            extra_links=record["extra_links"],
            min_switch_id=record["min_switch_id"],
            id_strategy=record["id_strategy"],
            strategy=record["strategy"],
            ttl=record["ttl"],
            rate_pps=record["rate_pps"],
            traffic_s=record["traffic_s"],
            failures=tuple(
                (a, b, at, repair)
                for a, b, at, repair in record.get("failures", ())
            ),
        )

    def with_(self, **changes: Any) -> "FuzzCase":
        """A copy with some fields replaced (shrinker convenience)."""
        return replace(self, **changes)


def build_graph(case: FuzzCase) -> PortGraph:
    """The case's core graph + host pair (deterministic in the case)."""
    graph = random_connected(
        case.num_switches,
        extra_links=case.extra_links,
        seed=case.seed,
        id_strategy=case.id_strategy,
        min_switch_id=case.min_switch_id,
        rate_mbps=_RATE_MBPS,
        delay_s=_DELAY_S,
    )
    names = sorted(graph.node_names())
    attach_host_pair(graph, names[0], names[-1],
                     rate_mbps=_RATE_MBPS, delay_s=_DELAY_S)
    return graph


def build_scenario(case: FuzzCase) -> Scenario:
    """Rebuild the runnable scenario a case describes.

    Raises ValueError when the case is not buildable (e.g. a shrink
    step pushed a node's degree past its coprime ID, or a stored
    failure link no longer exists in the regenerated topology).
    """
    graph = build_graph(case)
    core = sorted(graph.node_names(NodeKind.CORE))
    for a, b, _, _ in case.failures:
        if not graph.has_link(a, b):
            raise ValueError(f"failure link {a}-{b} not in topology")
    route = shortest_path(graph, core[0], core[-1])
    return Scenario(
        name=f"verify-{case.seed}",
        graph=graph,
        primary_route=tuple(route),
        src_host="H-SRC",
        dst_host="H-DST",
        protection={"none": ()},
    )


def case_is_buildable(case: FuzzCase) -> bool:
    """Whether :func:`build_scenario` would succeed (shrinker guard)."""
    try:
        build_scenario(case)
        return True
    except ValueError:
        return False


def generate_case(trial_seed: int) -> FuzzCase:
    """Draw one random case from a trial seed (pure function).

    The draw covers the space the oracles care about: topology sizes
    beyond the paper's figures, both coprime pools, every deflection
    strategy, TTLs small enough that expiry actually happens, and up to
    three core-link failures (some repaired).
    """
    rng = random.Random(f"verify-case-{trial_seed}")
    num_switches = rng.randrange(6, 15)
    extra_links = rng.randrange(0, 6)
    traffic_s = rng.choice((0.3, 0.4, 0.5))
    case = FuzzCase(
        seed=trial_seed,
        num_switches=num_switches,
        extra_links=extra_links,
        min_switch_id=rng.choice((23, 41, 79)),
        id_strategy=rng.choice(("prime", "greedy")),
        strategy=rng.choice(STRATEGY_NAMES),
        ttl=rng.choice((8, 16, 32, 64)),
        rate_pps=float(rng.choice((40, 80, 120))),
        traffic_s=traffic_s,
    )
    # Failures are drawn against the actual generated topology so the
    # stored link names are guaranteed valid for this case.
    graph = build_graph(case)
    core = set(graph.node_names(NodeKind.CORE))
    candidates = [
        (link.a, link.b) for link in graph.links()
        if link.a in core and link.b in core
    ]
    rng.shuffle(candidates)
    failures: List[FailureEvent] = []
    for a, b in candidates[: rng.randrange(0, 4)]:
        at = round(rng.uniform(0.05, traffic_s * 0.6), 4)
        repair = (
            round(at + rng.uniform(0.05, traffic_s * 0.4), 4)
            if rng.random() < 0.5 else None
        )
        failures.append((a, b, at, repair))
    return case.with_(failures=tuple(failures))
