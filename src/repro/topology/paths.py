"""Path algorithms over :class:`repro.topology.graph.PortGraph`.

The KAR controller needs shortest paths (route selection), k-shortest
paths (alternate-route exploration), and reachability under link
removal (failure analysis).  All algorithms treat the graph as
undirected, consistent with full-duplex links.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.topology.graph import PortGraph, TopologyError

__all__ = [
    "NoPathError",
    "shortest_path",
    "all_shortest_paths",
    "k_shortest_paths",
    "path_links",
    "is_reachable_without",
    "articulation_links",
]

LinkKey = Tuple[str, str]


class NoPathError(TopologyError):
    """No path exists between the requested endpoints."""

    def __init__(self, src: str, dst: str, note: str = ""):
        self.src, self.dst = src, dst
        msg = f"no path from {src!r} to {dst!r}"
        if note:
            msg += f" ({note})"
        super().__init__(msg)


def _link_key(a: str, b: str) -> LinkKey:
    return (a, b) if a <= b else (b, a)


def _default_weight(graph: PortGraph) -> Callable[[str, str], float]:
    def weight(a: str, b: str) -> float:
        return 1.0

    return weight


def shortest_path(
    graph: PortGraph,
    src: str,
    dst: str,
    weight: Optional[Callable[[str, str], float]] = None,
    forbidden_links: Iterable[LinkKey] = (),
    forbidden_nodes: Iterable[str] = (),
) -> List[str]:
    """Dijkstra shortest path as a list of node names (src ... dst).

    Deterministic tie-breaking (locked by tests, relied on by the
    vectorized bulk provisioner): among predecessors that all achieve a
    node's final distance, the chosen one minimizes
    ``(dist[predecessor], predecessor name)``.  For unit weights that
    degenerates to *the smallest-named neighbor one hop closer to the
    source* — the same canonical rule
    :class:`repro.controller.provision.DestinationTree` and
    :func:`repro.topology.csr.destination_tree_arrays` use, so every
    path algorithm in the repo agrees bit-for-bit on equal-cost
    choices.  The rule is enforced by an explicit comparison below, not
    by incidental heap order.

    Args:
        weight: optional ``f(a, b) -> cost`` per link; defaults to hop
            count.  Costs must be non-negative.
        forbidden_links: link keys (sorted endpoint pairs) to exclude —
            used to route around known failures.
        forbidden_nodes: nodes that may not appear as intermediates
            (endpoints are always allowed).

    Raises:
        NoPathError: when *dst* is unreachable under the constraints.
    """
    for name in (src, dst):
        graph.node(name)  # raises on unknown node
    if src == dst:
        return [src]
    weight = weight or _default_weight(graph)
    banned_links: Set[LinkKey] = set(forbidden_links)
    banned_nodes = set(forbidden_nodes) - {src, dst}

    dist: Dict[str, float] = {src: 0.0}
    prev: Dict[str, str] = {}
    heap: List[Tuple[float, str]] = [(0.0, src)]
    done: Set[str] = set()
    while heap:
        d, cur = heapq.heappop(heap)
        if cur in done:
            continue
        done.add(cur)
        if cur == dst:
            break
        for nb in graph.neighbors(cur):
            if nb in banned_nodes or _link_key(cur, nb) in banned_links:
                continue
            w = weight(cur, nb)
            if w < 0:
                raise TopologyError(f"negative link weight on {cur}-{nb}: {w}")
            nd = d + w
            old = dist.get(nb, float("inf"))
            if nd < old:
                dist[nb] = nd
                prev[nb] = cur
                heapq.heappush(heap, (nd, nb))
            elif nd == old and nb in prev:
                # Canonical tie-break: keep the predecessor minimal by
                # (distance, name).  Pops arrive in that order already,
                # so this comparison is a lock, not a behavior change.
                p = prev[nb]
                if (d, cur) < (dist[p], p):
                    prev[nb] = cur
    if dst not in prev and dst != src:
        note = "with constraints" if (banned_links or banned_nodes) else ""
        raise NoPathError(src, dst, note)
    path = [dst]
    while path[-1] != src:
        path.append(prev[path[-1]])
    path.reverse()
    return path


def all_shortest_paths(graph: PortGraph, src: str, dst: str) -> List[List[str]]:
    """All hop-count-shortest paths between *src* and *dst* (BFS DAG walk)."""
    graph.node(src)
    graph.node(dst)
    if src == dst:
        return [[src]]
    # BFS computing hop distance from src.
    dist = {src: 0}
    frontier = [src]
    while frontier:
        nxt = []
        for cur in frontier:
            for nb in graph.neighbors(cur):
                if nb not in dist:
                    dist[nb] = dist[cur] + 1
                    nxt.append(nb)
        frontier = nxt
    if dst not in dist:
        raise NoPathError(src, dst)
    # Walk backwards along the shortest-path DAG.
    paths: List[List[str]] = []

    def backtrack(node: str, acc: List[str]) -> None:
        if node == src:
            paths.append([src] + acc[::-1])
            return
        for nb in graph.neighbors(node):
            if dist.get(nb, -1) == dist[node] - 1:
                acc.append(node)
                backtrack(nb, acc)
                acc.pop()

    backtrack(dst, [])
    # De-duplicate is unnecessary (each DAG walk is distinct), but sort
    # for deterministic output.
    paths.sort()
    return paths


def k_shortest_paths(
    graph: PortGraph,
    src: str,
    dst: str,
    k: int,
    weight: Optional[Callable[[str, str], float]] = None,
) -> List[List[str]]:
    """Yen's algorithm: up to *k* loop-free shortest paths, best first."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    weight = weight or _default_weight(graph)

    def path_cost(path: Sequence[str]) -> float:
        return sum(weight(a, b) for a, b in zip(path, path[1:]))

    try:
        best = shortest_path(graph, src, dst, weight=weight)
    except NoPathError:
        return []
    found: List[List[str]] = [best]
    candidates: List[Tuple[float, List[str]]] = []
    seen_candidates: Set[Tuple[str, ...]] = {tuple(best)}

    while len(found) < k:
        prev_path = found[-1]
        for i in range(len(prev_path) - 1):
            spur_node = prev_path[i]
            root = prev_path[: i + 1]
            banned_links: Set[LinkKey] = set()
            for p in found:
                if p[: i + 1] == root and len(p) > i + 1:
                    banned_links.add(_link_key(p[i], p[i + 1]))
            banned_nodes = set(root[:-1])
            try:
                spur = shortest_path(
                    graph,
                    spur_node,
                    dst,
                    weight=weight,
                    forbidden_links=banned_links,
                    forbidden_nodes=banned_nodes,
                )
            except NoPathError:
                continue
            total = root[:-1] + spur
            key = tuple(total)
            if key not in seen_candidates:
                seen_candidates.add(key)
                heapq.heappush(candidates, (path_cost(total), total))
        if not candidates:
            break
        _, nxt = heapq.heappop(candidates)
        found.append(nxt)
    return found


def path_links(path: Sequence[str]) -> List[LinkKey]:
    """The (sorted-pair) link keys a node path traverses."""
    return [_link_key(a, b) for a, b in zip(path, path[1:])]


def is_reachable_without(
    graph: PortGraph, src: str, dst: str, removed_links: Iterable[LinkKey]
) -> bool:
    """True if *dst* is reachable from *src* after removing links."""
    try:
        shortest_path(graph, src, dst, forbidden_links=removed_links)
        return True
    except NoPathError:
        return False


def articulation_links(graph: PortGraph) -> List[LinkKey]:
    """Links whose single failure disconnects the graph (bridges).

    KAR's liveness guarantee cannot hold across a bridge failure — there
    is simply no alternative path — so experiments avoid failing bridges
    (and tests assert the paper's failure links are not bridges).
    """
    bridges: List[LinkKey] = []
    for link in graph.links():
        key = link.key
        if not is_reachable_without(graph, link.a, link.b, [key]):
            bridges.append(key)
    return sorted(bridges)
