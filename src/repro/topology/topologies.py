"""The paper's network scenarios, reconstructed.

The paper prints its topologies (Figs. 1, 2, 6, 8) as images; the text
pins a large set of constraints — switch IDs, routes, protection
segments, deflection-candidate sets, Table 1 bit lengths — and the
reconstructions here satisfy *all* of them (see DESIGN.md §5 for the
constraint-by-constraint derivation).  Tests in
``tests/topology/test_paper_constraints.py`` assert each constraint.

Every builder returns a :class:`Scenario`: the port graph plus the
declarative experiment inputs (primary route, protection segments per
level, the failure links the paper studies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.topology.graph import NodeKind, PortGraph, TopologyError

__all__ = [
    "ProtectionSegment",
    "Scenario",
    "six_node",
    "fifteen_node",
    "rnp28",
    "redundant_path",
    "UNPROTECTED",
    "PARTIAL",
    "FULL",
    "RNP_CITY_LABELS",
]

# Protection-level names used across scenarios, experiments and benches.
UNPROTECTED = "unprotected"
PARTIAL = "partial"
FULL = "full"


@dataclass(frozen=True)
class ProtectionSegment:
    """One driven-deflection hop: at switch *at*, drive packets to *to*.

    A protection level is a set of these segments; the controller encodes
    each as an extra CRT residue (switch ``at``'s output port toward
    ``to``), forming a logical tree rooted at the destination (Fig. 1b).
    """

    at: str
    to: str


@dataclass(frozen=True)
class Scenario:
    """A complete experiment scenario.

    Attributes:
        name: scenario identifier (used in reports).
        graph: the port graph (switch IDs, link rates/delays).
        primary_route: core-switch names along the selected route,
            ingress-first.  The paper's controller "by any reason"
            selects this route; it is an input, not derived.
        src_host / dst_host: the measured flow's endpoints.
        protection: protection-level name -> protection segments.
        reverse_protection: protection-level name -> segments protecting
            the *reverse* (ACK) route ID.  The paper only discusses the
            measured direction; a TCP flow also needs its ACK stream to
            find the source after deflection, so scenarios may pin a
            small reverse tree as well (empty = ACKs rely on deflection
            alone).
        failure_links: the single-link failure cases the paper studies,
            as (node, node) pairs on the primary route.
        notes: provenance notes (what the paper pinned vs. reconstructed).
    """

    name: str
    graph: PortGraph
    primary_route: Tuple[str, ...]
    src_host: str
    dst_host: str
    protection: Dict[str, Tuple[ProtectionSegment, ...]] = field(default_factory=dict)
    reverse_protection: Dict[str, Tuple[ProtectionSegment, ...]] = field(
        default_factory=dict
    )
    #: Core path for the reverse (ACK) route ID; None = the primary
    #: route reversed.  Each direction is its own route ID in KAR, so a
    #: controller is free to pick a different return path.
    reverse_route: Optional[Tuple[str, ...]] = None
    failure_links: Tuple[Tuple[str, str], ...] = ()
    notes: str = ""

    def protection_levels(self) -> List[str]:
        return list(self.protection)

    def segments(self, level: str) -> Tuple[ProtectionSegment, ...]:
        try:
            return self.protection[level]
        except KeyError:
            raise TopologyError(
                f"scenario {self.name!r} has no protection level {level!r}; "
                f"available: {list(self.protection)}"
            ) from None

    def reverse_segments(self, level: str) -> Tuple[ProtectionSegment, ...]:
        """Reverse-route protection for *level* (empty if undefined)."""
        return self.reverse_protection.get(level, ())

    def route_switch_ids(self) -> List[int]:
        return [self.graph.switch_id(sw) for sw in self.primary_route]


def _attach_host(graph: PortGraph, host: str, edge: str, core: str,
                 rate_mbps: float, delay_s: float, queue: int) -> None:
    """Create host -> edge -> core attachment with uniform parameters."""
    graph.add_node(edge, kind=NodeKind.EDGE)
    graph.add_node(host, kind=NodeKind.HOST)
    graph.add_link(core, edge, rate_mbps=rate_mbps, delay_s=delay_s,
                   queue_packets=queue)
    graph.add_link(edge, host, rate_mbps=rate_mbps, delay_s=delay_s,
                   queue_packets=queue)


# ---------------------------------------------------------------------------
# Fig. 1 — the 6-node worked example
# ---------------------------------------------------------------------------

def six_node(rate_mbps: float = 100.0, delay_s: float = 0.001,
             queue_packets: int = 50) -> Scenario:
    """The paper's Fig. 1 worked example, with exact port numbering.

    Switch IDs {4, 5, 7, 11}; the link-insertion order below reproduces
    the port indexes the paper's arithmetic uses, so the route IDs
    computed over this graph are exactly R = 44 (unprotected) and
    R = 660 (with the SW5 driven-deflection hop).

    Port map (paper): SW4: 0→SW7 · SW7: 0→SW4, 1→SW5, 2→SW11 ·
    SW11: 0→egress, 1→SW5, 2→SW7 · SW5: 0→SW11, 1→SW7.
    """
    g = PortGraph()
    for name, sid in (("SW4", 4), ("SW5", 5), ("SW7", 7), ("SW11", 11)):
        g.add_node(name, kind=NodeKind.CORE, switch_id=sid)
    g.add_node("E-D", kind=NodeKind.EDGE)
    g.add_node("D", kind=NodeKind.HOST)

    def link(a: str, b: str) -> None:
        g.add_link(a, b, rate_mbps=rate_mbps, delay_s=delay_s,
                   queue_packets=queue_packets)

    # Insertion order fixes port numbers — do not reorder.
    link("SW11", "E-D")   # SW11 port 0 -> egress
    link("SW4", "SW7")    # SW4 port 0 -> SW7; SW7 port 0 -> SW4
    link("SW5", "SW11")   # SW5 port 0 -> SW11; SW11 port 1 -> SW5
    link("SW7", "SW5")    # SW7 port 1 -> SW5; SW5 port 1 -> SW7
    link("SW7", "SW11")   # SW7 port 2 -> SW11; SW11 port 2 -> SW7
    link("E-D", "D")
    g.add_node("E-S", kind=NodeKind.EDGE)
    g.add_node("S", kind=NodeKind.HOST)
    link("SW4", "E-S")    # SW4 port 1 -> ingress edge
    link("E-S", "S")

    g.validate()
    return Scenario(
        name="six_node",
        graph=g,
        primary_route=("SW4", "SW7", "SW11"),
        src_host="S",
        dst_host="D",
        protection={
            UNPROTECTED: (),
            FULL: (ProtectionSegment("SW5", "SW11"),),
        },
        failure_links=(("SW7", "SW11"),),
        notes=(
            "Exact reconstruction of Fig. 1: IDs, ports, route IDs 44/660 "
            "all pinned by the paper's arithmetic."
        ),
    )


# ---------------------------------------------------------------------------
# Fig. 2 — the 15-node experimental network
# ---------------------------------------------------------------------------

#: Pairwise-coprime switch IDs for the 15-node network.  The paper names
#: SW7, SW10, SW13, SW17, SW23, SW29, SW37; the remainder are our choice
#: (distinct primes plus 9 = 3² and 10 = 2·5 — legal because KAR only
#: needs pairwise coprimality, not primality).
_FIFTEEN_IDS = (7, 9, 10, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53)

#: Core adjacency of the 15-node reconstruction.  Chosen to satisfy the
#: textual constraints of Section 3.1 (see DESIGN.md §5.1), most notably:
#: SW10's non-primary core neighbors are exactly {SW11, SW17, SW37}.
_FIFTEEN_LINKS = (
    ("SW10", "SW7"), ("SW10", "SW11"), ("SW10", "SW17"), ("SW10", "SW37"),
    ("SW7", "SW13"), ("SW7", "SW9"), ("SW7", "SW11"),
    ("SW13", "SW29"), ("SW13", "SW23"), ("SW13", "SW31"),
    ("SW13", "SW19"), ("SW13", "SW9"),
    ("SW29", "SW23"), ("SW29", "SW31"), ("SW29", "SW41"), ("SW29", "SW19"),
    ("SW11", "SW23"),
    ("SW23", "SW47"),
    ("SW31", "SW43"),
    ("SW17", "SW41"), ("SW17", "SW53"),
    ("SW37", "SW41"), ("SW37", "SW53"),
    ("SW41", "SW43"),
    ("SW43", "SW47"), ("SW43", "SW53"),
    ("SW47", "SW53"),
)


#: The SW9/SW19 rejoin spurs are longer-haul than the mesh around the
#: primary route.  This delay asymmetry is what bounds — but does not
#: remove — packet disordering when NIP splits deflected traffic across
#: the spur and the protected branch (the paper's ~25 % TCP impact).
#: The SW9 spur (hit by the SW7–SW13 failure, the paper's Fig. 4 case)
#: is the longest haul: its reordering depth exceeds what a Linux-like
#: sender tolerates, reproducing the persistent ~25 % throughput cost.
_FIFTEEN_DELAY_SPURS = frozenset({
    ("SW13", "SW19"), ("SW29", "SW19"),
})
_FIFTEEN_LONG_SPURS = frozenset({
    ("SW7", "SW9"), ("SW13", "SW9"),
})
_LONG_SPUR_DELAY_FACTOR = 40.0
#: The SW41 protection branch is both longer-haul *and* thinner than the
#: primary path; its capacity is what keeps full protection at ~70 % of
#: nominal (not ~100 %) when 2/3 of the deflected traffic funnels
#: through SW41→SW29 after a SW10–SW7 failure.
_FIFTEEN_THIN_SPURS = frozenset({
    ("SW17", "SW41"), ("SW37", "SW41"), ("SW41", "SW29"),
})
_SPUR_DELAY_FACTOR = 8.0
_SPUR_RATE_FACTOR = 0.5


def fifteen_node(rate_mbps: float = 100.0, delay_s: float = 0.001,
                 queue_packets: int = 50) -> Scenario:
    """The 15-node experimental network of Section 3.1 (Fig. 2).

    Reconstruction invariants (asserted by tests):

    * primary route SW10–SW7–SW13–SW29 → 15-bit route ID (Table 1),
    * partial protection {SW11→SW23, SW23→SW29, SW31→SW29} → 7 switches,
      28 bits (Table 1),
    * full protection additionally {SW17→SW41, SW37→SW41, SW41→SW29} →
      10 switches, 43 bits (Table 1),
    * on SW10–SW7 failure, NIP deflects uniformly over {SW11, SW17,
      SW37}; exactly one (SW11) is covered by partial protection — the
      paper's "2/3 of packets will be sent to switches SW17 or SW37",
    * SW9 and SW19 are degree-2 switches whose only non-input neighbour
      rejoins the primary route, so NIP drives deflected packets home
      from them without encoding them — this realizes the paper's
      "partial protection had similar resilient routing than full" for
      the SW7–SW13 and SW13–SW29 failures.
    """
    g = PortGraph()
    for sid in _FIFTEEN_IDS:
        g.add_node(f"SW{sid}", kind=NodeKind.CORE, switch_id=sid)
    for a, b in _FIFTEEN_LINKS:
        delay, rate = delay_s, rate_mbps
        if (a, b) in _FIFTEEN_DELAY_SPURS or (b, a) in _FIFTEEN_DELAY_SPURS:
            delay = delay_s * _SPUR_DELAY_FACTOR
        elif (a, b) in _FIFTEEN_LONG_SPURS or (b, a) in _FIFTEEN_LONG_SPURS:
            delay = delay_s * _LONG_SPUR_DELAY_FACTOR
        elif (a, b) in _FIFTEEN_THIN_SPURS or (b, a) in _FIFTEEN_THIN_SPURS:
            delay = delay_s * _SPUR_DELAY_FACTOR
            rate = rate_mbps * _SPUR_RATE_FACTOR
        g.add_link(a, b, rate_mbps=rate, delay_s=delay,
                   queue_packets=queue_packets)
    _attach_host(g, "H-AS1", "E-AS1", "SW10", rate_mbps, delay_s, queue_packets)
    _attach_host(g, "H-AS2", "E-AS2", "SW29", rate_mbps, delay_s, queue_packets)
    _attach_host(g, "H-AS3", "E-AS3", "SW29", rate_mbps, delay_s, queue_packets)

    g.validate()
    partial = (
        ProtectionSegment("SW11", "SW23"),
        ProtectionSegment("SW23", "SW29"),
        ProtectionSegment("SW31", "SW29"),
    )
    full = partial + (
        ProtectionSegment("SW17", "SW41"),
        ProtectionSegment("SW37", "SW41"),
        ProtectionSegment("SW41", "SW29"),
    )
    # Reverse (ACK-route) protection: a small tree rooted at SW10.  The
    # paper's text only discusses the measured direction; a bidirectional
    # TCP flow needs its ACK stream shielded the same way, and the
    # experiment results (partial ≈ full on mid/egress failures) only
    # reproduce when deflected ACKs are driven home too.
    reverse_partial = (
        ProtectionSegment("SW23", "SW11"),
        ProtectionSegment("SW11", "SW10"),
        ProtectionSegment("SW31", "SW13"),
    )
    reverse_full = reverse_partial + (
        ProtectionSegment("SW41", "SW17"),
        ProtectionSegment("SW17", "SW10"),
        ProtectionSegment("SW37", "SW10"),
    )
    return Scenario(
        name="fifteen_node",
        graph=g,
        primary_route=("SW10", "SW7", "SW13", "SW29"),
        src_host="H-AS1",
        dst_host="H-AS3",
        protection={UNPROTECTED: (), PARTIAL: partial, FULL: full},
        reverse_protection={PARTIAL: reverse_partial, FULL: reverse_full},
        failure_links=(("SW10", "SW7"), ("SW7", "SW13"), ("SW13", "SW29")),
        notes=(
            "Adjacency reconstructed from Section 3.1 constraints; "
            "Table 1 bit lengths (15/28/43) and the 1-of-3 partial "
            "coverage at SW10 hold by construction."
        ),
    )


# ---------------------------------------------------------------------------
# Fig. 6 — RNP backbone, 28 PoPs / 40 links
# ---------------------------------------------------------------------------

#: 28 pairwise-coprime IDs: the 27 odd primes 7..113 the paper's figure
#: style suggests, plus 9 (= 3²).  Includes every ID the paper names.
_RNP_IDS = (7, 9, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
            67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113)

#: Indicative PoP labels (the paper's figure labels PoPs with Brazilian
#: cities; only Boa Vista = SW7 and São Paulo = SW73 are pinned by the
#: text — the rest are cosmetic).
RNP_CITY_LABELS: Dict[str, str] = {
    "SW7": "Boa Vista (RR)", "SW13": "Manaus (AM)", "SW11": "Macapá (AP)",
    "SW9": "Belém (PA)", "SW19": "São Luís (MA)", "SW23": "Teresina (PI)",
    "SW29": "Fortaleza (CE)", "SW31": "Natal (RN)",
    "SW37": "João Pessoa (PB)", "SW43": "Recife (PE)",
    "SW47": "Maceió (AL)", "SW53": "Aracaju (SE)", "SW59": "Salvador (BA)",
    "SW61": "Vitória (ES)", "SW67": "Rio de Janeiro (RJ)",
    "SW71": "Belo Horizonte (MG)", "SW73": "São Paulo (SP)",
    "SW41": "Brasília (DF)", "SW17": "Palmas (TO)", "SW79": "Curitiba (PR)",
    "SW83": "Florianópolis (SC)", "SW89": "Porto Alegre (RS)",
    "SW97": "Campo Grande (MS)", "SW101": "Cuiabá (MT)",
    "SW103": "Goiânia (GO)", "SW107": "Campinas (SP)",
    "SW109": "Porto Velho (RO)", "SW113": "Rio Branco (AC)",
}

#: The 20 links pinned by Section 3.2 text (routes, protection segments,
#: deflection-candidate sets, the Fig. 8 redundant triangle).
_RNP_PINNED_LINKS = (
    ("SW7", "SW13"), ("SW7", "SW11"), ("SW11", "SW17"),
    ("SW13", "SW41"), ("SW13", "SW29"), ("SW13", "SW17"),
    ("SW13", "SW47"), ("SW13", "SW37"), ("SW13", "SW71"),
    ("SW41", "SW73"), ("SW41", "SW17"), ("SW41", "SW61"),
    ("SW73", "SW71"), ("SW73", "SW107"), ("SW73", "SW109"),
    ("SW17", "SW71"), ("SW71", "SW67"), ("SW61", "SW67"),
    ("SW107", "SW113"), ("SW109", "SW113"),
)

#: The 20 reconstruction links completing the 40-link backbone (regional
#: chains; they only provide "wilderness" for deflected random walks).
_RNP_FILL_LINKS = (
    ("SW9", "SW19"), ("SW19", "SW23"), ("SW23", "SW29"), ("SW29", "SW31"),
    ("SW31", "SW37"), ("SW37", "SW43"), ("SW43", "SW47"), ("SW47", "SW53"),
    ("SW53", "SW59"), ("SW59", "SW61"), ("SW9", "SW17"),
    ("SW67", "SW79"), ("SW79", "SW83"), ("SW83", "SW89"), ("SW89", "SW97"),
    ("SW97", "SW101"), ("SW101", "SW103"), ("SW103", "SW71"),
    ("SW31", "SW71"), ("SW53", "SW67"),
)

#: Relative link-rate classes for the heterogeneous profile ("links rates
#: are proportional to RNP real link rates").  The Boa Vista access span
#: is the thin one; the southeast core is full rate.
_RNP_THIN_LINKS = frozenset({("SW7", "SW13"), ("SW7", "SW11")})

#: Long-haul spans (the Brasília—Vitória—Rio—BH protection detour) carry
#: several times the propagation delay of the direct SW17 corridor; this
#: asymmetry is what disorders packets split across the two protection
#: branches after a SW41–SW73 failure (the paper's ~30 % loss there).
_RNP_LONG_LINKS = frozenset({
    ("SW41", "SW61"), ("SW61", "SW67"), ("SW67", "SW71"),
})
_RNP_LONG_DELAY_FACTOR = 20.0


def rnp28(rate_mbps: float = 100.0, delay_s: float = 0.002,
          queue_packets: int = 50,
          heterogeneous_rates: bool = True) -> Scenario:
    """The Brazilian RNP backbone scenario of Section 3.2 (Fig. 6).

    28 PoPs, 40 links.  Reconstruction invariants (asserted by tests):

    * route SW7 → SW13 → SW41 → SW73 (Boa Vista → São Paulo),
    * partial protection segments SW17→SW71, SW61→SW67, SW67→SW71,
      SW71→SW73 (exactly the paper's list),
    * SW7's only deflection alternative is SW11, whose only onward hop is
      SW17 (covered) — the "<5 % loss" case,
    * SW13's deflection candidates on SW13–SW41 failure are exactly
      {SW29, SW17, SW47, SW37, SW71} (1/5 each),
    * SW41's deflection candidates on SW41–SW73 failure are exactly
      {SW17, SW61} (1/2 each).

    Args:
        heterogeneous_rates: when True, the Boa Vista access links run at
            half rate (the paper scales links to real RNP rates; only the
            relative classes matter for the reported ratios).
    """
    g = PortGraph()
    for sid in _RNP_IDS:
        g.add_node(f"SW{sid}", kind=NodeKind.CORE, switch_id=sid)
    for a, b in _RNP_PINNED_LINKS + _RNP_FILL_LINKS:
        rate, delay = rate_mbps, delay_s
        if heterogeneous_rates and ((a, b) in _RNP_THIN_LINKS
                                    or (b, a) in _RNP_THIN_LINKS):
            rate = rate_mbps / 2.0
        if (a, b) in _RNP_LONG_LINKS or (b, a) in _RNP_LONG_LINKS:
            delay = delay_s * _RNP_LONG_DELAY_FACTOR
        g.add_link(a, b, rate_mbps=rate, delay_s=delay,
                   queue_packets=queue_packets)
    access_rate = rate_mbps / 2.0 if heterogeneous_rates else rate_mbps
    _attach_host(g, "H-BV", "E-BV", "SW7", access_rate, delay_s, queue_packets)
    _attach_host(g, "H-SP", "E-SP", "SW73", rate_mbps, delay_s, queue_packets)

    g.validate()
    partial = (
        ProtectionSegment("SW17", "SW71"),
        ProtectionSegment("SW61", "SW67"),
        ProtectionSegment("SW67", "SW71"),
        ProtectionSegment("SW71", "SW73"),
    )
    return Scenario(
        name="rnp28",
        graph=g,
        primary_route=("SW7", "SW13", "SW41", "SW73"),
        src_host="H-BV",
        dst_host="H-SP",
        protection={UNPROTECTED: (), PARTIAL: partial},
        # One reverse segment drives deflected ACKs home: anything that
        # reaches SW17 is steered to SW11, whose only other neighbour is
        # SW7 (the flow's source switch).
        reverse_protection={
            PARTIAL: (ProtectionSegment("SW17", "SW11"),),
        },
        failure_links=(("SW7", "SW13"), ("SW13", "SW41"), ("SW41", "SW73")),
        notes=(
            "28 PoPs / 40 links; 20 links pinned by Section 3.2, 20 "
            "reconstructed as regional chains. City labels indicative."
        ),
    )


# ---------------------------------------------------------------------------
# Fig. 8 — the redundant-path worst case
# ---------------------------------------------------------------------------

def redundant_path(rate_mbps: float = 100.0, delay_s: float = 0.001,
                   queue_packets: int = 50) -> Scenario:
    """The redundant-path worst-case scenario of Section 3.2 (Fig. 8).

    KAR's intrinsic constraint: one residue per switch, so SW73 cannot
    use *both* SW107 and SW109 even though both reach SW113.  On a
    SW73–SW107 failure the packet flips a fair coin between SW109
    (delivered) and SW71 (protection loop SW71→SW17→SW41→SW73, then coin
    again) — a geometric retry that the paper measures at 54.8 % of
    nominal TCP throughput.
    """
    g = PortGraph()
    for sid in (17, 41, 71, 73, 107, 109, 113):
        g.add_node(f"SW{sid}", kind=NodeKind.CORE, switch_id=sid)

    def link(a: str, b: str) -> None:
        g.add_link(a, b, rate_mbps=rate_mbps, delay_s=delay_s,
                   queue_packets=queue_packets)

    link("SW41", "SW73")
    link("SW73", "SW107")
    link("SW107", "SW113")
    link("SW73", "SW109")
    link("SW109", "SW113")
    link("SW73", "SW71")
    link("SW71", "SW17")
    link("SW17", "SW41")
    _attach_host(g, "H-SRC", "E-SRC", "SW41", rate_mbps, delay_s, queue_packets)
    _attach_host(g, "H-DST", "E-DST", "SW113", rate_mbps, delay_s, queue_packets)

    g.validate()
    protection = (
        ProtectionSegment("SW71", "SW17"),
        ProtectionSegment("SW17", "SW41"),
    )
    return Scenario(
        name="redundant_path",
        graph=g,
        primary_route=("SW41", "SW73", "SW107", "SW113"),
        src_host="H-SRC",
        dst_host="H-DST",
        protection={UNPROTECTED: (), PARTIAL: protection},
        # ACKs return over the redundant SW109 branch — a different route
        # ID (the KAR one-residue constraint binds per route, not per
        # network), untouched by the SW73-SW107 failure under study.
        reverse_route=("SW113", "SW109", "SW73", "SW41"),
        failure_links=(("SW73", "SW107"),),
        notes=(
            "Fully pinned by Section 3.2's Fig. 8 narrative: the "
            "SW109/SW71 coin flip and the SW71→SW17→SW41→SW73 "
            "protection loop."
        ),
    )
