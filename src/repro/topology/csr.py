"""CSR adjacency arrays: the vectorized view of a :class:`PortGraph`.

The per-flow control plane walks Python dicts (``PortGraph.neighbors``,
``port_of``) — fine for one flow, hopeless for cold-start full-mesh
provisioning of a real WAN.  This module converts a topology **once**
into flat numpy arrays (compressed sparse row form) so that
all-destination shortest-path trees can be computed with whole-frontier
numpy operations instead of per-node Python:

* ``indptr``/``indices`` — classic CSR: node ``u``'s neighbors are
  ``indices[indptr[u]:indptr[u+1]]``, sorted by node index;
* ``ports_out`` — parallel to ``indices``: the port index **on u**
  facing that neighbor (what a hop through ``u`` encodes);
* ``ports_back`` — parallel to ``indices``: the port index **on the
  neighbor** facing ``u`` (what a hop through the neighbor toward ``u``
  encodes — the array a destination-rooted BFS reads when it claims a
  child);
* ``weights`` — parallel to ``indices``: per-half-edge link cost
  (hop count ``1.0`` by default), for weighted variants;
* ``core_mask``/``switch_ids`` — per-node role and KAR modulus.

Node indexing is **name-sorted rank**: index order equals
lexicographic name order.  That single choice is what makes the
vectorized tie-break canonical — "smallest node index" and "smallest
node name" are the same thing, so numpy ``argmin``/first-occurrence
reductions land on exactly the parent the reference Python BFS picks
(see :class:`repro.controller.provision.DestinationTree`).

Down links are excluded at conversion time (the CSR form is rebuilt per
topology/link epoch, mirroring the engine's tree invalidation), so a
tree computed over the arrays describes the *residual* topology.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.topology.graph import NodeKind, PortGraph, TopologyError

__all__ = ["CsrTopology", "TreeArrays", "destination_tree_arrays"]


def _link_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class CsrTopology:
    """Frozen CSR snapshot of a :class:`PortGraph` (minus down links).

    Build once per (topology epoch, down-link set) with
    :meth:`from_graph`; every array is read-only from then on.  The
    conversion is O(nodes + links·log) Python work — all later
    per-destination tree builds are numpy-only.
    """

    __slots__ = (
        "names", "index", "n", "indptr", "indices", "ports_out",
        "ports_back", "weights", "core_mask", "switch_ids", "down",
    )

    def __init__(
        self,
        names: Tuple[str, ...],
        index: Dict[str, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        ports_out: np.ndarray,
        ports_back: np.ndarray,
        weights: np.ndarray,
        core_mask: np.ndarray,
        switch_ids: np.ndarray,
        down: FrozenSet[Tuple[str, str]],
    ):
        self.names = names
        self.index = index
        self.n = len(names)
        self.indptr = indptr
        self.indices = indices
        self.ports_out = ports_out
        self.ports_back = ports_back
        self.weights = weights
        self.core_mask = core_mask
        self.switch_ids = switch_ids
        self.down = down

    @classmethod
    def from_graph(
        cls,
        graph: PortGraph,
        down: FrozenSet[Tuple[str, str]] = frozenset(),
    ) -> "CsrTopology":
        """Convert *graph* into CSR arrays, excluding *down* links.

        Node indices are name-sorted ranks; each node's adjacency slice
        is sorted by neighbor index, so "first occurrence" in any
        frontier gather is "smallest name" — the canonical tie-break.
        """
        names = tuple(sorted(n.name for n in graph.nodes()))
        index = {name: i for i, name in enumerate(names)}
        n = len(names)

        adj: List[List[Tuple[int, int, int, float]]] = [[] for _ in range(n)]
        for link in graph.links():
            if down and link.key in down:
                continue
            ia, ib = index[link.a], index[link.b]
            w = 1.0
            adj[ia].append((ib, link.a_port, link.b_port, w))
            adj[ib].append((ia, link.b_port, link.a_port, w))

        indptr = np.zeros(n + 1, dtype=np.int32)
        total = sum(len(a) for a in adj)
        indices = np.empty(total, dtype=np.int32)
        ports_out = np.empty(total, dtype=np.int32)
        ports_back = np.empty(total, dtype=np.int32)
        weights = np.empty(total, dtype=np.float64)
        pos = 0
        for i, entries in enumerate(adj):
            entries.sort(key=lambda e: e[0])
            for nb, p_out, p_back, w in entries:
                indices[pos] = nb
                ports_out[pos] = p_out
                ports_back[pos] = p_back
                weights[pos] = w
                pos += 1
            indptr[i + 1] = pos

        core_mask = np.zeros(n, dtype=bool)
        switch_ids = np.full(n, -1, dtype=np.int64)
        for info in graph.nodes():
            i = index[info.name]
            if info.kind == NodeKind.CORE:
                core_mask[i] = True
                if info.switch_id is not None:
                    switch_ids[i] = info.switch_id

        for arr in (indptr, indices, ports_out, ports_back, weights,
                    core_mask, switch_ids):
            arr.setflags(write=False)
        return cls(names, index, indptr, indices, ports_out, ports_back,
                   weights, core_mask, switch_ids, frozenset(down))

    def node_index(self, name: str) -> int:
        try:
            return self.index[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def neighbors_of(self, node: "int | str") -> np.ndarray:
        """Neighbor indices of a node (by index or name), ascending."""
        idx = self.node_index(node) if isinstance(node, str) else node
        return self.indices[self.indptr[idx]:self.indptr[idx + 1]]

    def edge_slice(self, idx: int) -> slice:
        return slice(int(self.indptr[idx]), int(self.indptr[idx + 1]))


class TreeArrays:
    """One destination's shortest-path tree in array form.

    ``parent[x]`` is the node index of ``x``'s next hop toward the
    root, ``depth[x]`` its hop distance (``-1`` when unreachable
    through the core), and ``parent_port[x]`` the port **on x** facing
    its parent — exactly the residue a KAR hop through ``x`` encodes.
    ``order`` lists reached non-root nodes in canonical BFS order
    (by depth, then node index), which is the order the bulk encoder
    extends route IDs down the tree.
    """

    __slots__ = ("root", "depth", "parent", "parent_port", "order")

    def __init__(self, root: int, depth: np.ndarray, parent: np.ndarray,
                 parent_port: np.ndarray, order: np.ndarray):
        self.root = root
        self.depth = depth
        self.parent = parent
        self.parent_port = parent_port
        self.order = order


def destination_tree_arrays(csr: CsrTopology, root: int) -> TreeArrays:
    """Frontier-batched BFS toward *root* over the core subgraph.

    Expansion never leaves the core: only nodes with ``core_mask`` set
    are claimed (the root itself may be an edge node — the usual case —
    since a destination tree is rooted at the egress edge).

    Canonical tie-break (locked by tests against the reference Python
    BFS): a node at depth ``d+1`` takes as parent the **smallest-named**
    (= smallest-index) node at depth ``d`` adjacent to it.  The whole
    level is processed with numpy: gather every frontier half-edge,
    drop seen/non-core targets, and keep the first occurrence per
    target — first is smallest because the frontier is kept sorted and
    adjacency slices are index-sorted.
    """
    n = csr.n
    depth = np.full(n, -1, dtype=np.int32)
    parent = np.full(n, -1, dtype=np.int32)
    parent_port = np.full(n, -1, dtype=np.int32)
    depth[root] = 0

    sl = csr.edge_slice(root)
    cand = csr.indices[sl]
    keep = csr.core_mask[cand]
    frontier = cand[keep].astype(np.int64)
    parent[frontier] = root
    parent_port[frontier] = csr.ports_back[sl][keep]
    depth[frontier] = 1

    levels = [frontier]
    d = 1
    while frontier.size:
        starts = csr.indptr[frontier].astype(np.int64)
        counts = (csr.indptr[frontier + 1] - csr.indptr[frontier]).astype(
            np.int64
        )
        total = int(counts.sum())
        if total == 0:
            break
        # Gather all outgoing half-edges of the frontier in one shot:
        # e_idx[k] walks each frontier node's adjacency slice in order.
        cum = np.cumsum(counts)
        e_idx = np.repeat(starts - (cum - counts), counts) + np.arange(total)
        cand = csr.indices[e_idx]
        keep = csr.core_mask[cand] & (depth[cand] < 0)
        if not keep.any():
            break
        cand = cand[keep]
        e_kept = e_idx[keep]
        src = np.repeat(frontier, counts)[keep]
        # First occurrence per target = smallest parent index (the
        # frontier is sorted ascending and np.unique returns the index
        # of each value's first occurrence in the original array).
        uniq, first = np.unique(cand, return_index=True)
        parent[uniq] = src[first]
        parent_port[uniq] = csr.ports_back[e_kept[first]]
        d += 1
        depth[uniq] = d
        frontier = uniq.astype(np.int64)
        levels.append(frontier)

    order = (
        np.concatenate(levels) if levels and levels[0].size
        else np.empty(0, dtype=np.int64)
    )
    return TreeArrays(root, depth, parent, parent_port, order)
