graph [
  directed 0
  label "SynthWAN-754 (deterministic synthetic WAN, seed 20260808)"
  node [
    id 0
    label "POP0000"
  ]
  node [
    id 1
    label "POP0001"
  ]
  node [
    id 2
    label "POP0002"
  ]
  node [
    id 3
    label "POP0003"
  ]
  node [
    id 4
    label "POP0004"
  ]
  node [
    id 5
    label "POP0005"
  ]
  node [
    id 6
    label "POP0006"
  ]
  node [
    id 7
    label "POP0007"
  ]
  node [
    id 8
    label "POP0008"
  ]
  node [
    id 9
    label "POP0009"
  ]
  node [
    id 10
    label "POP0010"
  ]
  node [
    id 11
    label "POP0011"
  ]
  node [
    id 12
    label "POP0012"
  ]
  node [
    id 13
    label "POP0013"
  ]
  node [
    id 14
    label "POP0014"
  ]
  node [
    id 15
    label "POP0015"
  ]
  node [
    id 16
    label "POP0016"
  ]
  node [
    id 17
    label "POP0017"
  ]
  node [
    id 18
    label "POP0018"
  ]
  node [
    id 19
    label "POP0019"
  ]
  node [
    id 20
    label "POP0020"
  ]
  node [
    id 21
    label "POP0021"
  ]
  node [
    id 22
    label "POP0022"
  ]
  node [
    id 23
    label "POP0023"
  ]
  node [
    id 24
    label "POP0024"
  ]
  node [
    id 25
    label "POP0025"
  ]
  node [
    id 26
    label "POP0026"
  ]
  node [
    id 27
    label "POP0027"
  ]
  node [
    id 28
    label "POP0028"
  ]
  node [
    id 29
    label "POP0029"
  ]
  node [
    id 30
    label "POP0030"
  ]
  node [
    id 31
    label "POP0031"
  ]
  node [
    id 32
    label "POP0032"
  ]
  node [
    id 33
    label "POP0033"
  ]
  node [
    id 34
    label "POP0034"
  ]
  node [
    id 35
    label "POP0035"
  ]
  node [
    id 36
    label "POP0036"
  ]
  node [
    id 37
    label "POP0037"
  ]
  node [
    id 38
    label "POP0038"
  ]
  node [
    id 39
    label "POP0039"
  ]
  node [
    id 40
    label "POP0040"
  ]
  node [
    id 41
    label "POP0041"
  ]
  node [
    id 42
    label "POP0042"
  ]
  node [
    id 43
    label "POP0043"
  ]
  node [
    id 44
    label "POP0044"
  ]
  node [
    id 45
    label "POP0045"
  ]
  node [
    id 46
    label "POP0046"
  ]
  node [
    id 47
    label "POP0047"
  ]
  node [
    id 48
    label "POP0048"
  ]
  node [
    id 49
    label "POP0049"
  ]
  node [
    id 50
    label "POP0050"
  ]
  node [
    id 51
    label "POP0051"
  ]
  node [
    id 52
    label "POP0052"
  ]
  node [
    id 53
    label "POP0053"
  ]
  node [
    id 54
    label "POP0054"
  ]
  node [
    id 55
    label "POP0055"
  ]
  node [
    id 56
    label "POP0056"
  ]
  node [
    id 57
    label "POP0057"
  ]
  node [
    id 58
    label "POP0058"
  ]
  node [
    id 59
    label "POP0059"
  ]
  node [
    id 60
    label "POP0060"
  ]
  node [
    id 61
    label "POP0061"
  ]
  node [
    id 62
    label "POP0062"
  ]
  node [
    id 63
    label "POP0063"
  ]
  node [
    id 64
    label "POP0064"
  ]
  node [
    id 65
    label "POP0065"
  ]
  node [
    id 66
    label "POP0066"
  ]
  node [
    id 67
    label "POP0067"
  ]
  node [
    id 68
    label "POP0068"
  ]
  node [
    id 69
    label "POP0069"
  ]
  node [
    id 70
    label "POP0070"
  ]
  node [
    id 71
    label "POP0071"
  ]
  node [
    id 72
    label "POP0072"
  ]
  node [
    id 73
    label "POP0073"
  ]
  node [
    id 74
    label "POP0074"
  ]
  node [
    id 75
    label "POP0075"
  ]
  node [
    id 76
    label "POP0076"
  ]
  node [
    id 77
    label "POP0077"
  ]
  node [
    id 78
    label "POP0078"
  ]
  node [
    id 79
    label "POP0079"
  ]
  node [
    id 80
    label "POP0080"
  ]
  node [
    id 81
    label "POP0081"
  ]
  node [
    id 82
    label "POP0082"
  ]
  node [
    id 83
    label "POP0083"
  ]
  node [
    id 84
    label "POP0084"
  ]
  node [
    id 85
    label "POP0085"
  ]
  node [
    id 86
    label "POP0086"
  ]
  node [
    id 87
    label "POP0087"
  ]
  node [
    id 88
    label "POP0088"
  ]
  node [
    id 89
    label "POP0089"
  ]
  node [
    id 90
    label "POP0090"
  ]
  node [
    id 91
    label "POP0091"
  ]
  node [
    id 92
    label "POP0092"
  ]
  node [
    id 93
    label "POP0093"
  ]
  node [
    id 94
    label "POP0094"
  ]
  node [
    id 95
    label "POP0095"
  ]
  node [
    id 96
    label "POP0096"
  ]
  node [
    id 97
    label "POP0097"
  ]
  node [
    id 98
    label "POP0098"
  ]
  node [
    id 99
    label "POP0099"
  ]
  node [
    id 100
    label "POP0100"
  ]
  node [
    id 101
    label "POP0101"
  ]
  node [
    id 102
    label "POP0102"
  ]
  node [
    id 103
    label "POP0103"
  ]
  node [
    id 104
    label "POP0104"
  ]
  node [
    id 105
    label "POP0105"
  ]
  node [
    id 106
    label "POP0106"
  ]
  node [
    id 107
    label "POP0107"
  ]
  node [
    id 108
    label "POP0108"
  ]
  node [
    id 109
    label "POP0109"
  ]
  node [
    id 110
    label "POP0110"
  ]
  node [
    id 111
    label "POP0111"
  ]
  node [
    id 112
    label "POP0112"
  ]
  node [
    id 113
    label "POP0113"
  ]
  node [
    id 114
    label "POP0114"
  ]
  node [
    id 115
    label "POP0115"
  ]
  node [
    id 116
    label "POP0116"
  ]
  node [
    id 117
    label "POP0117"
  ]
  node [
    id 118
    label "POP0118"
  ]
  node [
    id 119
    label "POP0119"
  ]
  node [
    id 120
    label "POP0120"
  ]
  node [
    id 121
    label "POP0121"
  ]
  node [
    id 122
    label "POP0122"
  ]
  node [
    id 123
    label "POP0123"
  ]
  node [
    id 124
    label "POP0124"
  ]
  node [
    id 125
    label "POP0125"
  ]
  node [
    id 126
    label "POP0126"
  ]
  node [
    id 127
    label "POP0127"
  ]
  node [
    id 128
    label "POP0128"
  ]
  node [
    id 129
    label "POP0129"
  ]
  node [
    id 130
    label "POP0130"
  ]
  node [
    id 131
    label "POP0131"
  ]
  node [
    id 132
    label "POP0132"
  ]
  node [
    id 133
    label "POP0133"
  ]
  node [
    id 134
    label "POP0134"
  ]
  node [
    id 135
    label "POP0135"
  ]
  node [
    id 136
    label "POP0136"
  ]
  node [
    id 137
    label "POP0137"
  ]
  node [
    id 138
    label "POP0138"
  ]
  node [
    id 139
    label "POP0139"
  ]
  node [
    id 140
    label "POP0140"
  ]
  node [
    id 141
    label "POP0141"
  ]
  node [
    id 142
    label "POP0142"
  ]
  node [
    id 143
    label "POP0143"
  ]
  node [
    id 144
    label "POP0144"
  ]
  node [
    id 145
    label "POP0145"
  ]
  node [
    id 146
    label "POP0146"
  ]
  node [
    id 147
    label "POP0147"
  ]
  node [
    id 148
    label "POP0148"
  ]
  node [
    id 149
    label "POP0149"
  ]
  node [
    id 150
    label "POP0150"
  ]
  node [
    id 151
    label "POP0151"
  ]
  node [
    id 152
    label "POP0152"
  ]
  node [
    id 153
    label "POP0153"
  ]
  node [
    id 154
    label "POP0154"
  ]
  node [
    id 155
    label "POP0155"
  ]
  node [
    id 156
    label "POP0156"
  ]
  node [
    id 157
    label "POP0157"
  ]
  node [
    id 158
    label "POP0158"
  ]
  node [
    id 159
    label "POP0159"
  ]
  node [
    id 160
    label "POP0160"
  ]
  node [
    id 161
    label "POP0161"
  ]
  node [
    id 162
    label "POP0162"
  ]
  node [
    id 163
    label "POP0163"
  ]
  node [
    id 164
    label "POP0164"
  ]
  node [
    id 165
    label "POP0165"
  ]
  node [
    id 166
    label "POP0166"
  ]
  node [
    id 167
    label "POP0167"
  ]
  node [
    id 168
    label "POP0168"
  ]
  node [
    id 169
    label "POP0169"
  ]
  node [
    id 170
    label "POP0170"
  ]
  node [
    id 171
    label "POP0171"
  ]
  node [
    id 172
    label "POP0172"
  ]
  node [
    id 173
    label "POP0173"
  ]
  node [
    id 174
    label "POP0174"
  ]
  node [
    id 175
    label "POP0175"
  ]
  node [
    id 176
    label "POP0176"
  ]
  node [
    id 177
    label "POP0177"
  ]
  node [
    id 178
    label "POP0178"
  ]
  node [
    id 179
    label "POP0179"
  ]
  node [
    id 180
    label "POP0180"
  ]
  node [
    id 181
    label "POP0181"
  ]
  node [
    id 182
    label "POP0182"
  ]
  node [
    id 183
    label "POP0183"
  ]
  node [
    id 184
    label "POP0184"
  ]
  node [
    id 185
    label "POP0185"
  ]
  node [
    id 186
    label "POP0186"
  ]
  node [
    id 187
    label "POP0187"
  ]
  node [
    id 188
    label "POP0188"
  ]
  node [
    id 189
    label "POP0189"
  ]
  node [
    id 190
    label "POP0190"
  ]
  node [
    id 191
    label "POP0191"
  ]
  node [
    id 192
    label "POP0192"
  ]
  node [
    id 193
    label "POP0193"
  ]
  node [
    id 194
    label "POP0194"
  ]
  node [
    id 195
    label "POP0195"
  ]
  node [
    id 196
    label "POP0196"
  ]
  node [
    id 197
    label "POP0197"
  ]
  node [
    id 198
    label "POP0198"
  ]
  node [
    id 199
    label "POP0199"
  ]
  node [
    id 200
    label "POP0200"
  ]
  node [
    id 201
    label "POP0201"
  ]
  node [
    id 202
    label "POP0202"
  ]
  node [
    id 203
    label "POP0203"
  ]
  node [
    id 204
    label "POP0204"
  ]
  node [
    id 205
    label "POP0205"
  ]
  node [
    id 206
    label "POP0206"
  ]
  node [
    id 207
    label "POP0207"
  ]
  node [
    id 208
    label "POP0208"
  ]
  node [
    id 209
    label "POP0209"
  ]
  node [
    id 210
    label "POP0210"
  ]
  node [
    id 211
    label "POP0211"
  ]
  node [
    id 212
    label "POP0212"
  ]
  node [
    id 213
    label "POP0213"
  ]
  node [
    id 214
    label "POP0214"
  ]
  node [
    id 215
    label "POP0215"
  ]
  node [
    id 216
    label "POP0216"
  ]
  node [
    id 217
    label "POP0217"
  ]
  node [
    id 218
    label "POP0218"
  ]
  node [
    id 219
    label "POP0219"
  ]
  node [
    id 220
    label "POP0220"
  ]
  node [
    id 221
    label "POP0221"
  ]
  node [
    id 222
    label "POP0222"
  ]
  node [
    id 223
    label "POP0223"
  ]
  node [
    id 224
    label "POP0224"
  ]
  node [
    id 225
    label "POP0225"
  ]
  node [
    id 226
    label "POP0226"
  ]
  node [
    id 227
    label "POP0227"
  ]
  node [
    id 228
    label "POP0228"
  ]
  node [
    id 229
    label "POP0229"
  ]
  node [
    id 230
    label "POP0230"
  ]
  node [
    id 231
    label "POP0231"
  ]
  node [
    id 232
    label "POP0232"
  ]
  node [
    id 233
    label "POP0233"
  ]
  node [
    id 234
    label "POP0234"
  ]
  node [
    id 235
    label "POP0235"
  ]
  node [
    id 236
    label "POP0236"
  ]
  node [
    id 237
    label "POP0237"
  ]
  node [
    id 238
    label "POP0238"
  ]
  node [
    id 239
    label "POP0239"
  ]
  node [
    id 240
    label "POP0240"
  ]
  node [
    id 241
    label "POP0241"
  ]
  node [
    id 242
    label "POP0242"
  ]
  node [
    id 243
    label "POP0243"
  ]
  node [
    id 244
    label "POP0244"
  ]
  node [
    id 245
    label "POP0245"
  ]
  node [
    id 246
    label "POP0246"
  ]
  node [
    id 247
    label "POP0247"
  ]
  node [
    id 248
    label "POP0248"
  ]
  node [
    id 249
    label "POP0249"
  ]
  node [
    id 250
    label "POP0250"
  ]
  node [
    id 251
    label "POP0251"
  ]
  node [
    id 252
    label "POP0252"
  ]
  node [
    id 253
    label "POP0253"
  ]
  node [
    id 254
    label "POP0254"
  ]
  node [
    id 255
    label "POP0255"
  ]
  node [
    id 256
    label "POP0256"
  ]
  node [
    id 257
    label "POP0257"
  ]
  node [
    id 258
    label "POP0258"
  ]
  node [
    id 259
    label "POP0259"
  ]
  node [
    id 260
    label "POP0260"
  ]
  node [
    id 261
    label "POP0261"
  ]
  node [
    id 262
    label "POP0262"
  ]
  node [
    id 263
    label "POP0263"
  ]
  node [
    id 264
    label "POP0264"
  ]
  node [
    id 265
    label "POP0265"
  ]
  node [
    id 266
    label "POP0266"
  ]
  node [
    id 267
    label "POP0267"
  ]
  node [
    id 268
    label "POP0268"
  ]
  node [
    id 269
    label "POP0269"
  ]
  node [
    id 270
    label "POP0270"
  ]
  node [
    id 271
    label "POP0271"
  ]
  node [
    id 272
    label "POP0272"
  ]
  node [
    id 273
    label "POP0273"
  ]
  node [
    id 274
    label "POP0274"
  ]
  node [
    id 275
    label "POP0275"
  ]
  node [
    id 276
    label "POP0276"
  ]
  node [
    id 277
    label "POP0277"
  ]
  node [
    id 278
    label "POP0278"
  ]
  node [
    id 279
    label "POP0279"
  ]
  node [
    id 280
    label "POP0280"
  ]
  node [
    id 281
    label "POP0281"
  ]
  node [
    id 282
    label "POP0282"
  ]
  node [
    id 283
    label "POP0283"
  ]
  node [
    id 284
    label "POP0284"
  ]
  node [
    id 285
    label "POP0285"
  ]
  node [
    id 286
    label "POP0286"
  ]
  node [
    id 287
    label "POP0287"
  ]
  node [
    id 288
    label "POP0288"
  ]
  node [
    id 289
    label "POP0289"
  ]
  node [
    id 290
    label "POP0290"
  ]
  node [
    id 291
    label "POP0291"
  ]
  node [
    id 292
    label "POP0292"
  ]
  node [
    id 293
    label "POP0293"
  ]
  node [
    id 294
    label "POP0294"
  ]
  node [
    id 295
    label "POP0295"
  ]
  node [
    id 296
    label "POP0296"
  ]
  node [
    id 297
    label "POP0297"
  ]
  node [
    id 298
    label "POP0298"
  ]
  node [
    id 299
    label "POP0299"
  ]
  node [
    id 300
    label "POP0300"
  ]
  node [
    id 301
    label "POP0301"
  ]
  node [
    id 302
    label "POP0302"
  ]
  node [
    id 303
    label "POP0303"
  ]
  node [
    id 304
    label "POP0304"
  ]
  node [
    id 305
    label "POP0305"
  ]
  node [
    id 306
    label "POP0306"
  ]
  node [
    id 307
    label "POP0307"
  ]
  node [
    id 308
    label "POP0308"
  ]
  node [
    id 309
    label "POP0309"
  ]
  node [
    id 310
    label "POP0310"
  ]
  node [
    id 311
    label "POP0311"
  ]
  node [
    id 312
    label "POP0312"
  ]
  node [
    id 313
    label "POP0313"
  ]
  node [
    id 314
    label "POP0314"
  ]
  node [
    id 315
    label "POP0315"
  ]
  node [
    id 316
    label "POP0316"
  ]
  node [
    id 317
    label "POP0317"
  ]
  node [
    id 318
    label "POP0318"
  ]
  node [
    id 319
    label "POP0319"
  ]
  node [
    id 320
    label "POP0320"
  ]
  node [
    id 321
    label "POP0321"
  ]
  node [
    id 322
    label "POP0322"
  ]
  node [
    id 323
    label "POP0323"
  ]
  node [
    id 324
    label "POP0324"
  ]
  node [
    id 325
    label "POP0325"
  ]
  node [
    id 326
    label "POP0326"
  ]
  node [
    id 327
    label "POP0327"
  ]
  node [
    id 328
    label "POP0328"
  ]
  node [
    id 329
    label "POP0329"
  ]
  node [
    id 330
    label "POP0330"
  ]
  node [
    id 331
    label "POP0331"
  ]
  node [
    id 332
    label "POP0332"
  ]
  node [
    id 333
    label "POP0333"
  ]
  node [
    id 334
    label "POP0334"
  ]
  node [
    id 335
    label "POP0335"
  ]
  node [
    id 336
    label "POP0336"
  ]
  node [
    id 337
    label "POP0337"
  ]
  node [
    id 338
    label "POP0338"
  ]
  node [
    id 339
    label "POP0339"
  ]
  node [
    id 340
    label "POP0340"
  ]
  node [
    id 341
    label "POP0341"
  ]
  node [
    id 342
    label "POP0342"
  ]
  node [
    id 343
    label "POP0343"
  ]
  node [
    id 344
    label "POP0344"
  ]
  node [
    id 345
    label "POP0345"
  ]
  node [
    id 346
    label "POP0346"
  ]
  node [
    id 347
    label "POP0347"
  ]
  node [
    id 348
    label "POP0348"
  ]
  node [
    id 349
    label "POP0349"
  ]
  node [
    id 350
    label "POP0350"
  ]
  node [
    id 351
    label "POP0351"
  ]
  node [
    id 352
    label "POP0352"
  ]
  node [
    id 353
    label "POP0353"
  ]
  node [
    id 354
    label "POP0354"
  ]
  node [
    id 355
    label "POP0355"
  ]
  node [
    id 356
    label "POP0356"
  ]
  node [
    id 357
    label "POP0357"
  ]
  node [
    id 358
    label "POP0358"
  ]
  node [
    id 359
    label "POP0359"
  ]
  node [
    id 360
    label "POP0360"
  ]
  node [
    id 361
    label "POP0361"
  ]
  node [
    id 362
    label "POP0362"
  ]
  node [
    id 363
    label "POP0363"
  ]
  node [
    id 364
    label "POP0364"
  ]
  node [
    id 365
    label "POP0365"
  ]
  node [
    id 366
    label "POP0366"
  ]
  node [
    id 367
    label "POP0367"
  ]
  node [
    id 368
    label "POP0368"
  ]
  node [
    id 369
    label "POP0369"
  ]
  node [
    id 370
    label "POP0370"
  ]
  node [
    id 371
    label "POP0371"
  ]
  node [
    id 372
    label "POP0372"
  ]
  node [
    id 373
    label "POP0373"
  ]
  node [
    id 374
    label "POP0374"
  ]
  node [
    id 375
    label "POP0375"
  ]
  node [
    id 376
    label "POP0376"
  ]
  node [
    id 377
    label "POP0377"
  ]
  node [
    id 378
    label "POP0378"
  ]
  node [
    id 379
    label "POP0379"
  ]
  node [
    id 380
    label "POP0380"
  ]
  node [
    id 381
    label "POP0381"
  ]
  node [
    id 382
    label "POP0382"
  ]
  node [
    id 383
    label "POP0383"
  ]
  node [
    id 384
    label "POP0384"
  ]
  node [
    id 385
    label "POP0385"
  ]
  node [
    id 386
    label "POP0386"
  ]
  node [
    id 387
    label "POP0387"
  ]
  node [
    id 388
    label "POP0388"
  ]
  node [
    id 389
    label "POP0389"
  ]
  node [
    id 390
    label "POP0390"
  ]
  node [
    id 391
    label "POP0391"
  ]
  node [
    id 392
    label "POP0392"
  ]
  node [
    id 393
    label "POP0393"
  ]
  node [
    id 394
    label "POP0394"
  ]
  node [
    id 395
    label "POP0395"
  ]
  node [
    id 396
    label "POP0396"
  ]
  node [
    id 397
    label "POP0397"
  ]
  node [
    id 398
    label "POP0398"
  ]
  node [
    id 399
    label "POP0399"
  ]
  node [
    id 400
    label "POP0400"
  ]
  node [
    id 401
    label "POP0401"
  ]
  node [
    id 402
    label "POP0402"
  ]
  node [
    id 403
    label "POP0403"
  ]
  node [
    id 404
    label "POP0404"
  ]
  node [
    id 405
    label "POP0405"
  ]
  node [
    id 406
    label "POP0406"
  ]
  node [
    id 407
    label "POP0407"
  ]
  node [
    id 408
    label "POP0408"
  ]
  node [
    id 409
    label "POP0409"
  ]
  node [
    id 410
    label "POP0410"
  ]
  node [
    id 411
    label "POP0411"
  ]
  node [
    id 412
    label "POP0412"
  ]
  node [
    id 413
    label "POP0413"
  ]
  node [
    id 414
    label "POP0414"
  ]
  node [
    id 415
    label "POP0415"
  ]
  node [
    id 416
    label "POP0416"
  ]
  node [
    id 417
    label "POP0417"
  ]
  node [
    id 418
    label "POP0418"
  ]
  node [
    id 419
    label "POP0419"
  ]
  node [
    id 420
    label "POP0420"
  ]
  node [
    id 421
    label "POP0421"
  ]
  node [
    id 422
    label "POP0422"
  ]
  node [
    id 423
    label "POP0423"
  ]
  node [
    id 424
    label "POP0424"
  ]
  node [
    id 425
    label "POP0425"
  ]
  node [
    id 426
    label "POP0426"
  ]
  node [
    id 427
    label "POP0427"
  ]
  node [
    id 428
    label "POP0428"
  ]
  node [
    id 429
    label "POP0429"
  ]
  node [
    id 430
    label "POP0430"
  ]
  node [
    id 431
    label "POP0431"
  ]
  node [
    id 432
    label "POP0432"
  ]
  node [
    id 433
    label "POP0433"
  ]
  node [
    id 434
    label "POP0434"
  ]
  node [
    id 435
    label "POP0435"
  ]
  node [
    id 436
    label "POP0436"
  ]
  node [
    id 437
    label "POP0437"
  ]
  node [
    id 438
    label "POP0438"
  ]
  node [
    id 439
    label "POP0439"
  ]
  node [
    id 440
    label "POP0440"
  ]
  node [
    id 441
    label "POP0441"
  ]
  node [
    id 442
    label "POP0442"
  ]
  node [
    id 443
    label "POP0443"
  ]
  node [
    id 444
    label "POP0444"
  ]
  node [
    id 445
    label "POP0445"
  ]
  node [
    id 446
    label "POP0446"
  ]
  node [
    id 447
    label "POP0447"
  ]
  node [
    id 448
    label "POP0448"
  ]
  node [
    id 449
    label "POP0449"
  ]
  node [
    id 450
    label "POP0450"
  ]
  node [
    id 451
    label "POP0451"
  ]
  node [
    id 452
    label "POP0452"
  ]
  node [
    id 453
    label "POP0453"
  ]
  node [
    id 454
    label "POP0454"
  ]
  node [
    id 455
    label "POP0455"
  ]
  node [
    id 456
    label "POP0456"
  ]
  node [
    id 457
    label "POP0457"
  ]
  node [
    id 458
    label "POP0458"
  ]
  node [
    id 459
    label "POP0459"
  ]
  node [
    id 460
    label "POP0460"
  ]
  node [
    id 461
    label "POP0461"
  ]
  node [
    id 462
    label "POP0462"
  ]
  node [
    id 463
    label "POP0463"
  ]
  node [
    id 464
    label "POP0464"
  ]
  node [
    id 465
    label "POP0465"
  ]
  node [
    id 466
    label "POP0466"
  ]
  node [
    id 467
    label "POP0467"
  ]
  node [
    id 468
    label "POP0468"
  ]
  node [
    id 469
    label "POP0469"
  ]
  node [
    id 470
    label "POP0470"
  ]
  node [
    id 471
    label "POP0471"
  ]
  node [
    id 472
    label "POP0472"
  ]
  node [
    id 473
    label "POP0473"
  ]
  node [
    id 474
    label "POP0474"
  ]
  node [
    id 475
    label "POP0475"
  ]
  node [
    id 476
    label "POP0476"
  ]
  node [
    id 477
    label "POP0477"
  ]
  node [
    id 478
    label "POP0478"
  ]
  node [
    id 479
    label "POP0479"
  ]
  node [
    id 480
    label "POP0480"
  ]
  node [
    id 481
    label "POP0481"
  ]
  node [
    id 482
    label "POP0482"
  ]
  node [
    id 483
    label "POP0483"
  ]
  node [
    id 484
    label "POP0484"
  ]
  node [
    id 485
    label "POP0485"
  ]
  node [
    id 486
    label "POP0486"
  ]
  node [
    id 487
    label "POP0487"
  ]
  node [
    id 488
    label "POP0488"
  ]
  node [
    id 489
    label "POP0489"
  ]
  node [
    id 490
    label "POP0490"
  ]
  node [
    id 491
    label "POP0491"
  ]
  node [
    id 492
    label "POP0492"
  ]
  node [
    id 493
    label "POP0493"
  ]
  node [
    id 494
    label "POP0494"
  ]
  node [
    id 495
    label "POP0495"
  ]
  node [
    id 496
    label "POP0496"
  ]
  node [
    id 497
    label "POP0497"
  ]
  node [
    id 498
    label "POP0498"
  ]
  node [
    id 499
    label "POP0499"
  ]
  node [
    id 500
    label "POP0500"
  ]
  node [
    id 501
    label "POP0501"
  ]
  node [
    id 502
    label "POP0502"
  ]
  node [
    id 503
    label "POP0503"
  ]
  node [
    id 504
    label "POP0504"
  ]
  node [
    id 505
    label "POP0505"
  ]
  node [
    id 506
    label "POP0506"
  ]
  node [
    id 507
    label "POP0507"
  ]
  node [
    id 508
    label "POP0508"
  ]
  node [
    id 509
    label "POP0509"
  ]
  node [
    id 510
    label "POP0510"
  ]
  node [
    id 511
    label "POP0511"
  ]
  node [
    id 512
    label "POP0512"
  ]
  node [
    id 513
    label "POP0513"
  ]
  node [
    id 514
    label "POP0514"
  ]
  node [
    id 515
    label "POP0515"
  ]
  node [
    id 516
    label "POP0516"
  ]
  node [
    id 517
    label "POP0517"
  ]
  node [
    id 518
    label "POP0518"
  ]
  node [
    id 519
    label "POP0519"
  ]
  node [
    id 520
    label "POP0520"
  ]
  node [
    id 521
    label "POP0521"
  ]
  node [
    id 522
    label "POP0522"
  ]
  node [
    id 523
    label "POP0523"
  ]
  node [
    id 524
    label "POP0524"
  ]
  node [
    id 525
    label "POP0525"
  ]
  node [
    id 526
    label "POP0526"
  ]
  node [
    id 527
    label "POP0527"
  ]
  node [
    id 528
    label "POP0528"
  ]
  node [
    id 529
    label "POP0529"
  ]
  node [
    id 530
    label "POP0530"
  ]
  node [
    id 531
    label "POP0531"
  ]
  node [
    id 532
    label "POP0532"
  ]
  node [
    id 533
    label "POP0533"
  ]
  node [
    id 534
    label "POP0534"
  ]
  node [
    id 535
    label "POP0535"
  ]
  node [
    id 536
    label "POP0536"
  ]
  node [
    id 537
    label "POP0537"
  ]
  node [
    id 538
    label "POP0538"
  ]
  node [
    id 539
    label "POP0539"
  ]
  node [
    id 540
    label "POP0540"
  ]
  node [
    id 541
    label "POP0541"
  ]
  node [
    id 542
    label "POP0542"
  ]
  node [
    id 543
    label "POP0543"
  ]
  node [
    id 544
    label "POP0544"
  ]
  node [
    id 545
    label "POP0545"
  ]
  node [
    id 546
    label "POP0546"
  ]
  node [
    id 547
    label "POP0547"
  ]
  node [
    id 548
    label "POP0548"
  ]
  node [
    id 549
    label "POP0549"
  ]
  node [
    id 550
    label "POP0550"
  ]
  node [
    id 551
    label "POP0551"
  ]
  node [
    id 552
    label "POP0552"
  ]
  node [
    id 553
    label "POP0553"
  ]
  node [
    id 554
    label "POP0554"
  ]
  node [
    id 555
    label "POP0555"
  ]
  node [
    id 556
    label "POP0556"
  ]
  node [
    id 557
    label "POP0557"
  ]
  node [
    id 558
    label "POP0558"
  ]
  node [
    id 559
    label "POP0559"
  ]
  node [
    id 560
    label "POP0560"
  ]
  node [
    id 561
    label "POP0561"
  ]
  node [
    id 562
    label "POP0562"
  ]
  node [
    id 563
    label "POP0563"
  ]
  node [
    id 564
    label "POP0564"
  ]
  node [
    id 565
    label "POP0565"
  ]
  node [
    id 566
    label "POP0566"
  ]
  node [
    id 567
    label "POP0567"
  ]
  node [
    id 568
    label "POP0568"
  ]
  node [
    id 569
    label "POP0569"
  ]
  node [
    id 570
    label "POP0570"
  ]
  node [
    id 571
    label "POP0571"
  ]
  node [
    id 572
    label "POP0572"
  ]
  node [
    id 573
    label "POP0573"
  ]
  node [
    id 574
    label "POP0574"
  ]
  node [
    id 575
    label "POP0575"
  ]
  node [
    id 576
    label "POP0576"
  ]
  node [
    id 577
    label "POP0577"
  ]
  node [
    id 578
    label "POP0578"
  ]
  node [
    id 579
    label "POP0579"
  ]
  node [
    id 580
    label "POP0580"
  ]
  node [
    id 581
    label "POP0581"
  ]
  node [
    id 582
    label "POP0582"
  ]
  node [
    id 583
    label "POP0583"
  ]
  node [
    id 584
    label "POP0584"
  ]
  node [
    id 585
    label "POP0585"
  ]
  node [
    id 586
    label "POP0586"
  ]
  node [
    id 587
    label "POP0587"
  ]
  node [
    id 588
    label "POP0588"
  ]
  node [
    id 589
    label "POP0589"
  ]
  node [
    id 590
    label "POP0590"
  ]
  node [
    id 591
    label "POP0591"
  ]
  node [
    id 592
    label "POP0592"
  ]
  node [
    id 593
    label "POP0593"
  ]
  node [
    id 594
    label "POP0594"
  ]
  node [
    id 595
    label "POP0595"
  ]
  node [
    id 596
    label "POP0596"
  ]
  node [
    id 597
    label "POP0597"
  ]
  node [
    id 598
    label "POP0598"
  ]
  node [
    id 599
    label "POP0599"
  ]
  node [
    id 600
    label "POP0600"
  ]
  node [
    id 601
    label "POP0601"
  ]
  node [
    id 602
    label "POP0602"
  ]
  node [
    id 603
    label "POP0603"
  ]
  node [
    id 604
    label "POP0604"
  ]
  node [
    id 605
    label "POP0605"
  ]
  node [
    id 606
    label "POP0606"
  ]
  node [
    id 607
    label "POP0607"
  ]
  node [
    id 608
    label "POP0608"
  ]
  node [
    id 609
    label "POP0609"
  ]
  node [
    id 610
    label "POP0610"
  ]
  node [
    id 611
    label "POP0611"
  ]
  node [
    id 612
    label "POP0612"
  ]
  node [
    id 613
    label "POP0613"
  ]
  node [
    id 614
    label "POP0614"
  ]
  node [
    id 615
    label "POP0615"
  ]
  node [
    id 616
    label "POP0616"
  ]
  node [
    id 617
    label "POP0617"
  ]
  node [
    id 618
    label "POP0618"
  ]
  node [
    id 619
    label "POP0619"
  ]
  node [
    id 620
    label "POP0620"
  ]
  node [
    id 621
    label "POP0621"
  ]
  node [
    id 622
    label "POP0622"
  ]
  node [
    id 623
    label "POP0623"
  ]
  node [
    id 624
    label "POP0624"
  ]
  node [
    id 625
    label "POP0625"
  ]
  node [
    id 626
    label "POP0626"
  ]
  node [
    id 627
    label "POP0627"
  ]
  node [
    id 628
    label "POP0628"
  ]
  node [
    id 629
    label "POP0629"
  ]
  node [
    id 630
    label "POP0630"
  ]
  node [
    id 631
    label "POP0631"
  ]
  node [
    id 632
    label "POP0632"
  ]
  node [
    id 633
    label "POP0633"
  ]
  node [
    id 634
    label "POP0634"
  ]
  node [
    id 635
    label "POP0635"
  ]
  node [
    id 636
    label "POP0636"
  ]
  node [
    id 637
    label "POP0637"
  ]
  node [
    id 638
    label "POP0638"
  ]
  node [
    id 639
    label "POP0639"
  ]
  node [
    id 640
    label "POP0640"
  ]
  node [
    id 641
    label "POP0641"
  ]
  node [
    id 642
    label "POP0642"
  ]
  node [
    id 643
    label "POP0643"
  ]
  node [
    id 644
    label "POP0644"
  ]
  node [
    id 645
    label "POP0645"
  ]
  node [
    id 646
    label "POP0646"
  ]
  node [
    id 647
    label "POP0647"
  ]
  node [
    id 648
    label "POP0648"
  ]
  node [
    id 649
    label "POP0649"
  ]
  node [
    id 650
    label "POP0650"
  ]
  node [
    id 651
    label "POP0651"
  ]
  node [
    id 652
    label "POP0652"
  ]
  node [
    id 653
    label "POP0653"
  ]
  node [
    id 654
    label "POP0654"
  ]
  node [
    id 655
    label "POP0655"
  ]
  node [
    id 656
    label "POP0656"
  ]
  node [
    id 657
    label "POP0657"
  ]
  node [
    id 658
    label "POP0658"
  ]
  node [
    id 659
    label "POP0659"
  ]
  node [
    id 660
    label "POP0660"
  ]
  node [
    id 661
    label "POP0661"
  ]
  node [
    id 662
    label "POP0662"
  ]
  node [
    id 663
    label "POP0663"
  ]
  node [
    id 664
    label "POP0664"
  ]
  node [
    id 665
    label "POP0665"
  ]
  node [
    id 666
    label "POP0666"
  ]
  node [
    id 667
    label "POP0667"
  ]
  node [
    id 668
    label "POP0668"
  ]
  node [
    id 669
    label "POP0669"
  ]
  node [
    id 670
    label "POP0670"
  ]
  node [
    id 671
    label "POP0671"
  ]
  node [
    id 672
    label "POP0672"
  ]
  node [
    id 673
    label "POP0673"
  ]
  node [
    id 674
    label "POP0674"
  ]
  node [
    id 675
    label "POP0675"
  ]
  node [
    id 676
    label "POP0676"
  ]
  node [
    id 677
    label "POP0677"
  ]
  node [
    id 678
    label "POP0678"
  ]
  node [
    id 679
    label "POP0679"
  ]
  node [
    id 680
    label "POP0680"
  ]
  node [
    id 681
    label "POP0681"
  ]
  node [
    id 682
    label "POP0682"
  ]
  node [
    id 683
    label "POP0683"
  ]
  node [
    id 684
    label "POP0684"
  ]
  node [
    id 685
    label "POP0685"
  ]
  node [
    id 686
    label "POP0686"
  ]
  node [
    id 687
    label "POP0687"
  ]
  node [
    id 688
    label "POP0688"
  ]
  node [
    id 689
    label "POP0689"
  ]
  node [
    id 690
    label "POP0690"
  ]
  node [
    id 691
    label "POP0691"
  ]
  node [
    id 692
    label "POP0692"
  ]
  node [
    id 693
    label "POP0693"
  ]
  node [
    id 694
    label "POP0694"
  ]
  node [
    id 695
    label "POP0695"
  ]
  node [
    id 696
    label "POP0696"
  ]
  node [
    id 697
    label "POP0697"
  ]
  node [
    id 698
    label "POP0698"
  ]
  node [
    id 699
    label "POP0699"
  ]
  node [
    id 700
    label "POP0700"
  ]
  node [
    id 701
    label "POP0701"
  ]
  node [
    id 702
    label "POP0702"
  ]
  node [
    id 703
    label "POP0703"
  ]
  node [
    id 704
    label "POP0704"
  ]
  node [
    id 705
    label "POP0705"
  ]
  node [
    id 706
    label "POP0706"
  ]
  node [
    id 707
    label "POP0707"
  ]
  node [
    id 708
    label "POP0708"
  ]
  node [
    id 709
    label "POP0709"
  ]
  node [
    id 710
    label "POP0710"
  ]
  node [
    id 711
    label "POP0711"
  ]
  node [
    id 712
    label "POP0712"
  ]
  node [
    id 713
    label "POP0713"
  ]
  node [
    id 714
    label "POP0714"
  ]
  node [
    id 715
    label "POP0715"
  ]
  node [
    id 716
    label "POP0716"
  ]
  node [
    id 717
    label "POP0717"
  ]
  node [
    id 718
    label "POP0718"
  ]
  node [
    id 719
    label "POP0719"
  ]
  node [
    id 720
    label "POP0720"
  ]
  node [
    id 721
    label "POP0721"
  ]
  node [
    id 722
    label "POP0722"
  ]
  node [
    id 723
    label "POP0723"
  ]
  node [
    id 724
    label "POP0724"
  ]
  node [
    id 725
    label "POP0725"
  ]
  node [
    id 726
    label "POP0726"
  ]
  node [
    id 727
    label "POP0727"
  ]
  node [
    id 728
    label "POP0728"
  ]
  node [
    id 729
    label "POP0729"
  ]
  node [
    id 730
    label "POP0730"
  ]
  node [
    id 731
    label "POP0731"
  ]
  node [
    id 732
    label "POP0732"
  ]
  node [
    id 733
    label "POP0733"
  ]
  node [
    id 734
    label "POP0734"
  ]
  node [
    id 735
    label "POP0735"
  ]
  node [
    id 736
    label "POP0736"
  ]
  node [
    id 737
    label "POP0737"
  ]
  node [
    id 738
    label "POP0738"
  ]
  node [
    id 739
    label "POP0739"
  ]
  node [
    id 740
    label "POP0740"
  ]
  node [
    id 741
    label "POP0741"
  ]
  node [
    id 742
    label "POP0742"
  ]
  node [
    id 743
    label "POP0743"
  ]
  node [
    id 744
    label "POP0744"
  ]
  node [
    id 745
    label "POP0745"
  ]
  node [
    id 746
    label "POP0746"
  ]
  node [
    id 747
    label "POP0747"
  ]
  node [
    id 748
    label "POP0748"
  ]
  node [
    id 749
    label "POP0749"
  ]
  node [
    id 750
    label "POP0750"
  ]
  node [
    id 751
    label "POP0751"
  ]
  node [
    id 752
    label "POP0752"
  ]
  node [
    id 753
    label "POP0753"
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 2
  ]
  edge [
    source 0
    target 3
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 0
    target 5
  ]
  edge [
    source 1
    target 6
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 1
    target 8
  ]
  edge [
    source 7
    target 9
  ]
  edge [
    source 6
    target 10
  ]
  edge [
    source 6
    target 11
  ]
  edge [
    source 4
    target 12
  ]
  edge [
    source 7
    target 13
  ]
  edge [
    source 13
    target 14
  ]
  edge [
    source 4
    target 15
  ]
  edge [
    source 12
    target 16
  ]
  edge [
    source 14
    target 17
  ]
  edge [
    source 10
    target 18
  ]
  edge [
    source 12
    target 19
  ]
  edge [
    source 15
    target 20
  ]
  edge [
    source 14
    target 21
  ]
  edge [
    source 11
    target 22
  ]
  edge [
    source 8
    target 23
  ]
  edge [
    source 13
    target 24
  ]
  edge [
    source 23
    target 25
  ]
  edge [
    source 18
    target 26
  ]
  edge [
    source 26
    target 27
  ]
  edge [
    source 23
    target 28
  ]
  edge [
    source 23
    target 29
  ]
  edge [
    source 27
    target 30
  ]
  edge [
    source 28
    target 31
  ]
  edge [
    source 23
    target 32
  ]
  edge [
    source 2
    target 33
  ]
  edge [
    source 32
    target 34
  ]
  edge [
    source 33
    target 35
  ]
  edge [
    source 25
    target 36
  ]
  edge [
    source 9
    target 37
  ]
  edge [
    source 33
    target 38
  ]
  edge [
    source 12
    target 39
  ]
  edge [
    source 35
    target 40
  ]
  edge [
    source 26
    target 41
  ]
  edge [
    source 34
    target 42
  ]
  edge [
    source 42
    target 43
  ]
  edge [
    source 43
    target 44
  ]
  edge [
    source 39
    target 45
  ]
  edge [
    source 35
    target 46
  ]
  edge [
    source 2
    target 47
  ]
  edge [
    source 38
    target 48
  ]
  edge [
    source 45
    target 49
  ]
  edge [
    source 49
    target 50
  ]
  edge [
    source 50
    target 51
  ]
  edge [
    source 51
    target 52
  ]
  edge [
    source 51
    target 53
  ]
  edge [
    source 47
    target 54
  ]
  edge [
    source 6
    target 55
  ]
  edge [
    source 50
    target 56
  ]
  edge [
    source 47
    target 57
  ]
  edge [
    source 32
    target 58
  ]
  edge [
    source 52
    target 59
  ]
  edge [
    source 58
    target 60
  ]
  edge [
    source 51
    target 61
  ]
  edge [
    source 19
    target 62
  ]
  edge [
    source 60
    target 63
  ]
  edge [
    source 57
    target 64
  ]
  edge [
    source 36
    target 65
  ]
  edge [
    source 47
    target 66
  ]
  edge [
    source 42
    target 67
  ]
  edge [
    source 60
    target 68
  ]
  edge [
    source 58
    target 69
  ]
  edge [
    source 2
    target 70
  ]
  edge [
    source 60
    target 71
  ]
  edge [
    source 66
    target 72
  ]
  edge [
    source 65
    target 73
  ]
  edge [
    source 40
    target 74
  ]
  edge [
    source 68
    target 75
  ]
  edge [
    source 67
    target 76
  ]
  edge [
    source 66
    target 77
  ]
  edge [
    source 75
    target 78
  ]
  edge [
    source 70
    target 79
  ]
  edge [
    source 72
    target 80
  ]
  edge [
    source 72
    target 81
  ]
  edge [
    source 77
    target 82
  ]
  edge [
    source 75
    target 83
  ]
  edge [
    source 75
    target 84
  ]
  edge [
    source 73
    target 85
  ]
  edge [
    source 75
    target 86
  ]
  edge [
    source 76
    target 87
  ]
  edge [
    source 77
    target 88
  ]
  edge [
    source 85
    target 89
  ]
  edge [
    source 87
    target 90
  ]
  edge [
    source 89
    target 91
  ]
  edge [
    source 13
    target 92
  ]
  edge [
    source 88
    target 93
  ]
  edge [
    source 86
    target 94
  ]
  edge [
    source 84
    target 95
  ]
  edge [
    source 89
    target 96
  ]
  edge [
    source 86
    target 97
  ]
  edge [
    source 88
    target 98
  ]
  edge [
    source 90
    target 99
  ]
  edge [
    source 97
    target 100
  ]
  edge [
    source 41
    target 101
  ]
  edge [
    source 19
    target 102
  ]
  edge [
    source 93
    target 103
  ]
  edge [
    source 93
    target 104
  ]
  edge [
    source 102
    target 105
  ]
  edge [
    source 47
    target 106
  ]
  edge [
    source 104
    target 107
  ]
  edge [
    source 99
    target 108
  ]
  edge [
    source 108
    target 109
  ]
  edge [
    source 102
    target 110
  ]
  edge [
    source 106
    target 111
  ]
  edge [
    source 25
    target 112
  ]
  edge [
    source 108
    target 113
  ]
  edge [
    source 84
    target 114
  ]
  edge [
    source 110
    target 115
  ]
  edge [
    source 113
    target 116
  ]
  edge [
    source 110
    target 117
  ]
  edge [
    source 110
    target 118
  ]
  edge [
    source 78
    target 119
  ]
  edge [
    source 117
    target 120
  ]
  edge [
    source 119
    target 121
  ]
  edge [
    source 113
    target 122
  ]
  edge [
    source 117
    target 123
  ]
  edge [
    source 18
    target 124
  ]
  edge [
    source 47
    target 125
  ]
  edge [
    source 8
    target 126
  ]
  edge [
    source 89
    target 127
  ]
  edge [
    source 119
    target 128
  ]
  edge [
    source 79
    target 129
  ]
  edge [
    source 26
    target 130
  ]
  edge [
    source 119
    target 131
  ]
  edge [
    source 120
    target 132
  ]
  edge [
    source 122
    target 133
  ]
  edge [
    source 129
    target 134
  ]
  edge [
    source 124
    target 135
  ]
  edge [
    source 93
    target 136
  ]
  edge [
    source 133
    target 137
  ]
  edge [
    source 136
    target 138
  ]
  edge [
    source 29
    target 139
  ]
  edge [
    source 129
    target 140
  ]
  edge [
    source 116
    target 141
  ]
  edge [
    source 131
    target 142
  ]
  edge [
    source 138
    target 143
  ]
  edge [
    source 17
    target 144
  ]
  edge [
    source 56
    target 145
  ]
  edge [
    source 134
    target 146
  ]
  edge [
    source 138
    target 147
  ]
  edge [
    source 137
    target 148
  ]
  edge [
    source 143
    target 149
  ]
  edge [
    source 28
    target 150
  ]
  edge [
    source 146
    target 151
  ]
  edge [
    source 146
    target 152
  ]
  edge [
    source 145
    target 153
  ]
  edge [
    source 150
    target 154
  ]
  edge [
    source 85
    target 155
  ]
  edge [
    source 153
    target 156
  ]
  edge [
    source 35
    target 157
  ]
  edge [
    source 156
    target 158
  ]
  edge [
    source 156
    target 159
  ]
  edge [
    source 150
    target 160
  ]
  edge [
    source 156
    target 161
  ]
  edge [
    source 160
    target 162
  ]
  edge [
    source 160
    target 163
  ]
  edge [
    source 161
    target 164
  ]
  edge [
    source 28
    target 165
  ]
  edge [
    source 156
    target 166
  ]
  edge [
    source 163
    target 167
  ]
  edge [
    source 113
    target 168
  ]
  edge [
    source 55
    target 169
  ]
  edge [
    source 168
    target 170
  ]
  edge [
    source 168
    target 171
  ]
  edge [
    source 165
    target 172
  ]
  edge [
    source 100
    target 173
  ]
  edge [
    source 162
    target 174
  ]
  edge [
    source 170
    target 175
  ]
  edge [
    source 165
    target 176
  ]
  edge [
    source 165
    target 177
  ]
  edge [
    source 176
    target 178
  ]
  edge [
    source 175
    target 179
  ]
  edge [
    source 168
    target 180
  ]
  edge [
    source 125
    target 181
  ]
  edge [
    source 172
    target 182
  ]
  edge [
    source 174
    target 183
  ]
  edge [
    source 180
    target 184
  ]
  edge [
    source 178
    target 185
  ]
  edge [
    source 183
    target 186
  ]
  edge [
    source 186
    target 187
  ]
  edge [
    source 85
    target 188
  ]
  edge [
    source 183
    target 189
  ]
  edge [
    source 188
    target 190
  ]
  edge [
    source 186
    target 191
  ]
  edge [
    source 190
    target 192
  ]
  edge [
    source 192
    target 193
  ]
  edge [
    source 77
    target 194
  ]
  edge [
    source 187
    target 195
  ]
  edge [
    source 185
    target 196
  ]
  edge [
    source 194
    target 197
  ]
  edge [
    source 186
    target 198
  ]
  edge [
    source 188
    target 199
  ]
  edge [
    source 189
    target 200
  ]
  edge [
    source 66
    target 201
  ]
  edge [
    source 149
    target 202
  ]
  edge [
    source 199
    target 203
  ]
  edge [
    source 98
    target 204
  ]
  edge [
    source 194
    target 205
  ]
  edge [
    source 195
    target 206
  ]
  edge [
    source 14
    target 207
  ]
  edge [
    source 197
    target 208
  ]
  edge [
    source 54
    target 209
  ]
  edge [
    source 156
    target 210
  ]
  edge [
    source 184
    target 211
  ]
  edge [
    source 201
    target 212
  ]
  edge [
    source 201
    target 213
  ]
  edge [
    source 211
    target 214
  ]
  edge [
    source 84
    target 215
  ]
  edge [
    source 205
    target 216
  ]
  edge [
    source 213
    target 217
  ]
  edge [
    source 214
    target 218
  ]
  edge [
    source 218
    target 219
  ]
  edge [
    source 212
    target 220
  ]
  edge [
    source 111
    target 221
  ]
  edge [
    source 216
    target 222
  ]
  edge [
    source 218
    target 223
  ]
  edge [
    source 212
    target 224
  ]
  edge [
    source 0
    target 225
  ]
  edge [
    source 37
    target 226
  ]
  edge [
    source 217
    target 227
  ]
  edge [
    source 226
    target 228
  ]
  edge [
    source 75
    target 229
  ]
  edge [
    source 68
    target 230
  ]
  edge [
    source 169
    target 231
  ]
  edge [
    source 44
    target 232
  ]
  edge [
    source 227
    target 233
  ]
  edge [
    source 227
    target 234
  ]
  edge [
    source 231
    target 235
  ]
  edge [
    source 226
    target 236
  ]
  edge [
    source 40
    target 237
  ]
  edge [
    source 227
    target 238
  ]
  edge [
    source 227
    target 239
  ]
  edge [
    source 236
    target 240
  ]
  edge [
    source 235
    target 241
  ]
  edge [
    source 241
    target 242
  ]
  edge [
    source 231
    target 243
  ]
  edge [
    source 232
    target 244
  ]
  edge [
    source 44
    target 245
  ]
  edge [
    source 238
    target 246
  ]
  edge [
    source 52
    target 247
  ]
  edge [
    source 242
    target 248
  ]
  edge [
    source 243
    target 249
  ]
  edge [
    source 241
    target 250
  ]
  edge [
    source 249
    target 251
  ]
  edge [
    source 243
    target 252
  ]
  edge [
    source 249
    target 253
  ]
  edge [
    source 243
    target 254
  ]
  edge [
    source 252
    target 255
  ]
  edge [
    source 34
    target 256
  ]
  edge [
    source 246
    target 257
  ]
  edge [
    source 250
    target 258
  ]
  edge [
    source 249
    target 259
  ]
  edge [
    source 249
    target 260
  ]
  edge [
    source 255
    target 261
  ]
  edge [
    source 253
    target 262
  ]
  edge [
    source 260
    target 263
  ]
  edge [
    source 223
    target 264
  ]
  edge [
    source 257
    target 265
  ]
  edge [
    source 241
    target 266
  ]
  edge [
    source 258
    target 267
  ]
  edge [
    source 263
    target 268
  ]
  edge [
    source 260
    target 269
  ]
  edge [
    source 266
    target 270
  ]
  edge [
    source 262
    target 271
  ]
  edge [
    source 118
    target 272
  ]
  edge [
    source 68
    target 273
  ]
  edge [
    source 71
    target 274
  ]
  edge [
    source 270
    target 275
  ]
  edge [
    source 270
    target 276
  ]
  edge [
    source 271
    target 277
  ]
  edge [
    source 140
    target 278
  ]
  edge [
    source 222
    target 279
  ]
  edge [
    source 270
    target 280
  ]
  edge [
    source 272
    target 281
  ]
  edge [
    source 281
    target 282
  ]
  edge [
    source 276
    target 283
  ]
  edge [
    source 282
    target 284
  ]
  edge [
    source 99
    target 285
  ]
  edge [
    source 283
    target 286
  ]
  edge [
    source 286
    target 287
  ]
  edge [
    source 281
    target 288
  ]
  edge [
    source 47
    target 289
  ]
  edge [
    source 289
    target 290
  ]
  edge [
    source 284
    target 291
  ]
  edge [
    source 280
    target 292
  ]
  edge [
    source 28
    target 293
  ]
  edge [
    source 89
    target 294
  ]
  edge [
    source 294
    target 295
  ]
  edge [
    source 293
    target 296
  ]
  edge [
    source 290
    target 297
  ]
  edge [
    source 289
    target 298
  ]
  edge [
    source 295
    target 299
  ]
  edge [
    source 292
    target 300
  ]
  edge [
    source 297
    target 301
  ]
  edge [
    source 68
    target 302
  ]
  edge [
    source 292
    target 303
  ]
  edge [
    source 301
    target 304
  ]
  edge [
    source 202
    target 305
  ]
  edge [
    source 304
    target 306
  ]
  edge [
    source 267
    target 307
  ]
  edge [
    source 301
    target 308
  ]
  edge [
    source 297
    target 309
  ]
  edge [
    source 309
    target 310
  ]
  edge [
    source 73
    target 311
  ]
  edge [
    source 307
    target 312
  ]
  edge [
    source 312
    target 313
  ]
  edge [
    source 299
    target 314
  ]
  edge [
    source 151
    target 315
  ]
  edge [
    source 100
    target 316
  ]
  edge [
    source 312
    target 317
  ]
  edge [
    source 311
    target 318
  ]
  edge [
    source 318
    target 319
  ]
  edge [
    source 186
    target 320
  ]
  edge [
    source 318
    target 321
  ]
  edge [
    source 319
    target 322
  ]
  edge [
    source 311
    target 323
  ]
  edge [
    source 323
    target 324
  ]
  edge [
    source 321
    target 325
  ]
  edge [
    source 318
    target 326
  ]
  edge [
    source 307
    target 327
  ]
  edge [
    source 311
    target 328
  ]
  edge [
    source 324
    target 329
  ]
  edge [
    source 171
    target 330
  ]
  edge [
    source 323
    target 331
  ]
  edge [
    source 324
    target 332
  ]
  edge [
    source 324
    target 333
  ]
  edge [
    source 330
    target 334
  ]
  edge [
    source 327
    target 335
  ]
  edge [
    source 331
    target 336
  ]
  edge [
    source 332
    target 337
  ]
  edge [
    source 326
    target 338
  ]
  edge [
    source 3
    target 339
  ]
  edge [
    source 339
    target 340
  ]
  edge [
    source 118
    target 341
  ]
  edge [
    source 50
    target 342
  ]
  edge [
    source 332
    target 343
  ]
  edge [
    source 332
    target 344
  ]
  edge [
    source 101
    target 345
  ]
  edge [
    source 345
    target 346
  ]
  edge [
    source 344
    target 347
  ]
  edge [
    source 299
    target 348
  ]
  edge [
    source 231
    target 349
  ]
  edge [
    source 154
    target 350
  ]
  edge [
    source 350
    target 351
  ]
  edge [
    source 344
    target 352
  ]
  edge [
    source 350
    target 353
  ]
  edge [
    source 342
    target 354
  ]
  edge [
    source 343
    target 355
  ]
  edge [
    source 350
    target 356
  ]
  edge [
    source 348
    target 357
  ]
  edge [
    source 35
    target 358
  ]
  edge [
    source 30
    target 359
  ]
  edge [
    source 351
    target 360
  ]
  edge [
    source 349
    target 361
  ]
  edge [
    source 356
    target 362
  ]
  edge [
    source 355
    target 363
  ]
  edge [
    source 353
    target 364
  ]
  edge [
    source 353
    target 365
  ]
  edge [
    source 361
    target 366
  ]
  edge [
    source 365
    target 367
  ]
  edge [
    source 363
    target 368
  ]
  edge [
    source 368
    target 369
  ]
  edge [
    source 365
    target 370
  ]
  edge [
    source 236
    target 371
  ]
  edge [
    source 364
    target 372
  ]
  edge [
    source 361
    target 373
  ]
  edge [
    source 368
    target 374
  ]
  edge [
    source 370
    target 375
  ]
  edge [
    source 369
    target 376
  ]
  edge [
    source 370
    target 377
  ]
  edge [
    source 59
    target 378
  ]
  edge [
    source 324
    target 379
  ]
  edge [
    source 376
    target 380
  ]
  edge [
    source 8
    target 381
  ]
  edge [
    source 380
    target 382
  ]
  edge [
    source 380
    target 383
  ]
  edge [
    source 383
    target 384
  ]
  edge [
    source 375
    target 385
  ]
  edge [
    source 375
    target 386
  ]
  edge [
    source 381
    target 387
  ]
  edge [
    source 103
    target 388
  ]
  edge [
    source 383
    target 389
  ]
  edge [
    source 388
    target 390
  ]
  edge [
    source 385
    target 391
  ]
  edge [
    source 390
    target 392
  ]
  edge [
    source 391
    target 393
  ]
  edge [
    source 383
    target 394
  ]
  edge [
    source 354
    target 395
  ]
  edge [
    source 384
    target 396
  ]
  edge [
    source 273
    target 397
  ]
  edge [
    source 391
    target 398
  ]
  edge [
    source 392
    target 399
  ]
  edge [
    source 392
    target 400
  ]
  edge [
    source 393
    target 401
  ]
  edge [
    source 399
    target 402
  ]
  edge [
    source 328
    target 403
  ]
  edge [
    source 180
    target 404
  ]
  edge [
    source 244
    target 405
  ]
  edge [
    source 398
    target 406
  ]
  edge [
    source 247
    target 407
  ]
  edge [
    source 152
    target 408
  ]
  edge [
    source 398
    target 409
  ]
  edge [
    source 404
    target 410
  ]
  edge [
    source 308
    target 411
  ]
  edge [
    source 400
    target 412
  ]
  edge [
    source 412
    target 413
  ]
  edge [
    source 411
    target 414
  ]
  edge [
    source 412
    target 415
  ]
  edge [
    source 243
    target 416
  ]
  edge [
    source 408
    target 417
  ]
  edge [
    source 141
    target 418
  ]
  edge [
    source 44
    target 419
  ]
  edge [
    source 414
    target 420
  ]
  edge [
    source 17
    target 421
  ]
  edge [
    source 420
    target 422
  ]
  edge [
    source 420
    target 423
  ]
  edge [
    source 412
    target 424
  ]
  edge [
    source 413
    target 425
  ]
  edge [
    source 416
    target 426
  ]
  edge [
    source 350
    target 427
  ]
  edge [
    source 420
    target 428
  ]
  edge [
    source 428
    target 429
  ]
  edge [
    source 427
    target 430
  ]
  edge [
    source 428
    target 431
  ]
  edge [
    source 34
    target 432
  ]
  edge [
    source 425
    target 433
  ]
  edge [
    source 2
    target 434
  ]
  edge [
    source 423
    target 435
  ]
  edge [
    source 433
    target 436
  ]
  edge [
    source 432
    target 437
  ]
  edge [
    source 434
    target 438
  ]
  edge [
    source 434
    target 439
  ]
  edge [
    source 182
    target 440
  ]
  edge [
    source 436
    target 441
  ]
  edge [
    source 438
    target 442
  ]
  edge [
    source 442
    target 443
  ]
  edge [
    source 439
    target 444
  ]
  edge [
    source 434
    target 445
  ]
  edge [
    source 439
    target 446
  ]
  edge [
    source 444
    target 447
  ]
  edge [
    source 437
    target 448
  ]
  edge [
    source 437
    target 449
  ]
  edge [
    source 9
    target 450
  ]
  edge [
    source 440
    target 451
  ]
  edge [
    source 448
    target 452
  ]
  edge [
    source 448
    target 453
  ]
  edge [
    source 426
    target 454
  ]
  edge [
    source 10
    target 455
  ]
  edge [
    source 264
    target 456
  ]
  edge [
    source 453
    target 457
  ]
  edge [
    source 62
    target 458
  ]
  edge [
    source 189
    target 459
  ]
  edge [
    source 454
    target 460
  ]
  edge [
    source 288
    target 461
  ]
  edge [
    source 450
    target 462
  ]
  edge [
    source 459
    target 463
  ]
  edge [
    source 462
    target 464
  ]
  edge [
    source 275
    target 465
  ]
  edge [
    source 454
    target 466
  ]
  edge [
    source 456
    target 467
  ]
  edge [
    source 457
    target 468
  ]
  edge [
    source 464
    target 469
  ]
  edge [
    source 469
    target 470
  ]
  edge [
    source 468
    target 471
  ]
  edge [
    source 466
    target 472
  ]
  edge [
    source 462
    target 473
  ]
  edge [
    source 468
    target 474
  ]
  edge [
    source 37
    target 475
  ]
  edge [
    source 154
    target 476
  ]
  edge [
    source 475
    target 477
  ]
  edge [
    source 50
    target 478
  ]
  edge [
    source 475
    target 479
  ]
  edge [
    source 470
    target 480
  ]
  edge [
    source 480
    target 481
  ]
  edge [
    source 470
    target 482
  ]
  edge [
    source 88
    target 483
  ]
  edge [
    source 461
    target 484
  ]
  edge [
    source 179
    target 485
  ]
  edge [
    source 370
    target 486
  ]
  edge [
    source 481
    target 487
  ]
  edge [
    source 477
    target 488
  ]
  edge [
    source 408
    target 489
  ]
  edge [
    source 341
    target 490
  ]
  edge [
    source 490
    target 491
  ]
  edge [
    source 324
    target 492
  ]
  edge [
    source 31
    target 493
  ]
  edge [
    source 423
    target 494
  ]
  edge [
    source 492
    target 495
  ]
  edge [
    source 495
    target 496
  ]
  edge [
    source 492
    target 497
  ]
  edge [
    source 495
    target 498
  ]
  edge [
    source 489
    target 499
  ]
  edge [
    source 495
    target 500
  ]
  edge [
    source 451
    target 501
  ]
  edge [
    source 496
    target 502
  ]
  edge [
    source 491
    target 503
  ]
  edge [
    source 500
    target 504
  ]
  edge [
    source 496
    target 505
  ]
  edge [
    source 494
    target 506
  ]
  edge [
    source 497
    target 507
  ]
  edge [
    source 500
    target 508
  ]
  edge [
    source 239
    target 509
  ]
  edge [
    source 499
    target 510
  ]
  edge [
    source 398
    target 511
  ]
  edge [
    source 199
    target 512
  ]
  edge [
    source 506
    target 513
  ]
  edge [
    source 89
    target 514
  ]
  edge [
    source 512
    target 515
  ]
  edge [
    source 507
    target 516
  ]
  edge [
    source 514
    target 517
  ]
  edge [
    source 132
    target 518
  ]
  edge [
    source 511
    target 519
  ]
  edge [
    source 511
    target 520
  ]
  edge [
    source 520
    target 521
  ]
  edge [
    source 515
    target 522
  ]
  edge [
    source 522
    target 523
  ]
  edge [
    source 38
    target 524
  ]
  edge [
    source 418
    target 525
  ]
  edge [
    source 514
    target 526
  ]
  edge [
    source 521
    target 527
  ]
  edge [
    source 525
    target 528
  ]
  edge [
    source 240
    target 529
  ]
  edge [
    source 243
    target 530
  ]
  edge [
    source 521
    target 531
  ]
  edge [
    source 208
    target 532
  ]
  edge [
    source 131
    target 533
  ]
  edge [
    source 533
    target 534
  ]
  edge [
    source 525
    target 535
  ]
  edge [
    source 529
    target 536
  ]
  edge [
    source 527
    target 537
  ]
  edge [
    source 527
    target 538
  ]
  edge [
    source 17
    target 539
  ]
  edge [
    source 530
    target 540
  ]
  edge [
    source 531
    target 541
  ]
  edge [
    source 536
    target 542
  ]
  edge [
    source 531
    target 543
  ]
  edge [
    source 540
    target 544
  ]
  edge [
    source 57
    target 545
  ]
  edge [
    source 224
    target 546
  ]
  edge [
    source 279
    target 547
  ]
  edge [
    source 544
    target 548
  ]
  edge [
    source 290
    target 549
  ]
  edge [
    source 542
    target 550
  ]
  edge [
    source 358
    target 551
  ]
  edge [
    source 541
    target 552
  ]
  edge [
    source 412
    target 553
  ]
  edge [
    source 382
    target 554
  ]
  edge [
    source 543
    target 555
  ]
  edge [
    source 547
    target 556
  ]
  edge [
    source 397
    target 557
  ]
  edge [
    source 556
    target 558
  ]
  edge [
    source 547
    target 559
  ]
  edge [
    source 553
    target 560
  ]
  edge [
    source 226
    target 561
  ]
  edge [
    source 90
    target 562
  ]
  edge [
    source 133
    target 563
  ]
  edge [
    source 553
    target 564
  ]
  edge [
    source 91
    target 565
  ]
  edge [
    source 561
    target 566
  ]
  edge [
    source 559
    target 567
  ]
  edge [
    source 392
    target 568
  ]
  edge [
    source 558
    target 569
  ]
  edge [
    source 567
    target 570
  ]
  edge [
    source 567
    target 571
  ]
  edge [
    source 569
    target 572
  ]
  edge [
    source 566
    target 573
  ]
  edge [
    source 572
    target 574
  ]
  edge [
    source 564
    target 575
  ]
  edge [
    source 100
    target 576
  ]
  edge [
    source 575
    target 577
  ]
  edge [
    source 571
    target 578
  ]
  edge [
    source 569
    target 579
  ]
  edge [
    source 571
    target 580
  ]
  edge [
    source 575
    target 581
  ]
  edge [
    source 576
    target 582
  ]
  edge [
    source 578
    target 583
  ]
  edge [
    source 578
    target 584
  ]
  edge [
    source 580
    target 585
  ]
  edge [
    source 370
    target 586
  ]
  edge [
    source 579
    target 587
  ]
  edge [
    source 576
    target 588
  ]
  edge [
    source 577
    target 589
  ]
  edge [
    source 578
    target 590
  ]
  edge [
    source 587
    target 591
  ]
  edge [
    source 541
    target 592
  ]
  edge [
    source 583
    target 593
  ]
  edge [
    source 588
    target 594
  ]
  edge [
    source 263
    target 595
  ]
  edge [
    source 591
    target 596
  ]
  edge [
    source 321
    target 597
  ]
  edge [
    source 595
    target 598
  ]
  edge [
    source 593
    target 599
  ]
  edge [
    source 566
    target 600
  ]
  edge [
    source 592
    target 601
  ]
  edge [
    source 592
    target 602
  ]
  edge [
    source 595
    target 603
  ]
  edge [
    source 595
    target 604
  ]
  edge [
    source 593
    target 605
  ]
  edge [
    source 305
    target 606
  ]
  edge [
    source 603
    target 607
  ]
  edge [
    source 597
    target 608
  ]
  edge [
    source 597
    target 609
  ]
  edge [
    source 536
    target 610
  ]
  edge [
    source 192
    target 611
  ]
  edge [
    source 132
    target 612
  ]
  edge [
    source 611
    target 613
  ]
  edge [
    source 498
    target 614
  ]
  edge [
    source 604
    target 615
  ]
  edge [
    source 613
    target 616
  ]
  edge [
    source 607
    target 617
  ]
  edge [
    source 616
    target 618
  ]
  edge [
    source 610
    target 619
  ]
  edge [
    source 616
    target 620
  ]
  edge [
    source 66
    target 621
  ]
  edge [
    source 618
    target 622
  ]
  edge [
    source 622
    target 623
  ]
  edge [
    source 621
    target 624
  ]
  edge [
    source 624
    target 625
  ]
  edge [
    source 622
    target 626
  ]
  edge [
    source 616
    target 627
  ]
  edge [
    source 626
    target 628
  ]
  edge [
    source 623
    target 629
  ]
  edge [
    source 441
    target 630
  ]
  edge [
    source 107
    target 631
  ]
  edge [
    source 39
    target 632
  ]
  edge [
    source 280
    target 633
  ]
  edge [
    source 624
    target 634
  ]
  edge [
    source 634
    target 635
  ]
  edge [
    source 631
    target 636
  ]
  edge [
    source 355
    target 637
  ]
  edge [
    source 636
    target 638
  ]
  edge [
    source 634
    target 639
  ]
  edge [
    source 628
    target 640
  ]
  edge [
    source 241
    target 641
  ]
  edge [
    source 630
    target 642
  ]
  edge [
    source 633
    target 643
  ]
  edge [
    source 637
    target 644
  ]
  edge [
    source 597
    target 645
  ]
  edge [
    source 637
    target 646
  ]
  edge [
    source 640
    target 647
  ]
  edge [
    source 636
    target 648
  ]
  edge [
    source 567
    target 649
  ]
  edge [
    source 300
    target 650
  ]
  edge [
    source 625
    target 651
  ]
  edge [
    source 422
    target 652
  ]
  edge [
    source 130
    target 653
  ]
  edge [
    source 651
    target 654
  ]
  edge [
    source 653
    target 655
  ]
  edge [
    source 652
    target 656
  ]
  edge [
    source 647
    target 657
  ]
  edge [
    source 657
    target 658
  ]
  edge [
    source 63
    target 659
  ]
  edge [
    source 653
    target 660
  ]
  edge [
    source 561
    target 661
  ]
  edge [
    source 656
    target 662
  ]
  edge [
    source 59
    target 663
  ]
  edge [
    source 662
    target 664
  ]
  edge [
    source 657
    target 665
  ]
  edge [
    source 660
    target 666
  ]
  edge [
    source 626
    target 667
  ]
  edge [
    source 661
    target 668
  ]
  edge [
    source 27
    target 669
  ]
  edge [
    source 406
    target 670
  ]
  edge [
    source 109
    target 671
  ]
  edge [
    source 671
    target 672
  ]
  edge [
    source 668
    target 673
  ]
  edge [
    source 670
    target 674
  ]
  edge [
    source 285
    target 675
  ]
  edge [
    source 664
    target 676
  ]
  edge [
    source 467
    target 677
  ]
  edge [
    source 674
    target 678
  ]
  edge [
    source 676
    target 679
  ]
  edge [
    source 673
    target 680
  ]
  edge [
    source 674
    target 681
  ]
  edge [
    source 680
    target 682
  ]
  edge [
    source 451
    target 683
  ]
  edge [
    source 683
    target 684
  ]
  edge [
    source 626
    target 685
  ]
  edge [
    source 500
    target 686
  ]
  edge [
    source 681
    target 687
  ]
  edge [
    source 242
    target 688
  ]
  edge [
    source 684
    target 689
  ]
  edge [
    source 689
    target 690
  ]
  edge [
    source 291
    target 691
  ]
  edge [
    source 688
    target 692
  ]
  edge [
    source 452
    target 693
  ]
  edge [
    source 683
    target 694
  ]
  edge [
    source 687
    target 695
  ]
  edge [
    source 691
    target 696
  ]
  edge [
    source 689
    target 697
  ]
  edge [
    source 689
    target 698
  ]
  edge [
    source 692
    target 699
  ]
  edge [
    source 694
    target 700
  ]
  edge [
    source 430
    target 701
  ]
  edge [
    source 695
    target 702
  ]
  edge [
    source 697
    target 703
  ]
  edge [
    source 699
    target 704
  ]
  edge [
    source 347
    target 705
  ]
  edge [
    source 698
    target 706
  ]
  edge [
    source 698
    target 707
  ]
  edge [
    source 700
    target 708
  ]
  edge [
    source 351
    target 709
  ]
  edge [
    source 709
    target 710
  ]
  edge [
    source 14
    target 711
  ]
  edge [
    source 706
    target 712
  ]
  edge [
    source 703
    target 713
  ]
  edge [
    source 52
    target 714
  ]
  edge [
    source 710
    target 715
  ]
  edge [
    source 710
    target 716
  ]
  edge [
    source 161
    target 717
  ]
  edge [
    source 715
    target 718
  ]
  edge [
    source 444
    target 719
  ]
  edge [
    source 713
    target 720
  ]
  edge [
    source 715
    target 721
  ]
  edge [
    source 721
    target 722
  ]
  edge [
    source 720
    target 723
  ]
  edge [
    source 718
    target 724
  ]
  edge [
    source 723
    target 725
  ]
  edge [
    source 703
    target 726
  ]
  edge [
    source 715
    target 727
  ]
  edge [
    source 722
    target 728
  ]
  edge [
    source 442
    target 729
  ]
  edge [
    source 712
    target 730
  ]
  edge [
    source 348
    target 731
  ]
  edge [
    source 602
    target 732
  ]
  edge [
    source 729
    target 733
  ]
  edge [
    source 224
    target 734
  ]
  edge [
    source 727
    target 735
  ]
  edge [
    source 8
    target 736
  ]
  edge [
    source 732
    target 737
  ]
  edge [
    source 37
    target 738
  ]
  edge [
    source 732
    target 739
  ]
  edge [
    source 737
    target 740
  ]
  edge [
    source 401
    target 741
  ]
  edge [
    source 263
    target 742
  ]
  edge [
    source 742
    target 743
  ]
  edge [
    source 741
    target 744
  ]
  edge [
    source 741
    target 745
  ]
  edge [
    source 745
    target 746
  ]
  edge [
    source 332
    target 747
  ]
  edge [
    source 736
    target 748
  ]
  edge [
    source 459
    target 749
  ]
  edge [
    source 746
    target 750
  ]
  edge [
    source 694
    target 751
  ]
  edge [
    source 617
    target 752
  ]
  edge [
    source 741
    target 753
  ]
  edge [
    source 296
    target 719
  ]
  edge [
    source 80
    target 245
  ]
  edge [
    source 119
    target 242
  ]
  edge [
    source 707
    target 738
  ]
  edge [
    source 277
    target 400
  ]
  edge [
    source 267
    target 510
  ]
  edge [
    source 547
    target 657
  ]
  edge [
    source 87
    target 739
  ]
  edge [
    source 84
    target 659
  ]
  edge [
    source 338
    target 590
  ]
  edge [
    source 610
    target 700
  ]
  edge [
    source 192
    target 495
  ]
  edge [
    source 99
    target 269
  ]
  edge [
    source 257
    target 694
  ]
  edge [
    source 325
    target 674
  ]
  edge [
    source 55
    target 684
  ]
  edge [
    source 158
    target 351
  ]
  edge [
    source 239
    target 470
  ]
  edge [
    source 458
    target 655
  ]
  edge [
    source 9
    target 447
  ]
  edge [
    source 114
    target 534
  ]
  edge [
    source 329
    target 384
  ]
  edge [
    source 25
    target 611
  ]
  edge [
    source 29
    target 305
  ]
  edge [
    source 245
    target 515
  ]
  edge [
    source 148
    target 720
  ]
  edge [
    source 16
    target 312
  ]
  edge [
    source 152
    target 456
  ]
  edge [
    source 466
    target 516
  ]
  edge [
    source 195
    target 305
  ]
  edge [
    source 41
    target 518
  ]
  edge [
    source 183
    target 409
  ]
  edge [
    source 308
    target 407
  ]
  edge [
    source 200
    target 639
  ]
  edge [
    source 45
    target 300
  ]
  edge [
    source 724
    target 751
  ]
  edge [
    source 286
    target 378
  ]
  edge [
    source 140
    target 613
  ]
  edge [
    source 20
    target 179
  ]
  edge [
    source 11
    target 66
  ]
  edge [
    source 4
    target 643
  ]
  edge [
    source 1
    target 363
  ]
  edge [
    source 139
    target 692
  ]
  edge [
    source 361
    target 663
  ]
  edge [
    source 196
    target 260
  ]
  edge [
    source 345
    target 432
  ]
  edge [
    source 31
    target 714
  ]
  edge [
    source 50
    target 550
  ]
  edge [
    source 137
    target 570
  ]
  edge [
    source 237
    target 691
  ]
  edge [
    source 255
    target 586
  ]
  edge [
    source 45
    target 442
  ]
  edge [
    source 364
    target 392
  ]
  edge [
    source 499
    target 690
  ]
  edge [
    source 88
    target 164
  ]
  edge [
    source 191
    target 553
  ]
  edge [
    source 7
    target 327
  ]
  edge [
    source 223
    target 363
  ]
  edge [
    source 244
    target 341
  ]
  edge [
    source 289
    target 432
  ]
  edge [
    source 89
    target 392
  ]
  edge [
    source 130
    target 504
  ]
  edge [
    source 12
    target 527
  ]
  edge [
    source 43
    target 71
  ]
  edge [
    source 419
    target 591
  ]
  edge [
    source 121
    target 135
  ]
  edge [
    source 163
    target 168
  ]
  edge [
    source 134
    target 240
  ]
  edge [
    source 569
    target 731
  ]
  edge [
    source 37
    target 45
  ]
  edge [
    source 135
    target 751
  ]
  edge [
    source 28
    target 710
  ]
  edge [
    source 47
    target 393
  ]
  edge [
    source 100
    target 181
  ]
  edge [
    source 86
    target 604
  ]
  edge [
    source 460
    target 717
  ]
  edge [
    source 270
    target 720
  ]
  edge [
    source 164
    target 465
  ]
  edge [
    source 186
    target 468
  ]
  edge [
    source 384
    target 586
  ]
  edge [
    source 1
    target 439
  ]
  edge [
    source 659
    target 695
  ]
  edge [
    source 247
    target 459
  ]
  edge [
    source 400
    target 613
  ]
  edge [
    source 6
    target 657
  ]
  edge [
    source 326
    target 512
  ]
  edge [
    source 399
    target 441
  ]
  edge [
    source 128
    target 222
  ]
  edge [
    source 9
    target 390
  ]
  edge [
    source 528
    target 752
  ]
  edge [
    source 46
    target 592
  ]
  edge [
    source 156
    target 309
  ]
  edge [
    source 282
    target 718
  ]
  edge [
    source 69
    target 183
  ]
  edge [
    source 104
    target 340
  ]
  edge [
    source 354
    target 727
  ]
  edge [
    source 439
    target 558
  ]
  edge [
    source 29
    target 292
  ]
  edge [
    source 288
    target 413
  ]
  edge [
    source 75
    target 717
  ]
  edge [
    source 504
    target 581
  ]
  edge [
    source 118
    target 208
  ]
  edge [
    source 98
    target 340
  ]
  edge [
    source 211
    target 615
  ]
  edge [
    source 602
    target 645
  ]
  edge [
    source 188
    target 387
  ]
  edge [
    source 93
    target 125
  ]
  edge [
    source 60
    target 574
  ]
  edge [
    source 42
    target 242
  ]
  edge [
    source 472
    target 592
  ]
  edge [
    source 73
    target 321
  ]
  edge [
    source 422
    target 550
  ]
  edge [
    source 160
    target 549
  ]
  edge [
    source 374
    target 504
  ]
  edge [
    source 16
    target 413
  ]
  edge [
    source 133
    target 286
  ]
  edge [
    source 350
    target 508
  ]
  edge [
    source 186
    target 303
  ]
  edge [
    source 95
    target 694
  ]
  edge [
    source 240
    target 439
  ]
  edge [
    source 117
    target 690
  ]
  edge [
    source 168
    target 680
  ]
  edge [
    source 606
    target 652
  ]
  edge [
    source 34
    target 165
  ]
  edge [
    source 246
    target 405
  ]
  edge [
    source 60
    target 735
  ]
  edge [
    source 90
    target 180
  ]
  edge [
    source 283
    target 346
  ]
  edge [
    source 390
    target 566
  ]
  edge [
    source 35
    target 477
  ]
  edge [
    source 122
    target 417
  ]
  edge [
    source 79
    target 627
  ]
  edge [
    source 280
    target 325
  ]
  edge [
    source 53
    target 299
  ]
  edge [
    source 341
    target 697
  ]
  edge [
    source 91
    target 751
  ]
  edge [
    source 304
    target 451
  ]
  edge [
    source 4
    target 266
  ]
  edge [
    source 380
    target 657
  ]
  edge [
    source 642
    target 711
  ]
  edge [
    source 87
    target 546
  ]
]
