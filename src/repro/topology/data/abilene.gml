graph [
  directed 0
  label "Abilene (Internet2 research backbone, 11 PoPs)"
  node [
    id 0
    label "Seattle"
  ]
  node [
    id 1
    label "Sunnyvale"
  ]
  node [
    id 2
    label "Denver"
  ]
  node [
    id 3
    label "LosAngeles"
  ]
  node [
    id 4
    label "Houston"
  ]
  node [
    id 5
    label "KansasCity"
  ]
  node [
    id 6
    label "Indianapolis"
  ]
  node [
    id 7
    label "Atlanta"
  ]
  node [
    id 8
    label "Chicago"
  ]
  node [
    id 9
    label "NewYork"
  ]
  node [
    id 10
    label "Washington"
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 2
  ]
  edge [
    source 1
    target 3
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 2
    target 5
  ]
  edge [
    source 5
    target 4
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 4
    target 7
  ]
  edge [
    source 6
    target 8
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 8
    target 9
  ]
  edge [
    source 7
    target 10
  ]
  edge [
    source 9
    target 10
  ]
]
