"""Reference topologies beyond the paper's figures.

The paper positions KAR "toward core network fabrics" (via KeyFlow) and
future Internet architectures; these well-known topologies let the test
suite and benchmarks exercise KAR where readers expect it to live:

* :func:`fat_tree` — the k-ary data-center fat tree (SlickFlow's
  setting, cited by the paper),
* :func:`abilene` — the 11-PoP Abilene/Internet2 research backbone (a
  real intra-domain WAN like the RNP),
* :func:`load_zoo_graph` — Topology Zoo GML ingest
  (stdlib-only parser, committed fixtures under ``data/``), so
  provisioning benchmarks run over real ISP topologies at planet
  scale.

GML handling is deliberately self-contained: :func:`parse_gml` is a
small recursive-descent reader for the subset of GML the Topology Zoo
emits (nested ``key [ ... ]`` sections, quoted strings, numbers), and
:func:`dump_gml` writes the same subset back canonically — fixtures
round-trip byte-for-byte, which is how the committed files are pinned
to the generators that produced them (see ``data/README.md``).

Switch IDs are planned automatically with
:func:`repro.controller.idassign.assign_switch_ids`, demonstrating the
controller's ID-handling role on networks with no hand-picked IDs.
"""

from __future__ import annotations

import os
import random
from typing import Dict, List, Sequence, Tuple, Union

from repro.controller.idassign import assign_switch_ids
from repro.topology.graph import NodeKind, PortGraph, TopologyError

__all__ = [
    "fat_tree",
    "abilene",
    "ABILENE_LINKS",
    "GmlError",
    "parse_gml",
    "dump_gml",
    "graph_from_gml",
    "gml_from_links",
    "synth_wan_links",
    "synth_wan_gml",
    "zoo_fixture_path",
    "load_zoo_graph",
    "ZOO_FIXTURES",
]


def fat_tree(k: int = 4, rate_mbps: float = 100.0,
             delay_s: float = 0.0001, id_strategy: str = "greedy") -> PortGraph:
    """A k-ary fat tree of KAR switches (k even, >= 2).

    Structure: (k/2)² core switches; k pods, each with k/2 aggregation
    and k/2 edge switches.  Every switch has degree k (edge switches
    keep k/2 ports free for host attachment), so every assigned ID
    must exceed k — which the ID planner guarantees.

    Node names: ``core-i``, ``agg-p-i``, ``edgesw-p-i`` (p = pod).
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat tree arity must be even and >= 2, got {k}")
    half = k // 2
    names: List[str] = [f"core-{i}" for i in range(half * half)]
    for pod in range(k):
        names += [f"agg-{pod}-{i}" for i in range(half)]
        names += [f"edgesw-{pod}-{i}" for i in range(half)]

    # Degrees: every switch can face up to k neighbours.
    ids = assign_switch_ids({n: k + 1 for n in names}, strategy=id_strategy)

    g = PortGraph()
    for name in names:
        g.add_node(name, kind=NodeKind.CORE, switch_id=ids[name])
    for pod in range(k):
        for i in range(half):
            # Aggregation i of each pod uplinks to core row i.
            for j in range(half):
                g.add_link(f"agg-{pod}-{i}", f"core-{i * half + j}",
                           rate_mbps=rate_mbps, delay_s=delay_s)
            # Full bipartite agg <-> edge inside the pod.
            for j in range(half):
                g.add_link(f"agg-{pod}-{i}", f"edgesw-{pod}-{j}",
                           rate_mbps=rate_mbps, delay_s=delay_s)
    return g


#: The classic Abilene backbone adjacency (11 PoPs, 14 links).
ABILENE_LINKS: Tuple[Tuple[str, str], ...] = (
    ("Seattle", "Sunnyvale"), ("Seattle", "Denver"),
    ("Sunnyvale", "LosAngeles"), ("Sunnyvale", "Denver"),
    ("LosAngeles", "Houston"), ("Denver", "KansasCity"),
    ("KansasCity", "Houston"), ("KansasCity", "Indianapolis"),
    ("Houston", "Atlanta"), ("Indianapolis", "Chicago"),
    ("Indianapolis", "Atlanta"), ("Chicago", "NewYork"),
    ("Atlanta", "Washington"), ("NewYork", "Washington"),
)


def abilene(rate_mbps: float = 100.0, delay_s: float = 0.002,
            id_strategy: str = "greedy") -> PortGraph:
    """The Abilene/Internet2 backbone as a KAR core."""
    cities: Dict[str, int] = {}
    for a, b in ABILENE_LINKS:
        cities[a] = cities.get(a, 0)
        cities[b] = cities.get(b, 0)
        cities[a] += 1
        cities[b] += 1
    # Leave one spare port per PoP for edge attachment.
    ids = assign_switch_ids(
        {name: deg + 1 for name, deg in cities.items()},
        strategy=id_strategy,
    )
    g = PortGraph()
    for name in cities:
        g.add_node(name, kind=NodeKind.CORE, switch_id=ids[name])
    for a, b in ABILENE_LINKS:
        g.add_link(a, b, rate_mbps=rate_mbps, delay_s=delay_s)
    return g


# ----------------------------------------------------------------------
# Topology Zoo GML ingest
# ----------------------------------------------------------------------

class GmlError(TopologyError):
    """Malformed GML input (parse error or unusable graph section)."""


# A parsed GML document/section: ordered (key, value) pairs, where a
# value is an int, float, quoted string, or a nested section.
GmlValue = Union[int, float, str, "GmlSection"]
GmlSection = List[Tuple[str, GmlValue]]


def _tokenize_gml(text: str) -> List[str]:
    tokens: List[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c in " \t\r\n":
            i += 1
        elif c == "#":  # comment to end of line (some zoo exports)
            while i < n and text[i] != "\n":
                i += 1
        elif c in "[]":
            tokens.append(c)
            i += 1
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 1
            if j >= n:
                raise GmlError("unterminated string in GML input")
            tokens.append(text[i:j + 1])
            i = j + 1
        else:
            j = i
            while j < n and text[j] not in ' \t\r\n[]"#':
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def _parse_value(tok: str) -> GmlValue:
    if tok.startswith('"'):
        return tok[1:-1]
    try:
        return int(tok)
    except ValueError:
        pass
    try:
        return float(tok)
    except ValueError:
        pass
    # GML bare words (e.g. boolean-ish flags) are kept as strings.
    return tok


def parse_gml(text: str) -> GmlSection:
    """Parse GML text into ordered ``(key, value)`` pairs.

    Handles the Topology Zoo subset: nested ``key [ ... ]`` sections,
    double-quoted strings, integers, floats, bare words, and ``#``
    comments.  Unknown keys are preserved — callers pick out what they
    need.

    Raises:
        GmlError: on unbalanced brackets, a dangling key, or an
            unterminated string.
    """
    tokens = _tokenize_gml(text)
    pos = 0

    def section() -> GmlSection:
        nonlocal pos
        out: GmlSection = []
        while pos < len(tokens) and tokens[pos] != "]":
            key = tokens[pos]
            if key == "[":
                raise GmlError("unexpected '[' without a key")
            pos += 1
            if pos >= len(tokens):
                raise GmlError(f"dangling key {key!r} at end of input")
            if tokens[pos] == "[":
                pos += 1
                value: GmlValue = section()
                if pos >= len(tokens) or tokens[pos] != "]":
                    raise GmlError(f"unclosed section for key {key!r}")
                pos += 1
            else:
                value = _parse_value(tokens[pos])
                pos += 1
            out.append((key, value))
        return out

    doc = section()
    if pos != len(tokens):
        raise GmlError("unbalanced ']' in GML input")
    return doc


def dump_gml(doc: GmlSection, _indent: int = 0) -> str:
    """Write a parsed GML document back out, canonically.

    Two-space indentation, strings quoted, section order preserved —
    ``parse_gml(dump_gml(doc)) == doc``, and the committed fixtures are
    exactly ``dump_gml`` output (tests regenerate and byte-compare).
    """
    pad = "  " * _indent
    lines: List[str] = []
    for key, value in doc:
        if isinstance(value, list):
            lines.append(f"{pad}{key} [")
            lines.append(dump_gml(value, _indent + 1))
            lines.append(f"{pad}]")
        elif isinstance(value, str):
            lines.append(f'{pad}{key} "{value}"')
        else:
            lines.append(f"{pad}{key} {value}")
    return "\n".join(lines)


def _graph_section(doc: GmlSection) -> GmlSection:
    for key, value in doc:
        if key == "graph" and isinstance(value, list):
            return value
    raise GmlError("no 'graph' section in GML input")


def _largest_component(
    names: Sequence[str], links: Sequence[Tuple[str, str]]
) -> List[str]:
    adj: Dict[str, List[str]] = {n: [] for n in names}
    for a, b in links:
        adj[a].append(b)
        adj[b].append(a)
    seen: set = set()
    best: List[str] = []
    for start in names:
        if start in seen:
            continue
        comp = [start]
        seen.add(start)
        stack = [start]
        while stack:
            cur = stack.pop()
            for nb in adj[cur]:
                if nb not in seen:
                    seen.add(nb)
                    comp.append(nb)
                    stack.append(nb)
        if len(comp) > len(best):
            best = comp
    return best


def graph_from_gml(
    text: str,
    rate_mbps: float = 100.0,
    delay_s: float = 0.002,
    id_strategy: str = "greedy",
    largest_component: bool = True,
) -> PortGraph:
    """Build a KAR core from Topology Zoo GML text.

    Normalization (all deterministic, so the same file always yields
    the same graph, ports, and switch IDs):

    * node labels are the node names; missing or duplicate labels get
      a ``_<id>`` suffix (zoo files reuse city labels across PoPs);
    * self-loops and parallel links are dropped (KAR ports are
      per-neighbor);
    * with *largest_component* (the default), smaller components are
      dropped — several zoo snapshots ship disconnected fragments that
      could never carry a provisioned route.

    Every node becomes a CORE switch with one spare port for edge
    attachment (:func:`repro.topology.generators.attach_edges`).

    Raises:
        GmlError: no graph section, no usable nodes, or an edge
            referencing an unknown node id.
    """
    graph_sec = _graph_section(parse_gml(text))
    labels: Dict[int, str] = {}
    used: Dict[str, int] = {}
    order: List[int] = []
    raw_edges: List[Tuple[int, int]] = []
    for key, value in graph_sec:
        if key == "node" and isinstance(value, list):
            fields = dict(
                (k, v) for k, v in value if not isinstance(v, list)
            )
            if "id" not in fields:
                raise GmlError("node section without an 'id'")
            nid = int(fields["id"])
            label = str(fields.get("label", "")).strip() or f"node{nid}"
            if label in used:
                label = f"{label}_{nid}"
            used[label] = nid
            labels[nid] = label
            order.append(nid)
        elif key == "edge" and isinstance(value, list):
            fields = dict(
                (k, v) for k, v in value if not isinstance(v, list)
            )
            if "source" not in fields or "target" not in fields:
                raise GmlError("edge section without source/target")
            raw_edges.append((int(fields["source"]), int(fields["target"])))
    if not labels:
        raise GmlError("GML graph has no nodes")

    links: List[Tuple[str, str]] = []
    seen: set = set()
    for s, t in raw_edges:
        if s not in labels or t not in labels:
            raise GmlError(f"edge references unknown node id {s} or {t}")
        if s == t:
            continue  # self-loop: meaningless for a port graph
        a, b = labels[s], labels[t]
        key2 = (a, b) if a <= b else (b, a)
        if key2 in seen:
            continue  # parallel link: one port pair is enough
        seen.add(key2)
        links.append((a, b))

    names = [labels[nid] for nid in order]
    if largest_component:
        keep = set(_largest_component(names, links))
        names = [n for n in names if n in keep]
        links = [(a, b) for a, b in links if a in keep]
    if not names:
        raise GmlError("GML graph has no usable nodes")

    degree: Dict[str, int] = {n: 0 for n in names}
    for a, b in links:
        degree[a] += 1
        degree[b] += 1
    ids = assign_switch_ids(
        {n: d + 1 for n, d in degree.items()}, strategy=id_strategy
    )
    g = PortGraph()
    for n in names:
        g.add_node(n, kind=NodeKind.CORE, switch_id=ids[n])
    for a, b in links:
        g.add_link(a, b, rate_mbps=rate_mbps, delay_s=delay_s)
    return g


def gml_from_links(
    label: str, links: Sequence[Tuple[str, str]]
) -> str:
    """Canonical Topology Zoo-style GML for a named link list.

    Node ids follow first-appearance order in *links*; output is
    byte-stable, which is what lets fixture tests regenerate committed
    files and compare exactly.
    """
    ids: Dict[str, int] = {}
    for a, b in links:
        for n in (a, b):
            if n not in ids:
                ids[n] = len(ids)
    body: GmlSection = [("directed", 0), ("label", label)]
    for n, nid in ids.items():
        body.append(("node", [("id", nid), ("label", n)]))
    for a, b in links:
        body.append(("edge", [("source", ids[a]), ("target", ids[b])]))
    return dump_gml([("graph", body)]) + "\n"


# ----------------------------------------------------------------------
# Synthetic planet-scale WAN (deterministic stand-in for a large zoo file)
# ----------------------------------------------------------------------

#: Parameters of the committed large fixture: ~Kentucky-Datalink scale
#: (the largest Topology Zoo graph: 754 nodes, ~895 links, sparse and
#: chain-heavy).  The fixture is *synthesized* — this container has no
#: network access, so the real file cannot be downloaded — but the
#: generator is committed and seeded, and the fixture test regenerates
#: the bytes and compares them, so provenance is total.
SYNTH_WAN_NODES = 754
SYNTH_WAN_EXTRA = 141
SYNTH_WAN_SEED = 20260808


def synth_wan_links(
    n: int = SYNTH_WAN_NODES,
    extra: int = SYNTH_WAN_EXTRA,
    seed: int = SYNTH_WAN_SEED,
) -> List[Tuple[str, str]]:
    """Deterministic sparse WAN adjacency: ``n`` PoPs, ``n-1+extra`` links.

    Construction mimics the shape of very large Topology Zoo graphs
    (regional metro chains stitched by a few long-haul shortcuts): a
    locality-biased random spanning tree — node *i* usually attaches to
    one of its twelve predecessors, occasionally anywhere earlier —
    plus *extra* random cross links.  Connected by construction;
    reproducible from the seed alone (``random.Random``, so stable
    across platforms and Python builds).
    """
    if n < 2:
        raise ValueError(f"need at least 2 nodes, got {n}")
    rng = random.Random(seed)
    name = [f"POP{i:04d}" for i in range(n)]
    links: List[Tuple[str, str]] = []
    seen: set = set()
    for i in range(1, n):
        if i == 1 or rng.random() < 0.7:
            j = rng.randrange(max(0, i - 12), i)
        else:
            j = rng.randrange(i)
        links.append((name[j], name[i]))
        seen.add((j, i))
    added = 0
    while added < extra:
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a == b:
            continue
        key = (a, b) if a < b else (b, a)
        if key in seen:
            continue
        seen.add(key)
        links.append((name[key[0]], name[key[1]]))
        added += 1
    return links


def synth_wan_gml(
    n: int = SYNTH_WAN_NODES,
    extra: int = SYNTH_WAN_EXTRA,
    seed: int = SYNTH_WAN_SEED,
) -> str:
    """The GML text of the synthetic WAN — byte-identical to the fixture."""
    return gml_from_links(
        f"SynthWAN-{n} (deterministic synthetic WAN, seed {seed})",
        synth_wan_links(n, extra, seed),
    )


# ----------------------------------------------------------------------
# Committed fixtures
# ----------------------------------------------------------------------

_DATA_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "data")

#: Fixture name -> file name under ``topology/data/``.
ZOO_FIXTURES: Dict[str, str] = {
    "abilene": "abilene.gml",
    "synthwan754": "synthwan754.gml",
}


def zoo_fixture_path(name: str) -> str:
    """Absolute path of a committed GML fixture.

    Raises:
        GmlError: unknown fixture name.
    """
    try:
        return os.path.join(_DATA_DIR, ZOO_FIXTURES[name])
    except KeyError:
        raise GmlError(
            f"unknown zoo fixture {name!r} "
            f"(have: {', '.join(sorted(ZOO_FIXTURES))})"
        ) from None


def load_zoo_graph(
    name: str,
    rate_mbps: float = 100.0,
    delay_s: float = 0.002,
    id_strategy: str = "greedy",
) -> PortGraph:
    """Load a committed GML fixture as a KAR core.

    >>> g = load_zoo_graph("abilene")
    >>> len(list(g.nodes()))
    11
    """
    with open(zoo_fixture_path(name), "r", encoding="utf-8") as fh:
        text = fh.read()
    return graph_from_gml(
        text,
        rate_mbps=rate_mbps,
        delay_s=delay_s,
        id_strategy=id_strategy,
    )
