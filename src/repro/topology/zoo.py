"""Reference topologies beyond the paper's figures.

The paper positions KAR "toward core network fabrics" (via KeyFlow) and
future Internet architectures; these well-known topologies let the test
suite and benchmarks exercise KAR where readers expect it to live:

* :func:`fat_tree` — the k-ary data-center fat tree (SlickFlow's
  setting, cited by the paper),
* :func:`abilene` — the 11-PoP Abilene/Internet2 research backbone (a
  real intra-domain WAN like the RNP).

Switch IDs are planned automatically with
:func:`repro.controller.idassign.assign_switch_ids`, demonstrating the
controller's ID-handling role on networks with no hand-picked IDs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.controller.idassign import assign_switch_ids
from repro.topology.graph import NodeKind, PortGraph

__all__ = ["fat_tree", "abilene", "ABILENE_LINKS"]


def fat_tree(k: int = 4, rate_mbps: float = 100.0,
             delay_s: float = 0.0001, id_strategy: str = "greedy") -> PortGraph:
    """A k-ary fat tree of KAR switches (k even, >= 2).

    Structure: (k/2)² core switches; k pods, each with k/2 aggregation
    and k/2 edge switches.  Every switch has degree k (edge switches
    keep k/2 ports free for host attachment), so every assigned ID
    must exceed k — which the ID planner guarantees.

    Node names: ``core-i``, ``agg-p-i``, ``edgesw-p-i`` (p = pod).
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat tree arity must be even and >= 2, got {k}")
    half = k // 2
    names: List[str] = [f"core-{i}" for i in range(half * half)]
    for pod in range(k):
        names += [f"agg-{pod}-{i}" for i in range(half)]
        names += [f"edgesw-{pod}-{i}" for i in range(half)]

    # Degrees: every switch can face up to k neighbours.
    ids = assign_switch_ids({n: k + 1 for n in names}, strategy=id_strategy)

    g = PortGraph()
    for name in names:
        g.add_node(name, kind=NodeKind.CORE, switch_id=ids[name])
    for pod in range(k):
        for i in range(half):
            # Aggregation i of each pod uplinks to core row i.
            for j in range(half):
                g.add_link(f"agg-{pod}-{i}", f"core-{i * half + j}",
                           rate_mbps=rate_mbps, delay_s=delay_s)
            # Full bipartite agg <-> edge inside the pod.
            for j in range(half):
                g.add_link(f"agg-{pod}-{i}", f"edgesw-{pod}-{j}",
                           rate_mbps=rate_mbps, delay_s=delay_s)
    return g


#: The classic Abilene backbone adjacency (11 PoPs, 14 links).
ABILENE_LINKS: Tuple[Tuple[str, str], ...] = (
    ("Seattle", "Sunnyvale"), ("Seattle", "Denver"),
    ("Sunnyvale", "LosAngeles"), ("Sunnyvale", "Denver"),
    ("LosAngeles", "Houston"), ("Denver", "KansasCity"),
    ("KansasCity", "Houston"), ("KansasCity", "Indianapolis"),
    ("Houston", "Atlanta"), ("Indianapolis", "Chicago"),
    ("Indianapolis", "Atlanta"), ("Chicago", "NewYork"),
    ("Atlanta", "Washington"), ("NewYork", "Washington"),
)


def abilene(rate_mbps: float = 100.0, delay_s: float = 0.002,
            id_strategy: str = "greedy") -> PortGraph:
    """The Abilene/Internet2 backbone as a KAR core."""
    cities: Dict[str, int] = {}
    for a, b in ABILENE_LINKS:
        cities[a] = cities.get(a, 0)
        cities[b] = cities.get(b, 0)
        cities[a] += 1
        cities[b] += 1
    # Leave one spare port per PoP for edge attachment.
    ids = assign_switch_ids(
        {name: deg + 1 for name, deg in cities.items()},
        strategy=id_strategy,
    )
    g = PortGraph()
    for name in cities:
        g.add_node(name, kind=NodeKind.CORE, switch_id=ids[name])
    for a, b in ABILENE_LINKS:
        g.add_link(a, b, rate_mbps=rate_mbps, delay_s=delay_s)
    return g
