"""Port-indexed topology substrate and the paper's network scenarios."""

from repro.topology.generators import (
    attach_host_pair,
    clique,
    random_connected,
    ring_lattice,
    torus,
)
from repro.topology.serialize import load_scenario, save_scenario
from repro.topology.zoo import ABILENE_LINKS, abilene, fat_tree
from repro.topology.graph import LinkInfo, NodeInfo, NodeKind, PortGraph, TopologyError
from repro.topology.paths import (
    NoPathError,
    all_shortest_paths,
    articulation_links,
    is_reachable_without,
    k_shortest_paths,
    path_links,
    shortest_path,
)
from repro.topology.topologies import (
    FULL,
    PARTIAL,
    RNP_CITY_LABELS,
    UNPROTECTED,
    ProtectionSegment,
    Scenario,
    fifteen_node,
    redundant_path,
    rnp28,
    six_node,
)

__all__ = [
    "PortGraph",
    "NodeInfo",
    "LinkInfo",
    "NodeKind",
    "TopologyError",
    "shortest_path",
    "all_shortest_paths",
    "k_shortest_paths",
    "path_links",
    "is_reachable_without",
    "articulation_links",
    "NoPathError",
    "Scenario",
    "ProtectionSegment",
    "six_node",
    "fifteen_node",
    "rnp28",
    "redundant_path",
    "UNPROTECTED",
    "PARTIAL",
    "FULL",
    "RNP_CITY_LABELS",
    "random_connected",
    "ring_lattice",
    "clique",
    "torus",
    "attach_host_pair",
    "fat_tree",
    "abilene",
    "ABILENE_LINKS",
    "save_scenario",
    "load_scenario",
]
